#!/usr/bin/env bash
# The one-shot pre-PR hygiene gate. Configures a warning-clean build
# (GB_WERROR=ON, plus clang-tidy via GB_TIDY=1 in the environment when
# installed), builds everything, and runs the full ctest suite — which
# includes `ctest -L lint`: the gb-lint fixture self-tests plus the
# zero-findings sweep over the real tree. Exits nonzero on any finding.
#
#   scripts/check.sh                 # the documented pre-PR command
#   GB_TIDY=1 scripts/check.sh      # also run the clang-tidy profile
#   GB_SANITIZE=undefined scripts/check.sh   # one sanitizer-matrix entry
#
# The full matrix CI runs: (default), GB_SANITIZE=thread with
# -L concurrency, GB_SANITIZE=undefined, GB_SANITIZE=address,undefined.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-werror}"
JOBS="$(nproc 2>/dev/null || echo 2)"

CMAKE_ARGS=(-DGB_WERROR=ON)
if [[ -n "${GB_TIDY:-}" ]]; then
  CMAKE_ARGS+=(-DGB_TIDY=ON)
fi
if [[ -n "${GB_SANITIZE:-}" ]]; then
  CMAKE_ARGS+=(-DGB_SANITIZE="${GB_SANITIZE}")
  BUILD_DIR="${BUILD_DIR}-${GB_SANITIZE//,/-}"
fi

echo "== configure (${CMAKE_ARGS[*]}) -> ${BUILD_DIR}"
cmake -B "${BUILD_DIR}" -S . "${CMAKE_ARGS[@]}"

echo "== build"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== gb_lint sweep (also enforced by ctest -L lint)"
"${BUILD_DIR}/tools/gb_lint" --workers "${JOBS}" src tests bench examples tools

echo "== gb_lint lock-graph sweep (cross-TU ordering + hold-and-block)"
# The concurrency rules alone, as their own gate: a zero here means the
# whole tree has one global lock order and every blocking-under-lock
# site carries a reviewed waiver.
"${BUILD_DIR}/tools/gb_lint" --workers "${JOBS}" \
  --only lock-order-cycle --only blocking-under-lock \
  --only unannotated-guarded-member \
  src tests bench examples tools

echo "== ctest (full suite, includes -L lint and -L incremental)"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== bench_incremental smoke (table only; asserts rescan byte-identity)"
"${BUILD_DIR}/bench/bench_incremental" \
  --json "${BUILD_DIR}/bench_incremental.json" --benchmark_filter='^$'
if grep -q '"byte_identical":false' "${BUILD_DIR}/bench_incremental.json"; then
  echo "bench_incremental: session rescan diverged from the cold scan" >&2
  exit 1
fi

echo "== bench_carve smoke (table only; asserts parallel-sweep byte-identity)"
"${BUILD_DIR}/bench/bench_carve" \
  --json "${BUILD_DIR}/bench_carve.json" --benchmark_filter='^$'
if grep -q '"byte_identical":false' "${BUILD_DIR}/bench_carve.json"; then
  echo "bench_carve: parallel carve diverged from the serial sweep" >&2
  exit 1
fi

echo "== bench_daemon smoke (table only; asserts crash-safety invariants)"
"${BUILD_DIR}/bench/bench_daemon" \
  --json "${BUILD_DIR}/bench_daemon.json" --benchmark_filter='^$'
# Every scenario row must report exactly zero lost jobs.
if ! grep -q '"lost_jobs":0' "${BUILD_DIR}/bench_daemon.json" ||
   grep -o '"lost_jobs":[0-9]*' "${BUILD_DIR}/bench_daemon.json" |
     grep -qv '"lost_jobs":0$'; then
  echo "bench_daemon: a journaled job was lost across kill/restart" >&2
  exit 1
fi
if grep -q '"byte_identical":false' "${BUILD_DIR}/bench_daemon.json"; then
  echo "bench_daemon: replayed reports diverged from the uninterrupted run" >&2
  exit 1
fi

echo "== bench_obs smoke (table only; asserts telemetry overhead + byte-identity)"
"${BUILD_DIR}/bench/bench_obs" \
  --json "${BUILD_DIR}/bench_obs.json" --benchmark_filter='^$'
if grep -q '"byte_identical":false' "${BUILD_DIR}/bench_obs.json"; then
  echo "bench_obs: telemetry-on report diverged from telemetry-off" >&2
  exit 1
fi
if grep -q '"overhead_ok":false' "${BUILD_DIR}/bench_obs.json"; then
  echo "bench_obs: telemetry overhead exceeded the 3% budget" >&2
  exit 1
fi

echo "== thread-safety analysis (Clang -Wthread-safety over the annotations)"
if command -v clang++ >/dev/null 2>&1; then
  TS_BUILD_DIR="${BUILD_DIR}-threadsafety"
  cmake -B "${TS_BUILD_DIR}" -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DGB_THREAD_SAFETY=ON
  cmake --build "${TS_BUILD_DIR}" -j "${JOBS}"
else
  echo "   clang++ not found; skipping (GB_GUARDED_BY/GB_REQUIRES compile"
  echo "   to no-ops elsewhere — install clang to run the analysis)"
fi

echo "== check.sh: all green"
