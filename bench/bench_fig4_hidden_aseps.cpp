// Figure 4: GhostBuster hidden ASEP hook detection for the six
// registry-hiding programs; Section 3 reports 18–63 s inside-the-box.
#include "bench/bench_util.h"
#include "core/registry_scans.h"
#include "core/scan_engine.h"
#include "malware/collection.h"
#include "support/strings.h"

namespace {

using namespace gb;

machine::MachineConfig bench_config() {
  machine::MachineConfig cfg;
  cfg.synthetic_files = 100;
  cfg.synthetic_registry_keys = 150;
  return cfg;
}

core::ScanConfig registry_only() {
  core::ScanConfig cfg;
  cfg.resources = core::ResourceMask::kAseps;
  cfg.parallelism = 1;
  return cfg;
}

/// Expected hidden-hook count per Figure 4 row (Urbin, Mersting,
/// HackerDefender, Vanquish, ProBot SE, Aphex).
const std::size_t kExpectedHooks[] = {1, 1, 2, 1, 3, 1};

void print_table() {
  bench::heading(
      "Figure 4 — Experimental Results for GhostBuster Hidden ASEP Hook "
      "Detection");
  const auto collection = malware::registry_hiding_collection();
  std::printf("%-24s %-7s %-9s %-6s hidden hooks\n", "ghostware", "found",
              "expected", "exact?");
  for (std::size_t i = 0; i < collection.size(); ++i) {
    machine::Machine m(bench_config());
    const auto ghost = collection[i].install(m);
    const auto report = core::ScanEngine(m, registry_only()).inside_scan();
    const auto* diff = report.diff_for(core::ResourceType::kAsepHook);

    std::set<std::string> expected, actual;
    for (const auto& h : ghost->manifest().asep_hooks) {
      if (h.hidden) {
        expected.insert(core::asep_key(h.key_path, h.value_name, h.data_item));
      }
    }
    for (const auto& f : diff->hidden) actual.insert(f.resource.key);

    std::printf("%-24s %-7zu %-9zu %-6s\n", collection[i].display_name.c_str(),
                diff->hidden.size(), kExpectedHooks[i],
                bench::mark(actual == expected &&
                            actual.size() == kExpectedHooks[i]));
    for (const auto& f : diff->hidden) {
      std::printf("    %s\n", f.resource.display.c_str());
    }
  }
  std::printf(
      "\nEvery hidden Services/Run/AppInit_DLLs hook exposed by the\n"
      "high-level-API vs raw-hive-parse diff; ghostware removal can now\n"
      "delete these keys and reboot (Section 3).\n");
}

void BM_InsideRegistryScan(benchmark::State& state) {
  machine::MachineConfig cfg = bench_config();
  cfg.synthetic_registry_keys = static_cast<std::size_t>(state.range(0));
  machine::Machine m(cfg);
  malware::install_ghostware<malware::ProBotSe>(m);
  core::ScanEngine gb(m, registry_only());
  for (auto _ : state) {
    auto report = gb.inside_scan();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_InsideRegistryScan)->Arg(100)->Arg(500)->Arg(2000);

void BM_RawHiveParseOnly(benchmark::State& state) {
  machine::MachineConfig cfg = bench_config();
  cfg.synthetic_registry_keys = static_cast<std::size_t>(state.range(0));
  machine::Machine m(cfg);
  for (auto _ : state) {
    auto scan = core::low_level_registry_scan(m);
    benchmark::DoNotOptimize(scan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RawHiveParseOnly)->Arg(100)->Arg(500)->Arg(2000);

}  // namespace

GB_BENCH_MAIN(print_table)
