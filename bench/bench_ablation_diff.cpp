// Ablation A: the cross-view differ itself.
//
// DESIGN.md decision 3: one generic sorted-merge differ over canonical
// keys serves all four resource types. This bench characterizes its cost
// against snapshot size (linear) and contrasts cross-view vs cross-time
// noise: a cross-time diff on a machine with routine churn reports many
// legitimate changes, while the cross-view diff stays at zero — the
// paper's core usability argument against Tripwire-style comparison.
#include <set>

#include "bench/bench_util.h"
#include "core/cross_time.h"
#include "core/differ.h"
#include "core/file_scans.h"
#include "core/scan_engine.h"
#include "machine/machine.h"
#include "support/rng.h"

namespace {

using namespace gb;

core::ScanResult synth_snapshot(std::size_t n, std::uint64_t seed,
                                std::size_t missing = 0) {
  Rng rng(seed);
  core::ScanResult out;
  out.type = core::ResourceType::kFile;
  out.view_name = "synthetic";
  for (std::size_t i = 0; i < n; ++i) {
    const std::string path = "c:\\data\\" + rng.identifier(12);
    if (i < missing) continue;  // drop the first `missing` entries
    out.resources.push_back(core::Resource{path, path});
  }
  out.normalize();
  return out;
}

void BM_DifferScaling(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto high = synth_snapshot(n, 7, /*missing=*/8);
  const auto low = synth_snapshot(n, 7);
  for (auto _ : state) {
    auto diff = core::cross_view_diff(high, low);
    benchmark::DoNotOptimize(diff);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_DifferScaling)
    ->RangeMultiplier(4)
    ->Range(1 << 10, 1 << 18)
    ->Complexity(benchmark::oN);

void print_table() {
  bench::heading(
      "Ablation A - Cross-view vs cross-time diff (noise comparison)");

  // One machine, observed over a busy day with reboots (content churn),
  // no malware. The Tripwire-style checkpoint differ (core/cross_time)
  // vs the cross-view diff, on the same machine.
  machine::MachineConfig cfg;
  cfg.synthetic_files = 150;
  machine::Machine m(cfg);
  const auto before = core::take_checkpoint(m);

  // Two busy hours with a reboot in the middle.
  m.run_for(VirtualClock::seconds(3600));
  m.reboot();
  m.run_for(VirtualClock::seconds(3600));

  const auto after = core::take_checkpoint(m);
  const auto ct = core::cross_time_diff(before, after);
  const auto filtered =
      core::filter_noise(ct.changes, core::default_noise_patterns());

  const auto report = core::ScanEngine(m, [] {
    core::ScanConfig scan_cfg;
    scan_cfg.resources = core::ResourceMask::kFiles;
    scan_cfg.parallelism = 1;
    return scan_cfg;
  }()).inside_scan();
  const auto cross_view_noise = report.all_hidden().size();

  std::printf("%-46s %zu changes (%zu after noise filtering)\n",
              "cross-time diff (t0 vs t0+2h, 1 reboot):", ct.changes.size(),
              filtered.size());
  std::printf("%-46s %zu findings, no filter needed\n",
              "cross-view diff (same instant, two views):", cross_view_noise);
  std::printf("\n%s cross-view stays at zero while cross-time needs a "
              "maintained noise filter\n",
              bench::mark(cross_view_noise == 0 && !ct.changes.empty()));
}

void BM_CheckpointCapture(benchmark::State& state) {
  machine::MachineConfig cfg;
  cfg.synthetic_files = static_cast<std::size_t>(state.range(0));
  machine::Machine m(cfg);
  for (auto _ : state) {
    auto cp = core::take_checkpoint(m);
    benchmark::DoNotOptimize(cp);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_CheckpointCapture)->Arg(200)->Arg(800);

}  // namespace

GB_BENCH_MAIN(print_table)
