// Shared helpers for the reproduction benches.
//
// Each bench binary reproduces one table/figure of the paper: it prints
// the reproduction table (paper-expected vs measured) before handing the
// command line to google-benchmark for the wall-clock measurements.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace gb::bench {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* mark(bool ok) { return ok ? "OK " : "FAIL"; }

/// Standard main body: print table via `print_table()`, then run any
/// registered google-benchmark cases.
#define GB_BENCH_MAIN(print_table)                       \
  int main(int argc, char** argv) {                      \
    print_table();                                       \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }

}  // namespace gb::bench
