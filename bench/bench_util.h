// Shared helpers for the reproduction benches.
//
// Each bench binary reproduces one table/figure of the paper: it prints
// the reproduction table (paper-expected vs measured) before handing the
// command line to google-benchmark for the wall-clock measurements.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

namespace gb::bench {

inline void heading(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline const char* mark(bool ok) { return ok ? "OK " : "FAIL"; }

/// Extracts `--json FILE` from the command line (removing both tokens so
/// google-benchmark never sees them) and returns FILE, or "" if absent.
/// Benches use it to emit a machine-readable result document alongside
/// the human table.
inline std::string take_json_flag(int& argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      const std::string path = argv[i + 1];
      for (int j = i + 2; j < argc; ++j) argv[j - 2] = argv[j];
      argc -= 2;
      return path;
    }
  }
  return {};
}

inline bool write_json_file(const std::string& path,
                            const std::string& payload) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fwrite(payload.data(), 1, payload.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  return true;
}

/// Standard main body: print table via `print_table()`, then run any
/// registered google-benchmark cases.
#define GB_BENCH_MAIN(print_table)                       \
  int main(int argc, char** argv) {                      \
    print_table();                                       \
    ::benchmark::Initialize(&argc, argv);                \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();               \
    ::benchmark::Shutdown();                             \
    return 0;                                            \
  }

}  // namespace gb::bench
