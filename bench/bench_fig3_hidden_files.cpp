// Figure 3: GhostBuster hidden-file detection for the ten file-hiding
// ghostware programs, plus wall-clock cost of the inside-the-box file
// scan at several machine sizes.
#include "bench/bench_util.h"
#include "core/file_scans.h"
#include "core/scan_engine.h"
#include "malware/collection.h"
#include "support/strings.h"

namespace {

using namespace gb;

machine::MachineConfig bench_config(std::size_t files = 200) {
  machine::MachineConfig cfg;
  cfg.synthetic_files = files;
  cfg.synthetic_registry_keys = 50;
  return cfg;
}

core::ScanConfig files_only() {
  core::ScanConfig cfg;
  cfg.resources = core::ResourceMask::kFiles;
  cfg.parallelism = 1;
  return cfg;
}

/// Paper's expected hidden-file counts per row ("3+" means at least).
struct Expectation {
  std::size_t min_hidden;
  const char* note;
};
const Expectation kExpected[] = {
    {1, "msvsres.dll"},
    {1, "kbddfl.dll"},
    {3, "vanquish.exe/.dll/.log + *vanquish*"},
    {1, "configurable-prefix files"},
    {3, "hxdef100.exe/.sys/.ini + ini patterns"},
    {4, "<random>.exe/.dll + two <random>.sys"},
    {1, "user-selected files/folders"},
    {1, "user-selected files/folders"},
    {1, "user-selected files/folders"},
    {1, "user-selected files/folders"},
};

void print_table() {
  bench::heading(
      "Figure 3 — Experimental Results for GhostBuster Hidden-File "
      "Detection");
  std::printf("%-24s %-10s %-8s %-7s %s\n", "ghostware", "detected",
              "expected", "exact?", "paper row");
  const auto collection = malware::file_hiding_collection();
  for (std::size_t i = 0; i < collection.size(); ++i) {
    machine::Machine m(bench_config());
    const auto ghost = collection[i].install(m);
    const auto report = core::ScanEngine(m, files_only()).inside_scan();
    const auto* diff = report.diff_for(core::ResourceType::kFile);

    // Exactness: the findings must be precisely the manifest's hidden set.
    std::set<std::string> expected_keys, actual_keys;
    for (const auto& p : ghost->manifest().hidden_files) {
      expected_keys.insert(core::file_key(p));
    }
    for (const auto& f : diff->hidden) actual_keys.insert(f.resource.key);
    const bool exact = expected_keys == actual_keys;
    const bool meets_paper = diff->hidden.size() >= kExpected[i].min_hidden;

    std::printf("%-24s %-10zu >=%-6zu %-7s %s\n",
                collection[i].display_name.c_str(), diff->hidden.size(),
                kExpected[i].min_hidden,
                bench::mark(exact && meets_paper), kExpected[i].note);
  }
  std::printf(
      "\nAll ten interception techniques (IAT, inline patch, detour,\n"
      "NtDll detour, SSDT, filter driver) detected uniformly by the same\n"
      "high-vs-raw-MFT cross-view diff, as the paper reports.\n");
}

void BM_InsideFileScan(benchmark::State& state) {
  machine::Machine m(bench_config(static_cast<std::size_t>(state.range(0))));
  malware::install_ghostware<malware::HackerDefender>(m);
  core::ScanEngine gb(m, files_only());
  for (auto _ : state) {
    auto report = gb.inside_scan();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_InsideFileScan)->Arg(100)->Arg(400)->Arg(1600);

void BM_RawMftScanOnly(benchmark::State& state) {
  machine::Machine m(bench_config(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto scan = core::low_level_file_scan(m);
    benchmark::DoNotOptimize(scan);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(state.range(0)));
}
BENCHMARK(BM_RawMftScanOnly)->Arg(100)->Arg(400)->Arg(1600);

void BM_CrossViewDiffOnly(benchmark::State& state) {
  machine::Machine m(bench_config(static_cast<std::size_t>(state.range(0))));
  const auto ctx = m.context_for(m.ensure_process(
      "C:\\windows\\system32\\ghostbuster.exe"));
  const auto high = core::high_level_file_scan(m, ctx).value();
  const auto low = core::low_level_file_scan(m).value();
  for (auto _ : state) {
    auto diff = core::cross_view_diff(high, low);
    benchmark::DoNotOptimize(diff);
  }
}
BENCHMARK(BM_CrossViewDiffOnly)->Arg(400)->Arg(1600);

}  // namespace

GB_BENCH_MAIN(print_table)
