// Section 5 extensions: ghostware targeting vs the DLL-injection mode,
// the eTrust dilemma, and mass-hiding anomaly detection.
#include "bench/bench_util.h"
#include "core/ads_scan.h"
#include "core/anomaly.h"
#include "core/hook_detector.h"
#include "core/scan_engine.h"
#include "malware/ads_stasher.h"
#include "malware/indexghost.h"
#include "malware/collection.h"
#include "support/strings.h"

namespace {

using namespace gb;

machine::MachineConfig cfgs() {
  machine::MachineConfig cfg;
  cfg.synthetic_files = 80;
  cfg.synthetic_registry_keys = 40;
  return cfg;
}

core::ScanConfig files_only() {
  core::ScanConfig cfg;
  cfg.resources = core::ResourceMask::kFiles;
  cfg.parallelism = 1;
  return cfg;
}

void print_table() {
  bench::heading("Section 5 - Extensions");
  std::printf("%-52s %-10s %-10s %s\n", "scenario", "plain/classic",
              "extension", "expected");

  {  // hide only from Task Manager / tlist
    machine::Machine m(cfgs());
    malware::install_ghostware<malware::HackerDefender>(
        m, std::vector<std::string>{"rcmd*"},
        malware::TargetPolicy::only({"taskmgr.exe", "tlist.exe"}));
    core::ScanEngine gb(m, files_only());
    const bool plain = gb.inside_scan().infection_detected();
    const bool injected = gb.injected_scan().infection_detected();
    std::printf("%-52s %-10s %-10s %-22s %s\n",
                "HxDef hiding only from taskmgr/tlist",
                plain ? "detected" : "missed",
                injected ? "detected" : "missed", "missed / detected",
                bench::mark(!plain && injected));
  }
  {  // hide from everyone except ghostbuster.exe
    machine::Machine m(cfgs());
    malware::install_ghostware<malware::Vanquish>(
        m, malware::TargetPolicy::everyone_except({"ghostbuster.exe"}));
    core::ScanEngine gb(m, files_only());
    const bool plain = gb.inside_scan().infection_detected();
    const bool injected = gb.injected_scan().infection_detected();
    std::printf("%-52s %-10s %-10s %-22s %s\n",
                "Vanquish exempting ghostbuster.exe",
                plain ? "detected" : "missed",
                injected ? "detected" : "missed", "missed / detected",
                bench::mark(!plain && injected));
  }
  {  // ordinary (untargeted) hiding: both modes catch it
    machine::Machine m(cfgs());
    malware::install_ghostware<malware::HackerDefender>(m);
    core::ScanEngine gb(m, files_only());
    const bool plain = gb.inside_scan().infection_detected();
    const bool injected = gb.injected_scan().infection_detected();
    std::printf("%-52s %-10s %-10s %-22s %s\n", "HxDef hiding from everyone",
                plain ? "detected" : "missed",
                injected ? "detected" : "missed", "detected / detected",
                bench::mark(plain && injected));
  }
  {  // eTrust dilemma
    machine::Machine m(cfgs());
    malware::install_ghostware<malware::HackerDefender>(m);
    core::ScanConfig av = files_only();
    av.scanner_image = "inocit.exe";
    const bool from_av =
        core::ScanEngine(m, av).inside_scan().infection_detected();
    std::printf("%-52s %-10s %-10s %-22s %s\n",
                "GhostBuster DLL injected into eTrust InocIT.exe", "-",
                from_av ? "detected" : "missed", "detected",
                bench::mark(from_av));
  }
  {  // mass hiding
    machine::Machine m(cfgs());
    for (int i = 0; i < 100; ++i) {
      m.volume().write_file(
          "C:\\documents\\user\\innocent" + std::to_string(i) + ".doc", "x");
    }
    auto hider = std::make_shared<malware::Aphex>("innocent");
    hider->install(m);
    const auto report = core::ScanEngine(m, files_only()).inside_scan();
    const auto a = core::assess_anomaly(report.diffs);
    std::printf("%-52s %-10zu %-10s %-22s %s\n",
                "mass hiding (100 innocent files + ghostware)",
                a.hidden_files, a.mass_hiding ? "ANOMALY" : "quiet",
                "serious anomaly", bench::mark(a.mass_hiding));
  }
  {  // directory-index unlinking (data-only persistent file hiding)
    machine::Machine m(cfgs());
    auto ghost = malware::install_ghostware<malware::IndexGhost>(m);
    core::ScanEngine gb(m, files_only());
    const bool inside = gb.inside_scan().infection_detected();
    const bool hooks_seen =
        !core::suspicious_hooks(m, {}).empty();
    std::printf("%-52s %-10s %-10s %-22s %s\n",
                "directory-index unlinking (file-system DKOM)",
                hooks_seen ? "hooked?!" : "no hooks",
                inside ? "detected" : "missed", "hookless / detected",
                bench::mark(!hooks_seen && inside));
    (void)ghost;
  }
  {  // ADS stashing (Section 6 future work, implemented here)
    machine::Machine m(cfgs());
    auto stasher = malware::install_ghostware<malware::AdsStasher>(m);
    core::ScanEngine gb(m, files_only());
    const bool classic = gb.inside_scan().infection_detected();
    const auto ads = core::ads_scan(m);
    std::printf("%-52s %-10s %-10s %-22s %s\n",
                "payload in alternate data stream",
                classic ? "detected" : "missed",
                ads.hidden.empty() ? "missed" : "detected",
                "missed / ADS-scan hit", bench::mark(!classic && !ads.hidden.empty()));
    (void)stasher;
  }
}

void BM_InjectedScanAllProcesses(benchmark::State& state) {
  machine::Machine m(cfgs());
  malware::install_ghostware<malware::HackerDefender>(m);
  core::ScanEngine gb(m, files_only());
  for (auto _ : state) {
    auto report = gb.injected_scan();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_InjectedScanAllProcesses)->Unit(benchmark::kMillisecond);

void BM_PlainScanForComparison(benchmark::State& state) {
  machine::Machine m(cfgs());
  malware::install_ghostware<malware::HackerDefender>(m);
  core::ScanEngine gb(m, files_only());
  for (auto _ : state) {
    auto report = gb.inside_scan();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_PlainScanForComparison)->Unit(benchmark::kMillisecond);

}  // namespace

GB_BENCH_MAIN(print_table)
