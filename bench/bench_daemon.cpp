// Daemon throughput under churn, with the crash-safety invariants
// asserted in-line.
//
// The paper's endgame is GhostBuster as an always-on fleet service, so
// the daemon's figure of merit is not one scan's wall time but
// sustained jobs/s *while the process is being killed and restarted
// under it*. This bench runs the same fleet twice — once uninterrupted,
// once through repeated kill()/restart cycles on one journal — and
// reports throughput for both alongside the two invariants the journal
// exists to provide: zero lost jobs, and every post-replay report
// byte-identical (normalized) to the uninterrupted run's.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/transport.h"
#include "malware/collection.h"

namespace {

using namespace gb;

constexpr std::size_t kFleet = 12;
constexpr std::size_t kKillEvery = 3;  // crash run: restart per 3 results

machine::MachineConfig bench_box(std::uint64_t seed) {
  machine::MachineConfig cfg;
  cfg.seed = seed;
  cfg.disk_sectors = 32 * 1024;  // 16 MiB image: the fleet is the load
  cfg.mft_records = 2048;
  cfg.synthetic_files = 24;
  cfg.synthetic_registry_keys = 12;
  return cfg;
}

/// One machine per job, rebuilt identically for each scenario so the
/// byte-identity comparison is apples to apples.
struct Fleet {
  std::map<std::string, std::unique_ptr<machine::Machine>> boxes;

  static Fleet build() {
    Fleet fleet;
    for (std::size_t i = 0; i < kFleet; ++i) {
      auto m = std::make_unique<machine::Machine>(bench_box(100 + i));
      if (i % 3 == 2) malware::install_ghostware<malware::HackerDefender>(*m);
      fleet.boxes["BENCH-" + std::to_string(i)] = std::move(m);
    }
    return fleet;
  }

  std::function<machine::Machine*(const std::string&)> resolver() {
    return [this](const std::string& id) -> machine::Machine* {
      auto it = boxes.find(id);
      return it == boxes.end() ? nullptr : it->second.get();
    };
  }
};

std::string journal_path(const std::string& name) {
  const auto path = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove(path);
  return path.string();
}

std::unique_ptr<daemon::Daemon> start_daemon(const std::string& journal,
                                             Fleet& fleet) {
  daemon::DaemonOptions opts;
  opts.journal_path = journal;
  opts.shards = 2;
  opts.workers_per_shard = 2;
  opts.resolve_machine = fleet.resolver();
  auto up = daemon::Daemon::start(std::move(opts));
  if (!up.ok()) {
    std::fprintf(stderr, "bench_daemon: start failed: %s\n",
                 up.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(up).value();
}

std::vector<std::uint64_t> submit_fleet(daemon::Daemon& d) {
  std::vector<std::uint64_t> ids;
  daemon::JobRequest req;
  req.tenant = "bench";
  for (std::size_t i = 0; i < kFleet; ++i) {
    req.machine_id = "BENCH-" + std::to_string(i);
    ids.push_back(d.submit(req).value());
  }
  return ids;
}

struct ScenarioResult {
  double seconds = 0;
  std::size_t restarts = 0;
  std::uint64_t requeued = 0;  // pending jobs the replays re-queued
  std::size_t lost = 0;        // jobs with no OK result at the end
  std::vector<std::string> reports;  // normalized, indexed by job order
};

ScenarioResult run_uninterrupted() {
  Fleet fleet = Fleet::build();
  auto daemon = start_daemon(journal_path("gb_bench_daemon_ref.gbj"), fleet);
  ScenarioResult out;
  const auto t0 = std::chrono::steady_clock::now();
  const auto ids = submit_fleet(*daemon);
  for (std::uint64_t id : ids) {
    auto report = daemon->wait_result(id);
    if (!report.ok()) {
      ++out.lost;
      out.reports.emplace_back();
      continue;
    }
    out.reports.push_back(client::normalized_report_json(*report));
  }
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
  return out;
}

ScenarioResult run_crash_churn() {
  Fleet fleet = Fleet::build();
  const std::string journal = journal_path("gb_bench_daemon_churn.gbj");
  auto daemon = start_daemon(journal, fleet);
  ScenarioResult out;
  const auto t0 = std::chrono::steady_clock::now();
  const auto ids = submit_fleet(*daemon);
  // Harvest results in submit order; every kKillEvery results, crash
  // the daemon and restart it on the same journal. Replay must serve
  // what finished and re-run what the crash stole.
  out.reports.resize(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    auto report = daemon->wait_result(ids[i]);
    if (report.ok()) {
      out.reports[i] = client::normalized_report_json(*report);
    } else {
      ++out.lost;
    }
    const bool more = i + 1 < ids.size();
    if (more && (i + 1) % kKillEvery == 0) {
      daemon->kill();
      daemon.reset();
      daemon = start_daemon(journal, fleet);
      ++out.restarts;
      out.requeued += daemon->stats().requeued;
    }
  }
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                              t0)
                    .count();
  return out;
}

void print_table(const std::string& json_path) {
  bench::heading(
      "Fleet daemon - sustained jobs/s under kill/restart churn");
  std::printf("%-15s %-6s %-10s %-9s %-9s %-6s %s\n", "scenario", "jobs",
              "wall (s)", "jobs/s", "restarts", "lost", "reports");

  const ScenarioResult ref = run_uninterrupted();
  const ScenarioResult churn = run_crash_churn();

  std::size_t mismatched = 0;
  for (std::size_t i = 0; i < ref.reports.size(); ++i) {
    if (churn.reports[i] != ref.reports[i]) ++mismatched;
  }
  const bool identical = mismatched == 0 && churn.lost == 0 && ref.lost == 0;

  auto row = [&](const char* name, const ScenarioResult& r,
                 const std::string& verdict) {
    std::printf("%-15s %-6zu %-10.3f %-9.1f %-9zu %-6zu %s\n", name, kFleet,
                r.seconds, static_cast<double>(kFleet) / r.seconds,
                r.restarts, r.lost, verdict.c_str());
  };
  row("uninterrupted", ref, "(baseline)");
  row("crash-churn", churn,
      identical ? "byte-identical" :
                  "MISMATCH (" + std::to_string(mismatched) + " reports, " +
                      std::to_string(churn.lost) + " lost)");
  std::printf(
      "\n(crash-churn kills the daemon after every %zu results and restarts"
      "\n it on the same journal; %llu interrupted jobs were re-queued and"
      "\n re-run from the replay image.)\n",
      kKillEvery, static_cast<unsigned long long>(churn.requeued));

  if (!json_path.empty()) {
    auto row_json = [&](const char* name, const ScenarioResult& r,
                        bool byte_identical) {
      return std::string("{\"scenario\":\"") + name +
             "\",\"jobs\":" + std::to_string(kFleet) +
             ",\"seconds\":" + std::to_string(r.seconds) +
             ",\"jobs_per_second\":" +
             std::to_string(static_cast<double>(kFleet) / r.seconds) +
             ",\"restarts\":" + std::to_string(r.restarts) +
             ",\"requeued\":" + std::to_string(r.requeued) +
             ",\"lost_jobs\":" + std::to_string(r.lost) +
             ",\"byte_identical\":" + (byte_identical ? "true" : "false") +
             "}";
    };
    const std::string payload =
        "{\"bench\":\"bench_daemon\",\"rows\":[" +
        row_json("uninterrupted", ref, ref.lost == 0) + "," +
        row_json("crash_churn", churn, identical) + "]}";
    if (bench::write_json_file(json_path, payload)) {
      std::printf("json results written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
  }
}

void BM_JournalAppendSubmit(benchmark::State& state) {
  const std::string path = journal_path("gb_bench_daemon_journal.gbj");
  auto journal = daemon::JobJournal::open(path).value();
  daemon::JobRequest req;
  req.machine_id = "BENCH-0";
  req.tenant = "bench";
  std::uint64_t id = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(journal.append_submit(id++, req));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(id - 1));
}
BENCHMARK(BM_JournalAppendSubmit);

void BM_DaemonSubmitWait(benchmark::State& state) {
  // Arg = scheduler shards. One job per iteration, round-robin over the
  // fleet, result awaited inline — the end-to-end serving latency.
  Fleet fleet = Fleet::build();
  daemon::DaemonOptions opts;
  opts.journal_path = journal_path("gb_bench_daemon_bm.gbj");
  opts.shards = static_cast<std::size_t>(state.range(0));
  opts.workers_per_shard = 2;
  opts.resolve_machine = fleet.resolver();
  auto daemon = daemon::Daemon::start(std::move(opts)).value();
  daemon::JobRequest req;
  req.tenant = "bench";
  std::size_t i = 0;
  for (auto _ : state) {
    req.machine_id = "BENCH-" + std::to_string(i++ % kFleet);
    auto report = daemon->wait_result(daemon->submit(req).value());
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_DaemonSubmitWait)->Arg(1)->Arg(2);

void BM_WireSubmitWait(benchmark::State& state) {
  // Same loop through DaemonClient: adds the framing, CRC and result
  // chunk streaming on top of BM_DaemonSubmitWait's baseline.
  Fleet fleet = Fleet::build();
  daemon::DaemonOptions opts;
  opts.journal_path = journal_path("gb_bench_daemon_wire.gbj");
  opts.shards = 1;
  opts.workers_per_shard = 2;
  opts.resolve_machine = fleet.resolver();
  auto daemon = daemon::Daemon::start(std::move(opts)).value();
  daemon::PipePair pipe = daemon::make_pipe();
  daemon->serve(pipe.server);
  auto client = std::make_unique<client::DaemonClient>(pipe.client);
  client::JobSpec spec;
  spec.tenant = "bench";
  std::size_t i = 0;
  for (auto _ : state) {
    spec.machine_id = "BENCH-" + std::to_string(i++ % kFleet);
    auto handle = client->submit(spec);
    const client::JobResult& result = handle->wait();
    benchmark::DoNotOptimize(result);
  }
  client.reset();  // hang up before the daemon's graceful dtor drains
}
BENCHMARK(BM_WireSubmitWait);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = gb::bench::take_json_flag(argc, argv);
  print_table(json_path);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
