// Incremental re-scan speedup vs churn.
//
// The paper's fleet deployment re-scans millions of endpoints on a
// cadence, and between scans almost nothing on a given volume changes.
// A ScanSession remembers the parsed MFT + hive state behind a change-
// journal cursor, so a re-scan re-parses only the dirtied records and
// splices the rest. This bench quantifies the payoff: wall-clock cold
// scan vs session rescan at several churn rates, asserting along the way
// that the rescan report stays byte-identical to the cold scan's.
#include <chrono>
#include <regex>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "core/scan_engine.h"
#include "core/scan_session.h"
#include "malware/hackerdefender.h"

namespace {

using namespace gb;

machine::MachineConfig bench_machine() {
  machine::MachineConfig cfg;
  cfg.disk_sectors = 384 * 1024;  // 192 MiB image
  cfg.mft_records = 65536;        // the MFT walk dominates the cold scan
  cfg.synthetic_files = 300;
  cfg.synthetic_registry_keys = 200;
  return cfg;
}

core::ScanConfig serial_config() {
  core::ScanConfig cfg;
  cfg.parallelism = 1;  // serial on both sides: a pure algorithmic compare
  return cfg;
}

core::Report cold_scan(machine::Machine& m) {
  core::JobSpec job;
  job.kind = core::ScanKind::kInside;
  return std::move(core::ScanEngine(m, serial_config()).run(std::move(job)))
      .value();
}

std::string normalized(const core::Report& report) {
  std::string j = report.to_json();
  j = std::regex_replace(j, std::regex("\"wall_seconds\":[0-9eE+.\\-]+"),
                         "\"wall_seconds\":0");
  j = std::regex_replace(j, std::regex("\"worker_threads\":[0-9]+"),
                         "\"worker_threads\":0");
  j = std::regex_replace(j, std::regex("\"incremental\":\\{[^{}]*\\}"),
                         "\"incremental\":null");
  return j;
}

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Overwrites `ops` pre-created churn files — touching existing records
/// keeps the volume's shape constant across repetitions, so the cold
/// scans timed between rescans see identical work.
void overwrite_churn(machine::Machine& m, int ops, int rep) {
  for (int i = 0; i < ops; ++i) {
    m.volume().write_file("\\churn\\f" + std::to_string(i) + ".dat",
                          "rep " + std::to_string(rep) + " payload " +
                              std::to_string(i));
  }
}

void print_table(const std::string& json_path) {
  bench::heading(
      "Incremental rescan - wall time vs churn (cold scan baseline)");
  std::printf("%-10s %-10s %-12s %-12s %-9s %-10s %s\n", "churn", "dirtied",
              "cold (s)", "rescan (s)", "speedup", "spliced", "report");

  std::string rows;
  for (const int churn_pct : {0, 1, 5, 20}) {
    machine::Machine m(bench_machine());
    malware::install_ghostware<malware::HackerDefender>(m);
    const int ops = static_cast<int>(
        m.volume().live_record_count() * churn_pct / 100);
    m.volume().create_directories("\\churn");
    for (int i = 0; i < ops; ++i) {
      m.volume().write_file("\\churn\\f" + std::to_string(i) + ".dat",
                            "initial payload");
    }

    core::ScanEngine engine(m, serial_config());
    core::ScanSession session = engine.open_session();
    (void)session.rescan();  // prime the snapshot store (full walk)

    double cold_best = 1e9, rescan_best = 1e9;
    bool identical = true;
    for (int rep = 0; rep < 3; ++rep) {
      overwrite_churn(m, ops, rep);
      core::Report cold_report, rescan_report;
      const double cold_s = seconds_of([&] { cold_report = cold_scan(m); });
      const double rescan_s =
          seconds_of([&] { rescan_report = session.rescan(); });
      if (cold_s < cold_best) cold_best = cold_s;
      if (rescan_s < rescan_best) rescan_best = rescan_s;
      identical =
          identical && normalized(rescan_report) == normalized(cold_report);
    }

    const auto& sync = session.last_sync();
    const double speedup = cold_best / rescan_best;
    std::printf("%-10s %-10llu %-12.4f %-12.4f %-9.1f %-10llu %s\n",
                (std::to_string(churn_pct) + "%").c_str(),
                static_cast<unsigned long long>(sync.records_reparsed),
                cold_best, rescan_best, speedup,
                static_cast<unsigned long long>(sync.records_spliced),
                identical ? "byte-identical" : "MISMATCH");

    if (!rows.empty()) rows += ",";
    rows += "{\"churn_pct\":" + std::to_string(churn_pct) +
            ",\"records_reparsed\":" + std::to_string(sync.records_reparsed) +
            ",\"records_spliced\":" + std::to_string(sync.records_spliced) +
            ",\"cold_seconds\":" + std::to_string(cold_best) +
            ",\"rescan_seconds\":" + std::to_string(rescan_best) +
            ",\"speedup\":" + std::to_string(speedup) +
            ",\"byte_identical\":" + (identical ? "true" : "false") + "}";
  }
  std::printf(
      "\n(cold = full double MFT walk + hive parse; rescan = journal replay"
      "\n + content-addressed splice. Low churn is the fleet's steady state.)\n");

  if (!json_path.empty()) {
    const std::string payload =
        "{\"bench\":\"bench_incremental\",\"rows\":[" + rows + "]}";
    if (bench::write_json_file(json_path, payload)) {
      std::printf("json results written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
  }
}

void BM_ColdInsideScan(benchmark::State& state) {
  machine::Machine m(bench_machine());
  malware::install_ghostware<malware::HackerDefender>(m);
  for (auto _ : state) {
    auto report = cold_scan(m);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_ColdInsideScan);

void BM_SessionRescan(benchmark::State& state) {
  // Arg = files overwritten between rescans.
  machine::Machine m(bench_machine());
  malware::install_ghostware<malware::HackerDefender>(m);
  const int ops = static_cast<int>(state.range(0));
  m.volume().create_directories("\\churn");
  overwrite_churn(m, ops, -1);
  core::ScanEngine engine(m, serial_config());
  core::ScanSession session = engine.open_session();
  (void)session.rescan();
  int rep = 0;
  for (auto _ : state) {
    state.PauseTiming();
    overwrite_churn(m, ops, rep++);
    state.ResumeTiming();
    auto report = session.rescan();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SessionRescan)->Arg(0)->Arg(32)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = gb::bench::take_json_flag(argc, argv);
  print_table(json_path);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
