// Section 2's false-positive study for the outside-the-box scan:
//   * zero FPs on all inside-the-box scans;
//   * outside-the-box: "on all but one machine, the number of false
//     positives was two or less"; the CCM machine had 7, dropping to 2
//     once CCM was disabled;
//   * Section 5's VM variant: zero FPs (both scans see the same image).
#include "bench/bench_util.h"
#include "core/scan_engine.h"
#include "machine/services.h"
#include "malware/hackerdefender.h"

namespace {

using namespace gb;

machine::MachineConfig fp_config(bool ccm) {
  machine::MachineConfig cfg;
  cfg.synthetic_files = 120;
  cfg.synthetic_registry_keys = 60;
  cfg.ccm_service = ccm;
  return cfg;
}

core::ScanConfig files_and_registry() {
  core::ScanConfig cfg;
  cfg.resources = core::ResourceMask::kFiles | core::ResourceMask::kAseps;
  cfg.parallelism = 1;
  return cfg;
}

std::size_t outside_file_fps(machine::Machine& m) {
  core::ScanEngine gb(m, files_and_registry());
  const auto report = gb.outside_scan();
  const auto* files = report.diff_for(core::ResourceType::kFile);
  return files ? files->hidden.size() : 0;
}

void print_table() {
  bench::heading(
      "Section 2 - False positives: inside vs outside-the-box (clean "
      "machines)");
  std::printf("%-44s %-9s %s\n", "configuration", "FP count", "paper");

  {  // inside-the-box on a busy machine: zero.
    machine::Machine m(fp_config(true));
    m.run_for(VirtualClock::seconds(600));
    const auto report =
        core::ScanEngine(m, files_and_registry()).inside_scan();
    const auto fps = report.all_hidden().size();
    std::printf("%-44s %-9zu %-16s %s\n", "inside-the-box, busy machine",
                fps, "0", bench::mark(fps == 0));
  }
  {  // outside, typical machine.
    machine::Machine m(fp_config(false));
    m.run_for(VirtualClock::seconds(120));
    const auto fps = outside_file_fps(m);
    std::printf("%-44s %-9zu %-16s %s\n",
                "outside-the-box, typical services", fps, "<= 2",
                bench::mark(fps <= 2));
  }
  std::size_t ccm_fps = 0;
  {  // outside, CCM machine: 7, then disable CCM -> 2.
    machine::Machine m(fp_config(true));
    m.run_for(VirtualClock::seconds(120));
    ccm_fps = outside_file_fps(m);
    std::printf("%-44s %-9zu %-16s %s\n", "outside-the-box, CCM enabled",
                ccm_fps, "7", bench::mark(ccm_fps == 7));
    m.boot();
    m.services().set_enabled(machine::Services::kCcm, false);
    m.run_for(VirtualClock::seconds(60));
    const auto rerun = outside_file_fps(m);
    std::printf("%-44s %-9zu %-16s %s\n",
                "  ... CCM disabled, re-run", rerun, "2",
                bench::mark(rerun <= 2));
  }
  {  // VM variant: halt (no shutdown-window writes), scan from host.
    machine::Machine vm(fp_config(false));
    malware::install_ghostware<malware::HackerDefender>(vm);
    core::ScanEngine gb(vm, files_and_registry());
    const auto cap = gb.capture_inside_high();
    vm.bluescreen();  // host powers the VM down; no shutdown activity
    const auto report = gb.outside_diff(cap);
    const auto* files = report.diff_for(core::ResourceType::kFile);
    std::size_t fps = 0;
    for (const auto& f : files->hidden) {
      if (f.resource.key.find("hxdef") == std::string::npos &&
          f.resource.key.find("rcmd") == std::string::npos) {
        ++fps;
      }
    }
    std::printf("%-44s %-9zu %-16s %s   (4 true positives kept)\n",
                "VM powered down, scanned from host", fps, "0",
                bench::mark(fps == 0 && files->hidden.size() == 4));
  }
  std::printf(
      "\nFP sources match the paper: AV log rotation, System Restore\n"
      "change logs, and the CCM inventory (5 files) on the 7-FP machine.\n");
}

void BM_OutsideScanFull(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    machine::Machine m(fp_config(false));
    core::ScanEngine gb(m, files_and_registry());
    state.ResumeTiming();
    auto report = gb.outside_scan();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_OutsideScanFull)->Unit(benchmark::kMillisecond);

}  // namespace

GB_BENCH_MAIN(print_table)
