// Section 5's Linux/Unix experiments: Darkside (FreeBSD), Superkit and
// Synapsis (Linux LKM), T0rnkit (trojaned utilities) — detected by the
// infected "ls" walk vs the clean-CD "ls" walk; FPs are daemon temp/log
// files, "four or less" in all cases.
#include "bench/bench_util.h"
#include "unixland/rootkits.h"

namespace {

using namespace gb::unixland;

struct Case {
  const char* label;
  std::unique_ptr<UnixRootkit> (*make)();
};
const Case kCases[] = {
    {"Darkside 0.2.3 (FreeBSD LKM)", &make_darkside},
    {"Superkit (Linux LKM)", &make_superkit},
    {"Synapsis (Linux LKM)", &make_synapsis},
    {"Knark (Linux LKM)", &make_knark},
    {"T0rnkit (trojaned ls)", &make_t0rnkit},
};

void print_table() {
  gb::bench::heading(
      "Section 5 - Detecting Linux/Unix Ghostware (ls vs clean-CD ls)");
  std::printf("%-30s %-9s %-7s %-5s %s\n", "rootkit", "hidden", "found",
              "FPs", "status");
  for (const auto& c : kCases) {
    UnixMachine box;
    auto kit = c.make();
    kit->install(box);
    const auto infected = box.scan_all_infected();
    box.daemon_activity(3);  // window before the CD boot
    const auto clean = box.scan_all_clean();
    const auto diff = unix_diff(infected, clean);

    std::size_t kit_hits = 0;
    for (const auto& h : diff.hidden) {
      for (const auto& k : kit->hidden_paths()) {
        if (h == k) ++kit_hits;
      }
    }
    const std::size_t fps = diff.hidden.size() - kit_hits;
    const bool ok =
        kit_hits == kit->hidden_paths().size() && fps <= 4 && diff.extra.empty();
    std::printf("%-30s %-9zu %-7zu %-5zu %s\n", c.label,
                kit->hidden_paths().size(), kit_hits, fps,
                gb::bench::mark(ok));
  }
  std::printf(
      "\nAll four kits detected; false positives are daemon temp/log\n"
      "files and stay at four or less, matching the paper.\n");
}

void BM_UnixCrossViewDiff(benchmark::State& state) {
  UnixMachine box;
  auto kit = make_superkit();
  kit->install(box);
  // Grow the tree to the requested size.
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    box.fs().write("/home/user/f" + std::to_string(i), "data");
  }
  for (auto _ : state) {
    auto diff = unix_cross_view_diff(box);
    benchmark::DoNotOptimize(diff);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_UnixCrossViewDiff)->Arg(100)->Arg(1000)->Arg(10000);

}  // namespace

GB_BENCH_MAIN(print_table)
