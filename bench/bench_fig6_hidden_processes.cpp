// Figure 6: hidden process/module detection — Aphex, Hacker Defender,
// Berbew via the Active Process List diff; FU only via advanced mode;
// Vanquish's blanked vanquish.dll in many processes. Section 4 reports
// 1–5 s for the combined scan.
#include "bench/bench_util.h"
#include "core/scan_engine.h"
#include "malware/collection.h"
#include "support/strings.h"

namespace {

using namespace gb;

machine::MachineConfig bench_config() {
  machine::MachineConfig cfg;
  cfg.synthetic_files = 80;
  cfg.synthetic_registry_keys = 40;
  return cfg;
}

core::ScanConfig proc_only(bool advanced) {
  core::ScanConfig cfg;
  cfg.resources = core::ResourceMask::kProcesses;
  cfg.processes.scheduler_view = advanced;
  cfg.parallelism = 1;
  return cfg;
}

std::size_t hidden_matching(const core::Report& r, core::ResourceType type,
                            std::string_view needle) {
  std::size_t n = 0;
  const auto* diff = r.diff_for(type);
  if (!diff) return 0;
  for (const auto& f : diff->hidden) {
    if (icontains(f.resource.key, needle)) ++n;
  }
  return n;
}

void print_table() {
  bench::heading(
      "Figure 6 — Experimental Results for GhostBuster Hidden "
      "Processes/Modules Detection");
  std::printf("%-22s %-30s %-9s %-9s %s\n", "ghostware", "hidden entity",
              "basic", "advanced", "status");

  // Aphex / Hacker Defender / Berbew: API-level process hiding — caught
  // by the basic Active Process List diff.
  for (const auto& entry : malware::process_hiding_collection()) {
    machine::Machine m(bench_config());
    const auto ghost = entry.install(m);
    const std::string needle = ghost->manifest().hidden_processes.empty()
                                   ? std::string("?")
                                   : ghost->manifest().hidden_processes[0];
    const auto basic = hidden_matching(
        core::ScanEngine(m, proc_only(false)).inside_scan(),
        core::ResourceType::kProcess, needle);
    const auto advanced = hidden_matching(
        core::ScanEngine(m, proc_only(true)).inside_scan(),
        core::ResourceType::kProcess, needle);
    std::printf("%-22s %-30s %-9s %-9s %s\n", entry.display_name.c_str(),
                needle.c_str(), basic ? "detected" : "missed",
                advanced ? "detected" : "missed",
                bench::mark(basic >= 1 && advanced >= 1));
  }

  // FU: DKOM — invisible to the basic low-level scan, advanced only.
  {
    machine::Machine m(bench_config());
    auto fu = malware::install_ghostware<malware::FuRootkit>(m);
    const auto victim =
        m.spawn_process("C:\\windows\\system32\\notepad.exe").pid();
    fu->hide_process(m, victim);
    const auto basic = hidden_matching(
        core::ScanEngine(m, proc_only(false)).inside_scan(),
        core::ResourceType::kProcess, "notepad.exe");
    const auto advanced = hidden_matching(
        core::ScanEngine(m, proc_only(true)).inside_scan(),
        core::ResourceType::kProcess, "notepad.exe");
    std::printf("%-22s %-30s %-9s %-9s %s\n", "FU (fu -ph <pid>)",
                "notepad.exe (DKOM)", basic ? "detected" : "missed",
                advanced ? "detected" : "missed",
                bench::mark(basic == 0 && advanced == 1));
  }

  // Vanquish: vanquish.dll hidden inside many processes (module diff).
  {
    machine::Machine m(bench_config());
    malware::install_ghostware<malware::Vanquish>(m);
    core::ScanConfig mod_cfg;
    mod_cfg.resources = core::ResourceMask::kModules;
    mod_cfg.parallelism = 1;
    const auto report = core::ScanEngine(m, mod_cfg).inside_scan();
    const auto entries = hidden_matching(report, core::ResourceType::kModule,
                                         "vanquish.dll");
    std::printf("%-22s %-30s %-9s %-9s %s  (%zu processes)\n", "Vanquish",
                "vanquish.dll (blanked PEB path)", "-", "detected",
                bench::mark(entries >= 3), entries);
  }

  std::printf(
      "\nAs in the paper: only FU's DKOM defeats the Active-Process-List\n"
      "low-level scan; the advanced mode (scheduler thread table) finds\n"
      "it. The basic/advanced split matches Figure 6 exactly.\n");
}

void BM_CombinedProcessModuleScan(benchmark::State& state) {
  machine::Machine m(bench_config());
  malware::install_ghostware<malware::HackerDefender>(m);
  core::ScanConfig cfg;
  cfg.resources = core::ResourceMask::kProcesses | core::ResourceMask::kModules;
  cfg.processes.scheduler_view = state.range(0) != 0;
  cfg.parallelism = 1;
  core::ScanEngine gb(m, cfg);
  for (auto _ : state) {
    auto report = gb.inside_scan();
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_CombinedProcessModuleScan)
    ->Arg(0)
    ->Arg(1)
    ->ArgNames({"advanced"});

void BM_DumpWriteAndParse(benchmark::State& state) {
  machine::Machine m(bench_config());
  for (auto _ : state) {
    state.PauseTiming();
    if (!m.running()) m.boot();
    state.ResumeTiming();
    auto bytes = m.bluescreen();
    auto dump = kernel::parse_dump(bytes);
    benchmark::DoNotOptimize(dump);
  }
}
BENCHMARK(BM_DumpWriteAndParse);

}  // namespace

GB_BENCH_MAIN(print_table)
