// Signature-carve throughput vs dump size.
//
// The carve view (kernel/carve.h) sweeps every byte of the crash dump
// for process-record signatures, so its cost scales with the dump image
// — not with the process count the traversal views pay for. This bench
// measures sweep throughput at workers 1/2/8 over three dump sizes and
// asserts, per row, that the parallel carve is byte-identical to the
// serial one (same records, same offsets, same stats): the determinism
// contract scripts/check.sh enforces.
#include <chrono>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "kernel/carve.h"
#include "kernel/dump.h"
#include "machine/machine.h"
#include "support/thread_pool.h"

namespace {

using namespace gb;

/// A dump image whose size is driven by the live process count.
std::vector<std::byte> dump_with_processes(int extra_processes) {
  machine::MachineConfig cfg;
  cfg.synthetic_files = 50;
  cfg.synthetic_registry_keys = 20;
  machine::Machine m(cfg);
  for (int i = 0; i < extra_processes; ++i) {
    m.spawn_process("C:\\windows\\system32\\svc" + std::to_string(i) + ".exe");
  }
  return kernel::write_dump(m.kernel());
}

/// Canonical text form of a carve result, for byte-identity compares.
std::string fingerprint(const kernel::CarveResult& r) {
  std::string out;
  for (const auto& p : r.processes) {
    out += std::to_string(p.offset) + ":" + std::to_string(p.image.pid) + ":" +
           p.image.image_name + ":" + (p.referenced ? "r" : "o") + "\n";
  }
  out += "recovered=" + std::to_string(r.stats.recovered) +
         " rejected=" + std::to_string(r.stats.rejected) +
         " candidates=" + std::to_string(r.stats.candidates) +
         " bytes=" + std::to_string(r.stats.bytes_swept);
  return out;
}

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void print_table(const std::string& json_path) {
  bench::heading("Signature carve - sweep throughput vs dump size");
  std::printf("%-11s %-12s %-9s %-12s %-11s %s\n", "processes", "dump (KiB)",
              "workers", "sweep (s)", "MiB/s", "report");

  std::string rows;
  for (const int procs : {64, 1024, 8192}) {
    const auto image = dump_with_processes(procs);
    const auto serial = kernel::carve_dump(image);
    if (!serial.ok()) {
      std::fprintf(stderr, "serial carve failed: %s\n",
                   serial.status().to_string().c_str());
      return;
    }
    const std::string want = fingerprint(*serial);

    for (const std::size_t workers : {1u, 2u, 8u}) {
      support::ThreadPool pool(workers);
      double best = 1e9;
      bool identical = true;
      for (int rep = 0; rep < 3; ++rep) {
        support::StatusOr<kernel::CarveResult> carved =
            support::Status::internal("unset");
        const double s =
            seconds_of([&] { carved = kernel::carve_dump(image, &pool); });
        if (s < best) best = s;
        identical =
            identical && carved.ok() && fingerprint(*carved) == want;
      }
      const double mib = static_cast<double>(image.size()) / (1024.0 * 1024.0);
      std::printf("%-11d %-12zu %-9zu %-12.5f %-11.1f %s\n", procs,
                  image.size() / 1024, workers, best, mib / best,
                  identical ? "byte-identical" : "MISMATCH");

      if (!rows.empty()) rows += ",";
      rows += "{\"processes\":" + std::to_string(procs) +
              ",\"dump_bytes\":" + std::to_string(image.size()) +
              ",\"workers\":" + std::to_string(workers) +
              ",\"seconds\":" + std::to_string(best) +
              ",\"mib_per_second\":" + std::to_string(mib / best) +
              ",\"byte_identical\":" + (identical ? "true" : "false") + "}";
    }
  }
  std::printf(
      "\n(sweep = full-image signature scan, chunked across the pool;"
      "\n byte-identical = parallel result matches the serial carve.)\n");

  if (!json_path.empty()) {
    const std::string payload =
        "{\"bench\":\"bench_carve\",\"rows\":[" + rows + "]}";
    if (bench::write_json_file(json_path, payload)) {
      std::printf("json results written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
  }
}

void BM_CarveDump(benchmark::State& state) {
  // Arg = worker count; the image is the 1024-process dump.
  const auto image = dump_with_processes(1024);
  const auto workers = static_cast<std::size_t>(state.range(0));
  support::ThreadPool pool(workers);
  for (auto _ : state) {
    auto carved = kernel::carve_dump(image, workers == 1 ? nullptr : &pool);
    benchmark::DoNotOptimize(carved);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(image.size()));
}
BENCHMARK(BM_CarveDump)->Arg(1)->Arg(2)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = gb::bench::take_json_flag(argc, argv);
  print_table(json_path);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
