// Fleet-scheduler characterization: throughput of a fixed fleet served
// through ScanScheduler as the shared pool widens, and queue latency for
// a light tenant while a heavy tenant floods the queue (the weighted
// fair-queuing story). On a single-core host the pool-width sweep is
// flat — fan-out needs cores — but the fairness ratios still hold, since
// deficit round-robin is a property of dispatch order, not parallelism.
#include <algorithm>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "core/scan_scheduler.h"
#include "malware/collection.h"
#include "obs/metrics.h"

namespace {

using namespace gb;

machine::MachineConfig fleet_box_config(std::uint64_t seed) {
  machine::MachineConfig cfg;
  cfg.seed = seed;
  cfg.disk_sectors = 32 * 1024;  // 16 MiB: a bench fleet fits in RAM
  cfg.mft_records = 2048;
  cfg.synthetic_files = 40;
  cfg.synthetic_registry_keys = 20;
  return cfg;
}

std::vector<std::unique_ptr<machine::Machine>> build_fleet(std::size_t n) {
  std::vector<std::unique_ptr<machine::Machine>> fleet;
  for (std::size_t i = 0; i < n; ++i) {
    fleet.push_back(
        std::make_unique<machine::Machine>(fleet_box_config(400 + i)));
    if (i % 3 == 0) {
      malware::install_ghostware<malware::HackerDefender>(*fleet.back());
    }
  }
  return fleet;
}

/// Jobs served per second over a fixed 8-machine fleet, as the shared
/// pool widens. Machines are rebuilt per iteration (a scan advances the
/// virtual clock, so reuse would not be apples-to-apples).
void BM_FleetThroughputByWorkers(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kFleet = 8;
  for (auto _ : state) {
    state.PauseTiming();
    auto fleet = build_fleet(kFleet);
    state.ResumeTiming();
    core::ScanScheduler::Options opts;
    opts.workers = workers;
    core::ScanScheduler sched(opts);
    std::vector<core::ScanJob> jobs;
    for (auto& m : fleet) {
      core::JobSpec spec;
      spec.machine = m.get();
      jobs.push_back(sched.submit(std::move(spec)).value());
    }
    for (auto& job : jobs) benchmark::DoNotOptimize(job.wait().ok());
  }
  state.SetItemsProcessed(state.iterations() * kFleet);
}
BENCHMARK(BM_FleetThroughputByWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Scheduling overhead in isolation: empty-mask jobs (no scan work), so
/// the measurement is submit + DRR dispatch + handle completion.
void BM_SchedulerDispatchOverhead(benchmark::State& state) {
  auto box = std::make_unique<machine::Machine>(fleet_box_config(1));
  for (auto _ : state) {
    core::ScanScheduler::Options opts;
    opts.workers = 1;
    core::ScanScheduler sched(opts);
    std::vector<core::ScanJob> jobs;
    for (int i = 0; i < 32; ++i) {
      core::JobSpec spec;
      spec.machine = box.get();
      spec.tenant = (i % 2 != 0) ? "odd" : "even";
      spec.config.resources = core::ResourceMask::kNone;
      jobs.push_back(sched.submit(std::move(spec)).value());
    }
    for (auto& job : jobs) benchmark::DoNotOptimize(job.wait().ok());
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SchedulerDispatchOverhead)->Unit(benchmark::kMillisecond);

void print_table(const std::string& json_path) {
  bench::heading("Fleet scheduler - weighted fairness under a flood");

  // A heavy tenant floods 12 jobs; a light tenant submits 4. With
  // weights 2:1 the light tenant's jobs must interleave at one per
  // three dispatches rather than waiting behind the whole flood.
  auto fleet = build_fleet(2);
  obs::MetricsRegistry registry;
  core::ScanScheduler::Options opts;
  opts.workers = 1;
  opts.start_paused = true;
  opts.metrics = &registry;
  core::ScanScheduler sched(opts);
  sched.set_tenant_weight("heavy", 2);
  sched.set_tenant_weight("light", 1);

  std::vector<core::ScanJob> heavy_jobs, light_jobs;
  for (int i = 0; i < 12; ++i) {
    core::JobSpec spec;
    spec.machine = fleet[0].get();
    spec.tenant = "heavy";
    heavy_jobs.push_back(sched.submit(std::move(spec)).value());
  }
  for (int i = 0; i < 4; ++i) {
    core::JobSpec spec;
    spec.machine = fleet[1].get();
    spec.tenant = "light";
    light_jobs.push_back(sched.submit(std::move(spec)).value());
  }
  sched.resume();
  sched.wait_idle();

  double heavy_queue_max = 0, light_queue_max = 0;
  for (auto& j : heavy_jobs) {
    heavy_queue_max =
        std::max(heavy_queue_max, j.wait().value().scheduler->queue_seconds);
  }
  for (auto& j : light_jobs) {
    light_queue_max =
        std::max(light_queue_max, j.wait().value().scheduler->queue_seconds);
  }
  const auto stats = sched.stats();
  std::printf("%-28s %8s %8s\n", "tenant", "served", "maxq(ms)");
  std::printf("%-28s %8llu %8.2f\n", "heavy (w=2, 12 jobs)",
              static_cast<unsigned long long>(stats.tenants[0].served),
              heavy_queue_max * 1e3);
  std::printf("%-28s %8llu %8.2f\n", "light (w=1, 4 jobs)",
              static_cast<unsigned long long>(stats.tenants[1].served),
              light_queue_max * 1e3);
  // The light tenant's worst wait must beat waiting behind the flood:
  // under FIFO its last job would queue behind all 12 heavy jobs.
  const bool fair = light_queue_max <= heavy_queue_max;
  std::printf("%s light tenant never waits behind the full flood\n",
              bench::mark(fair));
  std::printf("(single-core CI note: widen-the-pool speedups need real "
              "cores; fairness ratios hold at any width)\n");

  if (!json_path.empty()) {
    // Machine-readable result: the fairness verdict plus the scheduler's
    // whole registry (per-tenant counters, queue-wait histogram, pool
    // task latencies), so CI can trend any series without new plumbing.
    std::string payload = "{\"bench\":\"bench_scheduler\"";
    payload += ",\"fair\":" + std::string(fair ? "true" : "false");
    payload +=
        ",\"heavy_maxq_seconds\":" + std::to_string(heavy_queue_max);
    payload +=
        ",\"light_maxq_seconds\":" + std::to_string(light_queue_max);
    payload += ",\"stats\":" + stats.to_json();
    payload += ",\"metrics\":" + registry.to_json() + "}";
    if (bench::write_json_file(json_path, payload)) {
      std::printf("json results written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = gb::bench::take_json_flag(argc, argv);
  print_table(json_path);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
