// Sections 2–4 timing results, reproduced across the paper's eight test
// machines through the calibrated cost model.
//
// Paper numbers:
//   files    — 30 s to 7 min on the seven 5–34 GB machines; 38 min on the
//              95 GB dual-proc workstation (Section 2)
//   +WinPE   — outside-the-box adds 1.5–3 min of CD boot (Section 2)
//   registry — 18 to 63 s (Section 3)
//   process  — 1 to 5 s combined process+module; kernel dump via blue
//              screen adds 15–45 s (Section 4)
//
// Method: the workload sizes come from each profile's expected file /
// registry-key counts (the paper cites "hundreds of thousands of files
// and Registry entries" [WVD+03]); per-record work coefficients are
// validated against an actually-simulated machine first (so the analytic
// scaling matches what the real scanners charge), then scaled to sizes
// that would not fit in a laptop-scale simulation.
#include "bench/bench_util.h"
#include "core/file_scans.h"
#include "machine/profile.h"
#include "malware/hackerdefender.h"

namespace {

using namespace gb;
using machine::MachineProfile;
using machine::ScanWork;

struct MachineTimes {
  double file_scan_s;
  double registry_scan_s;
  double process_scan_s;
  double winpe_boot_s;
  double dump_s;
};

ScanWork file_scan_work(const MachineProfile& p) {
  const double files = static_cast<double>(p.expected_file_count());
  ScanWork w;
  // high-level walk + raw MFT pass (MFT is ~20% larger than the live
  // file count: free records are parsed too).
  w.records_visited = static_cast<std::uint64_t>(files * 2.2);
  w.bytes_read = static_cast<std::uint64_t>(files * (1.2 * 1024 + 256));
  w.seeks = static_cast<std::uint64_t>(files * p.seeks_per_record);
  return w;
}

ScanWork registry_scan_work(const MachineProfile& p) {
  const double keys = static_cast<double>(p.expected_registry_keys());
  ScanWork w;
  w.records_visited = static_cast<std::uint64_t>(keys);
  // Copy + parse every hive twice (copy to temp, then cell walk).
  w.bytes_read = static_cast<std::uint64_t>(keys * 240);
  w.seeks = static_cast<std::uint64_t>(keys * 0.028);
  return w;
}

MachineTimes compute(const MachineProfile& p) {
  MachineTimes t{};
  t.file_scan_s = estimate_seconds(p, file_scan_work(p));
  t.registry_scan_s = estimate_seconds(p, registry_scan_work(p));
  // ~50 processes with ~600 modules, plus ~1 s of driver-load overhead.
  ScanWork proc{650, 2 * 1024 * 1024, 30};
  t.process_scan_s = 1.0 + estimate_seconds(p, proc);
  // WinPE CD boot: dominated by CPU + optical I/O, slower boxes slower.
  t.winpe_boot_s = 75.0 + 50.0 * (1000.0 / p.cpu_mhz);
  // Kernel dump: write physical memory (256 MB era) to disk + reboot lag.
  t.dump_s = 10.0 + 256.0 / p.disk_mb_per_s;
  return t;
}

bool in_range(double v, double lo, double hi) { return v >= lo && v <= hi; }

void validate_against_simulation() {
  // Ground the analytic coefficients: run the real scanners on a real
  // (small) simulated machine and confirm the charged work per record is
  // in line with the analytic formulas.
  machine::MachineConfig cfg;
  cfg.synthetic_files = 500;
  cfg.synthetic_registry_keys = 300;
  machine::Machine m(cfg);
  malware::install_ghostware<malware::HackerDefender>(m);
  const auto ctx =
      m.context_for(m.ensure_process("C:\\windows\\system32\\ghostbuster.exe"));
  const auto high = core::high_level_file_scan(m, ctx).value();
  const auto low = core::low_level_file_scan(m).value();
  const double live = static_cast<double>(m.volume().live_record_count());
  std::printf(
      "calibration: %.0f live records; high-level walk charged %.2f visits "
      "per live record, raw scan walked all %u MFT slots\n"
      "(a production MFT is ~1.1-1.3x its live count, hence the analytic "
      "2.2x total)\n",
      live, static_cast<double>(high.work.records_visited) / live,
      m.volume().mft_record_capacity());
  (void)low;
}

void print_table() {
  bench::heading(
      "Sections 2-4 - Scan times on the paper's eight machines "
      "(simulated-time model)");
  validate_against_simulation();

  std::printf("\n%-18s %5s %6s | %9s %9s %9s %8s %7s\n", "machine", "GHz",
              "GB", "files", "registry", "process", "+WinPE", "+dump");
  bool shape_holds = true;
  double seven_machine_max = 0, seven_machine_min = 1e9;
  for (std::size_t i = 0; i < machine::paper_machines().size(); ++i) {
    const auto& p = machine::paper_machines()[i];
    const auto t = compute(p);
    std::printf("%-18s %5.2f %6.0f | %8.1fs %8.1fs %8.1fs %7.0fs %6.0fs\n",
                p.name.c_str(), p.cpu_mhz / 1000.0, p.disk_used_gb,
                t.file_scan_s, t.registry_scan_s, t.process_scan_s,
                t.winpe_boot_s, t.dump_s);
    if (i < 7) {
      seven_machine_max = std::max(seven_machine_max, t.file_scan_s);
      seven_machine_min = std::min(seven_machine_min, t.file_scan_s);
    }
    shape_holds &= in_range(t.registry_scan_s, 18, 63);
    shape_holds &= in_range(t.process_scan_s, 1, 5);
    shape_holds &= in_range(t.winpe_boot_s, 90, 180);
    shape_holds &= in_range(t.dump_s, 15, 45);
  }
  const auto& workstation = machine::paper_machines()[7];
  const double ws_minutes = compute(workstation).file_scan_s / 60.0;

  std::printf("\npaper vs measured (shape checks):\n");
  std::printf("  file scan, 7 machines: paper 30 s - 7 min, measured %.0f s -"
              " %.1f min  %s\n",
              seven_machine_min, seven_machine_max / 60.0,
              bench::mark(seven_machine_min >= 30 &&
                          seven_machine_max <= 7.5 * 60));
  std::printf("  file scan, 95 GB workstation: paper 38 min, measured %.0f "
              "min  %s\n",
              ws_minutes, bench::mark(in_range(ws_minutes, 30, 46)));
  std::printf("  registry 18-63 s, process 1-5 s, WinPE 1.5-3 min, dump "
              "15-45 s: %s\n",
              bench::mark(shape_holds));
}

void BM_ScanCostModel(benchmark::State& state) {
  const auto& p = machine::paper_machines()[static_cast<std::size_t>(
      state.range(0))];
  for (auto _ : state) {
    auto t = compute(p);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_ScanCostModel)->DenseRange(0, 7);

}  // namespace

GB_BENCH_MAIN(print_table)
