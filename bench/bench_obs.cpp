// Telemetry overhead on the hot inside-scan path.
//
// The observability layer's contract is "free when off, near-free when
// on": metrics are one relaxed atomic add per event, spans are a couple
// of steady-clock reads, the flight recorder is one framed write per
// job lifecycle step — none of it on the per-record hot loop. This
// bench prices that claim: the same machine scanned with telemetry
// fully off (no registry, tracer disabled) vs fully on (registry
// attached, tracer enabled under a propagated TraceContext, event log
// appending per job), at workers 1 and 8. It asserts two invariants the
// check.sh gate greps for:
//
//   * overhead_ok    — telemetry-on wall time within 3% of telemetry-off
//   * byte_identical — normalized reports identical on vs off
#include <chrono>
#include <filesystem>
#include <functional>
#include <regex>
#include <string>

#include "bench/bench_util.h"
#include "core/scan_engine.h"
#include "machine/machine.h"
#include "malware/hackerdefender.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

using namespace gb;

constexpr double kOverheadLimitPct = 3.0;

machine::MachineConfig bench_machine() {
  machine::MachineConfig cfg;
  // Large enough that one scan takes tens of milliseconds — a 3%
  // overhead budget needs headroom over scheduler noise.
  cfg.disk_sectors = 256 * 1024;  // 128 MiB image
  cfg.mft_records = 32768;
  cfg.synthetic_files = 200;
  cfg.synthetic_registry_keys = 150;
  return cfg;
}

std::string normalized(const core::Report& report) {
  std::string j = report.to_json();
  j = std::regex_replace(j, std::regex("\"wall_seconds\":[0-9eE+.\\-]+"),
                         "\"wall_seconds\":0");
  j = std::regex_replace(j, std::regex("\"worker_threads\":[0-9]+"),
                         "\"worker_threads\":0");
  return j;
}

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

core::Report scan_once(machine::Machine& m, std::size_t workers,
                       obs::MetricsRegistry* registry) {
  core::ScanConfig cfg;
  cfg.parallelism = workers;
  cfg.metrics = registry;  // report tallies stay on in both arms; only
                           // the registry sink differs
  return core::ScanEngine(m, cfg).inside_scan();
}

struct ArmResult {
  double best_seconds = 1e9;
  std::string report_json;
};

/// Best-of-N wall time plus the (normalized) report of the last rep.
ArmResult run_arm(int reps, const std::function<core::Report()>& scan) {
  ArmResult out;
  for (int rep = 0; rep < reps; ++rep) {
    core::Report report;
    const double s = seconds_of([&] { report = scan(); });
    if (s < out.best_seconds) out.best_seconds = s;
    out.report_json = normalized(report);
  }
  return out;
}

void print_table(const std::string& json_path) {
  bench::heading("Telemetry overhead - inside scan, on vs off");
  std::printf("%-9s %-12s %-12s %-10s %-9s %s\n", "workers", "off (s)",
              "on (s)", "overhead", "<3%", "report");

  constexpr int kReps = 5;
  const std::string events_path =
      (std::filesystem::temp_directory_path() / "bench_obs.events").string();

  std::string rows;
  for (const std::size_t workers : {std::size_t{1}, std::size_t{8}}) {
    machine::Machine m(bench_machine());
    malware::install_ghostware<malware::HackerDefender>(m);

    // Telemetry off: no registry sink, tracer disabled.
    obs::default_tracer().disable();
    obs::default_tracer().clear();
    const ArmResult off = run_arm(kReps, [&] {
      return scan_once(m, workers, nullptr);
    });

    // Telemetry on: registry attached, tracer recording under a job
    // context, flight recorder appending the lifecycle steps a daemon
    // job would.
    std::filesystem::remove(events_path);
    obs::MetricsRegistry reg;
    obs::EventLog log;
    const bool attached = log.attach(events_path).ok();
    obs::default_tracer().enable();
    std::uint64_t job_id = 0;
    const ArmResult on = run_arm(kReps, [&] {
      ++job_id;
      const obs::TraceContextScope scope(obs::TraceContext::for_job(job_id));
      log.append(obs::EventType::kStart, job_id, "bench inside scan");
      core::Report report = scan_once(m, workers, &reg);
      log.append(obs::EventType::kComplete, job_id, "");
      obs::default_tracer().clear();
      return report;
    });
    obs::default_tracer().disable();
    std::filesystem::remove(events_path);

    const double overhead_pct =
        (on.best_seconds - off.best_seconds) / off.best_seconds * 100.0;
    const bool overhead_ok = overhead_pct < kOverheadLimitPct;
    const bool identical = off.report_json == on.report_json;

    std::printf("%-9zu %-12.4f %-12.4f %-+9.2f%% %-9s %s\n", workers,
                off.best_seconds, on.best_seconds, overhead_pct,
                bench::mark(overhead_ok),
                identical ? "byte-identical" : "MISMATCH");

    if (!rows.empty()) rows += ",";
    rows += "{\"workers\":" + std::to_string(workers) +
            ",\"off_seconds\":" + std::to_string(off.best_seconds) +
            ",\"on_seconds\":" + std::to_string(on.best_seconds) +
            ",\"overhead_pct\":" + std::to_string(overhead_pct) +
            ",\"overhead_ok\":" + (overhead_ok ? "true" : "false") +
            ",\"event_log_attached\":" + (attached ? "true" : "false") +
            ",\"byte_identical\":" + (identical ? "true" : "false") + "}";
  }
  std::printf(
      "\n(off = no registry, tracer disabled; on = registry + tracer +"
      "\n flight recorder. Best of %d reps each; reports compared after"
      "\n zeroing wall-clock fields only.)\n",
      kReps);

  if (!json_path.empty()) {
    const std::string payload =
        "{\"bench\":\"bench_obs\",\"rows\":[" + rows + "]}";
    if (bench::write_json_file(json_path, payload)) {
      std::printf("json results written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
  }
}

void BM_InsideScanTelemetryOff(benchmark::State& state) {
  machine::Machine m(bench_machine());
  malware::install_ghostware<malware::HackerDefender>(m);
  obs::default_tracer().disable();
  const auto workers = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto report = scan_once(m, workers, nullptr);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_InsideScanTelemetryOff)->Arg(1)->Arg(8);

void BM_InsideScanTelemetryOn(benchmark::State& state) {
  machine::Machine m(bench_machine());
  malware::install_ghostware<malware::HackerDefender>(m);
  obs::MetricsRegistry reg;
  obs::default_tracer().enable();
  const auto workers = static_cast<std::size_t>(state.range(0));
  std::uint64_t job_id = 0;
  for (auto _ : state) {
    const obs::TraceContextScope scope(obs::TraceContext::for_job(++job_id));
    auto report = scan_once(m, workers, &reg);
    benchmark::DoNotOptimize(report);
    obs::default_tracer().clear();
  }
  obs::default_tracer().disable();
}
BENCHMARK(BM_InsideScanTelemetryOn)->Arg(1)->Arg(8);

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = gb::bench::take_json_flag(argc, argv);
  print_table(json_path);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
