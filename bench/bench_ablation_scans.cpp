// Ablation B: scanner building blocks.
//
//   * raw MFT parse vs Win32 recursive enumeration throughput;
//   * raw hive parse vs API ASEP walk;
//   * hook-chain overhead: enumeration cost as rootkit detour chains
//     stack up (why interception is cheap enough that ghostware uses it);
//   * mechanism (hook) detector vs behaviour (cross-view) detector
//     coverage of the full malware collection.
#include <chrono>
#include <regex>
#include <thread>

#include "bench/bench_util.h"
#include "core/file_scans.h"
#include "core/hook_detector.h"
#include "core/registry_scans.h"
#include "core/scan_engine.h"
#include "malware/collection.h"
#include "malware/indexghost.h"
#include "obs/metrics.h"

namespace {

using namespace gb;

machine::MachineConfig sized(std::size_t files, std::size_t keys = 100) {
  machine::MachineConfig cfg;
  cfg.synthetic_files = files;
  cfg.synthetic_registry_keys = keys;
  return cfg;
}

void BM_HighLevelFileWalk(benchmark::State& state) {
  machine::Machine m(sized(static_cast<std::size_t>(state.range(0))));
  const auto ctx = m.context_for(
      m.ensure_process("C:\\windows\\system32\\ghostbuster.exe"));
  for (auto _ : state) {
    auto scan = core::high_level_file_scan(m, ctx);
    benchmark::DoNotOptimize(scan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HighLevelFileWalk)->Arg(200)->Arg(800)->Arg(3200);

void BM_RawMftParse(benchmark::State& state) {
  machine::Machine m(sized(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto scan = core::low_level_file_scan(m);
    benchmark::DoNotOptimize(scan);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RawMftParse)->Arg(200)->Arg(800)->Arg(3200);

void BM_HighLevelAsepWalk(benchmark::State& state) {
  machine::Machine m(sized(100, static_cast<std::size_t>(state.range(0))));
  const auto ctx = m.context_for(
      m.ensure_process("C:\\windows\\system32\\ghostbuster.exe"));
  for (auto _ : state) {
    auto scan = core::high_level_registry_scan(m, ctx);
    benchmark::DoNotOptimize(scan);
  }
}
BENCHMARK(BM_HighLevelAsepWalk)->Arg(200)->Arg(2000);

void BM_RawHiveParse(benchmark::State& state) {
  machine::Machine m(sized(100, static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto scan = core::low_level_registry_scan(m);
    benchmark::DoNotOptimize(scan);
  }
}
BENCHMARK(BM_RawHiveParse)->Arg(200)->Arg(2000);

void BM_EnumerationUnderHookChains(benchmark::State& state) {
  // Cost of one directory enumeration as detour chains stack up.
  machine::Machine m(sized(200));
  const auto pid = m.ensure_process("C:\\windows\\system32\\ghostbuster.exe");
  const auto ctx = m.context_for(pid);
  auto* env = m.win32().env(pid);
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    env->ntdll_query_directory_file.install(
        {"layer" + std::to_string(i), HookType::kDetour, "NtQueryDirectoryFile"},
        [](const auto& next, const winapi::Ctx& c, const std::string& d) {
          return next(c, d);  // pass-through detour
        });
  }
  for (auto _ : state) {
    bool ok = false;
    auto entries = env->find_files(ctx, "C:\\windows\\system32", &ok);
    benchmark::DoNotOptimize(entries);
  }
}
BENCHMARK(BM_EnumerationUnderHookChains)->Arg(0)->Arg(4)->Arg(16);

core::ScanConfig engine_config(std::size_t parallelism) {
  core::ScanConfig cfg;
  cfg.parallelism = parallelism;
  // Batches small enough that even the 4-worker engine keeps every
  // executor busy through the MFT parse.
  cfg.files.mft_batch_records = 256;
  return cfg;
}

void BM_InsideScanWorkers(benchmark::State& state) {
  machine::Machine m(sized(3200, 400));
  core::ScanEngine engine(
      m, engine_config(static_cast<std::size_t>(state.range(0))));
  for (auto _ : state) {
    auto report = engine.inside_scan();
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(state.iterations() * 3200);
}
BENCHMARK(BM_InsideScanWorkers)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

/// Findings with the wall-clock noise removed, for the byte-identical
/// comparison between the serial and parallel engines.
std::string normalized_findings(const core::Report& report) {
  std::string j = report.to_json();
  j = std::regex_replace(j, std::regex("\"wall_seconds\":[0-9eE+.\\-]+"),
                         "\"wall_seconds\":0");
  j = std::regex_replace(j, std::regex("\"worker_threads\":[0-9]+"),
                         "\"worker_threads\":0");
  return j;
}

/// Runs the executor sweep; appends one JSON row per executor count to
/// *rows when rows is non-null.
void print_parallel_table(obs::MetricsRegistry* registry,
                          std::string* rows) {
  bench::heading("Parallel engine - inside_scan wall time vs executors");
  std::printf("%-12s %-14s %-10s %s\n", "executors", "seconds", "speedup",
              "findings");

  std::string baseline_findings;
  double baseline_seconds = 0;
  for (const std::size_t p : {std::size_t{1}, std::size_t{2},
                              std::size_t{4}}) {
    // Best of three one-shot runs on identical machines.
    double best = 1e9;
    std::string findings;
    for (int rep = 0; rep < 3; ++rep) {
      machine::Machine m(sized(3200, 400));
      malware::install_ghostware<malware::HackerDefender>(m);
      core::ScanConfig cfg = engine_config(p);
      cfg.metrics = registry;
      core::ScanEngine engine(m, cfg);
      const auto t0 = std::chrono::steady_clock::now();
      const auto report = engine.inside_scan();
      const double s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      if (s < best) best = s;
      findings = normalized_findings(report);
    }
    if (p == 1) {
      baseline_findings = findings;
      baseline_seconds = best;
    }
    const bool identical = findings == baseline_findings;
    std::printf("%-12zu %-14.4f %-10.2f %s\n", p, best,
                baseline_seconds / best,
                identical ? "byte-identical" : "MISMATCH");
    if (rows != nullptr) {
      if (!rows->empty()) *rows += ",";
      *rows += "{\"executors\":" + std::to_string(p) +
               ",\"seconds\":" + std::to_string(best) +
               ",\"speedup\":" + std::to_string(baseline_seconds / best) +
               ",\"byte_identical\":" + (identical ? "true" : "false") + "}";
    }
  }
  std::printf(
      "\n(%u hardware core%s visible: wall speedup is bounded by physical "
      "cores;\n on a single-core host expect ~1.0x here while the "
      "BM_InsideScanWorkers\n CPU column shows the per-thread work split)\n",
      std::thread::hardware_concurrency(),
      std::thread::hardware_concurrency() == 1 ? "" : "s");
}

void print_table(const std::string& json_path) {
  obs::MetricsRegistry registry;
  std::string parallel_rows;
  print_parallel_table(json_path.empty() ? nullptr : &registry,
                       json_path.empty() ? nullptr : &parallel_rows);
  bench::heading(
      "Ablation B - mechanism detection vs behaviour detection coverage");
  std::printf("%-24s %-28s %-12s %-12s\n", "ghostware", "technique",
              "hook-detect", "cross-view");

  std::size_t hook_caught = 0, diff_caught = 0, total = 0;
  auto run_case = [&](const std::string& label, const std::string& owner,
                      machine::Machine& m, bool expect_hooks) {
    const auto hooks = core::suspicious_hooks(m, {});
    bool hooked = false;
    for (const auto& h : hooks) {
      if (h.info.owner == owner) hooked = true;
    }
    core::ScanConfig scan_cfg;
    scan_cfg.processes.scheduler_view = true;
    scan_cfg.parallelism = 1;
    const auto report = core::ScanEngine(m, scan_cfg).inside_scan();
    const bool diffed = report.infection_detected();
    ++total;
    hook_caught += hooked;
    diff_caught += diffed;
    std::printf("%-24s %-28s %-12s %-12s\n", label.c_str(),
                expect_hooks ? "API/SSDT/filter hooks" : "data-only hiding",
                hooked ? "flagged" : "silent", diffed ? "detected" : "missed");
  };

  for (const auto& entry : malware::file_hiding_collection()) {
    machine::Machine m(sized(60, 30));
    const auto g = entry.install(m);
    run_case(entry.display_name, g->name(), m, true);
  }
  {  // FU: DKOM — no hooks at all.
    machine::Machine m(sized(60, 30));
    auto fu = malware::install_ghostware<malware::FuRootkit>(m);
    const auto victim =
        m.spawn_process("C:\\windows\\system32\\notepad.exe").pid();
    fu->hide_process(m, victim);
    run_case("FU (DKOM)", "fu", m, false);
  }
  {  // IndexGhost: directory-index unlinking — also data-only.
    machine::Machine m(sized(60, 30));
    auto g = malware::install_ghostware<malware::IndexGhost>(m);
    run_case("IndexGhost (index unlink)", g->name(), m, false);
  }

  std::printf(
      "\ncoverage: hook detector %zu/%zu, cross-view diff %zu/%zu "
      "(the two data-only cases are why behaviour beats mechanism)\n",
      hook_caught, total, diff_caught, total);

  if (!json_path.empty()) {
    // Executor sweep rows plus the engines' metric registry (provider
    // scan counts, pool task latency histogram), machine-readable.
    std::string payload = "{\"bench\":\"bench_ablation_scans\"";
    payload += ",\"parallel\":[" + parallel_rows + "]";
    payload += ",\"coverage\":{\"hook_detector\":" +
               std::to_string(hook_caught) +
               ",\"cross_view\":" + std::to_string(diff_caught) +
               ",\"total\":" + std::to_string(total) + "}";
    payload += ",\"metrics\":" + registry.to_json() + "}";
    if (bench::write_json_file(json_path, payload)) {
      std::printf("json results written to %s\n", json_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::string json_path = gb::bench::take_json_flag(argc, argv);
  print_table(json_path);
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
