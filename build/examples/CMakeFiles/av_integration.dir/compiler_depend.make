# Empty compiler generated dependencies file for av_integration.
# This may be replaced when dependencies are built.
