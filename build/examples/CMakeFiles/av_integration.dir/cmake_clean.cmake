file(REMOVE_RECURSE
  "CMakeFiles/av_integration.dir/av_integration.cpp.o"
  "CMakeFiles/av_integration.dir/av_integration.cpp.o.d"
  "av_integration"
  "av_integration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/av_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
