# Empty dependencies file for ghostbuster_cli.
# This may be replaced when dependencies are built.
