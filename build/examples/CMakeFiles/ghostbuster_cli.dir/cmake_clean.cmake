file(REMOVE_RECURSE
  "CMakeFiles/ghostbuster_cli.dir/ghostbuster_cli.cpp.o"
  "CMakeFiles/ghostbuster_cli.dir/ghostbuster_cli.cpp.o.d"
  "ghostbuster_cli"
  "ghostbuster_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ghostbuster_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
