# Empty compiler generated dependencies file for forensics_workflow.
# This may be replaced when dependencies are built.
