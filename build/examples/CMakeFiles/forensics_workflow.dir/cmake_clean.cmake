file(REMOVE_RECURSE
  "CMakeFiles/forensics_workflow.dir/forensics_workflow.cpp.o"
  "CMakeFiles/forensics_workflow.dir/forensics_workflow.cpp.o.d"
  "forensics_workflow"
  "forensics_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forensics_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
