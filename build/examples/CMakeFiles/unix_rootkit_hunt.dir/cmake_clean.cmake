file(REMOVE_RECURSE
  "CMakeFiles/unix_rootkit_hunt.dir/unix_rootkit_hunt.cpp.o"
  "CMakeFiles/unix_rootkit_hunt.dir/unix_rootkit_hunt.cpp.o.d"
  "unix_rootkit_hunt"
  "unix_rootkit_hunt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unix_rootkit_hunt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
