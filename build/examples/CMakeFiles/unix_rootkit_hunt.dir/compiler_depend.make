# Empty compiler generated dependencies file for unix_rootkit_hunt.
# This may be replaced when dependencies are built.
