file(REMOVE_RECURSE
  "CMakeFiles/stealth_audit.dir/stealth_audit.cpp.o"
  "CMakeFiles/stealth_audit.dir/stealth_audit.cpp.o.d"
  "stealth_audit"
  "stealth_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stealth_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
