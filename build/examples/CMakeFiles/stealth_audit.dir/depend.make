# Empty dependencies file for stealth_audit.
# This may be replaced when dependencies are built.
