file(REMOVE_RECURSE
  "CMakeFiles/enterprise_sweep.dir/enterprise_sweep.cpp.o"
  "CMakeFiles/enterprise_sweep.dir/enterprise_sweep.cpp.o.d"
  "enterprise_sweep"
  "enterprise_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
