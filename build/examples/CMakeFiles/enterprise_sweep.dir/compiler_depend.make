# Empty compiler generated dependencies file for enterprise_sweep.
# This may be replaced when dependencies are built.
