# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_forensics_workflow "/root/repo/build/examples/forensics_workflow")
set_tests_properties(example_forensics_workflow PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_enterprise_sweep "/root/repo/build/examples/enterprise_sweep")
set_tests_properties(example_enterprise_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_av_integration "/root/repo/build/examples/av_integration")
set_tests_properties(example_av_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_unix_rootkit_hunt "/root/repo/build/examples/unix_rootkit_hunt")
set_tests_properties(example_unix_rootkit_hunt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_stealth_audit "/root/repo/build/examples/stealth_audit")
set_tests_properties(example_stealth_audit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_inside "/root/repo/build/examples/ghostbuster_cli" "--infect" "hackerdefender,fu" "--advanced")
set_tests_properties(example_cli_inside PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_ads "/root/repo/build/examples/ghostbuster_cli" "--infect" "adsstasher" "--ads")
set_tests_properties(example_cli_ads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_remove "/root/repo/build/examples/ghostbuster_cli" "--infect" "probotse" "--remove")
set_tests_properties(example_cli_remove PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
