file(REMOVE_RECURSE
  "CMakeFiles/test_detect_processes.dir/test_detect_processes.cpp.o"
  "CMakeFiles/test_detect_processes.dir/test_detect_processes.cpp.o.d"
  "test_detect_processes"
  "test_detect_processes.pdb"
  "test_detect_processes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
