# Empty dependencies file for test_detect_processes.
# This may be replaced when dependencies are built.
