# Empty compiler generated dependencies file for test_detect_registry.
# This may be replaced when dependencies are built.
