file(REMOVE_RECURSE
  "CMakeFiles/test_detect_registry.dir/test_detect_registry.cpp.o"
  "CMakeFiles/test_detect_registry.dir/test_detect_registry.cpp.o.d"
  "test_detect_registry"
  "test_detect_registry.pdb"
  "test_detect_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
