# Empty dependencies file for test_ntfs_volume.
# This may be replaced when dependencies are built.
