file(REMOVE_RECURSE
  "CMakeFiles/test_ntfs_volume.dir/test_ntfs_volume.cpp.o"
  "CMakeFiles/test_ntfs_volume.dir/test_ntfs_volume.cpp.o.d"
  "test_ntfs_volume"
  "test_ntfs_volume.pdb"
  "test_ntfs_volume[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ntfs_volume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
