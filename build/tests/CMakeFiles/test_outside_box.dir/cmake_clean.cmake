file(REMOVE_RECURSE
  "CMakeFiles/test_outside_box.dir/test_outside_box.cpp.o"
  "CMakeFiles/test_outside_box.dir/test_outside_box.cpp.o.d"
  "test_outside_box"
  "test_outside_box.pdb"
  "test_outside_box[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outside_box.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
