# Empty compiler generated dependencies file for test_outside_box.
# This may be replaced when dependencies are built.
