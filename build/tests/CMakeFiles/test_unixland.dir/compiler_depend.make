# Empty compiler generated dependencies file for test_unixland.
# This may be replaced when dependencies are built.
