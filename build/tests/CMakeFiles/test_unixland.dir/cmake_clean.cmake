file(REMOVE_RECURSE
  "CMakeFiles/test_unixland.dir/test_unixland.cpp.o"
  "CMakeFiles/test_unixland.dir/test_unixland.cpp.o.d"
  "test_unixland"
  "test_unixland.pdb"
  "test_unixland[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unixland.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
