file(REMOVE_RECURSE
  "CMakeFiles/test_unix_checkers.dir/test_unix_checkers.cpp.o"
  "CMakeFiles/test_unix_checkers.dir/test_unix_checkers.cpp.o.d"
  "test_unix_checkers"
  "test_unix_checkers.pdb"
  "test_unix_checkers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_unix_checkers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
