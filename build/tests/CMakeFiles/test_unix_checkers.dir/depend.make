# Empty dependencies file for test_unix_checkers.
# This may be replaced when dependencies are built.
