# Empty dependencies file for test_outside_modules.
# This may be replaced when dependencies are built.
