file(REMOVE_RECURSE
  "CMakeFiles/test_outside_modules.dir/test_outside_modules.cpp.o"
  "CMakeFiles/test_outside_modules.dir/test_outside_modules.cpp.o.d"
  "test_outside_modules"
  "test_outside_modules.pdb"
  "test_outside_modules[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_outside_modules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
