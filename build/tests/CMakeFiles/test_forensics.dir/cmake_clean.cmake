file(REMOVE_RECURSE
  "CMakeFiles/test_forensics.dir/test_forensics.cpp.o"
  "CMakeFiles/test_forensics.dir/test_forensics.cpp.o.d"
  "test_forensics"
  "test_forensics.pdb"
  "test_forensics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
