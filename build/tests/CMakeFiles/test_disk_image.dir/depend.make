# Empty dependencies file for test_disk_image.
# This may be replaced when dependencies are built.
