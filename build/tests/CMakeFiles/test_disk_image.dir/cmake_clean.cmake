file(REMOVE_RECURSE
  "CMakeFiles/test_disk_image.dir/test_disk_image.cpp.o"
  "CMakeFiles/test_disk_image.dir/test_disk_image.cpp.o.d"
  "test_disk_image"
  "test_disk_image.pdb"
  "test_disk_image[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_disk_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
