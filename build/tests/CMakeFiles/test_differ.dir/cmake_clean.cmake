file(REMOVE_RECURSE
  "CMakeFiles/test_differ.dir/test_differ.cpp.o"
  "CMakeFiles/test_differ.dir/test_differ.cpp.o.d"
  "test_differ"
  "test_differ.pdb"
  "test_differ[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_differ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
