# Empty compiler generated dependencies file for test_differ.
# This may be replaced when dependencies are built.
