file(REMOVE_RECURSE
  "CMakeFiles/test_hookable.dir/test_hookable.cpp.o"
  "CMakeFiles/test_hookable.dir/test_hookable.cpp.o.d"
  "test_hookable"
  "test_hookable.pdb"
  "test_hookable[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hookable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
