# Empty compiler generated dependencies file for test_hookable.
# This may be replaced when dependencies are built.
