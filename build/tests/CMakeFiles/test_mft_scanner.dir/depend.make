# Empty dependencies file for test_mft_scanner.
# This may be replaced when dependencies are built.
