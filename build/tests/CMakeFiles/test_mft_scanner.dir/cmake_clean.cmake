file(REMOVE_RECURSE
  "CMakeFiles/test_mft_scanner.dir/test_mft_scanner.cpp.o"
  "CMakeFiles/test_mft_scanner.dir/test_mft_scanner.cpp.o.d"
  "test_mft_scanner"
  "test_mft_scanner.pdb"
  "test_mft_scanner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mft_scanner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
