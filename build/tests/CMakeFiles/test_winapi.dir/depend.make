# Empty dependencies file for test_winapi.
# This may be replaced when dependencies are built.
