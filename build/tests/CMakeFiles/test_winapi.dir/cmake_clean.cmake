file(REMOVE_RECURSE
  "CMakeFiles/test_winapi.dir/test_winapi.cpp.o"
  "CMakeFiles/test_winapi.dir/test_winapi.cpp.o.d"
  "test_winapi"
  "test_winapi.pdb"
  "test_winapi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_winapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
