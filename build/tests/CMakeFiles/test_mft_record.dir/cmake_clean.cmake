file(REMOVE_RECURSE
  "CMakeFiles/test_mft_record.dir/test_mft_record.cpp.o"
  "CMakeFiles/test_mft_record.dir/test_mft_record.cpp.o.d"
  "test_mft_record"
  "test_mft_record.pdb"
  "test_mft_record[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mft_record.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
