# Empty compiler generated dependencies file for test_mft_record.
# This may be replaced when dependencies are built.
