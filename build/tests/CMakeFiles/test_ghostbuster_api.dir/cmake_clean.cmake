file(REMOVE_RECURSE
  "CMakeFiles/test_ghostbuster_api.dir/test_ghostbuster_api.cpp.o"
  "CMakeFiles/test_ghostbuster_api.dir/test_ghostbuster_api.cpp.o.d"
  "test_ghostbuster_api"
  "test_ghostbuster_api.pdb"
  "test_ghostbuster_api[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ghostbuster_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
