# Empty dependencies file for test_ghostbuster_api.
# This may be replaced when dependencies are built.
