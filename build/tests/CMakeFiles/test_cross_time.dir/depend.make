# Empty dependencies file for test_cross_time.
# This may be replaced when dependencies are built.
