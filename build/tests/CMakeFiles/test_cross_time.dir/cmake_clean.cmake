file(REMOVE_RECURSE
  "CMakeFiles/test_cross_time.dir/test_cross_time.cpp.o"
  "CMakeFiles/test_cross_time.dir/test_cross_time.cpp.o.d"
  "test_cross_time"
  "test_cross_time.pdb"
  "test_cross_time[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cross_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
