# Empty dependencies file for test_dir_index.
# This may be replaced when dependencies are built.
