file(REMOVE_RECURSE
  "CMakeFiles/test_dir_index.dir/test_dir_index.cpp.o"
  "CMakeFiles/test_dir_index.dir/test_dir_index.cpp.o.d"
  "test_dir_index"
  "test_dir_index.pdb"
  "test_dir_index[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dir_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
