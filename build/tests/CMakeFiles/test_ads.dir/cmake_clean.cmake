file(REMOVE_RECURSE
  "CMakeFiles/test_ads.dir/test_ads.cpp.o"
  "CMakeFiles/test_ads.dir/test_ads.cpp.o.d"
  "test_ads"
  "test_ads.pdb"
  "test_ads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
