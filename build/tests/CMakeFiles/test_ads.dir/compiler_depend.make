# Empty compiler generated dependencies file for test_ads.
# This may be replaced when dependencies are built.
