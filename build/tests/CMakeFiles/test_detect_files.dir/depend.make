# Empty dependencies file for test_detect_files.
# This may be replaced when dependencies are built.
