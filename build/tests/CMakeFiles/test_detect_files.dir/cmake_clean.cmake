file(REMOVE_RECURSE
  "CMakeFiles/test_detect_files.dir/test_detect_files.cpp.o"
  "CMakeFiles/test_detect_files.dir/test_detect_files.cpp.o.d"
  "test_detect_files"
  "test_detect_files.pdb"
  "test_detect_files[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
