# Empty dependencies file for test_runlist.
# This may be replaced when dependencies are built.
