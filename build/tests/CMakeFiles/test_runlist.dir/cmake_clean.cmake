file(REMOVE_RECURSE
  "CMakeFiles/test_runlist.dir/test_runlist.cpp.o"
  "CMakeFiles/test_runlist.dir/test_runlist.cpp.o.d"
  "test_runlist"
  "test_runlist.pdb"
  "test_runlist[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
