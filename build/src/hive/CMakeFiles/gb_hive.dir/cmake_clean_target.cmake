file(REMOVE_RECURSE
  "libgb_hive.a"
)
