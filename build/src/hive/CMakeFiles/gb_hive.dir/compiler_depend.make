# Empty compiler generated dependencies file for gb_hive.
# This may be replaced when dependencies are built.
