file(REMOVE_RECURSE
  "CMakeFiles/gb_hive.dir/hive.cpp.o"
  "CMakeFiles/gb_hive.dir/hive.cpp.o.d"
  "libgb_hive.a"
  "libgb_hive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_hive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
