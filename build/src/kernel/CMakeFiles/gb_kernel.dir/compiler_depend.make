# Empty compiler generated dependencies file for gb_kernel.
# This may be replaced when dependencies are built.
