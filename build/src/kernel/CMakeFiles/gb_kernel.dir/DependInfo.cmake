
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/dump.cpp" "src/kernel/CMakeFiles/gb_kernel.dir/dump.cpp.o" "gcc" "src/kernel/CMakeFiles/gb_kernel.dir/dump.cpp.o.d"
  "/root/repo/src/kernel/filter_chain.cpp" "src/kernel/CMakeFiles/gb_kernel.dir/filter_chain.cpp.o" "gcc" "src/kernel/CMakeFiles/gb_kernel.dir/filter_chain.cpp.o.d"
  "/root/repo/src/kernel/kernel.cpp" "src/kernel/CMakeFiles/gb_kernel.dir/kernel.cpp.o" "gcc" "src/kernel/CMakeFiles/gb_kernel.dir/kernel.cpp.o.d"
  "/root/repo/src/kernel/process.cpp" "src/kernel/CMakeFiles/gb_kernel.dir/process.cpp.o" "gcc" "src/kernel/CMakeFiles/gb_kernel.dir/process.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/hive/CMakeFiles/gb_hive.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
