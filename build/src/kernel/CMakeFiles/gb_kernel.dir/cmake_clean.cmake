file(REMOVE_RECURSE
  "CMakeFiles/gb_kernel.dir/dump.cpp.o"
  "CMakeFiles/gb_kernel.dir/dump.cpp.o.d"
  "CMakeFiles/gb_kernel.dir/filter_chain.cpp.o"
  "CMakeFiles/gb_kernel.dir/filter_chain.cpp.o.d"
  "CMakeFiles/gb_kernel.dir/kernel.cpp.o"
  "CMakeFiles/gb_kernel.dir/kernel.cpp.o.d"
  "CMakeFiles/gb_kernel.dir/process.cpp.o"
  "CMakeFiles/gb_kernel.dir/process.cpp.o.d"
  "libgb_kernel.a"
  "libgb_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
