file(REMOVE_RECURSE
  "libgb_kernel.a"
)
