file(REMOVE_RECURSE
  "CMakeFiles/gb_registry.dir/aseps.cpp.o"
  "CMakeFiles/gb_registry.dir/aseps.cpp.o.d"
  "CMakeFiles/gb_registry.dir/registry.cpp.o"
  "CMakeFiles/gb_registry.dir/registry.cpp.o.d"
  "libgb_registry.a"
  "libgb_registry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
