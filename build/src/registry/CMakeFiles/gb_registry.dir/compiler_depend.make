# Empty compiler generated dependencies file for gb_registry.
# This may be replaced when dependencies are built.
