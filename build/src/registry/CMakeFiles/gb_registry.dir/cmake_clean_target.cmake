file(REMOVE_RECURSE
  "libgb_registry.a"
)
