
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ntfs/dir_index.cpp" "src/ntfs/CMakeFiles/gb_ntfs.dir/dir_index.cpp.o" "gcc" "src/ntfs/CMakeFiles/gb_ntfs.dir/dir_index.cpp.o.d"
  "/root/repo/src/ntfs/mft_record.cpp" "src/ntfs/CMakeFiles/gb_ntfs.dir/mft_record.cpp.o" "gcc" "src/ntfs/CMakeFiles/gb_ntfs.dir/mft_record.cpp.o.d"
  "/root/repo/src/ntfs/mft_scanner.cpp" "src/ntfs/CMakeFiles/gb_ntfs.dir/mft_scanner.cpp.o" "gcc" "src/ntfs/CMakeFiles/gb_ntfs.dir/mft_scanner.cpp.o.d"
  "/root/repo/src/ntfs/runlist.cpp" "src/ntfs/CMakeFiles/gb_ntfs.dir/runlist.cpp.o" "gcc" "src/ntfs/CMakeFiles/gb_ntfs.dir/runlist.cpp.o.d"
  "/root/repo/src/ntfs/volume.cpp" "src/ntfs/CMakeFiles/gb_ntfs.dir/volume.cpp.o" "gcc" "src/ntfs/CMakeFiles/gb_ntfs.dir/volume.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gb_support.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/gb_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
