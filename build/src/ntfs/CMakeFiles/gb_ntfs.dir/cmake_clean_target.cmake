file(REMOVE_RECURSE
  "libgb_ntfs.a"
)
