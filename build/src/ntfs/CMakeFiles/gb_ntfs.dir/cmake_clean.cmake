file(REMOVE_RECURSE
  "CMakeFiles/gb_ntfs.dir/dir_index.cpp.o"
  "CMakeFiles/gb_ntfs.dir/dir_index.cpp.o.d"
  "CMakeFiles/gb_ntfs.dir/mft_record.cpp.o"
  "CMakeFiles/gb_ntfs.dir/mft_record.cpp.o.d"
  "CMakeFiles/gb_ntfs.dir/mft_scanner.cpp.o"
  "CMakeFiles/gb_ntfs.dir/mft_scanner.cpp.o.d"
  "CMakeFiles/gb_ntfs.dir/runlist.cpp.o"
  "CMakeFiles/gb_ntfs.dir/runlist.cpp.o.d"
  "CMakeFiles/gb_ntfs.dir/volume.cpp.o"
  "CMakeFiles/gb_ntfs.dir/volume.cpp.o.d"
  "libgb_ntfs.a"
  "libgb_ntfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_ntfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
