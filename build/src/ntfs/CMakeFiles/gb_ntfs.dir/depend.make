# Empty dependencies file for gb_ntfs.
# This may be replaced when dependencies are built.
