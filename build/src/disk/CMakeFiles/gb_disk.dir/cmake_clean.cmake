file(REMOVE_RECURSE
  "CMakeFiles/gb_disk.dir/disk.cpp.o"
  "CMakeFiles/gb_disk.dir/disk.cpp.o.d"
  "libgb_disk.a"
  "libgb_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
