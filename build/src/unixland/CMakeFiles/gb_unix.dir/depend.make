# Empty dependencies file for gb_unix.
# This may be replaced when dependencies are built.
