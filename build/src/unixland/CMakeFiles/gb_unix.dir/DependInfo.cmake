
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/unixland/checkers.cpp" "src/unixland/CMakeFiles/gb_unix.dir/checkers.cpp.o" "gcc" "src/unixland/CMakeFiles/gb_unix.dir/checkers.cpp.o.d"
  "/root/repo/src/unixland/rootkits.cpp" "src/unixland/CMakeFiles/gb_unix.dir/rootkits.cpp.o" "gcc" "src/unixland/CMakeFiles/gb_unix.dir/rootkits.cpp.o.d"
  "/root/repo/src/unixland/unix_machine.cpp" "src/unixland/CMakeFiles/gb_unix.dir/unix_machine.cpp.o" "gcc" "src/unixland/CMakeFiles/gb_unix.dir/unix_machine.cpp.o.d"
  "/root/repo/src/unixland/unixfs.cpp" "src/unixland/CMakeFiles/gb_unix.dir/unixfs.cpp.o" "gcc" "src/unixland/CMakeFiles/gb_unix.dir/unixfs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/gb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
