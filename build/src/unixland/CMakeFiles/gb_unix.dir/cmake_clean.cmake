file(REMOVE_RECURSE
  "CMakeFiles/gb_unix.dir/checkers.cpp.o"
  "CMakeFiles/gb_unix.dir/checkers.cpp.o.d"
  "CMakeFiles/gb_unix.dir/rootkits.cpp.o"
  "CMakeFiles/gb_unix.dir/rootkits.cpp.o.d"
  "CMakeFiles/gb_unix.dir/unix_machine.cpp.o"
  "CMakeFiles/gb_unix.dir/unix_machine.cpp.o.d"
  "CMakeFiles/gb_unix.dir/unixfs.cpp.o"
  "CMakeFiles/gb_unix.dir/unixfs.cpp.o.d"
  "libgb_unix.a"
  "libgb_unix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_unix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
