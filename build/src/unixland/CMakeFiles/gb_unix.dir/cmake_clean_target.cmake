file(REMOVE_RECURSE
  "libgb_unix.a"
)
