# Empty dependencies file for gb_support.
# This may be replaced when dependencies are built.
