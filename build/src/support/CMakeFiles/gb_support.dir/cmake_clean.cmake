file(REMOVE_RECURSE
  "CMakeFiles/gb_support.dir/bytes.cpp.o"
  "CMakeFiles/gb_support.dir/bytes.cpp.o.d"
  "CMakeFiles/gb_support.dir/rng.cpp.o"
  "CMakeFiles/gb_support.dir/rng.cpp.o.d"
  "CMakeFiles/gb_support.dir/strings.cpp.o"
  "CMakeFiles/gb_support.dir/strings.cpp.o.d"
  "libgb_support.a"
  "libgb_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
