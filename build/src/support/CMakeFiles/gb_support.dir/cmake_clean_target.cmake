file(REMOVE_RECURSE
  "libgb_support.a"
)
