file(REMOVE_RECURSE
  "CMakeFiles/gb_machine.dir/machine.cpp.o"
  "CMakeFiles/gb_machine.dir/machine.cpp.o.d"
  "CMakeFiles/gb_machine.dir/profile.cpp.o"
  "CMakeFiles/gb_machine.dir/profile.cpp.o.d"
  "CMakeFiles/gb_machine.dir/services.cpp.o"
  "CMakeFiles/gb_machine.dir/services.cpp.o.d"
  "libgb_machine.a"
  "libgb_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
