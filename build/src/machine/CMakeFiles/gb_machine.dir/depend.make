# Empty dependencies file for gb_machine.
# This may be replaced when dependencies are built.
