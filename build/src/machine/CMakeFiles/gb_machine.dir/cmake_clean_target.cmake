file(REMOVE_RECURSE
  "libgb_machine.a"
)
