file(REMOVE_RECURSE
  "CMakeFiles/gb_core.dir/ads_scan.cpp.o"
  "CMakeFiles/gb_core.dir/ads_scan.cpp.o.d"
  "CMakeFiles/gb_core.dir/anomaly.cpp.o"
  "CMakeFiles/gb_core.dir/anomaly.cpp.o.d"
  "CMakeFiles/gb_core.dir/attribution.cpp.o"
  "CMakeFiles/gb_core.dir/attribution.cpp.o.d"
  "CMakeFiles/gb_core.dir/cross_time.cpp.o"
  "CMakeFiles/gb_core.dir/cross_time.cpp.o.d"
  "CMakeFiles/gb_core.dir/differ.cpp.o"
  "CMakeFiles/gb_core.dir/differ.cpp.o.d"
  "CMakeFiles/gb_core.dir/file_scans.cpp.o"
  "CMakeFiles/gb_core.dir/file_scans.cpp.o.d"
  "CMakeFiles/gb_core.dir/ghostbuster.cpp.o"
  "CMakeFiles/gb_core.dir/ghostbuster.cpp.o.d"
  "CMakeFiles/gb_core.dir/hook_detector.cpp.o"
  "CMakeFiles/gb_core.dir/hook_detector.cpp.o.d"
  "CMakeFiles/gb_core.dir/process_scans.cpp.o"
  "CMakeFiles/gb_core.dir/process_scans.cpp.o.d"
  "CMakeFiles/gb_core.dir/registry_scans.cpp.o"
  "CMakeFiles/gb_core.dir/registry_scans.cpp.o.d"
  "CMakeFiles/gb_core.dir/removal.cpp.o"
  "CMakeFiles/gb_core.dir/removal.cpp.o.d"
  "CMakeFiles/gb_core.dir/scan_result.cpp.o"
  "CMakeFiles/gb_core.dir/scan_result.cpp.o.d"
  "libgb_core.a"
  "libgb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
