
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ads_scan.cpp" "src/core/CMakeFiles/gb_core.dir/ads_scan.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/ads_scan.cpp.o.d"
  "/root/repo/src/core/anomaly.cpp" "src/core/CMakeFiles/gb_core.dir/anomaly.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/anomaly.cpp.o.d"
  "/root/repo/src/core/attribution.cpp" "src/core/CMakeFiles/gb_core.dir/attribution.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/attribution.cpp.o.d"
  "/root/repo/src/core/cross_time.cpp" "src/core/CMakeFiles/gb_core.dir/cross_time.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/cross_time.cpp.o.d"
  "/root/repo/src/core/differ.cpp" "src/core/CMakeFiles/gb_core.dir/differ.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/differ.cpp.o.d"
  "/root/repo/src/core/file_scans.cpp" "src/core/CMakeFiles/gb_core.dir/file_scans.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/file_scans.cpp.o.d"
  "/root/repo/src/core/ghostbuster.cpp" "src/core/CMakeFiles/gb_core.dir/ghostbuster.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/ghostbuster.cpp.o.d"
  "/root/repo/src/core/hook_detector.cpp" "src/core/CMakeFiles/gb_core.dir/hook_detector.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/hook_detector.cpp.o.d"
  "/root/repo/src/core/process_scans.cpp" "src/core/CMakeFiles/gb_core.dir/process_scans.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/process_scans.cpp.o.d"
  "/root/repo/src/core/registry_scans.cpp" "src/core/CMakeFiles/gb_core.dir/registry_scans.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/registry_scans.cpp.o.d"
  "/root/repo/src/core/removal.cpp" "src/core/CMakeFiles/gb_core.dir/removal.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/removal.cpp.o.d"
  "/root/repo/src/core/scan_result.cpp" "src/core/CMakeFiles/gb_core.dir/scan_result.cpp.o" "gcc" "src/core/CMakeFiles/gb_core.dir/scan_result.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/machine/CMakeFiles/gb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/winapi/CMakeFiles/gb_winapi.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/gb_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/gb_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/hive/CMakeFiles/gb_hive.dir/DependInfo.cmake"
  "/root/repo/build/src/ntfs/CMakeFiles/gb_ntfs.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/gb_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
