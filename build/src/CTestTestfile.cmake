# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("disk")
subdirs("ntfs")
subdirs("hive")
subdirs("registry")
subdirs("kernel")
subdirs("winapi")
subdirs("machine")
subdirs("malware")
subdirs("core")
subdirs("unixland")
