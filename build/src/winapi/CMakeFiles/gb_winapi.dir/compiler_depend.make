# Empty compiler generated dependencies file for gb_winapi.
# This may be replaced when dependencies are built.
