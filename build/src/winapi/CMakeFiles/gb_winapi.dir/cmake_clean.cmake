file(REMOVE_RECURSE
  "CMakeFiles/gb_winapi.dir/api_env.cpp.o"
  "CMakeFiles/gb_winapi.dir/api_env.cpp.o.d"
  "CMakeFiles/gb_winapi.dir/subsystem.cpp.o"
  "CMakeFiles/gb_winapi.dir/subsystem.cpp.o.d"
  "CMakeFiles/gb_winapi.dir/win32_names.cpp.o"
  "CMakeFiles/gb_winapi.dir/win32_names.cpp.o.d"
  "libgb_winapi.a"
  "libgb_winapi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gb_winapi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
