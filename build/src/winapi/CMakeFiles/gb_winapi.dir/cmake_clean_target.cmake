file(REMOVE_RECURSE
  "libgb_winapi.a"
)
