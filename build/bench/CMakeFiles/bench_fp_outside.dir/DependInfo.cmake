
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fp_outside.cpp" "bench/CMakeFiles/bench_fp_outside.dir/bench_fp_outside.cpp.o" "gcc" "bench/CMakeFiles/bench_fp_outside.dir/bench_fp_outside.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/malware/CMakeFiles/gb_malware.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/gb_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/winapi/CMakeFiles/gb_winapi.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/gb_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/registry/CMakeFiles/gb_registry.dir/DependInfo.cmake"
  "/root/repo/build/src/hive/CMakeFiles/gb_hive.dir/DependInfo.cmake"
  "/root/repo/build/src/ntfs/CMakeFiles/gb_ntfs.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/gb_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/gb_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
