file(REMOVE_RECURSE
  "CMakeFiles/bench_fp_outside.dir/bench_fp_outside.cpp.o"
  "CMakeFiles/bench_fp_outside.dir/bench_fp_outside.cpp.o.d"
  "bench_fp_outside"
  "bench_fp_outside.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fp_outside.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
