# Empty compiler generated dependencies file for bench_fp_outside.
# This may be replaced when dependencies are built.
