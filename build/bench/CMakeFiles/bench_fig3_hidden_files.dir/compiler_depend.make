# Empty compiler generated dependencies file for bench_fig3_hidden_files.
# This may be replaced when dependencies are built.
