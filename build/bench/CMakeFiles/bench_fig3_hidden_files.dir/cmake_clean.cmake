file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_hidden_files.dir/bench_fig3_hidden_files.cpp.o"
  "CMakeFiles/bench_fig3_hidden_files.dir/bench_fig3_hidden_files.cpp.o.d"
  "bench_fig3_hidden_files"
  "bench_fig3_hidden_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_hidden_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
