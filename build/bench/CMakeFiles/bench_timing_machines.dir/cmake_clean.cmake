file(REMOVE_RECURSE
  "CMakeFiles/bench_timing_machines.dir/bench_timing_machines.cpp.o"
  "CMakeFiles/bench_timing_machines.dir/bench_timing_machines.cpp.o.d"
  "bench_timing_machines"
  "bench_timing_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_timing_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
