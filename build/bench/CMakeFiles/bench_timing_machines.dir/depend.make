# Empty dependencies file for bench_timing_machines.
# This may be replaced when dependencies are built.
