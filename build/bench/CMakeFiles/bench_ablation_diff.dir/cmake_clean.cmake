file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_diff.dir/bench_ablation_diff.cpp.o"
  "CMakeFiles/bench_ablation_diff.dir/bench_ablation_diff.cpp.o.d"
  "bench_ablation_diff"
  "bench_ablation_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
