file(REMOVE_RECURSE
  "CMakeFiles/bench_linux_rootkits.dir/bench_linux_rootkits.cpp.o"
  "CMakeFiles/bench_linux_rootkits.dir/bench_linux_rootkits.cpp.o.d"
  "bench_linux_rootkits"
  "bench_linux_rootkits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_linux_rootkits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
