# Empty compiler generated dependencies file for bench_linux_rootkits.
# This may be replaced when dependencies are built.
