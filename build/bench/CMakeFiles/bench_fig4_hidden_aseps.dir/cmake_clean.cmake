file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_hidden_aseps.dir/bench_fig4_hidden_aseps.cpp.o"
  "CMakeFiles/bench_fig4_hidden_aseps.dir/bench_fig4_hidden_aseps.cpp.o.d"
  "bench_fig4_hidden_aseps"
  "bench_fig4_hidden_aseps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_hidden_aseps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
