# Empty dependencies file for bench_fig4_hidden_aseps.
# This may be replaced when dependencies are built.
