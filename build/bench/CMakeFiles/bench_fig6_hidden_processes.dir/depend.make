# Empty dependencies file for bench_fig6_hidden_processes.
# This may be replaced when dependencies are built.
