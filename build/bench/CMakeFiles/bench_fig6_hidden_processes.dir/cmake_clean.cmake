file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_hidden_processes.dir/bench_fig6_hidden_processes.cpp.o"
  "CMakeFiles/bench_fig6_hidden_processes.dir/bench_fig6_hidden_processes.cpp.o.d"
  "bench_fig6_hidden_processes"
  "bench_fig6_hidden_processes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_hidden_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
