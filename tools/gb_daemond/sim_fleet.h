// Deterministic simulated fleet shared by gb_daemond and the CLI's
// fleet-facing subcommands.
//
// The daemon resolves machines by id, and a journal outlives any one
// process — so every process that touches one journal must agree on
// what "DESKTOP-104" is. This helper makes the catalog a pure function
// of (size, seed): machine i is DESKTOP-<100+i>, tenant corp/branch/lab
// round-robin, every third desktop carrying an infection from the
// file-hiding collection. `gb submit` in one process and `gb serve` in
// a later one rebuild byte-identical machines from the same flags.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "malware/collection.h"

namespace gb::fleet_sim {

struct SimBox {
  std::string id;
  std::string tenant;
  std::string infection = "-";  // ground truth, "-" when clean
  std::unique_ptr<machine::Machine> machine;
};

struct SimFleet {
  std::vector<SimBox> boxes;

  machine::Machine* resolve(const std::string& id) {
    for (SimBox& box : boxes) {
      if (box.id == id) return box.machine.get();
    }
    return nullptr;
  }

  /// Resolver closure for DaemonOptions / InProcessClient::Options.
  /// The fleet must outlive whatever holds it.
  std::function<machine::Machine*(const std::string&)> resolver() {
    return [this](const std::string& id) { return resolve(id); };
  }
};

inline SimFleet build_sim_fleet(std::size_t size, std::uint64_t seed) {
  const auto catalogue = malware::file_hiding_collection();
  const char* tenant_of[] = {"corp", "branch", "lab"};
  SimFleet fleet;
  for (std::size_t i = 0; i < size; ++i) {
    SimBox box;
    box.id = "DESKTOP-" + std::to_string(100 + i);
    box.tenant = tenant_of[i % 3];
    machine::MachineConfig mc;
    mc.seed = seed + i;
    mc.disk_sectors = 64 * 1024;  // 32 MiB each, so big fleets fit
    mc.mft_records = 4096;
    mc.synthetic_files = 60;
    mc.synthetic_registry_keys = 30;
    box.machine = std::make_unique<machine::Machine>(mc);
    if (i % 3 == 2) {  // every third desktop carries an infection
      const auto& entry = catalogue[i % catalogue.size()];
      entry.install(*box.machine);
      box.infection = entry.display_name;
    }
    fleet.boxes.push_back(std::move(box));
  }
  return fleet;
}

}  // namespace gb::fleet_sim
