// gb_daemond — the fleet-serving daemon, end to end in one process.
//
// Builds a deterministic simulated fleet (see sim_fleet.h), starts the
// crash-safe gb::daemon::Daemon over it, and drives the full client
// path: every request travels the length-prefixed wire protocol over an
// in-process pipe pair into DaemonClient, exactly as a remote console
// would speak to a real daemon socket.
//
//   gb_daemond --journal FILE [--fleet N] [--seed N] [--shards N]
//              [--workers N] [--mode inside|injected|outside]
//              [--advanced] [--kill-after N] [--json] [--metrics]
//              [--fresh]
//   gb_daemond --journal FILE --flight-recorder [--last N]
//
//   --journal FILE   job journal path (required; reused across runs —
//                    an existing journal is replayed, that IS restart)
//   --fleet N        desktops to scan, one job each (default 6)
//   --shards N       scheduler shards, machine-id hash partitioned
//   --workers N      workers per shard (default 2)
//   --kill-after N   crash drill: SIGKILL-equivalent after N results,
//                    then restart on the same journal and finish the
//                    rest from the replay image
//   --json           machine-readable daemon stats on stdout
//   --metrics        Prometheus exposition after the run
//   --fresh          delete the journal first (repeatable demo runs)
//   --flight-recorder  don't serve: dump the flight-recorder event file
//                    (journal + ".events") of a previous — possibly
//                    crashed — incarnation and exit. A torn tail marks
//                    the crash point; everything before it replays.
//   --last N         with --flight-recorder, only the last N events
//
// Exit code: 0 when every job produced a report and detection matched
// ground truth, 1 otherwise, 2 on usage error.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "daemon/client.h"
#include "daemon/daemon.h"
#include "daemon/transport.h"
#include "gb_daemond/sim_fleet.h"
#include "obs/event_log.h"

namespace {

using namespace gb;

struct RunFlags {
  std::string journal;
  std::size_t fleet = 6;
  std::uint64_t seed = 1;
  std::size_t shards = 2;
  std::size_t workers = 2;
  core::ScanKind kind = core::ScanKind::kInside;
  bool advanced = false;
  std::size_t kill_after = 0;  // 0 = no crash drill
  bool json = false;
  bool metrics = false;
  bool fresh = false;  // delete the journal first (for repeatable runs)
  bool flight_recorder = false;  // dump mode: replay the event file
  std::size_t last = 0;          // 0 = all events
};

/// `--flight-recorder`: post-mortem dump of the persisted event log.
int dump_flight_recorder(const RunFlags& flags) {
  const std::string path = flags.journal + ".events";
  auto events = obs::EventLog::read_file(path);
  if (!events.ok()) {
    std::fprintf(stderr, "gb_daemond: cannot read %s: %s\n", path.c_str(),
                 events.status().to_string().c_str());
    return 1;
  }
  std::size_t begin = 0;
  if (flags.last > 0 && events->size() > flags.last) {
    begin = events->size() - flags.last;
  }
  std::printf("flight recorder: %zu event(s) in %s%s\n", events->size(),
              path.c_str(),
              begin > 0 ? " (showing the tail)" : "");
  for (std::size_t i = begin; i < events->size(); ++i) {
    const obs::LogEvent& e = (*events)[i];
    std::printf("%6llu  %10.3fms  %-18s job=%-5llu %s\n",
                static_cast<unsigned long long>(e.seq),
                static_cast<double>(e.ts_us) / 1000.0,
                obs::event_type_name(e.type),
                static_cast<unsigned long long>(e.job_id), e.detail.c_str());
  }
  return 0;
}

/// Daemon + wire client over one in-process pipe pair. Scoped so the
/// crash drill can tear one incarnation down and start the next.
struct Incarnation {
  std::unique_ptr<daemon::Daemon> daemon;
  std::unique_ptr<client::DaemonClient> client;

  static support::StatusOr<Incarnation> start(const RunFlags& flags,
                                              fleet_sim::SimFleet& fleet) {
    daemon::DaemonOptions opts;
    opts.journal_path = flags.journal;
    opts.shards = flags.shards;
    opts.workers_per_shard = flags.workers;
    opts.resolve_machine = fleet.resolver();
    opts.tenant_weights["corp"] = 2;  // same DRR bias as `gb scan --fleet`
    auto daemon = daemon::Daemon::start(std::move(opts));
    if (!daemon.ok()) return daemon.status();
    Incarnation up;
    up.daemon = std::move(daemon).value();
    daemon::PipePair pipe = daemon::make_pipe();
    up.daemon->serve(pipe.server);
    up.client = std::make_unique<client::DaemonClient>(pipe.client);
    return up;
  }
};

int usage(const char* what) {
  std::fprintf(stderr, "gb_daemond: %s (see header comment)\n", what);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  RunFlags flags;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto need_value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gb_daemond: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--journal") flags.journal = need_value();
    else if (arg == "--fleet") flags.fleet = std::stoull(need_value());
    else if (arg == "--seed") flags.seed = std::stoull(need_value());
    else if (arg == "--shards") flags.shards = std::stoull(need_value());
    else if (arg == "--workers") flags.workers = std::stoull(need_value());
    else if (arg == "--advanced") flags.advanced = true;
    else if (arg == "--kill-after") flags.kill_after = std::stoull(need_value());
    else if (arg == "--json") flags.json = true;
    else if (arg == "--metrics") flags.metrics = true;
    else if (arg == "--fresh") flags.fresh = true;
    else if (arg == "--flight-recorder") flags.flight_recorder = true;
    else if (arg == "--last") flags.last = std::stoull(need_value());
    else if (arg == "--mode") {
      const std::string mode = need_value();
      if (mode == "inside") flags.kind = core::ScanKind::kInside;
      else if (mode == "injected") flags.kind = core::ScanKind::kInjected;
      else if (mode == "outside") flags.kind = core::ScanKind::kOutside;
      else return usage(("unknown mode: " + mode).c_str());
    } else {
      return usage(("unknown argument: " + arg).c_str());
    }
  }
  if (flags.journal.empty()) return usage("--journal is required");
  if (flags.flight_recorder) return dump_flight_recorder(flags);
  if (flags.fleet == 0) return usage("--fleet must be positive");
  if (flags.fresh) {
    (void)std::remove(flags.journal.c_str());
    (void)std::remove((flags.journal + ".events").c_str());
  }

  fleet_sim::SimFleet fleet = fleet_sim::build_sim_fleet(flags.fleet, flags.seed);

  auto up = Incarnation::start(flags, fleet);
  if (!up.ok()) {
    std::fprintf(stderr, "gb_daemond: start failed: %s\n",
                 up.status().to_string().c_str());
    return 1;
  }
  std::fprintf(stderr,
               "gb_daemond: fleet of %zu over %zu shard(s) x %zu worker(s), "
               "journal %s\n",
               flags.fleet, flags.shards, flags.workers, flags.journal.c_str());

  // One job per desktop, submitted over the wire.
  std::vector<std::uint64_t> job_ids;
  for (const fleet_sim::SimBox& box : fleet.boxes) {
    client::JobSpec spec;
    spec.machine_id = box.id;
    spec.tenant = box.tenant;
    spec.kind = flags.kind;
    spec.advanced = flags.advanced;
    auto handle = up->client->submit(spec);
    if (!handle.ok()) {
      std::fprintf(stderr, "gb_daemond: submit %s failed: %s\n",
                   box.id.c_str(), handle.status().to_string().c_str());
      return 1;
    }
    job_ids.push_back(handle->id());
  }

  // Crash drill: collect the first N results, then kill the daemon the
  // way a SIGKILL looks to the journal, restart on the same path, and
  // let the replay image finish the rest.
  if (flags.kill_after > 0) {
    const std::size_t n = std::min(flags.kill_after, job_ids.size());
    for (std::size_t i = 0; i < n; ++i) {
      auto handle = up->client->attach(job_ids[i]);
      (void)handle.wait();
    }
    up->client.reset();  // hang up before the daemon dies
    up->daemon->kill();
    up->daemon.reset();
    std::fprintf(stderr,
                 "gb_daemond: [crash drill] killed after %zu result(s); "
                 "restarting from %s\n",
                 n, flags.journal.c_str());
    up = Incarnation::start(flags, fleet);
    if (!up.ok()) {
      std::fprintf(stderr, "gb_daemond: restart failed: %s\n",
                   up.status().to_string().c_str());
      return 1;
    }
  }

  // Collect every result — re-attaching by id, which survives restarts
  // because ids live in the journal.
  int failed = 0, infected = 0, detected = 0;
  std::printf("%-14s %-7s %5s %-10s %s\n", "host", "tenant", "job", "verdict",
              "ground truth");
  for (std::size_t i = 0; i < fleet.boxes.size(); ++i) {
    const fleet_sim::SimBox& box = fleet.boxes[i];
    client::JobHandle handle = up->client->attach(job_ids[i]);
    const client::JobResult& result = handle.wait();
    if (box.infection != "-") ++infected;
    if (!result.status.ok()) {
      ++failed;
      std::printf("%-14s %-7s %5llu %-10s %s\n", box.id.c_str(),
                  box.tenant.c_str(),
                  static_cast<unsigned long long>(job_ids[i]), "ERROR",
                  result.status.to_string().c_str());
      continue;
    }
    const bool hit =
        result.report_json.find("\"infected\":true") != std::string::npos;
    if (hit) ++detected;
    std::printf("%-14s %-7s %5llu %-10s %s\n", box.id.c_str(),
                box.tenant.c_str(),
                static_cast<unsigned long long>(job_ids[i]),
                hit ? "INFECTED" : "clean", box.infection.c_str());
  }

  auto stats = up->client->stats_json();
  if (flags.json) {
    std::printf("%s\n", stats.ok() ? stats->c_str() : "{}");
  } else {
    std::printf("\n%s", up->daemon->stats().to_string().c_str());
  }
  if (flags.metrics) {
    auto text = up->client->metrics_text();
    if (text.ok()) std::fputs(text->c_str(), stdout);
  }
  up->client.reset();  // hang up so the graceful dtor below can drain
  up->daemon.reset();
  return (failed == 0 && detected == infected) ? 0 : 1;
}
