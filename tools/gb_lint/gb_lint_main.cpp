// gb_lint CLI — the pre-PR invariant sweep.
//
//   gb_lint [options] [path...]
//
// Paths may be directories (recursed, build trees and fixture corpora
// skipped) or files (linted as-is). With no paths it sweeps src/, tests/,
// bench/, examples/, and tools/ under the current directory. Exit status
// is the finding count clamped to 1, so `gb_lint && git push` does what
// it reads as.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "gb_lint/lint.h"

namespace {

void usage() {
  std::puts(
      "usage: gb_lint [--only RULE]... [--disable RULE]... [--exclude SUB]...\n"
      "               [--workers N] [--sarif FILE] [--list-rules] [--quiet]\n"
      "               [path...]\n"
      "\n"
      "Enforces the GhostBuster correctness invariants over the source\n"
      "tree, including the cross-TU lock-order and blocking-under-lock\n"
      "analysis. Suppress a single line with `// gb-lint: allow(rule-id)`\n"
      "on that line or the one above; a waiver that suppresses nothing is\n"
      "itself a finding. --sarif writes the report as SARIF 2.1.0 for\n"
      "code-scanning upload; --workers parallelizes the sweep (the\n"
      "report is byte-identical at any worker count).");
}

}  // namespace

int main(int argc, char** argv) {
  gb::lint::Options opts;
  std::vector<std::string> paths;
  std::string sarif_path;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto take_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "gb_lint: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else if (arg == "--list-rules") {
      for (const auto& rule : gb::lint::rules()) {
        std::printf("%-18s %s\n", std::string(rule.id).c_str(),
                    std::string(rule.summary).c_str());
      }
      return 0;
    } else if (arg == "--only") {
      opts.only.emplace_back(take_value("--only"));
    } else if (arg == "--disable") {
      opts.disabled.emplace_back(take_value("--disable"));
    } else if (arg == "--exclude") {
      opts.excludes.emplace_back(take_value("--exclude"));
    } else if (arg == "--workers") {
      opts.workers =
          static_cast<std::size_t>(std::strtoul(take_value("--workers"),
                                                nullptr, 10));
    } else if (arg == "--sarif") {
      sarif_path = take_value("--sarif");
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "gb_lint: unknown option %s\n", arg.c_str());
      usage();
      return 2;
    } else {
      paths.push_back(arg);
    }
  }

  for (const auto& list : {opts.only, opts.disabled}) {
    for (const auto& id : list) {
      if (!gb::lint::known_rule(id)) {
        std::fprintf(stderr, "gb_lint: unknown rule '%s' (--list-rules)\n",
                     id.c_str());
        return 2;
      }
    }
  }

  if (paths.empty()) {
    for (const char* dir : {"src", "tests", "bench", "examples", "tools"}) {
      if (std::filesystem::exists(dir)) paths.emplace_back(dir);
    }
    if (paths.empty()) {
      std::fprintf(stderr,
                   "gb_lint: no src/tests/bench/examples/tools under the "
                   "current directory; pass paths explicitly\n");
      return 2;
    }
  }

  const gb::lint::TreeReport report = gb::lint::lint_tree(paths, opts);
  for (const auto& finding : report.findings) {
    std::printf("%s\n", finding.to_string().c_str());
  }
  if (!sarif_path.empty()) {
    std::ofstream out(sarif_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "gb_lint: cannot write %s\n", sarif_path.c_str());
      return 2;
    }
    out << gb::lint::to_sarif(report);
  }
  if (!quiet) {
    std::printf("gb_lint: %zu finding(s) in %zu file(s) scanned\n",
                report.findings.size(), report.files_scanned);
  }
  return report.findings.empty() ? 0 : 1;
}
