// gb-lint: the project's invariant checker.
//
// GhostBuster's detection signal is a deterministic cross-view diff — a
// report that is byte-identical at any worker count — and the scanner
// must hold itself to a higher integrity bar than the APIs it audits.
// The invariants that keep that true (no wall-clock or unordered
// iteration in report paths, no silently discarded Status, exception-free
// parser boundaries, the pool as the only thread owner) used to live in
// comments and PR review; this tool makes them machine-enforced.
//
// It is a deliberately small token/line-level checker, not a compiler
// plugin: no libclang dependency, a few milliseconds over the whole
// tree, and rules precise enough for a codebase that already follows
// the conventions. Comments and string/char literals are stripped before
// matching, so documentation may name the banned constructs freely.
//
// Scoping: a file's strictness comes from the *last* scope component in
// its path (src, tools, tests, bench, examples). Library code (src/)
// gets every rule; tools/ gets the hygiene rules; tests/bench/examples
// only the exception-boundary rule (they may legitimately use wall
// clocks and raw threads to hammer the library). The self-test fixture
// corpus mirrors this by living under tests/lint/fixtures/src/.
//
// Suppressions: `// gb-lint: allow(rule-id[, rule-id...])` on the
// offending line or the line above silences the named rules there —
// every allow is a visible, greppable waiver.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace gb::lint {

/// One rule violation at a specific source line.
struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::string rule;
  std::string message;

  /// "path:12: [rule-id] message" — the compiler-style line editors jump on.
  [[nodiscard]] std::string to_string() const;
};

/// Identity and one-line rationale of one rule.
struct RuleInfo {
  std::string_view id;
  std::string_view summary;
};

/// Every rule, in fixed report order.
[[nodiscard]] std::vector<RuleInfo> rules();

/// True if `id` names a known rule.
[[nodiscard]] bool known_rule(std::string_view id);

struct Options {
  /// Run only these rule ids (empty = all). Unknown ids are ignored.
  std::vector<std::string> only;
  /// Rule ids to skip.
  std::vector<std::string> disabled;
  /// Extra path substrings skipped during tree walks. Directory
  /// components starting with "build" and components named "fixtures"
  /// are always skipped (build trees and the known-bad lint corpus must
  /// never count as findings). Explicitly named files bypass excludes.
  std::vector<std::string> excludes;
  /// Worker threads for tree sweeps (0 = inline on the caller). The
  /// report is byte-identical at any worker count: per-file passes run
  /// concurrently into pre-sized slots, and everything cross-file (the
  /// lock graph, waiver staleness, the final sort) runs serially after
  /// an index-ordered merge.
  std::size_t workers = 0;
};

/// Lints `content` as if it were the file at `path` (which drives rule
/// scoping). Lets the self-tests lint buffers and the CLI lint stdin.
[[nodiscard]] std::vector<Finding> lint_content(const std::string& path,
                                                std::string_view content,
                                                const Options& opts = {});

/// Reads and lints one on-disk file. An unreadable file yields a single
/// finding under the pseudo-rule "io" rather than a throw.
[[nodiscard]] std::vector<Finding> lint_file(const std::string& path,
                                             const Options& opts = {});

/// Result of a recursive sweep.
struct TreeReport {
  std::vector<Finding> findings;
  std::size_t files_scanned = 0;
};

/// Recursively lints every .h/.cpp under each root (a root that is a
/// regular file is linted directly), honoring Options::excludes. Tree
/// sweeps are where the cross-TU rules live: the lock-order /
/// blocking-under-lock graph spans every library file swept together,
/// and waivers for those rules are judged stale against the whole
/// graph, not any single file.
[[nodiscard]] TreeReport lint_tree(const std::vector<std::string>& roots,
                                   const Options& opts = {});

/// Serializes a report as SARIF 2.1.0 (one run, every rule as a
/// reportingDescriptor, findings with start-line regions) for code
/// scanning upload. Deterministic: same report, same bytes.
[[nodiscard]] std::string to_sarif(const TreeReport& report);

}  // namespace gb::lint
