// Cross-translation-unit lock-order analysis for gb-lint.
//
// The line rules in lint.cpp are local: each looks at one line of one
// file. The concurrency invariants they cannot see — "every thread
// acquires mutexes in one global order" and "no blocking call runs
// inside a critical section" — are exactly the ones that take down a
// fleet daemon in production, so this pass builds the whole-tree view:
//
//   1. index every function definition in library code (src/), with a
//      brace-level scanner over the same blanked code view the line
//      rules use — no libclang, same philosophy;
//   2. attribute every lock_guard/unique_lock/scoped_lock/MutexLock/
//      CondLock/.lock() site to its enclosing function and a normalized
//      mutex identity (the *_mu/mu_ naming convention the mutex-name
//      rule enforces is what makes this tractable);
//   3. resolve call sites (same class, then same file, then a unique
//      name tree-wide; member calls also resolve through declared field
//      types) and propagate both *acquired* and *held-on-entry* sets to
//      a fixpoint;
//   4. report inversion cycles over the acquired-while-held edge set
//      and direct blocking operations (pool submit, condition-less
//      waits, transport and file I/O) whose held set is non-empty.
//
// Resolution is a deliberate under-approximation: an ambiguous callee
// contributes no edges. A missed edge costs a missed finding; an
// invented edge costs a false deadlock report that trains people to
// waive without reading — the first failure mode is the one we accept.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace gb::lint {

/// "Mutex `to` was acquired while `from` was held", at file:line
/// (0-based line; callers convert when printing).
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  std::size_t line = 0;
};

/// Strongly-connected components of the acquired-while-held graph that
/// contain a deadlock-capable cycle (two or more mutexes, or a single
/// mutex re-acquired while held). Each component's members are sorted,
/// and the list itself is sorted — output is deterministic for any edge
/// ordering. Exposed separately from the tree analysis so the detector
/// can be unit-tested on synthetic graphs.
[[nodiscard]] std::vector<std::vector<std::string>> detect_lock_cycles(
    const std::vector<LockEdge>& edges);

/// A call made while `held` mutexes were held locally.
struct LockCallSite {
  std::string callee;    // unqualified name
  std::string receiver;  // `x` in x.f()/x->f(); empty for bare calls
  bool member_call = false;
  std::size_t line = 0;
  std::vector<std::string> held;
};

/// A direct blocking operation (pool submit, wait, frame/file I/O).
struct LockBlockOp {
  std::string op;
  std::size_t line = 0;
  std::vector<std::string> held;  // locally held; entry set added later
};

/// One indexed function (or lambda) definition.
struct LockFunction {
  std::string cls;   // enclosing class; empty for free functions
  std::string name;  // unqualified; "<lambda>" for lambda bodies
  std::string file;
  std::size_t line = 0;
  bool anonymous = false;  // lambdas/operators: never a resolution target
  std::vector<std::string> acquires;       // mutex keys directly acquired
  std::vector<LockEdge> edges;             // intra-function order edges
  std::vector<LockCallSite> calls;
  std::vector<LockBlockOp> blocking;
  std::vector<std::string> requires_held;  // GB_REQUIRES on the definition
};

/// A mutex data member declaration (class scope).
struct LockMutexMember {
  std::string cls;
  std::string name;
  std::size_t line = 0;
};

/// Everything the lock pass needs from one file. Built per file (cheap,
/// parallelizable); the cross-TU analysis runs once over all of them.
struct LockIndexFile {
  std::string path;
  std::vector<LockFunction> functions;
  std::vector<LockMutexMember> mutex_members;
  /// Identifier tokens appearing inside any GB_*(...) annotation
  /// argument list — the evidence the unannotated-guarded-member rule
  /// accepts.
  std::vector<std::string> annotation_refs;
  /// GB_REQUIRES harvested from body-less declarations, keyed by
  /// (class, function name); merged into definitions during analysis.
  std::vector<std::pair<std::pair<std::string, std::string>,
                        std::vector<std::string>>>
      requires_decls;
  /// (class, field) -> declared class type, for member-call resolution
  /// through unique_ptr/shared_ptr/pointer/reference fields.
  std::map<std::pair<std::string, std::string>, std::string> field_types;
};

/// Indexes one file's blanked code view (comments and literals already
/// spaces — build_view output). `path` drives the one exemption: the
/// annotation macros' own header defines the capability wrappers and is
/// not indexed.
[[nodiscard]] LockIndexFile index_lock_file(
    const std::string& path, const std::vector<std::string>& code);

/// One cross-TU finding, pre-waiver. `sites` lists every (file, 0-based
/// line) whose allow() waiver suppresses the finding — for a cycle,
/// every edge in the cycle; for the others, the reported line itself.
struct LockFinding {
  std::string rule;  // lock-order-cycle | blocking-under-lock |
                     // unannotated-guarded-member
  std::string file;
  std::size_t line = 0;  // 0-based
  std::string message;
  std::vector<std::pair<std::string, std::size_t>> sites;
};

/// The cross-TU pass: call resolution, acquires/entry-held fixpoints,
/// cycle detection, blocking-op and unannotated-member checks. Output
/// is sorted by (file, line, rule, message) and deterministic.
[[nodiscard]] std::vector<LockFinding> analyze_lock_graph(
    const std::vector<LockIndexFile>& files);

}  // namespace gb::lint
