// Implementation of the gb-lint rules. Everything here works on a
// "code view" of the file: comments and string/char literal bodies are
// blanked to spaces (line structure preserved) before any rule runs, and
// `gb-lint: allow(...)` waivers are harvested from the comment text in
// the same pass.
#include "gb_lint/lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

#include "gb_lint/lock_graph.h"
#include "support/thread_pool.h"

namespace gb::lint {

namespace {

// --- rule table ------------------------------------------------------------

constexpr RuleInfo kRules[] = {
    {"wall-clock",
     "no system_clock/time()/strftime in library code: report fields come "
     "from the VirtualClock cost model (or steady_clock for wall fields)"},
    {"nondet-random",
     "no rand()/std::random_device in library code: all randomness flows "
     "through the seeded gb::Rng so every run is reproducible"},
    {"locale-format",
     "no std::locale/setlocale/imbue in library code: report bytes must "
     "not depend on the host's locale"},
    {"unordered-report",
     "no unordered_map/unordered_set in report-serialization files "
     "(differ/scan_result/any to_json file): iteration order would leak "
     "into report bytes"},
    {"status-nodiscard",
     "a header function returning support::Status/StatusOr by value must "
     "be [[nodiscard]]: a silently dropped status hides a degraded scan"},
    {"catch-all",
     "catch (...) only at the documented _or parser boundaries: anywhere "
     "else it converts programming errors into silence"},
    {"mutex-name",
     "mutex members/locals end in 'mu'/'mu_' (stats_mu_, sleep_mu_): the "
     "convention reviewers rely on to spot unguarded state"},
    {"naked-new",
     "no naked new: ownership goes through make_unique/containers "
     "(deliberate leaky singletons carry an inline allow)"},
    {"raw-thread",
     "no std::thread outside support::ThreadPool (querying "
     "std::thread::hardware_concurrency is fine): the pool is the only "
     "thread owner the determinism argument covers"},
    {"raw-transport-io",
     "no send_bytes/recv_bytes member calls outside the transport/wire "
     "layer: every daemon byte crosses the CRC-framed wire protocol "
     "(daemon::Framer), never the raw stream"},
    {"legacy-scan-entry",
     "no new library callers of the deprecated named scan entry points "
     "(inside_scan/injected_scan/outside_scan/capture_inside_high/"
     "outside_diff): go through ScanEngine::run(JobSpec), or "
     "open_session()/rescan() for repeat scans"},
    {"metric-name-format",
     "literal metric names must be gb_<subsystem>_<name> (lowercase "
     "underscore segments) and literal span names <subsystem>.<verb>: "
     "the grep-ability contract docs/observability.md indexes"},
    {"lock-order-cycle",
     "every thread acquires mutexes in one global order: the cross-TU "
     "lock graph (acquired-while-held edges, calls resolved to a "
     "fixpoint) must be cycle-free"},
    {"blocking-under-lock",
     "no pool submit, wait, join, frame/transport I/O, flush, or sleep "
     "while a mutex is held (condition-variable waits release the lock "
     "and are exempt); durability-ordered sites carry documented "
     "waivers"},
    {"unannotated-guarded-member",
     "every mutex data member is referenced by a GB_GUARDED_BY/"
     "GB_REQUIRES annotation in its file, keeping the Clang "
     "-Wthread-safety contract (support/thread_annotations.h) complete "
     "as code grows"},
    {"stale-waiver",
     "every gb-lint allow() must suppress at least one live finding: a "
     "waiver that outlives its violation is deleted, not inherited by "
     "the next unrelated bug on that line"},
};

bool graph_rule(std::string_view rule) {
  // Judged only against the whole-tree lock graph: a single file rarely
  // shows both halves of an inversion or a caller's held set.
  return rule == "lock-order-cycle" || rule == "blocking-under-lock";
}

// --- path scoping ----------------------------------------------------------

enum class Scope { kLibrary, kTools, kTests, kBench, kExamples };

// The LAST scope component wins, so the fixture corpus under
// tests/lint/fixtures/src/ is linted at library strictness.
Scope classify(const std::filesystem::path& path) {
  Scope scope = Scope::kLibrary;  // unknown layouts get full strictness
  for (const auto& part : path) {
    const std::string c = part.string();
    if (c == "src") scope = Scope::kLibrary;
    else if (c == "tools") scope = Scope::kTools;
    else if (c == "tests") scope = Scope::kTests;
    else if (c == "bench") scope = Scope::kBench;
    else if (c == "examples") scope = Scope::kExamples;
  }
  return scope;
}

bool rule_applies(std::string_view rule, Scope scope, bool is_header) {
  // Every scope: swallowed exceptions and dead waivers mislead anywhere.
  if (rule == "catch-all" || rule == "stale-waiver") return true;
  if (scope == Scope::kTests || scope == Scope::kBench ||
      scope == Scope::kExamples) {
    return false;  // harness code may use clocks/threads/news freely
  }
  const bool hygiene = rule == "mutex-name" || rule == "naked-new" ||
                       rule == "raw-thread" || rule == "status-nodiscard";
  if (scope == Scope::kTools) return hygiene && rule != "status-nodiscard";
  if (rule == "status-nodiscard") return is_header;
  return true;  // library scope: everything (incl. the lock rules)
}

bool rule_enabled(std::string_view rule, Scope scope, bool is_header,
                  const Options& opts) {
  if (!rule_applies(rule, scope, is_header)) return false;
  if (!opts.only.empty() &&
      std::find(opts.only.begin(), opts.only.end(), rule) ==
          opts.only.end()) {
    return false;
  }
  return std::find(opts.disabled.begin(), opts.disabled.end(), rule) ==
         opts.disabled.end();
}

// --- code view: strip comments/strings, harvest allow() waivers ------------

/// One `allow(rule)` entry from a waiver comment. `used` flips when the
/// waiver actually suppresses a finding — the stale-waiver rule reports
/// any that never flip.
struct Allow {
  std::string rule;
  std::size_t line = 0;  // 0-based line of the comment
  bool used = false;
};

struct FileView {
  std::vector<std::string> code;  // literals/comments blanked to spaces
  std::vector<std::string> raw;   // original lines (rules that must read
                                  // string literals index these)
  std::vector<Allow> allows;      // every waiver entry, in source order
  // allowed[i] holds indices into `allows` covering line i (0-based):
  // an allow() covers its own line and the line below it.
  std::vector<std::vector<std::size_t>> allowed;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

void harvest_allows(const std::string& comment, std::size_t line,
                    FileView& view) {
  std::size_t pos = comment.find("gb-lint:");
  if (pos == std::string::npos) return;
  pos = comment.find("allow(", pos);
  if (pos == std::string::npos) return;
  const std::size_t close = comment.find(')', pos);
  if (close == std::string::npos) return;
  std::string list = comment.substr(pos + 6, close - pos - 6);
  std::stringstream ss(list);
  std::string id;
  while (std::getline(ss, id, ',')) {
    const auto b = id.find_first_not_of(" \t");
    const auto e = id.find_last_not_of(" \t");
    if (b == std::string::npos) continue;
    id = id.substr(b, e - b + 1);
    // Rule ids are lowercase words and hyphens. Anything else here is
    // documentation quoting the waiver syntax (`allow(rule-id[, ...])`),
    // not a waiver — recording it would make the stale-waiver rule flag
    // its own manual.
    const bool id_like = !id.empty() &&
                         std::all_of(id.begin(), id.end(), [](char c) {
                           return (c >= 'a' && c <= 'z') ||
                                  (c >= '0' && c <= '9') || c == '-';
                         });
    if (!id_like) continue;
    const std::size_t idx = view.allows.size();
    view.allows.push_back(Allow{std::move(id), line, false});
    view.allowed[line].push_back(idx);
    if (line + 1 < view.allowed.size()) view.allowed[line + 1].push_back(idx);
  }
}

FileView build_view(std::string_view content) {
  std::vector<std::string> lines;
  {
    std::string cur;
    for (char c : content) {
      if (c == '\n') {
        lines.push_back(cur);
        cur.clear();
      } else {
        cur.push_back(c);
      }
    }
    lines.push_back(cur);
  }

  FileView view;
  view.code.assign(lines.size(), std::string());
  view.raw = lines;
  view.allowed.assign(lines.size(), {});

  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  St st = St::kCode;
  std::string comment;          // text of the comment being read
  std::size_t comment_line = 0; // line the comment started on
  std::string raw_delim;        // delimiter of the raw string being read

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& in = lines[li];
    std::string& out = view.code[li];
    out.reserve(in.size());
    std::size_t i = 0;
    if (st == St::kLineComment) {  // line comments never span lines
      st = St::kCode;
    }
    while (i < in.size()) {
      const char c = in[i];
      switch (st) {
        case St::kCode: {
          if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
            comment = in.substr(i + 2);
            harvest_allows(comment, li, view);
            out.append(in.size() - i, ' ');
            i = in.size();
            st = St::kLineComment;
            continue;
          }
          if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
            st = St::kBlockComment;
            comment.clear();
            comment_line = li;
            out.append(2, ' ');
            i += 2;
            continue;
          }
          if (c == '"') {
            // R"delim( ... )delim" raw strings jump straight to kRaw.
            if (i > 0 && in[i - 1] == 'R' &&
                (i < 2 || !ident_char(in[i - 2]))) {
              std::size_t open = in.find('(', i + 1);
              if (open != std::string::npos) {
                raw_delim = in.substr(i + 1, open - i - 1);
                out.append(open - i + 1, ' ');
                i = open + 1;
                st = St::kRaw;
                continue;
              }
            }
            out.push_back('"');
            ++i;
            st = St::kString;
            continue;
          }
          if (c == '\'') {
            out.push_back('\'');
            ++i;
            st = St::kChar;
            continue;
          }
          out.push_back(c);
          ++i;
          continue;
        }
        case St::kString:
        case St::kChar: {
          const char quote = st == St::kString ? '"' : '\'';
          if (c == '\\' && i + 1 < in.size()) {
            out.append(2, ' ');
            i += 2;
            continue;
          }
          if (c == quote) {
            out.push_back(quote);
            st = St::kCode;
          } else {
            out.push_back(' ');
          }
          ++i;
          continue;
        }
        case St::kRaw: {
          const std::string close = ")" + raw_delim + "\"";
          const std::size_t end = in.find(close, i);
          if (end == std::string::npos) {
            out.append(in.size() - i, ' ');
            i = in.size();
          } else {
            out.append(end - i + close.size(), ' ');
            i = end + close.size();
            st = St::kCode;
          }
          continue;
        }
        case St::kBlockComment: {
          if (c == '*' && i + 1 < in.size() && in[i + 1] == '/') {
            harvest_allows(comment, comment_line, view);
            out.append(2, ' ');
            i += 2;
            st = St::kCode;
          } else {
            comment.push_back(c);
            out.push_back(' ');
            ++i;
          }
          continue;
        }
        case St::kLineComment:
          i = in.size();
          continue;
      }
    }
    if (st == St::kString || st == St::kChar) st = St::kCode;  // unterminated
    if (st == St::kBlockComment) comment.push_back('\n');
  }
  return view;
}

// --- matching helpers ------------------------------------------------------

/// Positions where `word` occurs with non-identifier characters on both
/// sides.
std::vector<std::size_t> find_word(const std::string& line,
                                   std::string_view word) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = line.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !ident_char(line[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= line.size() || !ident_char(line[after]);
    if (left_ok && right_ok) hits.push_back(pos);
    pos = after;
  }
  return hits;
}

std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() &&
         std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

bool preceded_by(const std::string& line, std::size_t pos,
                 std::string_view prefix) {
  return pos >= prefix.size() &&
         line.compare(pos - prefix.size(), prefix.size(), prefix) == 0;
}

struct Linter {
  const std::string& path;
  Scope scope;
  bool is_header;
  FileView& view;  // non-const: waived() marks the allow as used
  const Options& opts;
  std::vector<Finding>& out;

  [[nodiscard]] bool enabled(std::string_view rule) const {
    return rule_enabled(rule, scope, is_header, opts);
  }

  // Marks every covering allow used, even after the first match — a
  // duplicate waiver for the same rule must not read as stale.
  [[nodiscard]] bool waived(std::string_view rule, std::size_t li) {
    bool hit = false;
    for (std::size_t idx : view.allowed[li]) {
      if (view.allows[idx].rule == rule) {
        view.allows[idx].used = true;
        hit = true;
      }
    }
    return hit;
  }

  void report(std::string_view rule, std::size_t li, std::string message) {
    if (waived(rule, li)) return;
    out.push_back(Finding{path, li + 1, std::string(rule),
                          std::move(message)});
  }

  /// Flags every word-bounded occurrence of `word`; `call_only` also
  /// requires a following '(' so bare identifiers stay legal.
  void ban_word(std::string_view rule, std::string_view word, bool call_only,
                std::string_view why) {
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      for (std::size_t pos : find_word(view.code[li], word)) {
        if (call_only) {
          const std::size_t next =
              skip_spaces(view.code[li], pos + word.size());
          if (next >= view.code[li].size() || view.code[li][next] != '(') {
            continue;
          }
        }
        report(rule, li, std::string(why));
      }
    }
  }

  void rule_wall_clock() {
    if (!enabled("wall-clock")) return;
    constexpr std::string_view kMsg =
        "wall-clock source in library code; report time comes from the "
        "VirtualClock cost model (steady_clock is allowed for wall "
        "fields)";
    for (std::string_view w :
         {"system_clock", "gettimeofday", "localtime", "gmtime", "strftime",
          "ctime", "asctime"}) {
      ban_word("wall-clock", w, false, kMsg);
    }
    ban_word("wall-clock", "time", true, kMsg);  // time(...) calls only
  }

  void rule_nondet_random() {
    if (!enabled("nondet-random")) return;
    constexpr std::string_view kMsg =
        "non-deterministic randomness in library code; use the seeded "
        "gb::Rng so every run reproduces";
    ban_word("nondet-random", "random_device", false, kMsg);
    ban_word("nondet-random", "random_shuffle", false, kMsg);
    for (std::string_view w : {"rand", "srand", "rand_r"}) {
      ban_word("nondet-random", w, true, kMsg);
    }
  }

  void rule_locale_format() {
    if (!enabled("locale-format")) return;
    constexpr std::string_view kMsg =
        "locale-dependent formatting in library code; report bytes must "
        "not vary with the host locale";
    for (std::string_view w : {"setlocale", "imbue", "put_time"}) {
      ban_word("locale-format", w, false, kMsg);
    }
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      const std::string& line = view.code[li];
      for (std::size_t pos : find_word(line, "locale")) {
        if (preceded_by(line, pos, "std::") ||
            line.find("#include") != std::string::npos) {
          report("locale-format", li, std::string(kMsg));
        }
      }
    }
  }

  void rule_unordered_report() {
    if (!enabled("unordered-report")) return;
    // Report-path files: the diff/result serialization units by name,
    // plus any file that defines or declares to_json.
    const std::string base = std::filesystem::path(path).filename().string();
    bool report_path = base == "differ.cpp" || base == "differ.h" ||
                       base == "scan_result.cpp" || base == "scan_result.h";
    if (!report_path) {
      for (const auto& line : view.code) {
        if (!find_word(line, "to_json").empty()) {
          report_path = true;
          break;
        }
      }
    }
    if (!report_path) return;
    constexpr std::string_view kMsg =
        "unordered container in a report-serialization file; hash-order "
        "iteration would leak into report bytes — use std::map/sorted "
        "vectors (or waive for non-serialized internals)";
    ban_word("unordered-report", "unordered_map", false, kMsg);
    ban_word("unordered-report", "unordered_set", false, kMsg);
  }

  void rule_status_nodiscard() {
    if (!enabled("status-nodiscard")) return;
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      const std::string& line = view.code[li];
      for (std::string_view type : {"Status", "StatusOr"}) {
        for (std::size_t pos : find_word(line, type)) {
          // Qualified uses (Status::corrupt) and nested template args are
          // not return types.
          if (!line.empty() && pos > 0 &&
              (line[pos - 1] == '<' || line[pos - 1] == ',' ||
               line[pos - 1] == '.')) {
            continue;
          }
          if (!find_word(line, "using").empty()) continue;
          std::size_t i = pos + type.size();
          if (i < line.size() && line[i] == ':') continue;  // Status::...
          if (type == "StatusOr") {
            i = skip_spaces(line, i);
            if (i >= line.size() || line[i] != '<') continue;
            int depth = 0;
            while (i < line.size()) {
              if (line[i] == '<') ++depth;
              if (line[i] == '>' && --depth == 0) {
                ++i;
                break;
              }
              ++i;
            }
            if (depth != 0) continue;  // template args span lines: punt
          }
          i = skip_spaces(line, i);
          // By-value returns only: ref/pointer returns are getters whose
          // result may be legitimately unused.
          if (i >= line.size() || line[i] == '&' || line[i] == '*') continue;
          if (!ident_char(line[i]) ||
              std::isdigit(static_cast<unsigned char>(line[i])) != 0) {
            continue;  // constructor, cast, or not a declaration
          }
          std::size_t name_end = i;
          while (name_end < line.size() && ident_char(line[name_end])) {
            ++name_end;
          }
          const std::string name = line.substr(i, name_end - i);
          if (name == "operator") continue;
          const std::size_t paren = skip_spaces(line, name_end);
          if (paren >= line.size() || line[paren] != '(') {
            continue;  // variable/member declaration, not a function
          }
          // The attribute belongs on the same line before the type or on
          // the line above.
          const std::string before = line.substr(0, pos);
          const bool annotated =
              before.find("[[nodiscard]]") != std::string::npos ||
              (li > 0 && view.code[li - 1].find("[[nodiscard]]") !=
                             std::string::npos);
          if (!annotated) {
            report("status-nodiscard", li,
                   "'" + name + "' returns " + std::string(type) +
                       " by value but is not [[nodiscard]]; a dropped "
                       "status silently hides a degraded scan");
          }
        }
      }
    }
  }

  void rule_catch_all() {
    if (!enabled("catch-all")) return;
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      const std::string& line = view.code[li];
      for (std::size_t pos : find_word(line, "catch")) {
        std::size_t i = skip_spaces(line, pos + 5);
        if (i >= line.size() || line[i] != '(') continue;
        i = skip_spaces(line, i + 1);
        if (line.compare(i, 3, "...") == 0) {
          report("catch-all", li,
                 "catch (...) outside a documented _or parser boundary; "
                 "catch the specific exception (gb::ParseError) or let "
                 "programming errors surface");
        }
      }
    }
  }

  void rule_mutex_name() {
    if (!enabled("mutex-name")) return;
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      const std::string& line = view.code[li];
      for (std::string_view type :
           {"std::mutex", "std::shared_mutex", "std::recursive_mutex"}) {
        std::size_t pos = 0;
        while ((pos = line.find(type, pos)) != std::string::npos) {
          const std::size_t after = pos + type.size();
          pos = after;
          if (after < line.size() && ident_char(line[after])) continue;
          std::size_t i = skip_spaces(line, after);
          // Template args / parameter types / references are not
          // declarations of a named mutex.
          if (i >= line.size() || !ident_char(line[i]) ||
              std::isdigit(static_cast<unsigned char>(line[i])) != 0) {
            continue;
          }
          std::size_t name_end = i;
          while (name_end < line.size() && ident_char(line[name_end])) {
            ++name_end;
          }
          std::string name = line.substr(i, name_end - i);
          std::string stem = name;
          if (!stem.empty() && stem.back() == '_') stem.pop_back();
          const bool ok =
              stem == "mu" || (stem.size() > 3 &&
                               stem.compare(stem.size() - 3, 3, "_mu") == 0);
          if (!ok) {
            report("mutex-name", li,
                   "mutex '" + name +
                       "' does not follow the 'mu'/'*_mu' naming "
                       "convention reviewers use to spot unguarded state");
          }
        }
      }
    }
  }

  void rule_naked_new() {
    if (!enabled("naked-new")) return;
    // Custom loop rather than ban_word: `#include <new>` (for catching
    // std::bad_alloc) names the header, not the operator, and must not
    // fire.
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      const std::string& line = view.code[li];
      const std::size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') continue;
      for ([[maybe_unused]] std::size_t pos : find_word(line, "new")) {
        report("naked-new", li,
               "naked new; route ownership through std::make_unique or a "
               "container (a deliberate leaky singleton carries an inline "
               "allow)");
      }
    }
  }

  void rule_legacy_scan_entry() {
    if (!enabled("legacy-scan-entry")) return;
    const std::string base = std::filesystem::path(path).filename().string();
    // scan_engine.* declares the deprecated wrappers (and calls the
    // same-named ResourceScanner provider hooks); the ban is on callers.
    if (base.rfind("scan_engine", 0) == 0) return;
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      const std::string& line = view.code[li];
      for (std::string_view name :
           {"inside_scan", "injected_scan", "outside_scan",
            "capture_inside_high", "outside_diff"}) {
        for (std::size_t pos : find_word(line, name)) {
          // Only member-call syntax counts: a declaration or a
          // same-named free function is not a legacy entry-point call.
          if (pos == 0 || (line[pos - 1] != '.' &&
                           !preceded_by(line, pos, "->"))) {
            continue;
          }
          const std::size_t next = skip_spaces(line, pos + name.size());
          if (next >= line.size() || line[next] != '(') continue;
          std::string msg = "'";
          msg += name;
          msg +=
              "' is a deprecated named scan entry point; use "
              "ScanEngine::run(JobSpec) — or open_session()/"
              "rescan() when the scan repeats";
          report("legacy-scan-entry", li, msg);
        }
      }
    }
  }

  void rule_metric_name_format() {
    if (!enabled("metric-name-format")) return;
    // The contract is on LITERAL names only: a name built at runtime
    // ("gb_" + kind + "_total", "scan." + type) can't be checked
    // statically and is skipped, not flagged.
    const auto literal_after = [&](std::size_t li, std::size_t open)
        -> std::pair<bool, std::string> {
      const std::string& raw = view.raw[li];
      std::size_t i = skip_spaces(raw, open + 1);
      if (i >= raw.size() || raw[i] != '"') return {false, {}};
      std::string lit;
      for (++i; i < raw.size() && raw[i] != '"'; ++i) {
        if (raw[i] == '\\') return {false, {}};  // escaped: not a plain name
        lit.push_back(raw[i]);
      }
      if (i >= raw.size()) return {false, {}};  // spans lines: punt
      // The literal must be the WHOLE argument: `"diff." + kind` is a
      // runtime-built name whose literal prefix proves nothing.
      const std::size_t next = skip_spaces(raw, i + 1);
      if (next < raw.size() && raw[next] != ',' && raw[next] != ')') {
        return {false, {}};
      }
      return {true, lit};
    };
    const auto segments_ok = [](std::string_view name, char sep,
                                std::size_t min_segments) {
      std::size_t segs = 0, len = 0;
      for (const char c : name) {
        if (c == sep) {
          if (len == 0) return false;  // empty segment
          ++segs;
          len = 0;
        } else if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                   (sep == '.' && c == '_')) {
          ++len;
        } else {
          return false;
        }
      }
      if (len == 0) return false;
      return segs + 1 >= min_segments;
    };
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      const std::string& line = view.code[li];
      struct Mint {
        std::string_view fn;
        bool metric;  // false: span name
      };
      for (const Mint mint :
           {Mint{"counter", true}, Mint{"gauge", true},
            Mint{"histogram", true}, Mint{"span", false},
            Mint{"instant", false}, Mint{"record_span", false}}) {
        for (std::size_t pos : find_word(line, mint.fn)) {
          // Member-call syntax only: definitions and same-named free
          // functions are not registry/tracer mints.
          if (pos == 0 ||
              (line[pos - 1] != '.' && !preceded_by(line, pos, "->"))) {
            continue;
          }
          const std::size_t open = skip_spaces(line, pos + mint.fn.size());
          if (open >= line.size() || line[open] != '(') continue;
          const auto [is_literal, name] = literal_after(li, open);
          if (!is_literal) continue;
          if (mint.metric) {
            // gb_<subsystem>_<name>: "gb" plus >= 2 more segments.
            const bool ok = name.rfind("gb_", 0) == 0 &&
                            segments_ok(name, '_', 3);
            if (!ok) {
              report("metric-name-format", li,
                     "metric '" + name +
                         "' does not match gb_<subsystem>_<name> "
                         "(lowercase [a-z0-9] underscore segments)");
            }
          } else {
            const bool ok = segments_ok(name, '.', 2);
            if (!ok) {
              report("metric-name-format", li,
                     "span '" + name +
                         "' does not match <subsystem>.<verb> "
                         "(lowercase dot-separated segments)");
            }
          }
        }
      }
    }
  }

  void rule_raw_transport_io() {
    if (!enabled("raw-transport-io")) return;
    const std::string base = std::filesystem::path(path).filename().string();
    // The framing layer and the transports themselves are the whole
    // point of the exemption: everyone else goes through Framer.
    if (base.rfind("transport", 0) == 0 || base.rfind("wire", 0) == 0) return;
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      const std::string& line = view.code[li];
      for (std::string_view name : {"send_bytes", "recv_bytes"}) {
        for (std::size_t pos : find_word(line, name)) {
          // Member-call syntax only: a Transport subclass declaring the
          // override is not a raw I/O caller.
          if (pos == 0 || (line[pos - 1] != '.' &&
                           !preceded_by(line, pos, "->"))) {
            continue;
          }
          const std::size_t next = skip_spaces(line, pos + name.size());
          if (next >= line.size() || line[next] != '(') continue;
          std::string msg = "'";
          msg += name;
          msg +=
              "' bypasses the CRC-framed wire protocol; go "
              "through daemon::Framer (or live in the "
              "transport/wire layer)";
          report("raw-transport-io", li, msg);
        }
      }
    }
  }

  void rule_raw_thread() {
    if (!enabled("raw-thread")) return;
    const std::string base = std::filesystem::path(path).filename().string();
    if (base.rfind("thread_pool", 0) == 0) return;  // the one thread owner
    for (std::size_t li = 0; li < view.code.size(); ++li) {
      const std::string& line = view.code[li];
      for (std::string_view type : {"thread", "jthread"}) {
        for (std::size_t pos : find_word(line, type)) {
          if (!preceded_by(line, pos, "std::")) continue;
          const std::size_t after = pos + type.size();
          if (line.compare(after, 23, "::hardware_concurrency(") == 0) {
            continue;  // capacity query, not a thread
          }
          report("raw-thread", li,
                 "std::thread outside support::ThreadPool; the pool is "
                 "the only thread owner the determinism argument covers");
        }
      }
    }
  }

  void run() {
    rule_wall_clock();
    rule_nondet_random();
    rule_locale_format();
    rule_unordered_report();
    rule_status_nodiscard();
    rule_catch_all();
    rule_mutex_name();
    rule_naked_new();
    rule_raw_thread();
    rule_legacy_scan_entry();
    rule_raw_transport_io();
    rule_metric_name_format();
  }
};

bool lintable(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cpp" || ext == ".cc" || ext == ".hpp";
}

bool excluded(const std::filesystem::path& p, const Options& opts) {
  for (const auto& part : p) {
    const std::string c = part.string();
    if (c.rfind("build", 0) == 0 || c == "fixtures") return true;
  }
  const std::string s = p.string();
  for (const auto& sub : opts.excludes) {
    if (s.find(sub) != std::string::npos) return true;
  }
  return false;
}

bool finding_less(const Finding& a, const Finding& b) {
  return std::tie(a.file, a.line, a.rule, a.message) <
         std::tie(b.file, b.line, b.rule, b.message);
}

/// Everything one file contributes to a sweep: its line-rule findings
/// plus the inputs the cross-file passes need (the waiver table with
/// usage marks, and the lock index).
struct FileResult {
  std::string path;
  Scope scope = Scope::kLibrary;
  bool is_header = false;
  bool io_error = false;
  FileView view;
  LockIndexFile index;
  std::vector<Finding> findings;
};

FileResult lint_one(const std::string& path, std::string_view content,
                    const Options& opts) {
  FileResult r;
  r.path = path;
  const std::filesystem::path p(path);
  r.scope = classify(p);
  r.is_header = p.extension() != ".cpp" && p.extension() != ".cc";
  r.view = build_view(content);
  Linter linter{path, r.scope, r.is_header, r.view, opts, r.findings};
  linter.run();
  const bool lock_pass =
      r.scope == Scope::kLibrary &&
      (rule_enabled("lock-order-cycle", r.scope, r.is_header, opts) ||
       rule_enabled("blocking-under-lock", r.scope, r.is_header, opts) ||
       rule_enabled("unannotated-guarded-member", r.scope, r.is_header,
                    opts));
  if (lock_pass) r.index = index_lock_file(path, r.view.code);
  return r;
}

/// The passes that need more than one file: lock-graph findings and
/// waiver staleness. `tree_mode` is false when linting a single buffer,
/// in which case waivers for the two whole-graph rules are not judged —
/// one file rarely shows both halves of an inversion or a caller's
/// held set, and a waiver must not read as stale just because the sweep
/// was narrow.
void apply_cross_file(std::vector<FileResult*>& files, const Options& opts,
                      bool tree_mode, std::vector<Finding>& out) {
  std::map<std::string, FileResult*> by_path;
  std::vector<LockIndexFile> indexes;
  for (FileResult* r : files) {
    by_path[r->path] = r;
    if (!r->index.path.empty()) indexes.push_back(std::move(r->index));
  }
  for (const LockFinding& lf : analyze_lock_graph(indexes)) {
    const auto it = by_path.find(lf.file);
    if (it == by_path.end()) continue;
    if (!rule_enabled(lf.rule, it->second->scope, it->second->is_header,
                      opts)) {
      continue;
    }
    // Any waived site suppresses the finding (for a cycle, waiving one
    // edge acknowledges the whole ordering decision) — and every
    // matching allow is marked used, keeping it off the stale list.
    bool waived = false;
    for (const auto& [file, line] : lf.sites) {
      const auto st = by_path.find(file);
      if (st == by_path.end()) continue;
      FileView& view = st->second->view;
      if (line >= view.allowed.size()) continue;
      for (std::size_t idx : view.allowed[line]) {
        if (view.allows[idx].rule == lf.rule) {
          view.allows[idx].used = true;
          waived = true;
        }
      }
    }
    if (waived) continue;
    out.push_back(Finding{lf.file, lf.line + 1, lf.rule, lf.message});
  }
  // Waiver staleness, judged only after every rule — line-level and
  // cross-file — has had its chance to mark allows used.
  for (FileResult* r : files) {
    if (!rule_enabled("stale-waiver", r->scope, r->is_header, opts)) {
      continue;
    }
    for (const Allow& allow : r->view.allows) {
      if (allow.used) continue;
      if (!known_rule(allow.rule)) {
        out.push_back(Finding{r->path, allow.line + 1, "stale-waiver",
                              "allow(" + allow.rule +
                                  ") names an unknown rule and can never "
                                  "suppress anything (--list-rules)"});
        continue;
      }
      if (graph_rule(allow.rule) && !tree_mode) continue;
      if (!rule_enabled(allow.rule, r->scope, r->is_header, opts)) continue;
      out.push_back(Finding{r->path, allow.line + 1, "stale-waiver",
                            "allow(" + allow.rule +
                                ") suppresses no finding; delete the "
                                "waiver — a dead allow() silently absorbs "
                                "the next real violation on its line"});
    }
  }
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string Finding::to_string() const {
  return file + ":" + std::to_string(line) + ": [" + rule + "] " + message;
}

std::vector<RuleInfo> rules() {
  return {std::begin(kRules), std::end(kRules)};
}

bool known_rule(std::string_view id) {
  return std::any_of(std::begin(kRules), std::end(kRules),
                     [&](const RuleInfo& r) { return r.id == id; });
}

std::vector<Finding> lint_content(const std::string& path,
                                  std::string_view content,
                                  const Options& opts) {
  FileResult r = lint_one(path, content, opts);
  std::vector<Finding> findings = std::move(r.findings);
  std::vector<FileResult*> files{&r};
  apply_cross_file(files, opts, /*tree_mode=*/false, findings);
  std::sort(findings.begin(), findings.end(), finding_less);
  return findings;
}

std::vector<Finding> lint_file(const std::string& path, const Options& opts) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return {Finding{path, 0, "io", "cannot open file"}};
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return lint_content(path, ss.str(), opts);
}

TreeReport lint_tree(const std::vector<std::string>& roots,
                     const Options& opts) {
  namespace fs = std::filesystem;
  TreeReport report;
  std::vector<std::string> files;
  for (const auto& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);  // explicit files bypass excludes
      continue;
    }
    for (fs::recursive_directory_iterator it(root, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_directory() && excluded(it->path(), opts)) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable(it->path()) &&
          !excluded(it->path(), opts)) {
        files.push_back(it->path().string());
      }
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  report.files_scanned = files.size();

  // Per-file passes run concurrently into pre-sized slots; everything
  // after the merge is serial, so the report is byte-identical at any
  // worker count.
  std::vector<FileResult> results(files.size());
  support::ThreadPool pool(opts.workers);
  pool.parallel_for(files.size(), [&](std::size_t i) {
    std::ifstream in(files[i], std::ios::binary);
    if (!in) {
      results[i].path = files[i];
      results[i].io_error = true;
      return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    results[i] = lint_one(files[i], ss.str(), opts);
  });

  std::vector<FileResult*> ok;
  ok.reserve(results.size());
  for (FileResult& r : results) {
    if (r.io_error) {
      report.findings.push_back(Finding{r.path, 0, "io", "cannot open file"});
      continue;
    }
    report.findings.insert(report.findings.end(),
                           std::make_move_iterator(r.findings.begin()),
                           std::make_move_iterator(r.findings.end()));
    ok.push_back(&r);
  }
  apply_cross_file(ok, opts, /*tree_mode=*/true, report.findings);
  std::sort(report.findings.begin(), report.findings.end(), finding_less);
  return report;
}

std::string to_sarif(const TreeReport& report) {
  std::ostringstream os;
  os << "{\n"
     << "  \"version\": \"2.1.0\",\n"
     << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
     << "  \"runs\": [{\n"
     << "    \"tool\": {\"driver\": {\n"
     << "      \"name\": \"gb_lint\",\n"
     << "      \"version\": \"2.0.0\",\n"
     << "      \"rules\": [\n";
  const auto all = rules();
  for (std::size_t i = 0; i < all.size(); ++i) {
    os << "        {\"id\": \"" << all[i].id
       << "\", \"shortDescription\": {\"text\": \""
       << json_escape(all[i].summary) << "\"}}"
       << (i + 1 < all.size() ? "," : "") << "\n";
  }
  os << "      ]\n"
     << "    }},\n"
     << "    \"results\": [\n";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const Finding& f = report.findings[i];
    std::ptrdiff_t rule_index = -1;
    for (std::size_t r = 0; r < all.size(); ++r) {
      if (all[r].id == f.rule) rule_index = static_cast<std::ptrdiff_t>(r);
    }
    os << "      {\"ruleId\": \"" << json_escape(f.rule) << "\", ";
    if (rule_index >= 0) os << "\"ruleIndex\": " << rule_index << ", ";
    os << "\"level\": \"error\", \"message\": {\"text\": \""
       << json_escape(f.message)
       << "\"}, \"locations\": [{\"physicalLocation\": "
          "{\"artifactLocation\": {\"uri\": \""
       << json_escape(f.file) << "\"}";
    if (f.line > 0) os << ", \"region\": {\"startLine\": " << f.line << "}";
    os << "}}]}" << (i + 1 < report.findings.size() ? "," : "") << "\n";
  }
  os << "    ]\n"
     << "  }]\n"
     << "}\n";
  return os.str();
}

}  // namespace gb::lint
