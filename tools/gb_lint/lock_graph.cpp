// The cross-TU lock pass. See lock_graph.h for the model; the notes
// here are about the scanner, which is the only delicate part.
//
// The scanner is statement-oriented: it walks the blanked code view one
// character at a time, accumulating a "pending" statement buffer that
// flushes at `;`, `{`, and `}`. Braces drive a context stack
// (namespace / class / function / lambda / plain block), so every lock
// or call event lands in the function whose body it is lexically inside
// — with one crucial exception: a lambda body is its own anonymous
// function. A task submitted under a lock does NOT run under that lock,
// and attributing its body to the enclosing function would invent
// held-while edges that do not exist at runtime.
#include "gb_lint/lock_graph.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <set>
#include <string_view>
#include <tuple>

namespace gb::lint {

namespace {

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool macro_like(const std::string& s) {
  bool has_alpha = false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c)) != 0) return false;
    if (std::isupper(static_cast<unsigned char>(c)) != 0) has_alpha = true;
  }
  return has_alpha;
}

std::size_t skip_spaces(const std::string& s, std::size_t i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])) != 0) {
    ++i;
  }
  return i;
}

std::vector<std::size_t> find_word(const std::string& s,
                                   std::string_view word) {
  std::vector<std::size_t> hits;
  std::size_t pos = 0;
  while ((pos = s.find(word, pos)) != std::string::npos) {
    const bool left = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right = after >= s.size() || !ident_char(s[after]);
    if (left && right) hits.push_back(pos);
    pos = after;
  }
  return hits;
}

// RAII lock types whose constructor argument list names the mutexes.
constexpr std::string_view kRaiiTypes[] = {
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
    "MutexLock",  "CondLock",
};

// Direct blocking operations. `wait`/`wait_for`/`wait_until` are
// exempted when their first argument is a tracked RAII lock variable —
// a condition-variable wait RELEASES the lock, which is the one
// blocking-while-holding pattern that is correct by construction.
constexpr std::string_view kBlockingOps[] = {
    "submit",     "parallel_for", "wait",       "wait_for",  "wait_until",
    "wait_idle",  "wait_result",  "join",       "send_bytes", "recv_bytes",
    "write_frame", "read_frame",  "flush",      "fsync",     "sleep_for",
    "sleep_until",
};

// Identifiers that look like calls but never are (or never resolve).
constexpr std::string_view kCallKeywords[] = {
    "if",       "for",      "while",    "switch",   "catch",  "return",
    "sizeof",   "decltype", "noexcept", "alignof",  "assert",
    "static_assert", "co_await", "co_return", "throw",
};

// Method names shared with the standard library: resolving them by
// name-uniqueness alone would route std::string::append and friends to
// whatever class happens to define the only indexed method of that
// name. A declared-field-type hint still overrides this list.
constexpr std::string_view kStdMethodNames[] = {
    "append", "clear",  "push_back", "pop_back", "insert", "erase",
    "find",   "size",   "empty",     "begin",    "end",    "count",
    "reset",  "get",    "at",        "front",    "back",   "swap",
    "data",   "str",    "load",      "store",    "substr", "resize",
    "reserve", "open",  "close",     "read",     "write",  "good",
    "merge",  "emplace_back", "c_str", "compare", "value", "push",
};

bool in_list(std::string_view name, const std::string_view* first,
             const std::string_view* last) {
  return std::find(first, last, name) != last;
}

// --- mutex identity ---------------------------------------------------------

/// Canonical key for a mutex expression. The goal is that every way the
/// tree spells one mutex maps to one key, and distinct mutexes map to
/// distinct keys:
///   bare member `mu_` in class C            -> "C::mu"
///   bare local declared in this function    -> "<basename>::name"
///   `core_->mu`, `core.mu`, `st.core->mu`   -> "core.mu"
///   `queues_[target]->mu`                   -> "queues.mu"
/// Dotted forms keep the last two path segments (owner.field), strip
/// `this->`, subscripts, and the trailing-underscore member decoration.
std::string normalize_mutex(std::string expr, const std::string& cls,
                            const std::set<std::string>& local_mutexes,
                            const std::string& path) {
  // Trim and strip address-of / parens.
  std::string t;
  for (char c : expr) {
    if (c == '&' || c == '*' || c == '(' || c == ')' ||
        std::isspace(static_cast<unsigned char>(c)) != 0) {
      continue;
    }
    t.push_back(c);
  }
  if (t.rfind("this->", 0) == 0) t = t.substr(6);
  // Drop subscripts, rewrite -> as .
  std::string flat;
  int bracket = 0;
  for (std::size_t i = 0; i < t.size(); ++i) {
    if (t[i] == '[') { ++bracket; continue; }
    if (t[i] == ']') { if (bracket > 0) --bracket; continue; }
    if (bracket > 0) continue;
    if (t[i] == '-' && i + 1 < t.size() && t[i + 1] == '>') {
      flat.push_back('.');
      ++i;
      continue;
    }
    flat.push_back(t[i]);
  }
  std::vector<std::string> segs;
  std::string cur;
  for (char c : flat) {
    if (c == '.') {
      if (!cur.empty()) segs.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) segs.push_back(cur);
  for (auto& s : segs) {
    while (!s.empty() && s.back() == '_') s.pop_back();
  }
  segs.erase(std::remove_if(segs.begin(), segs.end(),
                            [](const std::string& s) { return s.empty(); }),
             segs.end());
  if (segs.empty()) return flat;
  if (segs.size() >= 2) {
    return segs[segs.size() - 2] + "." + segs.back();
  }
  const std::string& name = segs[0];
  if (local_mutexes.count(flat) != 0 || local_mutexes.count(name) != 0) {
    return std::filesystem::path(path).filename().string() + "::" + name;
  }
  if (!cls.empty()) return cls + "::" + name;
  return name;
}

// --- the scanner ------------------------------------------------------------

struct Held {
  std::string key;
  std::size_t depth = 0;   // brace depth at acquisition
  std::string var;         // RAII variable, empty for manual .lock()
  bool deferred = false;   // declared with std::defer_lock
};

struct FnCtx {
  // Index into LockIndexFile::functions — NOT a pointer: opening a
  // nested lambda push_back()s into that vector and would invalidate
  // any pointer held by the enclosing context.
  std::size_t idx = 0;
  std::vector<Held> held;
  std::set<std::string> local_mutexes;
  std::size_t base_depth = 0;
};

struct Ctx {
  enum Kind { kNamespace, kClass, kFunction, kLambda, kBlock };
  Kind kind = kBlock;
  std::string name;  // class name for kClass
};

struct Scanner {
  LockIndexFile& out;
  std::vector<Ctx> stack;
  std::vector<FnCtx> fns;  // function/lambda contexts, innermost last

  std::string pending;
  // Line of each pending character (statements span lines; findings
  // must point at the line the construct sits on, or waivers miss).
  std::vector<std::size_t> pend_line;

  void append(char c, std::size_t line) {
    pending.push_back(c);
    pend_line.push_back(line);
  }

  [[nodiscard]] std::string enclosing_class() const {
    for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
      if (it->kind == Ctx::kClass) return it->name;
      if (it->kind == Ctx::kFunction || it->kind == Ctx::kLambda) break;
    }
    return {};
  }

  [[nodiscard]] FnCtx* active_fn() {
    return fns.empty() ? nullptr : &fns.back();
  }

  [[nodiscard]] LockFunction& fn_of(const FnCtx& c) {
    return out.functions[c.idx];
  }

  [[nodiscard]] bool known_local_mutex(const std::string& name) const {
    for (auto it = fns.rbegin(); it != fns.rend(); ++it) {
      if (it->local_mutexes.count(name) != 0) return true;
    }
    return false;
  }

  [[nodiscard]] std::set<std::string> all_local_mutexes() const {
    std::set<std::string> all;
    for (const auto& f : fns) {
      all.insert(f.local_mutexes.begin(), f.local_mutexes.end());
    }
    return all;
  }

  std::size_t line_at(std::size_t off) const {
    return off < pend_line.size() ? pend_line[off]
                                  : (pend_line.empty() ? 0 : pend_line.back());
  }

  [[nodiscard]] std::vector<std::string> held_keys() const {
    std::vector<std::string> keys;
    if (!fns.empty()) {
      for (const auto& h : fns.back().held) {
        if (h.deferred) continue;
        if (std::find(keys.begin(), keys.end(), h.key) == keys.end()) {
          keys.push_back(h.key);
        }
      }
    }
    return keys;
  }

  // -- statement analysis ----------------------------------------------------

  /// Extracts top-level comma-separated arguments of the paren group
  /// starting at `open` ('('). Returns args and sets `close`.
  static std::vector<std::string> split_args(const std::string& s,
                                             std::size_t open,
                                             std::size_t& close) {
    std::vector<std::string> args;
    std::string cur;
    int depth = 0;
    std::size_t i = open;
    for (; i < s.size(); ++i) {
      const char c = s[i];
      if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
      if (c == '(' && depth == 1) continue;
      if (c == ')' && depth == 0) break;
      if (c == ',' && depth == 1) {
        args.push_back(cur);
        cur.clear();
        continue;
      }
      cur.push_back(c);
    }
    close = i;
    if (!cur.empty()) args.push_back(cur);
    return args;
  }

  /// The receiver identifier of a member call: walks left from the
  /// `.`/`->` at `sep`, skipping one subscript and one empty call
  /// (`x.native()` reads back to `x`).
  static std::string receiver_before(const std::string& s, std::size_t sep) {
    std::size_t i = sep;
    auto skip_back_group = [&](char open, char close) {
      if (i == 0 || s[i - 1] != close) return false;
      int depth = 0;
      std::size_t j = i;
      while (j > 0) {
        --j;
        if (s[j] == close) ++depth;
        if (s[j] == open && --depth == 0) {
          i = j;
          return true;
        }
      }
      return false;
    };
    // x.native()->, x->, shards_[k]->
    for (int hops = 0; hops < 3; ++hops) {
      if (skip_back_group('(', ')')) {
        // skip the method name of the inner call, then its separator
        while (i > 0 && ident_char(s[i - 1])) --i;
        if (i >= 2 && s[i - 1] == '>' && s[i - 2] == '-') i -= 2;
        else if (i > 0 && s[i - 1] == '.') --i;
        continue;
      }
      if (skip_back_group('[', ']')) continue;
      break;
    }
    std::size_t end = i;
    while (i > 0 && ident_char(s[i - 1])) --i;
    return s.substr(i, end - i);
  }

  void record_acquire(FnCtx& fn, const std::string& key, std::size_t line,
                      const std::string& var, bool deferred,
                      const std::vector<std::string>& already_new) {
    if (!deferred) {
      // Edges from everything currently held — except co-members of one
      // scoped_lock, which deadlock-avoids by design.
      for (const auto& h : fn.held) {
        if (h.deferred) continue;
        if (std::find(already_new.begin(), already_new.end(), h.key) !=
            already_new.end()) {
          continue;
        }
        fn_of(fn).edges.push_back(LockEdge{h.key, key, out.path, line});
      }
      auto& acquires = fn_of(fn).acquires;
      if (std::find(acquires.begin(), acquires.end(), key) ==
          acquires.end()) {
        acquires.push_back(key);
      }
    }
    fn.held.push_back(Held{key, stack.size(), var, deferred});
  }

  /// Lock declarations, manual lock()/unlock(), blocking ops, and call
  /// sites in one statement. `vars_declared` collects RAII variable
  /// names so the call scan does not mistake `lk(mu)` for a call.
  void analyze_statement() {
    FnCtx* fn = active_fn();
    const std::string& s = pending;
    const std::string cls =
        fn != nullptr ? fn_of(*fn).cls : enclosing_class();
    std::set<std::string> vars_declared;

    if (fn != nullptr) {
      // Local mutex declarations: `std::mutex error_mu;`
      for (std::string_view type : {"mutex", "shared_mutex", "Mutex"}) {
        for (std::size_t pos : find_word(s, type)) {
          if (type != "Mutex" &&
              !(pos >= 5 && s.compare(pos - 5, 5, "std::") == 0)) {
            continue;
          }
          std::size_t i = skip_spaces(s, pos + type.size());
          if (i >= s.size() || !ident_char(s[i]) ||
              std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
            continue;
          }
          std::size_t e = i;
          while (e < s.size() && ident_char(s[e])) ++e;
          const std::size_t after = skip_spaces(s, e);
          if (after < s.size() && s[after] == '(') continue;  // a call
          fn->local_mutexes.insert(s.substr(i, e - i));
        }
      }

      // RAII lock declarations.
      for (std::string_view type : kRaiiTypes) {
        for (std::size_t pos : find_word(s, type)) {
          std::size_t i = pos + type.size();
          if (i < s.size() && s[i] == '<') {  // template argument list
            int depth = 0;
            while (i < s.size()) {
              if (s[i] == '<') ++depth;
              if (s[i] == '>' && --depth == 0) { ++i; break; }
              ++i;
            }
          }
          i = skip_spaces(s, i);
          if (i >= s.size() || !ident_char(s[i])) continue;
          std::size_t ve = i;
          while (ve < s.size() && ident_char(s[ve])) ++ve;
          const std::string var = s.substr(i, ve - i);
          std::size_t open = skip_spaces(s, ve);
          if (open >= s.size() || s[open] != '(') continue;
          vars_declared.insert(var);
          std::size_t close = 0;
          const auto args = split_args(s, open, close);
          bool deferred = false;
          for (const auto& arg : args) {
            deferred |= arg.find("defer_lock") != std::string::npos;
          }
          std::vector<std::string> new_keys;
          for (const auto& arg : args) {
            if (arg.find("adopt_lock") != std::string::npos ||
                arg.find("defer_lock") != std::string::npos ||
                arg.find("try_to_lock") != std::string::npos) {
              continue;
            }
            const std::string key =
                normalize_mutex(arg, cls, all_local_mutexes(), out.path);
            if (key.empty()) continue;
            record_acquire(*fn, key, line_at(pos), var, deferred, new_keys);
            new_keys.push_back(key);
          }
        }
      }

      // Manual x.lock() / x->lock() / x.unlock() on a tracked RAII
      // variable or on a mutex-named object.
      for (std::string_view op : {"lock", "unlock"}) {
        for (std::size_t pos : find_word(s, op)) {
          if (pos == 0) continue;
          const bool dot = s[pos - 1] == '.';
          const bool arrow = pos >= 2 && s[pos - 1] == '>' && s[pos - 2] == '-';
          if (!dot && !arrow) continue;
          const std::size_t open = skip_spaces(s, pos + op.size());
          if (open >= s.size() || s[open] != '(') continue;
          const std::string recv = receiver_before(s, pos - (dot ? 1 : 2));
          if (recv.empty()) continue;
          // RAII variable (covers deferred unique_locks)?
          Held* tracked = nullptr;
          for (auto& h : fn->held) {
            if (h.var == recv) tracked = &h;
          }
          std::string stem = recv;
          while (!stem.empty() && stem.back() == '_') stem.pop_back();
          const bool mutexish =
              stem == "mu" || stem == "mutex" ||
              (stem.size() > 3 && stem.compare(stem.size() - 3, 3, "_mu") == 0);
          if (tracked == nullptr && !mutexish) continue;
          if (op == "lock") {
            if (tracked != nullptr) {
              tracked->deferred = false;
            } else {
              record_acquire(*fn, normalize_mutex(recv, cls,
                                                  all_local_mutexes(),
                                                  out.path),
                             line_at(pos), "", false, {});
            }
          } else {
            const std::string key =
                tracked != nullptr
                    ? tracked->key
                    : normalize_mutex(recv, cls, all_local_mutexes(),
                                      out.path);
            for (std::size_t k = fn->held.size(); k > 0; --k) {
              if (fn->held[k - 1].key == key) {
                fn->held.erase(fn->held.begin() +
                               static_cast<std::ptrdiff_t>(k - 1));
                break;
              }
            }
          }
        }
      }
    }

    // Annotation references + GB_REQUIRES (any scope).
    harvest_annotations(s, cls);

    if (fn == nullptr) return;

    // Call sites and blocking ops.
    std::size_t i = 0;
    while (i < s.size()) {
      if (!ident_char(s[i]) ||
          std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
        ++i;
        continue;
      }
      std::size_t e = i;
      while (e < s.size() && ident_char(s[e])) ++e;
      const std::string name = s.substr(i, e - i);
      const std::size_t open = skip_spaces(s, e);
      const std::size_t start = i;
      i = e;
      if (open >= s.size() || s[open] != '(') continue;
      if (vars_declared.count(name) != 0) continue;
      if (macro_like(name)) continue;
      if (in_list(name, std::begin(kCallKeywords), std::end(kCallKeywords))) {
        continue;
      }
      if (name == "lock" || name == "unlock" || name == "try_lock" ||
          name == "native" || name == "notify_one" || name == "notify_all") {
        continue;
      }
      if (in_list(name, std::begin(kRaiiTypes), std::end(kRaiiTypes))) {
        continue;
      }
      const bool dot = start > 0 && s[start - 1] == '.';
      const bool arrow =
          start >= 2 && s[start - 1] == '>' && s[start - 2] == '-';
      const bool member = dot || arrow;
      const std::string recv =
          member ? receiver_before(s, start - (dot ? 1 : 2)) : std::string();

      if (in_list(name, std::begin(kBlockingOps), std::end(kBlockingOps))) {
        bool cv_wait = false;
        if (name == "wait" || name == "wait_for" || name == "wait_until") {
          // First argument starts with a tracked RAII lock variable:
          // this is a condition-variable wait, which releases the lock.
          std::size_t close = 0;
          const auto args = split_args(s, open, close);
          if (!args.empty()) {
            std::string a0 = args[0];
            const std::size_t b = a0.find_first_not_of(" \t");
            if (b != std::string::npos) a0 = a0.substr(b);
            std::size_t ae = 0;
            while (ae < a0.size() && ident_char(a0[ae])) ++ae;
            const std::string head = a0.substr(0, ae);
            for (const auto& f : fns) {
              for (const auto& h : f.held) {
                cv_wait |= !head.empty() && h.var == head;
              }
            }
          }
        }
        if (!cv_wait) {
          fn_of(*fn).blocking.push_back(
              LockBlockOp{name, line_at(start), held_keys()});
        }
      }
      fn_of(*fn).calls.push_back(
          LockCallSite{name, recv, member, line_at(start), held_keys()});
    }
  }

  void harvest_annotations(const std::string& s, const std::string& cls) {
    std::size_t pos = 0;
    while ((pos = s.find("GB_", pos)) != std::string::npos) {
      if (pos > 0 && ident_char(s[pos - 1])) { pos += 3; continue; }
      std::size_t e = pos;
      while (e < s.size() && ident_char(s[e])) ++e;
      const std::string macro = s.substr(pos, e - pos);
      pos = e;
      const std::size_t open = skip_spaces(s, e);
      if (open >= s.size() || s[open] != '(') continue;
      std::size_t close = 0;
      const auto args = split_args(s, open, close);
      std::vector<std::string> keys;
      for (const auto& arg : args) {
        std::size_t j = 0;
        while (j < arg.size()) {
          if (!ident_char(arg[j])) { ++j; continue; }
          std::size_t k = j;
          while (k < arg.size() && ident_char(arg[k])) ++k;
          out.annotation_refs.push_back(arg.substr(j, k - j));
          j = k;
        }
        if (macro == "GB_REQUIRES") {
          keys.push_back(normalize_mutex(arg, cls, {}, out.path));
        }
      }
      if (macro == "GB_REQUIRES" && !keys.empty()) {
        FnCtx* fn = active_fn();
        if (fn != nullptr) {
          // Attribute on a definition currently being entered is
          // handled at push_function; here it is a re-statement.
          for (const auto& k : keys) {
            fn_of(*fn).requires_held.push_back(k);
          }
        } else {
          // Body-less declaration: `void f(...) GB_REQUIRES(mu_);`
          const std::size_t fp = s.find('(');
          if (fp != std::string::npos && fp < open) {
            std::size_t ne = fp;
            while (ne > 0 &&
                   std::isspace(static_cast<unsigned char>(s[ne - 1])) != 0) {
              --ne;
            }
            std::size_t nb = ne;
            while (nb > 0 && ident_char(s[nb - 1])) --nb;
            const std::string fname = s.substr(nb, ne - nb);
            if (!fname.empty()) {
              out.requires_decls.push_back({{cls, fname}, keys});
            }
          }
        }
      }
    }
  }

  /// Class-scope statement: mutex members and field type hints.
  void analyze_member_decl() {
    const std::string& s = pending;
    const std::string cls = enclosing_class();
    if (cls.empty()) {
      harvest_annotations(s, cls);
      return;
    }
    harvest_annotations(s, cls);
    // Mutex members.
    struct MType { std::string_view spelled; bool needs_std; };
    for (const MType t : {MType{"mutex", true}, MType{"shared_mutex", true},
                          MType{"recursive_mutex", true},
                          MType{"Mutex", false}}) {
      for (std::size_t pos : find_word(s, t.spelled)) {
        if (t.needs_std &&
            !(pos >= 5 && s.compare(pos - 5, 5, "std::") == 0)) {
          continue;
        }
        std::size_t i = skip_spaces(s, pos + t.spelled.size());
        if (i >= s.size() || !ident_char(s[i]) ||
            std::isdigit(static_cast<unsigned char>(s[i])) != 0) {
          continue;  // reference/pointer/template use, not a member
        }
        std::size_t e = i;
        while (e < s.size() && ident_char(s[e])) ++e;
        const std::size_t after = skip_spaces(s, e);
        if (after < s.size() && s[after] == '(') continue;  // a function
        out.mutex_members.push_back(
            LockMutexMember{cls, s.substr(i, e - i), line_at(pos)});
      }
    }
    // Field type hints for member-call resolution. Smart pointers
    // first, then `Type* name` / `Type& name` / `Type name`.
    if (s.find('(') == std::string::npos || s.find("unique_ptr") != std::string::npos ||
        s.find("shared_ptr") != std::string::npos) {
      std::string type;
      for (std::string_view sp : {"unique_ptr", "shared_ptr"}) {
        const std::size_t pos = s.find(sp);
        if (pos == std::string::npos) continue;
        std::size_t lt = pos + sp.size();
        if (lt >= s.size() || s[lt] != '<') continue;
        int depth = 0;
        std::size_t j = lt, close = std::string::npos;
        for (; j < s.size(); ++j) {
          if (s[j] == '<') ++depth;
          if (s[j] == '>' && --depth == 0) { close = j; break; }
        }
        if (close == std::string::npos) continue;
        type = s.substr(lt + 1, close - lt - 1);
        break;
      }
      if (type.empty() && s.find('(') == std::string::npos &&
          s.find('<') == std::string::npos) {
        // `ns::Type* name_;` — everything before the last identifier.
        type = s;
      }
      if (!type.empty()) {
        // Last :: segment of the type's first token run.
        std::string last_seg, seg;
        bool done = false;
        for (char c : type) {
          if (ident_char(c)) {
            seg.push_back(c);
          } else if (c == ':') {
            if (!seg.empty()) { last_seg = seg; seg.clear(); }
          } else if (!seg.empty()) {
            last_seg = seg;
            done = true;
            break;
          }
        }
        if (!done && !seg.empty()) last_seg = seg;
        // Field name: last identifier before ; = { terminators.
        std::size_t e = s.size();
        const std::size_t stop = s.find_first_of("={");
        if (stop != std::string::npos) e = stop;
        while (e > 0 && !ident_char(s[e - 1])) --e;
        std::size_t b = e;
        while (b > 0 && ident_char(s[b - 1])) --b;
        const std::string field = s.substr(b, e - b);
        if (!field.empty() && !last_seg.empty() && last_seg != field &&
            !macro_like(last_seg) &&
            std::isupper(static_cast<unsigned char>(last_seg[0])) != 0) {
          out.field_types[{cls, field}] = last_seg;
        }
      }
    }
  }

  // -- brace / statement dispatch --------------------------------------------

  /// True when `pending` ends in a lambda introducer + parameter list,
  /// i.e. the `{` about to open is a lambda body.
  [[nodiscard]] bool pending_is_lambda() const {
    if (fns.empty()) return false;  // lambdas at namespace scope: rare, skip
    const std::string& s = pending;
    // Find the last '[' that is a lambda introducer (not a subscript).
    std::size_t intro = std::string::npos;
    for (std::size_t i = 0; i < s.size(); ++i) {
      if (s[i] != '[') continue;
      std::size_t p = i;
      while (p > 0 &&
             std::isspace(static_cast<unsigned char>(s[p - 1])) != 0) {
        --p;
      }
      if (p == 0 || (!ident_char(s[p - 1]) && s[p - 1] != ')' &&
                     s[p - 1] != ']')) {
        intro = i;
      }
    }
    if (intro == std::string::npos) return false;
    // Between the matching ']' and the end: only parameter-list /
    // specifier characters.
    int depth = 0;
    std::size_t close = std::string::npos;
    for (std::size_t i = intro; i < s.size(); ++i) {
      if (s[i] == '[') ++depth;
      if (s[i] == ']' && --depth == 0) { close = i; break; }
    }
    if (close == std::string::npos) return false;
    for (std::size_t i = close + 1; i < s.size(); ++i) {
      const char c = s[i];
      if (ident_char(c) || std::isspace(static_cast<unsigned char>(c)) != 0 ||
          c == '(' || c == ')' || c == '<' || c == '>' || c == '&' ||
          c == '*' || c == ':' || c == ',' || c == '-' || c == '.') {
        continue;
      }
      return false;
    }
    return true;
  }

  void open_brace(std::size_t line) {
    // Events in a control-flow or call head (`while (cond) {`,
    // `cv.wait(lk, [&] {`) belong to the enclosing function.
    const bool lambda = pending_is_lambda();
    if (active_fn() != nullptr) analyze_statement();

    Ctx ctx;
    const std::string& s = pending;
    if (lambda) {
      ctx.kind = Ctx::kLambda;
      out.functions.push_back(LockFunction{});
      LockFunction& f = out.functions.back();
      f.cls.clear();
      f.name = "<lambda>";
      f.file = out.path;
      f.line = line;
      f.anonymous = true;
      fns.push_back(FnCtx{out.functions.size() - 1, {}, {}, stack.size() + 1});
    } else if (active_fn() != nullptr) {
      ctx.kind = Ctx::kBlock;
    } else if (!find_word(s, "namespace").empty()) {
      ctx.kind = Ctx::kNamespace;
    } else if ((!find_word(s, "class").empty() ||
                !find_word(s, "struct").empty()) &&
               find_word(s, "enum").empty() &&
               s.find('(') == std::string::npos) {
      ctx.kind = Ctx::kClass;
      // Name: first non-macro identifier after the keyword.
      std::size_t kw = 0;
      for (std::string_view w : {"class", "struct"}) {
        for (std::size_t pos : find_word(s, w)) kw = std::max(kw, pos);
      }
      std::size_t i = kw;
      while (i < s.size() && ident_char(s[i])) ++i;
      while (i < s.size()) {
        i = skip_spaces(s, i);
        if (i >= s.size() || s[i] == ':' || s[i] == '{') break;
        std::size_t e = i;
        while (e < s.size() && ident_char(s[e])) ++e;
        if (e == i) break;
        const std::string tok = s.substr(i, e - i);
        if (!macro_like(tok) && tok != "final" && tok != "alignas") {
          ctx.name = tok;
          break;
        }
        i = e;
      }
    } else if (s.find('(') != std::string::npos) {
      // Function definition at namespace/class scope.
      const std::size_t open = s.find('(');
      std::size_t e = open;
      while (e > 0 &&
             std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) {
        --e;
      }
      std::size_t b = e;
      while (b > 0 && (ident_char(s[b - 1]) || s[b - 1] == ':' ||
                       s[b - 1] == '~')) {
        --b;
      }
      std::string qname = s.substr(b, e - b);
      std::string cls = enclosing_class();
      std::string name = qname;
      const std::size_t sep = qname.rfind("::");
      if (sep != std::string::npos) {
        cls = qname.substr(0, sep);
        const std::size_t csep = cls.rfind("::");
        if (csep != std::string::npos) cls = cls.substr(csep + 2);
        name = qname.substr(sep + 2);
      }
      if (!name.empty() && name[0] == '~') name = name.substr(1);
      ctx.kind = Ctx::kFunction;
      out.functions.push_back(LockFunction{});
      LockFunction& f = out.functions.back();
      f.cls = cls;
      f.name = name;
      f.file = out.path;
      f.line = line;
      f.anonymous = name.empty() || name == "operator" ||
                    in_list(name, std::begin(kCallKeywords),
                            std::end(kCallKeywords));
      // GB_REQUIRES on the definition's signature.
      std::size_t rq = 0;
      while ((rq = s.find("GB_REQUIRES", rq)) != std::string::npos) {
        const std::size_t ro = s.find('(', rq);
        if (ro == std::string::npos) break;
        std::size_t rc = 0;
        for (const auto& arg : split_args(s, ro, rc)) {
          f.requires_held.push_back(normalize_mutex(arg, cls, {}, out.path));
        }
        rq = rc;
      }
      fns.push_back(FnCtx{out.functions.size() - 1, {}, {}, stack.size() + 1});
    } else {
      ctx.kind = Ctx::kBlock;  // brace init, extern "C", etc.
    }
    stack.push_back(ctx);
    pending.clear();
    pend_line.clear();
  }

  void close_brace() {
    if (!pending.empty() && active_fn() != nullptr) analyze_statement();
    pending.clear();
    pend_line.clear();
    if (stack.empty()) return;
    const Ctx::Kind kind = stack.back().kind;
    stack.pop_back();
    if ((kind == Ctx::kFunction || kind == Ctx::kLambda) && !fns.empty()) {
      fns.pop_back();
    }
    // RAII releases at scope exit.
    if (FnCtx* fn = active_fn()) {
      auto& held = fn->held;
      held.erase(std::remove_if(held.begin(), held.end(),
                                [&](const Held& h) {
                                  return h.depth > stack.size();
                                }),
                 held.end());
    }
  }

  void statement_end() {
    if (active_fn() != nullptr) {
      analyze_statement();
    } else {
      analyze_member_decl();
    }
    pending.clear();
    pend_line.clear();
  }
};

}  // namespace

LockIndexFile index_lock_file(const std::string& path,
                              const std::vector<std::string>& code) {
  LockIndexFile out;
  out.path = path;
  // The capability wrappers' own definitions (Mutex::lock and friends)
  // would alias every manual lock() in the tree onto one node.
  if (std::filesystem::path(path).filename() == "thread_annotations.h") {
    return out;
  }
  Scanner sc{out, {}, {}, {}, {}};
  for (std::size_t li = 0; li < code.size(); ++li) {
    const std::string& line = code[li];
    for (char c : line) {
      if (c == '{') {
        sc.open_brace(li);
      } else if (c == '}') {
        sc.close_brace();
      } else if (c == ';') {
        sc.statement_end();
      } else {
        sc.append(c, li);
      }
    }
    sc.append(' ', li);  // newlines separate tokens
  }
  return out;
}

// --- cycle detection --------------------------------------------------------

std::vector<std::vector<std::string>> detect_lock_cycles(
    const std::vector<LockEdge>& edges) {
  std::map<std::string, std::set<std::string>> adj;
  std::set<std::string> self_loops;
  for (const auto& e : edges) {
    if (e.from.empty() || e.to.empty()) continue;
    adj[e.from].insert(e.to);
    adj[e.to];  // ensure node exists
    if (e.from == e.to) self_loops.insert(e.from);
  }

  // Iterative Tarjan.
  std::map<std::string, int> index, low;
  std::set<std::string> on_stack;
  std::vector<std::string> stck;
  int next_index = 0;
  std::vector<std::vector<std::string>> sccs;

  struct Frame {
    std::string node;
    std::set<std::string>::const_iterator it, end;
  };
  for (const auto& [root, _] : adj) {
    if (index.count(root) != 0) continue;
    std::vector<Frame> frames;
    index[root] = low[root] = next_index++;
    stck.push_back(root);
    on_stack.insert(root);
    frames.push_back({root, adj[root].begin(), adj[root].end()});
    while (!frames.empty()) {
      Frame& f = frames.back();
      if (f.it != f.end) {
        const std::string next = *f.it++;
        if (index.count(next) == 0) {
          index[next] = low[next] = next_index++;
          stck.push_back(next);
          on_stack.insert(next);
          frames.push_back({next, adj[next].begin(), adj[next].end()});
        } else if (on_stack.count(next) != 0) {
          low[f.node] = std::min(low[f.node], index[next]);
        }
        continue;
      }
      if (low[f.node] == index[f.node]) {
        std::vector<std::string> scc;
        for (;;) {
          const std::string n = stck.back();
          stck.pop_back();
          on_stack.erase(n);
          scc.push_back(n);
          if (n == f.node) break;
        }
        if (scc.size() > 1 ||
            (scc.size() == 1 && self_loops.count(scc[0]) != 0)) {
          std::sort(scc.begin(), scc.end());
          sccs.push_back(std::move(scc));
        }
      }
      const std::string done = f.node;
      frames.pop_back();
      if (!frames.empty()) {
        low[frames.back().node] =
            std::min(low[frames.back().node], low[done]);
      }
    }
  }
  std::sort(sccs.begin(), sccs.end());
  return sccs;
}

// --- the cross-TU analysis --------------------------------------------------

namespace {

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

}  // namespace

std::vector<LockFinding> analyze_lock_graph(
    const std::vector<LockIndexFile>& files) {
  // Function tables. Pointers stay valid: `files` is const.
  std::vector<const LockFunction*> fns;
  std::map<std::pair<std::string, std::string>,
           std::vector<const LockFunction*>>
      by_class_method;
  std::map<std::string, std::vector<const LockFunction*>> by_name;
  std::map<std::pair<std::string, std::string>,
           std::vector<const LockFunction*>>
      free_by_file;
  std::map<std::pair<std::string, std::string>, std::string> field_types;
  for (const auto& file : files) {
    for (const auto& f : file.functions) {
      fns.push_back(&f);
      if (f.anonymous) continue;
      by_name[f.name].push_back(&f);
      if (!f.cls.empty()) {
        by_class_method[{f.cls, f.name}].push_back(&f);
      } else {
        free_by_file[{file.path, f.name}].push_back(&f);
      }
    }
    for (const auto& [key, type] : file.field_types) {
      field_types.emplace(key, type);
    }
  }

  // Merge GB_REQUIRES from body-less declarations into definitions.
  std::map<const LockFunction*, std::set<std::string>> requires_held;
  for (const auto* f : fns) {
    requires_held[f].insert(f->requires_held.begin(),
                            f->requires_held.end());
  }
  for (const auto& file : files) {
    for (const auto& [key, keys] : file.requires_decls) {
      const auto it = by_class_method.find(key);
      if (it == by_class_method.end()) continue;
      for (const auto* f : it->second) {
        requires_held[f].insert(keys.begin(), keys.end());
      }
    }
  }

  // Call resolution (deliberate under-approximation — see header).
  auto resolve = [&](const LockFunction& caller, const LockCallSite& call)
      -> std::vector<const LockFunction*> {
    if (call.member_call) {
      if (!call.receiver.empty() && !caller.cls.empty()) {
        const auto ht = field_types.find({caller.cls, call.receiver});
        if (ht != field_types.end()) {
          const auto mt = by_class_method.find({ht->second, call.callee});
          if (mt != by_class_method.end()) return mt->second;
        }
      }
      if (in_list(call.callee, std::begin(kStdMethodNames),
                  std::end(kStdMethodNames))) {
        return {};
      }
      const auto it = by_name.find(call.callee);
      if (it == by_name.end()) return {};
      // Unique method name tree-wide (all candidates in one class).
      std::string cls;
      for (const auto* f : it->second) {
        if (f->cls.empty()) return {};
        if (cls.empty()) cls = f->cls;
        if (f->cls != cls) return {};
      }
      return it->second;
    }
    // Bare call: same class, then same-file free fn, then unique free fn.
    if (!caller.cls.empty()) {
      const auto mt = by_class_method.find({caller.cls, call.callee});
      if (mt != by_class_method.end()) return mt->second;
    }
    const auto ft = free_by_file.find({caller.file, call.callee});
    if (ft != free_by_file.end()) return ft->second;
    if (in_list(call.callee, std::begin(kStdMethodNames),
                std::end(kStdMethodNames))) {
      return {};
    }
    const auto it = by_name.find(call.callee);
    if (it == by_name.end()) return {};
    std::vector<const LockFunction*> frees;
    for (const auto* f : it->second) {
      if (f->cls.empty()) frees.push_back(f);
    }
    if (frees.size() == it->second.size() && !frees.empty()) {
      // All candidates are free functions in one file?
      std::string file0 = frees[0]->file;
      for (const auto* f : frees) {
        if (f->file != file0) return {};
      }
      return frees;
    }
    return {};
  };

  std::map<const LockFunction*,
           std::vector<std::vector<const LockFunction*>>>
      resolved;
  for (const auto* f : fns) {
    auto& r = resolved[f];
    r.reserve(f->calls.size());
    for (const auto& c : f->calls) r.push_back(resolve(*f, c));
  }

  // Fixpoint 1: transitively acquired mutexes.
  std::map<const LockFunction*, std::set<std::string>> acq;
  for (const auto* f : fns) {
    acq[f].insert(f->acquires.begin(), f->acquires.end());
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto* f : fns) {
      auto& mine = acq[f];
      const std::size_t before = mine.size();
      for (const auto& targets : resolved[f]) {
        for (const auto* t : targets) {
          const auto& theirs = acq[t];
          mine.insert(theirs.begin(), theirs.end());
        }
      }
      changed |= mine.size() != before;
    }
  }

  // Fixpoint 2: held on entry (declared requirements plus every
  // call-site context).
  std::map<const LockFunction*, std::set<std::string>> entry;
  for (const auto* f : fns) entry[f] = requires_held[f];
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto* f : fns) {
      const auto& my_entry = entry[f];
      for (std::size_t ci = 0; ci < f->calls.size(); ++ci) {
        std::set<std::string> ctx(f->calls[ci].held.begin(),
                                  f->calls[ci].held.end());
        ctx.insert(my_entry.begin(), my_entry.end());
        for (const auto* t : resolved[f][ci]) {
          auto& te = entry[t];
          const std::size_t before = te.size();
          te.insert(ctx.begin(), ctx.end());
          changed |= te.size() != before;
        }
      }
    }
  }

  // Edge set: intra-function edges plus acquired-through-call edges.
  std::vector<LockEdge> edges;
  for (const auto* f : fns) {
    edges.insert(edges.end(), f->edges.begin(), f->edges.end());
    for (std::size_t ci = 0; ci < f->calls.size(); ++ci) {
      const auto& call = f->calls[ci];
      if (call.held.empty()) continue;
      for (const auto* t : resolved[f][ci]) {
        for (const auto& m : acq[t]) {
          for (const auto& h : call.held) {
            edges.push_back(LockEdge{h, m, f->file, call.line});
          }
        }
      }
    }
  }

  std::vector<LockFinding> findings;

  // Rule: lock-order-cycle.
  for (const auto& cyc : detect_lock_cycles(edges)) {
    const std::set<std::string> members(cyc.begin(), cyc.end());
    std::vector<std::pair<std::string, std::size_t>> sites;
    for (const auto& e : edges) {
      if (members.count(e.from) != 0 && members.count(e.to) != 0) {
        sites.emplace_back(e.file, e.line);
      }
    }
    std::sort(sites.begin(), sites.end());
    sites.erase(std::unique(sites.begin(), sites.end()), sites.end());
    if (sites.empty()) continue;
    std::string msg =
        cyc.size() == 1
            ? "re-entrant acquisition of '" + cyc[0] +
                  "': a thread holding it acquires it again (deadlock "
                  "with std::mutex)"
            : "lock-order cycle: " + join(cyc, " -> ") + " -> " + cyc[0] +
                  "; threads acquire these mutexes in conflicting orders "
                  "— pick one global order (or waive the intended edge "
                  "with a rationale)";
    findings.push_back(LockFinding{"lock-order-cycle", sites.front().first,
                                   sites.front().second, std::move(msg),
                                   std::move(sites)});
  }

  // Rule: blocking-under-lock.
  for (const auto* f : fns) {
    for (const auto& op : f->blocking) {
      std::set<std::string> held(op.held.begin(), op.held.end());
      held.insert(entry[f].begin(), entry[f].end());
      if (held.empty()) continue;
      const std::vector<std::string> sorted(held.begin(), held.end());
      findings.push_back(LockFinding{
          "blocking-under-lock", f->file, op.line,
          "'" + op.op + "' may block while holding {" + join(sorted, ", ") +
              "}; move it outside the critical section or waive with a "
              "documented rationale",
          {{f->file, op.line}}});
    }
  }

  // Rule: unannotated-guarded-member (per file: the annotation and the
  // member live in the same header by construction).
  for (const auto& file : files) {
    const std::set<std::string> refs(file.annotation_refs.begin(),
                                     file.annotation_refs.end());
    for (const auto& m : file.mutex_members) {
      if (refs.count(m.name) != 0) continue;
      findings.push_back(LockFinding{
          "unannotated-guarded-member", file.path, m.line,
          "mutex member '" + m.name + "' of " + m.cls +
              " has no GB_GUARDED_BY/GB_REQUIRES references in this "
              "file; annotate the state it guards (see "
              "support/thread_annotations.h)",
          {{file.path, m.line}}});
    }
  }

  std::sort(findings.begin(), findings.end(),
            [](const LockFinding& a, const LockFinding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
  return findings;
}

}  // namespace gb::lint
