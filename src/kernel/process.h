// Process and thread objects (EPROCESS / ETHREAD analogues).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/types.h"

namespace gb::kernel {

struct Thread {
  Tid tid = 0;
  Pid owner_pid = 0;
};

/// An EPROCESS analogue plus the user-mode state the scans consult.
///
/// Ownership: processes live in the kernel's id table (the PspCidTable
/// analogue). The Active Process List holds non-owning links that DKOM
/// ghostware (FU) unlinks; the object — and its schedulable threads —
/// remain alive, which is precisely why the paper's "advanced mode" can
/// still find it.
class Process {
 public:
  Process(Pid pid, Pid parent, std::string image_path, std::string image_name)
      : pid_(pid),
        parent_pid_(parent),
        image_path_(std::move(image_path)),
        image_name_(std::move(image_name)) {}

  Pid pid() const { return pid_; }
  Pid parent_pid() const { return parent_pid_; }
  const std::string& image_path() const { return image_path_; }
  const std::string& image_name() const { return image_name_; }

  /// User-mode PEB loader list — what NtQueryInformationProcess-based
  /// tools read. Writable: Vanquish blanks entries here.
  std::vector<PebModuleEntry>& peb_modules() { return peb_modules_; }
  const std::vector<PebModuleEntry>& peb_modules() const {
    return peb_modules_;
  }

  /// Kernel-side module truth; GhostBuster's low-level module scan reads
  /// this, user-mode ghostware cannot rewrite it.
  const std::vector<KernelModule>& kernel_modules() const {
    return kernel_modules_;
  }

  /// Maps a module into the process: updates both the kernel truth and
  /// the PEB view (they start out consistent, as in a clean system).
  void load_module(std::string_view path);

  ProcessInfo info() const { return {pid_, parent_pid_, image_name_}; }

 private:
  Pid pid_;
  Pid parent_pid_;
  std::string image_path_;
  std::string image_name_;
  std::vector<PebModuleEntry> peb_modules_;
  std::vector<KernelModule> kernel_modules_;
};

}  // namespace gb::kernel
