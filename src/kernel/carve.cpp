#include "kernel/carve.h"

#include <algorithm>
#include <string>

#include "kernel/dump_format.h"
#include "obs/trace.h"

namespace gb::kernel {

namespace {

/// Does a full record header + payload validate at `off`? Appends the
/// recovered record on success. Candidates that fail any structural or
/// sanity check are rejected individually — a half-overwritten record
/// never poisons its neighbours.
bool carve_candidate(std::span<const std::byte> image, std::size_t off,
                     std::vector<CarvedProcess>& out) {
  if (off + internal::kRecordHeaderBytes > image.size()) return false;
  ByteReader lr(image.subspan(off + internal::kRecordTag.size(), 4));
  const std::uint32_t len = lr.u32();
  const std::size_t begin = off + internal::kRecordHeaderBytes;
  if (begin + len > image.size()) return false;

  KernelDump::ProcessImage p;
  try {
    ByteReader pr(image.subspan(begin, len));
    p = internal::parse_process_payload(pr);
    if (!pr.at_end()) return false;  // payload shorter than declared
  } catch (const ParseError&) {
    return false;
  }
  // Sanity screen, the carving analogue of _EPROCESS plausibility
  // checks: pids are nonzero multiples of 4 and names are path-sized.
  if (p.pid == 0 || p.pid % 4 != 0 || p.pid >= (1u << 24)) return false;
  if (p.image_name.size() > 260 || p.image_name.empty()) return false;
  out.push_back(CarvedProcess{std::move(p), off, /*referenced=*/false});
  return true;
}

bool tag_at(std::span<const std::byte> image, std::size_t off) {
  for (std::size_t i = 0; i < internal::kRecordTag.size(); ++i) {
    if (image[off + i] != internal::kRecordTag[i]) return false;
  }
  return true;
}

/// Directory offsets, best-effort: used only to label recovered records
/// as referenced/orphaned, never to find them. A directory the sweep
/// cannot read labels everything orphaned rather than failing the carve.
std::vector<std::uint64_t> read_directory(std::span<const std::byte> image) {
  try {
    ByteReader r(image);
    r.skip(16);  // magic + total_len, validated by the caller
    const std::uint32_t n_active = r.u32();
    r.skip(std::size_t{n_active} * 4);
    const std::uint32_t n_threads = r.u32();
    r.skip(std::size_t{n_threads} * 8);
    const std::uint32_t n_drivers = r.u32();
    for (std::uint32_t i = 0; i < n_drivers; ++i) {
      r.skip(r.u16());
      r.skip(r.u16());
    }
    const std::uint32_t n_proc = r.u32();
    std::vector<std::uint64_t> dir;
    dir.reserve(n_proc);
    for (std::uint32_t i = 0; i < n_proc; ++i) dir.push_back(r.u64());
    return dir;
  } catch (const ParseError&) {
    return {};
  }
}

}  // namespace

std::size_t CarveResult::orphan_count() const {
  std::size_t n = 0;
  for (const auto& p : processes) {
    if (!p.referenced) ++n;
  }
  return n;
}

support::StatusOr<CarveResult> carve_dump(std::span<const std::byte> image,
                                          support::ThreadPool* pool,
                                          std::uint32_t chunk_bytes) {
  auto span = obs::default_tracer().span("carve.dump", "carve");
  span.arg("bytes", std::to_string(image.size()));
  if (image.size() < 16) {
    return support::Status::corrupt("dump image too small to carve");
  }
  {
    ByteReader hdr(image);
    if (hdr.u64() != internal::kDumpMagic) {
      return support::Status::corrupt("bad dump magic: not a kernel dump");
    }
    if (hdr.u64() != image.size()) {
      return support::Status::corrupt(
          "dump length mismatch (truncated or padded image)");
    }
  }

  const std::size_t chunk =
      chunk_bytes == 0 ? kDefaultCarveChunkBytes : chunk_bytes;
  // Every byte offset that could head a tag belongs to exactly one
  // chunk; a record found at offset `o` is found regardless of which
  // chunk `o` lands in, so chunking never changes the result.
  const std::size_t sweep_end =
      image.size() < internal::kRecordTag.size()
          ? 0
          : image.size() - internal::kRecordTag.size() + 1;
  const std::size_t n_chunks = (sweep_end + chunk - 1) / chunk;
  span.arg("chunks", std::to_string(n_chunks));

  struct ChunkOut {
    std::vector<CarvedProcess> processes;
    std::uint32_t candidates = 0;
    std::uint32_t rejected = 0;
  };
  std::vector<ChunkOut> outs(n_chunks);
  auto sweep_chunk = [&](std::size_t c) {
    auto chunk_span = obs::default_tracer().span("carve.chunk", "carve");
    chunk_span.arg("chunk", std::to_string(c));
    ChunkOut& out = outs[c];
    const std::size_t begin = c * chunk;
    const std::size_t end = std::min(begin + chunk, sweep_end);
    for (std::size_t off = begin; off < end; ++off) {
      if (!tag_at(image, off)) continue;
      ++out.candidates;
      if (!carve_candidate(image, off, out.processes)) ++out.rejected;
    }
  };
  if (pool != nullptr && pool->size() > 0 && n_chunks > 1) {
    pool->parallel_for(n_chunks, sweep_chunk);
  } else {
    for (std::size_t c = 0; c < n_chunks; ++c) sweep_chunk(c);
  }

  CarveResult result;
  result.stats.bytes_swept = image.size();
  result.stats.chunks = static_cast<std::uint32_t>(n_chunks);
  for (auto& out : outs) {  // chunk order == ascending offset order
    result.stats.candidates += out.candidates;
    result.stats.rejected += out.rejected;
    std::move(out.processes.begin(), out.processes.end(),
              std::back_inserter(result.processes));
  }
  result.stats.recovered =
      static_cast<std::uint32_t>(result.processes.size());

  const std::vector<std::uint64_t> directory = read_directory(image);
  for (auto& p : result.processes) {
    p.referenced = std::find(directory.begin(), directory.end(), p.offset) !=
                   directory.end();
  }
  return result;
}

}  // namespace gb::kernel
