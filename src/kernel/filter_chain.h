// File-system filter driver chain.
//
// The four commercial file hiders in Figure 2 sit here: a filter driver
// inserted into the file system stack sees every directory-enumeration
// IRP (with the originating process) before NTFS's answer is returned
// upward, and may remove entries. Attach order matters: the most recently
// attached filter sits highest in the stack, exactly as on Windows.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "kernel/types.h"

namespace gb::kernel {

/// A filter driver's directory-query interception. `next` invokes the
/// rest of the stack (ultimately the NTFS driver).
using QueryDirectoryFilter = std::function<std::vector<FindData>(
    const Irp& irp,
    const std::function<std::vector<FindData>(const Irp&)>& next)>;

struct FilterDriver {
  std::string name;
  QueryDirectoryFilter on_query_directory;  // may be null (pass-through)
};

class FileFilterChain {
 public:
  void attach(FilterDriver driver) { drivers_.push_back(std::move(driver)); }

  /// Detaches all filters with the given name; returns how many.
  std::size_t detach(std::string_view name);

  std::size_t size() const { return drivers_.size(); }
  std::vector<std::string> names() const;

  /// Runs the IRP down the stack; `fs_base` is the NTFS driver's answer.
  std::vector<FindData> query_directory(
      const Irp& irp,
      const std::function<std::vector<FindData>(const Irp&)>& fs_base) const;

 private:
  std::vector<FilterDriver> drivers_;  // back = top of stack
};

}  // namespace gb::kernel
