// The kernel: process/thread bookkeeping, Active Process List, SSDT,
// loaded-driver list and file-system filter chain.
//
// Three views of "which processes exist" coexist, deliberately:
//   1. the Active Process List — a doubly-linked list that FU-style DKOM
//      can unlink entries from; this is what NtQuerySystemInformation
//      walks and what the paper's *low-level inside scan* traverses;
//   2. the scheduler thread table — every schedulable thread, regardless
//      of process-list linkage; the paper's *advanced mode* truth;
//   3. the id table (PspCidTable analogue) — owning storage for process
//      objects, used to resolve thread owners.
#pragma once

#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "kernel/filter_chain.h"
#include "kernel/process.h"
#include "kernel/ssdt.h"
#include "kernel/types.h"

namespace gb::kernel {

class KernelError : public std::runtime_error {
 public:
  explicit KernelError(const std::string& what) : std::runtime_error(what) {}
};

class Kernel {
 public:
  Kernel();

  // --- process lifecycle -------------------------------------------------
  /// Creates a process with `thread_count` schedulable threads, links it
  /// into the Active Process List and loads its main image module.
  Process& create_process(std::string_view image_path, Pid parent = 4,
                          int thread_count = 2);
  /// Terminates: unlinks everywhere, removes threads, frees the object.
  void terminate_process(Pid pid);

  /// Resolves via the id table — finds processes even after DKOM unlink.
  Process* find_process(Pid pid);
  const Process* find_process(Pid pid) const;
  Process* find_process_by_name(std::string_view image_name);

  // --- the three process views -------------------------------------------
  /// View 1: Active Process List (order = creation order, minus unlinks).
  const std::list<Pid>& active_process_list() const { return active_list_; }
  /// DKOM: unlink an entry while leaving the object and threads alive.
  /// Returns false if the pid is not currently linked.
  bool dkom_unlink(Pid pid);
  /// Re-links a previously unlinked process (e.g. "fu -pl" restore).
  bool dkom_relink(Pid pid);

  /// View 2: scheduler thread table.
  const std::vector<Thread>& scheduler_threads() const { return threads_; }
  /// Double-DKOM: moves the pid's threads out of the scheduler table
  /// into a hidden stash, defeating the advanced-mode thread-table walk
  /// the way dkom_unlink defeats the Active Process List walk. The
  /// threads keep running conceptually; only the enumerable table lies.
  /// Returns false if the pid has no scheduled threads.
  bool dkom_unlink_threads(Pid pid);
  /// Restores stashed threads to the scheduler table. Returns false if
  /// nothing was stashed for the pid.
  bool dkom_relink_threads(Pid pid);

  /// View 3: the owning id table.
  const std::map<Pid, std::unique_ptr<Process>>& id_table() const {
    return id_table_;
  }

  // --- kernel-mode enumeration (the SSDT base implementations) -----------
  /// What NtQuerySystemInformation's unhooked handler returns: a walk of
  /// the Active Process List.
  std::vector<ProcessInfo> walk_active_list() const;
  /// What the inside-the-box low-level *driver* scan returns: the same
  /// list, but read directly, below any SSDT/API hooks.
  std::vector<ProcessInfo> low_level_process_scan() const {
    return walk_active_list();
  }
  /// Advanced mode: processes reconstructed from the scheduler table.
  std::vector<ProcessInfo> advanced_process_scan() const;

  // --- drivers and filters -------------------------------------------------
  void load_driver(std::string_view name, std::string_view image_path);
  bool unload_driver(std::string_view name);
  const std::vector<Driver>& drivers() const { return drivers_; }

  Ssdt& ssdt() { return ssdt_; }
  const Ssdt& ssdt() const { return ssdt_; }
  FileFilterChain& filter_chain() { return filters_; }
  const FileFilterChain& filter_chain() const { return filters_; }

 private:
  std::map<Pid, std::unique_ptr<Process>> id_table_;
  std::list<Pid> active_list_;
  std::vector<Thread> threads_;
  std::vector<Thread> unlinked_threads_;  // dkom_unlink_threads stash
  std::vector<Driver> drivers_;
  Ssdt ssdt_;
  FileFilterChain filters_;
  Pid next_pid_ = 4;   // Windows-style: System is 4, then multiples
  Tid next_tid_ = 8;
};

}  // namespace gb::kernel
