// Signature carving over raw crash-dump bytes.
//
// Traversal-based dump analysis (KernelDump::active_view/thread_view)
// only sees objects something still points at. A rootkit that unlinks a
// process from *every* list and scrubs the dump's linkage sections —
// malware::DoubleFu — is invisible to all of them. Memory forensics
// answers with carving: sweep the raw bytes for object signatures (the
// pool-tag scan of Korkin & Nesterov's rootkit-detection work) and
// recover every record, referenced or not. The carver below is that
// counter: it never consults the directory to *find* records, only to
// label which recovered records were still reachable.
//
// Determinism contract: candidates are the byte offsets whose 8 bytes
// equal the record tag, each offset is examined exactly once, and chunk
// boundaries depend only on chunk_bytes — so the carved record list (in
// ascending offset order) is byte-identical at any worker count and any
// chunk size.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernel/dump.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::kernel {

/// One process record recovered by signature, wherever it sat.
struct CarvedProcess {
  KernelDump::ProcessImage image;
  /// Byte offset of the record tag in the dump image.
  std::uint64_t offset = 0;
  /// Still listed in the record directory? False = orphaned slack — the
  /// carve-only evidence a scrubber leaves behind.
  bool referenced = false;
};

struct CarveStats {
  std::uint64_t bytes_swept = 0;
  std::uint32_t chunks = 0;
  std::uint32_t candidates = 0;  // tag matches examined
  std::uint32_t recovered = 0;   // candidates that validated
  std::uint32_t rejected = 0;    // candidates that failed validation
};

struct CarveResult {
  std::vector<CarvedProcess> processes;  // ascending offset order
  CarveStats stats;

  /// Recovered records the directory no longer references.
  [[nodiscard]] std::size_t orphan_count() const;
};

/// Default sweep granularity (bytes per chunk).
inline constexpr std::uint32_t kDefaultCarveChunkBytes = 64 * 1024;

/// Sweeps `image` for process-record signatures. Chunks run concurrently
/// on the pool (null = serial); chunk_bytes 0 picks the default. Returns
/// kCorrupt for an image too small to carry the dump header, with a bad
/// magic (all-zero or scrubbed-to-garbage input), or whose recorded
/// length disagrees with the image size (truncation) — degrading the
/// carve view instead of crashing the scan.
[[nodiscard]] support::StatusOr<CarveResult> carve_dump(
    std::span<const std::byte> image, support::ThreadPool* pool = nullptr,
    std::uint32_t chunk_bytes = 0);

}  // namespace gb::kernel
