#include "kernel/dump.h"

#include <algorithm>
#include <string>

#include "kernel/dump_format.h"
#include "obs/trace.h"

namespace gb::kernel {

namespace {

void write_str(ByteWriter& w, std::string_view s) {
  w.u16(static_cast<std::uint16_t>(s.size()));
  w.str(s);
}

std::string read_str(ByteReader& r) {
  const std::uint16_t len = r.u16();
  return r.str(len);
}

/// Reads the fixed sections between the length header and the record
/// heap. On return `r` is positioned at the start of the heap.
struct DumpSections {
  std::vector<Pid> active;
  std::vector<Thread> threads;
  std::vector<Driver> drivers;
  std::vector<std::uint64_t> directory;  // absolute record offsets
};

DumpSections read_sections(ByteReader& r) {
  DumpSections s;
  const std::uint32_t n_active = r.u32();
  s.active.reserve(n_active);
  for (std::uint32_t i = 0; i < n_active; ++i) s.active.push_back(r.u32());

  const std::uint32_t n_threads = r.u32();
  s.threads.reserve(n_threads);
  for (std::uint32_t i = 0; i < n_threads; ++i) {
    Thread t;
    t.tid = r.u32();
    t.owner_pid = r.u32();
    s.threads.push_back(t);
  }

  const std::uint32_t n_drivers = r.u32();
  s.drivers.reserve(n_drivers);
  for (std::uint32_t i = 0; i < n_drivers; ++i) {
    Driver d;
    d.name = read_str(r);
    d.image_path = read_str(r);
    s.drivers.push_back(std::move(d));
  }

  const std::uint32_t n_proc = r.u32();
  s.directory.reserve(n_proc);
  for (std::uint32_t i = 0; i < n_proc; ++i) s.directory.push_back(r.u64());
  return s;
}

void write_sections(ByteWriter& w, const DumpSections& s) {
  w.u32(static_cast<std::uint32_t>(s.active.size()));
  for (const Pid pid : s.active) w.u32(pid);
  w.u32(static_cast<std::uint32_t>(s.threads.size()));
  for (const Thread& t : s.threads) {
    w.u32(t.tid);
    w.u32(t.owner_pid);
  }
  w.u32(static_cast<std::uint32_t>(s.drivers.size()));
  for (const Driver& d : s.drivers) {
    write_str(w, d.name);
    write_str(w, d.image_path);
  }
  w.u32(static_cast<std::uint32_t>(s.directory.size()));
  for (const std::uint64_t off : s.directory) w.u64(off);
}

/// Validates that `off` heads a well-formed record header inside `image`
/// and returns the payload extent. Throws ParseError otherwise.
std::pair<std::size_t, std::size_t> record_payload_extent(
    std::span<const std::byte> image, std::uint64_t off) {
  if (off + internal::kRecordHeaderBytes > image.size()) {
    throw ParseError("process record offset out of range");
  }
  for (std::size_t i = 0; i < internal::kRecordTag.size(); ++i) {
    if (image[off + i] != internal::kRecordTag[i]) {
      throw ParseError("bad process record tag");
    }
  }
  ByteReader lr(image.subspan(off + internal::kRecordTag.size(), 4));
  const std::uint32_t len = lr.u32();
  const std::size_t begin = off + internal::kRecordHeaderBytes;
  if (begin + len > image.size()) {
    throw ParseError("process record extends past end of dump");
  }
  return {begin, begin + len};
}

}  // namespace

namespace internal {

KernelDump::ProcessImage parse_process_payload(ByteReader& r) {
  KernelDump::ProcessImage p;
  p.pid = r.u32();
  p.parent_pid = r.u32();
  p.image_name = read_str(r);
  p.image_path = read_str(r);
  const std::uint32_t n_peb = r.u32();
  p.peb_modules.reserve(n_peb);
  for (std::uint32_t j = 0; j < n_peb; ++j) {
    PebModuleEntry m;
    m.path = read_str(r);
    m.name = read_str(r);
    p.peb_modules.push_back(std::move(m));
  }
  const std::uint32_t n_kmod = r.u32();
  p.kernel_modules.reserve(n_kmod);
  for (std::uint32_t j = 0; j < n_kmod; ++j) {
    KernelModule m;
    m.path = read_str(r);
    m.name = read_str(r);
    p.kernel_modules.push_back(std::move(m));
  }
  return p;
}

}  // namespace internal

std::vector<ProcessInfo> KernelDump::active_view() const {
  std::vector<ProcessInfo> out;
  for (const Pid pid : active_list) {
    if (const ProcessImage* p = find(pid)) {
      out.push_back(ProcessInfo{p->pid, p->parent_pid, p->image_name});
    }
  }
  return out;
}

std::vector<ProcessInfo> KernelDump::thread_view() const {
  std::vector<ProcessInfo> out;
  std::vector<Pid> seen;
  for (const Thread& t : threads) {
    if (std::find(seen.begin(), seen.end(), t.owner_pid) != seen.end()) {
      continue;
    }
    seen.push_back(t.owner_pid);
    if (const ProcessImage* p = find(t.owner_pid)) {
      out.push_back(ProcessInfo{p->pid, p->parent_pid, p->image_name});
    }
  }
  return out;
}

const KernelDump::ProcessImage* KernelDump::find(Pid pid) const {
  for (const auto& p : processes) {
    if (p.pid == pid) return &p;
  }
  return nullptr;
}

std::vector<std::byte> serialize_dump(const KernelDump& dump) {
  ByteWriter w;
  w.u64(internal::kDumpMagic);
  w.u64(0);  // total_len, patched below

  DumpSections s;
  s.active = dump.active_list;
  s.threads = dump.threads;
  s.drivers = dump.drivers;
  s.directory.assign(dump.processes.size(), 0);  // patched as records land
  write_sections(w, s);
  const std::size_t dir_base = w.size() - 8 * dump.processes.size();

  for (std::size_t i = 0; i < dump.processes.size(); ++i) {
    const auto& p = dump.processes[i];
    w.patch_u64(dir_base + 8 * i, w.size());
    w.bytes(internal::kRecordTag);
    const std::size_t len_at = w.size();
    w.u32(0);  // payload length, patched below
    const std::size_t payload_at = w.size();
    w.u32(p.pid);
    w.u32(p.parent_pid);
    write_str(w, p.image_name);
    write_str(w, p.image_path);
    w.u32(static_cast<std::uint32_t>(p.peb_modules.size()));
    for (const auto& m : p.peb_modules) {
      write_str(w, m.path);
      write_str(w, m.name);
    }
    w.u32(static_cast<std::uint32_t>(p.kernel_modules.size()));
    for (const auto& m : p.kernel_modules) {
      write_str(w, m.path);
      write_str(w, m.name);
    }
    w.patch_u32(len_at, static_cast<std::uint32_t>(w.size() - payload_at));
  }

  w.patch_u64(8, w.size());
  return std::move(w).take();
}

std::vector<std::byte> write_dump(const Kernel& kernel) {
  KernelDump dump;
  for (const auto& [pid, proc] : kernel.id_table()) {
    KernelDump::ProcessImage p;
    p.pid = pid;
    p.parent_pid = proc->parent_pid();
    p.image_name = proc->image_name();
    p.image_path = proc->image_path();
    p.peb_modules = proc->peb_modules();
    p.kernel_modules = proc->kernel_modules();
    dump.processes.push_back(std::move(p));
  }
  dump.active_list.assign(kernel.active_process_list().begin(),
                          kernel.active_process_list().end());
  dump.threads = kernel.scheduler_threads();
  dump.drivers = kernel.drivers();
  return serialize_dump(dump);
}

KernelDump parse_dump(std::span<const std::byte> image,
                      support::ThreadPool* pool) {
  auto span = obs::default_tracer().span("parse.dump", "parse");
  span.arg("bytes", std::to_string(image.size()));
  ByteReader r(image);
  if (r.u64() != internal::kDumpMagic) throw ParseError("bad dump magic");
  if (r.u64() != image.size()) {
    throw ParseError("dump length mismatch (truncated or padded image)");
  }

  KernelDump dump;
  DumpSections s = read_sections(r);
  dump.active_list = std::move(s.active);
  dump.threads = std::move(s.threads);
  dump.drivers = std::move(s.drivers);

  // Validate every directory entry serially (same bounds checks at any
  // worker count), then parse the referenced records into pre-sized
  // slots — record order, and with it every downstream view and report,
  // is independent of the worker count. Heap bytes not referenced by the
  // directory are slack: a traversal never visits them (that is what a
  // dump scrubber exploits; see kernel/carve.h for the counter).
  std::vector<std::pair<std::size_t, std::size_t>> extents;
  extents.reserve(s.directory.size());
  for (const std::uint64_t off : s.directory) {
    extents.push_back(record_payload_extent(image, off));
  }

  dump.processes.resize(extents.size());
  auto parse_one = [&](std::size_t i) {
    ByteReader pr(
        image.subspan(extents[i].first, extents[i].second - extents[i].first));
    dump.processes[i] = internal::parse_process_payload(pr);
    if (!pr.at_end()) throw ParseError("process record length mismatch");
  };
  if (pool) {
    pool->parallel_for(extents.size(), parse_one);
  } else {
    for (std::size_t i = 0; i < extents.size(); ++i) parse_one(i);
  }
  return dump;
}

support::StatusOr<KernelDump> parse_dump_or(std::span<const std::byte> image,
                                            support::ThreadPool* pool) {
  try {
    return parse_dump(image, pool);
  } catch (const ParseError& e) {
    return support::Status::corrupt(e.what());
  }
}

void scrub_dump(std::vector<std::byte>& bytes, std::span<const Pid> pids) {
  try {
    ByteReader r(bytes);
    if (r.u64() != internal::kDumpMagic) return;
    if (r.u64() != bytes.size()) return;
    DumpSections s = read_sections(r);
    const std::size_t old_heap = r.pos();

    auto hidden = [&](Pid pid) {
      return std::find(pids.begin(), pids.end(), pid) != pids.end();
    };
    std::erase_if(s.active, hidden);
    std::erase_if(s.threads,
                  [&](const Thread& t) { return hidden(t.owner_pid); });
    // Drop directory entries whose record belongs to a hidden pid. The
    // pid sits at a fixed offset in the payload, so no full parse is
    // needed — and crucially the heap below is copied verbatim, so the
    // record's bytes survive as unreferenced slack.
    std::erase_if(s.directory, [&](std::uint64_t off) {
      const auto [begin, end] = record_payload_extent(bytes, off);
      if (end - begin < 4) return false;
      ByteReader pr(std::span<const std::byte>(bytes).subspan(begin, 4));
      return hidden(pr.u32());
    });

    ByteWriter w;
    w.u64(internal::kDumpMagic);
    w.u64(0);
    write_sections(w, s);
    const std::size_t new_heap = w.size();
    const std::size_t dir_base = new_heap - 8 * s.directory.size();
    for (std::size_t i = 0; i < s.directory.size(); ++i) {
      w.patch_u64(dir_base + 8 * i,
                  s.directory[i] - old_heap + new_heap);
    }
    w.bytes(std::span<const std::byte>(bytes).subspan(old_heap));
    w.patch_u64(8, w.size());
    bytes = std::move(w).take();
  } catch (const ParseError&) {
    // A dump this scrubber cannot even read is left untouched: the
    // attack degrades to a no-op rather than crashing the blue screen.
  }
}

}  // namespace gb::kernel
