#include "kernel/dump.h"

#include <algorithm>
#include <string>

#include "obs/trace.h"

namespace gb::kernel {

namespace {

constexpr std::uint64_t kDumpMagic = 0x31304d5044424747ull;  // "GGBDPM01"

void write_str(ByteWriter& w, std::string_view s) {
  w.u16(static_cast<std::uint16_t>(s.size()));
  w.str(s);
}

std::string read_str(ByteReader& r) {
  const std::uint16_t len = r.u16();
  return r.str(len);
}

void skip_str(ByteReader& r) {
  const std::uint16_t len = r.u16();
  r.skip(len);
}

/// Advances past one serialized ProcessImage without building strings —
/// the cheap structural skim that finds record extents for the parallel
/// parse. Bounds violations throw exactly where a full parse would.
void skim_process(ByteReader& r) {
  r.skip(8);  // pid, parent_pid
  skip_str(r);
  skip_str(r);
  const std::uint32_t n_peb = r.u32();
  for (std::uint32_t j = 0; j < n_peb; ++j) {
    skip_str(r);
    skip_str(r);
  }
  const std::uint32_t n_kmod = r.u32();
  for (std::uint32_t j = 0; j < n_kmod; ++j) {
    skip_str(r);
    skip_str(r);
  }
}

KernelDump::ProcessImage parse_process(ByteReader& r) {
  KernelDump::ProcessImage p;
  p.pid = r.u32();
  p.parent_pid = r.u32();
  p.image_name = read_str(r);
  p.image_path = read_str(r);
  const std::uint32_t n_peb = r.u32();
  p.peb_modules.reserve(n_peb);
  for (std::uint32_t j = 0; j < n_peb; ++j) {
    PebModuleEntry m;
    m.path = read_str(r);
    m.name = read_str(r);
    p.peb_modules.push_back(std::move(m));
  }
  const std::uint32_t n_kmod = r.u32();
  p.kernel_modules.reserve(n_kmod);
  for (std::uint32_t j = 0; j < n_kmod; ++j) {
    KernelModule m;
    m.path = read_str(r);
    m.name = read_str(r);
    p.kernel_modules.push_back(std::move(m));
  }
  return p;
}

}  // namespace

std::vector<ProcessInfo> KernelDump::active_view() const {
  std::vector<ProcessInfo> out;
  for (const Pid pid : active_list) {
    if (const ProcessImage* p = find(pid)) {
      out.push_back(ProcessInfo{p->pid, p->parent_pid, p->image_name});
    }
  }
  return out;
}

std::vector<ProcessInfo> KernelDump::thread_view() const {
  std::vector<ProcessInfo> out;
  std::vector<Pid> seen;
  for (const Thread& t : threads) {
    if (std::find(seen.begin(), seen.end(), t.owner_pid) != seen.end()) {
      continue;
    }
    seen.push_back(t.owner_pid);
    if (const ProcessImage* p = find(t.owner_pid)) {
      out.push_back(ProcessInfo{p->pid, p->parent_pid, p->image_name});
    }
  }
  return out;
}

const KernelDump::ProcessImage* KernelDump::find(Pid pid) const {
  for (const auto& p : processes) {
    if (p.pid == pid) return &p;
  }
  return nullptr;
}

std::vector<std::byte> serialize_dump(const KernelDump& dump) {
  ByteWriter w;
  w.u64(kDumpMagic);

  w.u32(static_cast<std::uint32_t>(dump.processes.size()));
  for (const auto& p : dump.processes) {
    w.u32(p.pid);
    w.u32(p.parent_pid);
    write_str(w, p.image_name);
    write_str(w, p.image_path);
    w.u32(static_cast<std::uint32_t>(p.peb_modules.size()));
    for (const auto& m : p.peb_modules) {
      write_str(w, m.path);
      write_str(w, m.name);
    }
    w.u32(static_cast<std::uint32_t>(p.kernel_modules.size()));
    for (const auto& m : p.kernel_modules) {
      write_str(w, m.path);
      write_str(w, m.name);
    }
  }

  w.u32(static_cast<std::uint32_t>(dump.active_list.size()));
  for (const Pid pid : dump.active_list) w.u32(pid);

  w.u32(static_cast<std::uint32_t>(dump.threads.size()));
  for (const Thread& t : dump.threads) {
    w.u32(t.tid);
    w.u32(t.owner_pid);
  }

  w.u32(static_cast<std::uint32_t>(dump.drivers.size()));
  for (const Driver& d : dump.drivers) {
    write_str(w, d.name);
    write_str(w, d.image_path);
  }
  return std::move(w).take();
}

std::vector<std::byte> write_dump(const Kernel& kernel) {
  KernelDump dump;
  for (const auto& [pid, proc] : kernel.id_table()) {
    KernelDump::ProcessImage p;
    p.pid = pid;
    p.parent_pid = proc->parent_pid();
    p.image_name = proc->image_name();
    p.image_path = proc->image_path();
    p.peb_modules = proc->peb_modules();
    p.kernel_modules = proc->kernel_modules();
    dump.processes.push_back(std::move(p));
  }
  dump.active_list.assign(kernel.active_process_list().begin(),
                          kernel.active_process_list().end());
  dump.threads = kernel.scheduler_threads();
  dump.drivers = kernel.drivers();
  return serialize_dump(dump);
}

KernelDump parse_dump(std::span<const std::byte> image,
                      support::ThreadPool* pool) {
  auto span = obs::default_tracer().span("parse.dump", "parse");
  span.arg("bytes", std::to_string(image.size()));
  ByteReader r(image);
  if (r.u64() != kDumpMagic) throw ParseError("bad dump magic");

  KernelDump dump;
  const std::uint32_t n_proc = r.u32();

  // Serial skim: locate each process record's byte extent. This walks
  // only length fields, so it is cheap relative to the string-building
  // parse — and it performs the same bounds checks, so a truncated dump
  // fails here with the same ParseError the serial parser raised.
  std::vector<std::pair<std::size_t, std::size_t>> extents;  // [begin, end)
  extents.reserve(n_proc);
  for (std::uint32_t i = 0; i < n_proc; ++i) {
    const std::size_t begin = r.pos();
    skim_process(r);
    extents.emplace_back(begin, r.pos());
  }

  // Parse the records into pre-sized slots — record order, and with it
  // every downstream view and report, is independent of the worker count.
  dump.processes.resize(n_proc);
  auto parse_one = [&](std::size_t i) {
    ByteReader pr(
        r.subspan(extents[i].first, extents[i].second - extents[i].first));
    dump.processes[i] = parse_process(pr);
  };
  if (pool) {
    pool->parallel_for(n_proc, parse_one);
  } else {
    for (std::uint32_t i = 0; i < n_proc; ++i) parse_one(i);
  }

  const std::uint32_t n_active = r.u32();
  for (std::uint32_t i = 0; i < n_active; ++i) dump.active_list.push_back(r.u32());

  const std::uint32_t n_threads = r.u32();
  for (std::uint32_t i = 0; i < n_threads; ++i) {
    Thread t;
    t.tid = r.u32();
    t.owner_pid = r.u32();
    dump.threads.push_back(t);
  }

  const std::uint32_t n_drivers = r.u32();
  for (std::uint32_t i = 0; i < n_drivers; ++i) {
    Driver d;
    d.name = read_str(r);
    d.image_path = read_str(r);
    dump.drivers.push_back(std::move(d));
  }
  if (!r.at_end()) throw ParseError("trailing bytes in dump");
  return dump;
}

support::StatusOr<KernelDump> parse_dump_or(std::span<const std::byte> image,
                                            support::ThreadPool* pool) {
  try {
    return parse_dump(image, pool);
  } catch (const ParseError& e) {
    return support::Status::corrupt(e.what());
  }
}

}  // namespace gb::kernel
