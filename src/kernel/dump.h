// Kernel crash-dump export and offline parsing.
//
// Section 4's outside-the-box scan of volatile state: the paper induces a
// blue screen to write kernel memory to a dump file, then traverses the
// process structures in the dump from the clean WinPE boot. Here the
// "dump" is a byte-serialization of the kernel's object tables; the
// parser below is independent byte-level code, mirroring how the paper's
// traversal code runs against a file rather than live memory.
//
// As the paper notes, this is a truth *approximation*: ghostware that
// traps the blue-screen path could scrub itself from the dump. The
// simulation models that too — see Machine::bluescreen()'s scrubber hook.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "support/bytes.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::kernel {

/// Parsed dump contents.
struct KernelDump {
  struct ProcessImage {
    Pid pid = 0;
    Pid parent_pid = 0;
    std::string image_name;
    std::string image_path;
    std::vector<PebModuleEntry> peb_modules;
    std::vector<KernelModule> kernel_modules;
  };

  std::vector<ProcessImage> processes;  // every object in the id table
  std::vector<Pid> active_list;         // linkage at dump time
  std::vector<Thread> threads;          // scheduler table at dump time
  std::vector<Driver> drivers;

  /// Processes as seen by walking the dumped Active Process List.
  std::vector<ProcessInfo> active_view() const;
  /// Processes reconstructed from the dumped thread table (finds
  /// DKOM-unlinked processes).
  std::vector<ProcessInfo> thread_view() const;
  const ProcessImage* find(Pid pid) const;
};

/// Serializes the kernel's current state ("MEMORY.DMP").
std::vector<std::byte> write_dump(const Kernel& kernel);

/// Parses dump bytes. Throws gb::ParseError on malformed input.
///
/// With a pool, the per-process records (the bulk of a dump: module
/// lists, path strings) are parsed concurrently after a serial
/// structural skim locates each record's byte extent; record order — and
/// therefore the parsed dump, and every report derived from it — is
/// identical at any worker count.
KernelDump parse_dump(std::span<const std::byte> image,
                      support::ThreadPool* pool = nullptr);

/// Non-throwing variant: a truncated or scrubbed-to-garbage dump becomes
/// a kCorrupt Status, degrading the process/module diffs instead of
/// aborting the outside-the-box workflow.
[[nodiscard]] support::StatusOr<KernelDump> parse_dump_or(
    std::span<const std::byte> image, support::ThreadPool* pool = nullptr);

/// Re-serializes a (possibly edited) parsed dump. For dumps that
/// serialize_dump itself produced, parse_dump is an exact inverse; note
/// that round-tripping a *scrubbed* dump discards its unreferenced slack
/// records (parse_dump never sees them — that is the scrub's point).
std::vector<std::byte> serialize_dump(const KernelDump& dump);

/// Surgical dump scrub — the paper's anticipated countermeasure, done
/// the way a real rootkit must do it: rewrites the linkage sections
/// (Active Process List, thread table, record directory) to drop the
/// given pids while copying the record heap verbatim, so each hidden
/// process's record bytes survive as unreferenced slack. parse_dump and
/// every traversal-based view lose the process; a signature carve of the
/// raw bytes (kernel/carve.h) still recovers it. Unknown pids are
/// ignored; input this scrubber cannot parse is left untouched.
void scrub_dump(std::vector<std::byte>& bytes, std::span<const Pid> pids);

}  // namespace gb::kernel
