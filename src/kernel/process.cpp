#include "kernel/process.h"

#include "support/strings.h"

namespace gb::kernel {

void Process::load_module(std::string_view path) {
  const std::string name(base_name(path));
  peb_modules_.push_back(PebModuleEntry{std::string(path), name});
  kernel_modules_.push_back(KernelModule{std::string(path), name});
}

}  // namespace gb::kernel
