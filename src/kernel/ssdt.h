// Service Dispatch Table (SSDT).
//
// The kernel-mode system call table. ProBot SE's technique in Figure 2 —
// "hijacks kernel-mode file-query APIs by modifying their dispatch
// entries in the Service Dispatch Table" — installs hooks here; they are
// system-wide (every process's NtDll traps into the same table). Each
// entry is a Hookable so tools can also enumerate installed SSDT hooks
// (the mechanism-detection approach the paper contrasts with).
#pragma once

#include <string>
#include <vector>

#include "hive/hive.h"
#include "kernel/types.h"
#include "support/hookable.h"

namespace gb::kernel {

/// Caller identity forwarded into kernel services, so hooks can scope
/// behaviour per process (and so GhostBuster's DLL-injection mode can
/// scan "as" an arbitrary process).
struct SyscallContext {
  Pid pid = 0;
  std::string image_name;
};

struct Ssdt {
  /// Directory enumeration (feeds the filter chain, then NTFS).
  Hookable<std::vector<FindData>(const SyscallContext&, const std::string&)>
      nt_query_directory_file;

  /// Registry enumeration (feeds the configuration manager).
  Hookable<std::vector<std::string>(const SyscallContext&, const std::string&)>
      nt_enumerate_key;
  Hookable<std::vector<hive::Value>(const SyscallContext&, const std::string&)>
      nt_enumerate_value_key;

  /// Process enumeration (walks the Active Process List).
  Hookable<std::vector<ProcessInfo>(const SyscallContext&)>
      nt_query_system_information;

  /// Module query for a target process (reads the target's PEB list).
  Hookable<std::vector<PebModuleEntry>(const SyscallContext&, Pid)>
      nt_query_information_process;

  /// Removes every hook installed by `owner` across all entries.
  std::size_t remove_owner(std::string_view owner) {
    return nt_query_directory_file.remove_owner(owner) +
           nt_enumerate_key.remove_owner(owner) +
           nt_enumerate_value_key.remove_owner(owner) +
           nt_query_system_information.remove_owner(owner) +
           nt_query_information_process.remove_owner(owner);
  }

  /// All installed SSDT hooks (for hook-detection tooling).
  std::vector<HookInfo> all_hooks() const {
    std::vector<HookInfo> out;
    for (const auto& h :
         {nt_query_directory_file.hooks(), nt_enumerate_key.hooks(),
          nt_enumerate_value_key.hooks(),
          nt_query_system_information.hooks(),
          nt_query_information_process.hooks()}) {
      out.insert(out.end(), h.begin(), h.end());
    }
    return out;
  }
};

}  // namespace gb::kernel
