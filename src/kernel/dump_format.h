// Internal layout of the "GGBDPM02" crash-dump format, shared by the
// structured parser (dump.cpp) and the signature carver (carve.cpp).
//
// v2 layout (all integers little-endian):
//
//   magic      u64   "GGBDPM02"
//   total_len  u64   byte length of the whole image (truncation check)
//   active     u32 n, then n pids           — Active Process List linkage
//   threads    u32 n, then n (tid, owner)   — scheduler table linkage
//   drivers    u32 n, then n (name, path)   — loaded-driver list
//   directory  u32 n, then n u64 offsets    — absolute offset of each
//                                             *referenced* process record
//   heap       tagged records: tag(8) + payload_len u32 + payload
//
// The split between the directory (reachability) and the heap (bytes) is
// the point: a dump scrubber can delete a record's directory entry — and
// its active/thread linkage — without touching the heap, leaving the
// record as unreferenced slack that parse_dump never visits but a raw
// signature sweep still recovers. That is exactly the gap between
// traversal-based dump analysis and memory carving.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

#include "kernel/dump.h"
#include "support/bytes.h"

namespace gb::kernel::internal {

inline constexpr std::uint64_t kDumpMagic = 0x32304d5044424747ull;  // "GGBDPM02"

/// Signature prefixing every process record in the heap (the pool-tag
/// analogue). The control bytes keep accidental matches inside path
/// strings vanishingly unlikely; the carver validates candidates anyway.
inline constexpr std::array<std::byte, 8> kRecordTag = {
    std::byte{0xC5}, std::byte{'G'}, std::byte{'B'}, std::byte{'p'},
    std::byte{'r'},  std::byte{'o'}, std::byte{'c'}, std::byte{0xE9}};

/// tag + payload_len prefix.
inline constexpr std::size_t kRecordHeaderBytes = kRecordTag.size() + 4;

/// Parses one process-record payload (the bytes after the tag + length
/// prefix). Throws gb::ParseError on malformed input; callers that need
/// exact-length validation check r.at_end() afterwards.
KernelDump::ProcessImage parse_process_payload(ByteReader& r);

}  // namespace gb::kernel::internal
