// Shared kernel-boundary data types.
#pragma once

#include <cstdint>
#include <string>

namespace gb::kernel {

using Pid = std::uint32_t;
using Tid = std::uint32_t;

/// One directory entry as returned by file enumeration (WIN32_FIND_DATA
/// analogue).
struct FindData {
  std::string name;
  bool is_directory = false;
  std::uint64_t size = 0;
  std::uint32_t attributes = 0;

  bool operator==(const FindData&) const = default;
};

/// One process as returned by process enumeration
/// (SYSTEM_PROCESS_INFORMATION analogue).
struct ProcessInfo {
  Pid pid = 0;
  Pid parent_pid = 0;
  std::string image_name;

  bool operator==(const ProcessInfo&) const = default;
};

/// One loaded module as seen from user mode (PEB loader list entry).
/// Vanquish's module hiding blanks `path` while leaving the entry linked.
struct PebModuleEntry {
  std::string path;
  std::string name;

  bool operator==(const PebModuleEntry&) const = default;
};

/// Kernel-side module truth (VAD-backed mapping record).
struct KernelModule {
  std::string path;
  std::string name;

  bool operator==(const KernelModule&) const = default;
};

/// I/O request packet passed down the filter-driver chain. Filter drivers
/// use `requester_pid` / `requester_image` to scope hiding to specific
/// processes (Section 2: "examining the IRP ... to determine the
/// originating process").
struct Irp {
  Pid requester_pid = 0;
  std::string requester_image;
  std::string path;  // directory being enumerated
};

/// A loaded kernel driver.
struct Driver {
  std::string name;
  std::string image_path;

  bool operator==(const Driver&) const = default;
};

}  // namespace gb::kernel
