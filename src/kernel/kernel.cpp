#include "kernel/kernel.h"

#include <algorithm>

#include "support/strings.h"

namespace gb::kernel {

Kernel::Kernel() {
  // Bind the SSDT entries whose truth lives inside the kernel itself.
  // (File and registry services are bound by the machine assembly, which
  // owns the NTFS volume and configuration manager.)
  ssdt_.nt_query_system_information.set_base(
      [this](const SyscallContext&) { return walk_active_list(); });
  ssdt_.nt_query_information_process.set_base(
      [this](const SyscallContext&, Pid target) -> std::vector<PebModuleEntry> {
        const Process* p = find_process(target);
        if (!p) return {};
        return p->peb_modules();
      });
}

Process& Kernel::create_process(std::string_view image_path, Pid parent,
                                int thread_count) {
  const Pid pid = next_pid_;
  next_pid_ += 4;
  auto proc = std::make_unique<Process>(pid, parent, std::string(image_path),
                                        std::string(base_name(image_path)));
  proc->load_module(image_path);
  Process& ref = *proc;
  id_table_.emplace(pid, std::move(proc));
  active_list_.push_back(pid);
  for (int i = 0; i < thread_count; ++i) {
    threads_.push_back(Thread{next_tid_, pid});
    next_tid_ += 4;
  }
  return ref;
}

void Kernel::terminate_process(Pid pid) {
  const auto it = id_table_.find(pid);
  if (it == id_table_.end()) throw KernelError("no such process");
  active_list_.remove(pid);
  std::erase_if(threads_, [pid](const Thread& t) { return t.owner_pid == pid; });
  std::erase_if(unlinked_threads_,
                [pid](const Thread& t) { return t.owner_pid == pid; });
  id_table_.erase(it);
}

Process* Kernel::find_process(Pid pid) {
  const auto it = id_table_.find(pid);
  return it == id_table_.end() ? nullptr : it->second.get();
}

const Process* Kernel::find_process(Pid pid) const {
  const auto it = id_table_.find(pid);
  return it == id_table_.end() ? nullptr : it->second.get();
}

Process* Kernel::find_process_by_name(std::string_view image_name) {
  for (auto& [pid, proc] : id_table_) {
    if (iequals(proc->image_name(), image_name)) return proc.get();
  }
  return nullptr;
}

bool Kernel::dkom_unlink(Pid pid) {
  const auto it = std::find(active_list_.begin(), active_list_.end(), pid);
  if (it == active_list_.end()) return false;
  active_list_.erase(it);
  return true;
}

bool Kernel::dkom_relink(Pid pid) {
  if (!id_table_.contains(pid)) return false;
  if (std::find(active_list_.begin(), active_list_.end(), pid) !=
      active_list_.end()) {
    return false;
  }
  active_list_.push_back(pid);
  return true;
}

bool Kernel::dkom_unlink_threads(Pid pid) {
  const auto split = std::stable_partition(
      threads_.begin(), threads_.end(),
      [pid](const Thread& t) { return t.owner_pid != pid; });
  if (split == threads_.end()) return false;
  unlinked_threads_.insert(unlinked_threads_.end(), split, threads_.end());
  threads_.erase(split, threads_.end());
  return true;
}

bool Kernel::dkom_relink_threads(Pid pid) {
  const auto split = std::stable_partition(
      unlinked_threads_.begin(), unlinked_threads_.end(),
      [pid](const Thread& t) { return t.owner_pid != pid; });
  if (split == unlinked_threads_.end()) return false;
  threads_.insert(threads_.end(), split, unlinked_threads_.end());
  unlinked_threads_.erase(split, unlinked_threads_.end());
  return true;
}

std::vector<ProcessInfo> Kernel::walk_active_list() const {
  std::vector<ProcessInfo> out;
  out.reserve(active_list_.size());
  for (const Pid pid : active_list_) {
    const Process* p = find_process(pid);
    if (p) out.push_back(p->info());
  }
  return out;
}

std::vector<ProcessInfo> Kernel::advanced_process_scan() const {
  std::vector<ProcessInfo> out;
  std::vector<Pid> seen;
  for (const Thread& t : threads_) {
    if (std::find(seen.begin(), seen.end(), t.owner_pid) != seen.end()) {
      continue;
    }
    seen.push_back(t.owner_pid);
    const Process* p = find_process(t.owner_pid);
    if (p) out.push_back(p->info());
  }
  return out;
}

void Kernel::load_driver(std::string_view name, std::string_view image_path) {
  drivers_.push_back(Driver{std::string(name), std::string(image_path)});
}

bool Kernel::unload_driver(std::string_view name) {
  const auto before = drivers_.size();
  std::erase_if(drivers_,
                [&](const Driver& d) { return iequals(d.name, name); });
  return drivers_.size() != before;
}

}  // namespace gb::kernel
