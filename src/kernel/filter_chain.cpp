#include "kernel/filter_chain.h"

namespace gb::kernel {

std::size_t FileFilterChain::detach(std::string_view name) {
  const auto before = drivers_.size();
  std::erase_if(drivers_,
                [&](const FilterDriver& d) { return d.name == name; });
  return before - drivers_.size();
}

std::vector<std::string> FileFilterChain::names() const {
  std::vector<std::string> out;
  out.reserve(drivers_.size());
  for (const auto& d : drivers_) out.push_back(d.name);
  return out;
}

std::vector<FindData> FileFilterChain::query_directory(
    const Irp& irp,
    const std::function<std::vector<FindData>(const Irp&)>& fs_base) const {
  // Build the downward call chain recursively from the top of the stack.
  std::function<std::vector<FindData>(std::size_t, const Irp&)> run =
      [&](std::size_t depth, const Irp& cur) -> std::vector<FindData> {
    if (depth == 0) return fs_base(cur);
    const FilterDriver& d = drivers_[depth - 1];
    if (!d.on_query_directory) return run(depth - 1, cur);
    return d.on_query_directory(
        cur, [&run, depth](const Irp& inner) { return run(depth - 1, inner); });
  };
  return run(drivers_.size(), irp);
}

}  // namespace gb::kernel
