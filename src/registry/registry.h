// Configuration manager: the live registry.
//
// Mirrors the Windows design the paper relies on: the registry is a
// forest of hives, each an in-memory tree backed by a file
// ("C:\windows\system32\config\system" for HKLM\SYSTEM, "ntuser.dat" for
// the per-user HKU sub-hive). High-level enumeration reaches this object
// through Advapi32 -> NtDll -> SSDT, every step of which ghostware can
// intercept; the low-level GhostBuster scan instead re-parses the flushed
// backing files (Section 3's raw-hive "truth approximation").
//
// Kernel-level registry callbacks (CmRegisterCallback-style) are modelled
// as enumeration filters registered on this object — the "alternative"
// interception point Section 3 mentions.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "hive/hive.h"
#include "ntfs/volume.h"

namespace gb::registry {

/// Thrown for semantic registry errors (missing key on a strict op).
class RegError : public std::runtime_error {
 public:
  explicit RegError(const std::string& what) : std::runtime_error(what) {}
};

/// One mounted hive.
struct MountedHive {
  std::string mount;         // e.g. "HKLM\\SYSTEM"
  std::string backing_file;  // e.g. "C:\\windows\\system32\\config\\system"
  hive::Key root;            // live tree
};

/// Kernel registry callback: may erase entries from enumeration results
/// (filtering) before they are returned to NtEnumerate*. `key_path` is the
/// full path being enumerated.
struct RegistryCallback {
  std::string owner;  // diagnostic tag (driver name)
  std::function<void(std::string_view key_path,
                     std::vector<std::string>& subkey_names)>
      filter_subkeys;
  std::function<void(std::string_view key_path,
                     std::vector<hive::Value>& values)>
      filter_values;
};

class ConfigurationManager {
 public:
  /// Creates an empty hive mounted at `mount`, backed by `backing_file`.
  void create_hive(std::string_view mount, std::string_view backing_file);

  /// Replaces a mounted hive's tree (used when loading from a parsed
  /// backing file, e.g. by the WinPE outside scan).
  void load_hive(std::string_view mount, hive::Key tree);

  const std::vector<std::unique_ptr<MountedHive>>& hives() const {
    return hives_;
  }
  MountedHive* find_hive(std::string_view mount);

  // --- key/value operations on full paths like "HKLM\\SYSTEM\\...".
  // Returned Key pointers/references are invalidated by subsequent
  // structural mutations; use them immediately.
  /// Creates the key (and intermediates) if absent.
  hive::Key& create_key(std::string_view path);
  hive::Key* find_key(std::string_view path);
  const hive::Key* find_key(std::string_view path) const;
  bool delete_key(std::string_view path);

  void set_value(std::string_view key_path, hive::Value v);
  /// Returns nullptr if the key or value is absent.
  const hive::Value* get_value(std::string_view key_path,
                               std::string_view name) const;
  bool delete_value(std::string_view key_path, std::string_view name);

  /// Raw (unfiltered) enumeration — the kernel's own view. Missing key
  /// yields an empty result.
  std::vector<std::string> enum_subkeys_raw(std::string_view path) const;
  std::vector<hive::Value> enum_values_raw(std::string_view path) const;

  /// Enumeration after registry callbacks — what NtEnumerate* returns.
  std::vector<std::string> enum_subkeys(std::string_view path) const;
  std::vector<hive::Value> enum_values(std::string_view path) const;

  // --- kernel registry callback interception point.
  void register_callback(RegistryCallback cb);
  void unregister_callbacks(std::string_view owner);
  std::size_t callback_count() const { return callbacks_.size(); }

  /// Serializes every hive to its backing file on the volume.
  void flush(ntfs::NtfsVolume& vol) const;

  /// Total key count across hives (for the timing model).
  std::size_t total_keys() const;

 private:
  /// Splits a full path into (hive, hive-relative remainder); the mounted
  /// hive with the longest matching prefix wins.
  const MountedHive* resolve_mount(std::string_view path,
                                   std::string_view& rest) const;

  std::vector<std::unique_ptr<MountedHive>> hives_;
  std::vector<RegistryCallback> callbacks_;
};

}  // namespace gb::registry
