// Auto-Start Extensibility Point (ASEP) catalogue.
//
// Section 3 of the paper (and the companion Gatekeeper work [WRV+04])
// scans the registry locations that programs hook to get auto-started.
// GhostBuster's registry scans walk exactly this catalogue in both the
// high-level (API) and low-level (raw hive) views.
#pragma once

#include <string>
#include <vector>

namespace gb::registry {

/// How hooks manifest at one ASEP location.
enum class AsepKind {
  kValues,      // every value under the key is a hook (Run, RunOnce)
  kSubkeys,     // every subkey is a hook (Services, Browser Helper Objects)
  kNamedValue,  // one specific value's data is the hook (AppInit_DLLs)
};

struct AsepLocation {
  std::string id;        // short label used in reports, e.g. "Run"
  std::string key_path;  // full registry path
  AsepKind kind;
  std::string value_name;  // only for kNamedValue
};

/// The standard catalogue: Services, Run, RunOnce, AppInit_DLLs, Browser
/// Helper Objects, Winlogon Shell/Userinit — the ASEPs named in Sections
/// 3 and the paper's malware analysis.
const std::vector<AsepLocation>& standard_aseps();

/// The standard hive-to-file mount table. The machine assembles its
/// registry from this, and GhostBuster's low-level/outside scans use the
/// same table to locate and parse the raw backing files.
struct HiveMount {
  const char* mount;
  const char* backing_file;
};
const std::vector<HiveMount>& standard_hive_mounts();

/// Well-known paths (shared by machine population and malware installs).
inline constexpr const char* kServicesKey =
    "HKLM\\SYSTEM\\CurrentControlSet\\Services";
inline constexpr const char* kRunKey =
    "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Run";
inline constexpr const char* kRunOnceKey =
    "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\RunOnce";
inline constexpr const char* kWindowsNtWindowsKey =
    "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Windows";
inline constexpr const char* kAppInitDllsValue = "AppInit_DLLs";
inline constexpr const char* kBhoKey =
    "HKLM\\SOFTWARE\\Microsoft\\Windows\\CurrentVersion\\Explorer\\Browser "
    "Helper Objects";
inline constexpr const char* kWinlogonKey =
    "HKLM\\SOFTWARE\\Microsoft\\Windows NT\\CurrentVersion\\Winlogon";

}  // namespace gb::registry
