#include "registry/aseps.h"

namespace gb::registry {

const std::vector<AsepLocation>& standard_aseps() {
  static const std::vector<AsepLocation> kAseps = {
      {"Services", kServicesKey, AsepKind::kSubkeys, ""},
      {"Run", kRunKey, AsepKind::kValues, ""},
      {"RunOnce", kRunOnceKey, AsepKind::kValues, ""},
      {"AppInit_DLLs", kWindowsNtWindowsKey, AsepKind::kNamedValue,
       kAppInitDllsValue},
      {"BHO", kBhoKey, AsepKind::kSubkeys, ""},
      {"Winlogon-Shell", kWinlogonKey, AsepKind::kNamedValue, "Shell"},
      {"Winlogon-Userinit", kWinlogonKey, AsepKind::kNamedValue, "Userinit"},
  };
  return kAseps;
}

const std::vector<HiveMount>& standard_hive_mounts() {
  static const std::vector<HiveMount> kMounts = {
      {"HKLM\\SYSTEM", "C:\\windows\\system32\\config\\system"},
      {"HKLM\\SOFTWARE", "C:\\windows\\system32\\config\\software"},
      {"HKU\\S-1-5-21-1000", "C:\\documents\\user\\ntuser.dat"},
  };
  return kMounts;
}

}  // namespace gb::registry
