#include "registry/registry.h"

#include <algorithm>

#include "support/strings.h"

namespace gb::registry {

namespace {

/// Walks key components below a hive root; returns nullptr when absent.
/// Components are split on '\\'; embedded NULs inside a component are
/// preserved (path strings with NULs are legal here).
const hive::Key* walk(const hive::Key* key, std::string_view rest) {
  for (const auto& comp : split(rest, '\\')) {
    if (comp.empty()) continue;
    key = key->find_subkey(comp);
    if (!key) return nullptr;
  }
  return key;
}

}  // namespace

void ConfigurationManager::create_hive(std::string_view mount,
                                       std::string_view backing_file) {
  auto h = std::make_unique<MountedHive>();
  h->mount = std::string(mount);
  h->backing_file = std::string(backing_file);
  h->root.name = std::string(base_name(mount));
  hives_.push_back(std::move(h));
}

void ConfigurationManager::load_hive(std::string_view mount, hive::Key tree) {
  MountedHive* h = find_hive(mount);
  if (!h) throw RegError("no hive mounted at " + std::string(mount));
  h->root = std::move(tree);
}

MountedHive* ConfigurationManager::find_hive(std::string_view mount) {
  for (auto& h : hives_) {
    if (iequals(h->mount, mount)) return h.get();
  }
  return nullptr;
}

const MountedHive* ConfigurationManager::resolve_mount(
    std::string_view path, std::string_view& rest) const {
  const MountedHive* best = nullptr;
  for (const auto& h : hives_) {
    if (!istarts_with(path, h->mount)) continue;
    if (path.size() > h->mount.size() && path[h->mount.size()] != '\\') {
      continue;
    }
    if (!best || h->mount.size() > best->mount.size()) best = h.get();
  }
  if (best) {
    rest = path.substr(std::min(path.size(), best->mount.size() + 1));
  }
  return best;
}

hive::Key& ConfigurationManager::create_key(std::string_view path) {
  std::string_view rest;
  const MountedHive* hive_c = resolve_mount(path, rest);
  if (!hive_c) throw RegError("no hive for path: " + printable(path));
  auto* hive = const_cast<MountedHive*>(hive_c);
  hive::Key* key = &hive->root;
  for (const auto& comp : split(rest, '\\')) {
    if (comp.empty()) continue;
    key = &key->ensure_subkey(comp);
  }
  return *key;
}

const hive::Key* ConfigurationManager::find_key(std::string_view path) const {
  std::string_view rest;
  const MountedHive* hive = resolve_mount(path, rest);
  if (!hive) return nullptr;
  return walk(&hive->root, rest);
}

hive::Key* ConfigurationManager::find_key(std::string_view path) {
  return const_cast<hive::Key*>(
      static_cast<const ConfigurationManager*>(this)->find_key(path));
}

bool ConfigurationManager::delete_key(std::string_view path) {
  const auto dir = dir_name(path);
  const auto leaf = base_name(path);
  hive::Key* parent = find_key(dir);
  if (!parent) return false;
  return parent->remove_subkey(leaf);
}

void ConfigurationManager::set_value(std::string_view key_path, hive::Value v) {
  create_key(key_path).set_value(std::move(v));
}

const hive::Value* ConfigurationManager::get_value(std::string_view key_path,
                                                   std::string_view name) const {
  const hive::Key* key = find_key(key_path);
  return key ? key->find_value(name) : nullptr;
}

bool ConfigurationManager::delete_value(std::string_view key_path,
                                        std::string_view name) {
  hive::Key* key = find_key(key_path);
  return key && key->remove_value(name);
}

std::vector<std::string> ConfigurationManager::enum_subkeys_raw(
    std::string_view path) const {
  const hive::Key* key = find_key(path);
  std::vector<std::string> out;
  if (!key) return out;
  out.reserve(key->subkeys.size());
  for (const auto& k : key->subkeys) out.push_back(k.name);
  return out;
}

std::vector<hive::Value> ConfigurationManager::enum_values_raw(
    std::string_view path) const {
  const hive::Key* key = find_key(path);
  return key ? key->values : std::vector<hive::Value>{};
}

std::vector<std::string> ConfigurationManager::enum_subkeys(
    std::string_view path) const {
  auto out = enum_subkeys_raw(path);
  for (const auto& cb : callbacks_) {
    if (cb.filter_subkeys) cb.filter_subkeys(path, out);
  }
  return out;
}

std::vector<hive::Value> ConfigurationManager::enum_values(
    std::string_view path) const {
  auto out = enum_values_raw(path);
  for (const auto& cb : callbacks_) {
    if (cb.filter_values) cb.filter_values(path, out);
  }
  return out;
}

void ConfigurationManager::register_callback(RegistryCallback cb) {
  callbacks_.push_back(std::move(cb));
}

void ConfigurationManager::unregister_callbacks(std::string_view owner) {
  std::erase_if(callbacks_, [&](const RegistryCallback& cb) {
    return iequals(cb.owner, owner);
  });
}

void ConfigurationManager::flush(ntfs::NtfsVolume& vol) const {
  for (const auto& h : hives_) {
    const auto image = hive::serialize_hive(h->root, h->mount);
    vol.write_file(h->backing_file, image,
                   ntfs::kAttrSystem | ntfs::kAttrHidden);
  }
}

std::size_t ConfigurationManager::total_keys() const {
  std::size_t n = 0;
  for (const auto& h : hives_) n += h->root.tree_size();
  return n;
}

}  // namespace gb::registry
