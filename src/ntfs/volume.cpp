#include "ntfs/volume.h"

#include <algorithm>
#include <cstring>

#include "ntfs/dir_index.h"
#include "support/strings.h"

namespace gb::ntfs {

namespace {

/// Strips an optional drive prefix ("C:") and leading backslashes.
std::string_view strip_drive(std::string_view path) {
  if (path.size() >= 2 && path[1] == ':') path.remove_prefix(2);
  while (!path.empty() && path.front() == '\\') path.remove_prefix(1);
  return path;
}

std::vector<std::string> components(std::string_view path) {
  path = strip_drive(path);
  if (path.empty()) return {};
  std::vector<std::string> out;
  for (auto& part : split(path, '\\')) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::uint64_t clusters_for(std::uint64_t bytes) {
  return (bytes + kClusterSize - 1) / kClusterSize;
}

/// Journal incarnation id for one (volume, mount) pair: the splitmix64
/// finalizer over serial and the persisted mount sequence. The sequence
/// never repeats for a device, so no two mounts ever share an id — the
/// property that forces a cursor saved under an earlier mount into the
/// "journal reset" fallback instead of silently splicing stale records.
std::uint64_t journal_incarnation_id(std::uint64_t serial,
                                     std::uint64_t mount_seq) {
  std::uint64_t h = serial ^ (mount_seq * 0x9E3779B97F4A7C15ull);
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

}  // namespace

void NtfsVolume::format(disk::SectorDevice& dev,
                        std::uint32_t mft_record_count, std::uint64_t serial) {
  const std::uint64_t total_clusters =
      dev.sector_count() / kSectorsPerCluster;
  const std::uint32_t bitmap_clusters = static_cast<std::uint32_t>(
      (total_clusters / 8 + kClusterSize - 1) / kClusterSize);
  const std::uint64_t bitmap_start = 1;
  const std::uint64_t mft_start = bitmap_start + bitmap_clusters;
  const std::uint64_t mft_clusters =
      clusters_for(static_cast<std::uint64_t>(mft_record_count) *
                   kMftRecordSize);
  if (mft_start + mft_clusters >= total_clusters) {
    throw FsError("device too small for requested MFT size");
  }

  // Boot sector.
  ByteWriter bs;
  bs.zeros(BootSectorLayout::kOemOffset);
  bs.bytes(to_bytes(std::string_view(kOemId, sizeof kOemId)));
  bs.u16(static_cast<std::uint16_t>(kSectorSize));
  bs.u8(static_cast<std::uint8_t>(kSectorsPerCluster));
  bs.zeros(BootSectorLayout::kTotalSectors - bs.size());
  bs.u64(dev.sector_count());
  bs.u64(mft_start);
  bs.u32(mft_record_count);
  bs.u64(bitmap_start);
  bs.u32(bitmap_clusters);
  bs.u64(serial);
  bs.zeros(BootSectorLayout::kSignature - bs.size());
  bs.u8(0x55);
  bs.u8(0xaa);
  dev.write(0, bs.view());

  // Bitmap: clusters [0, mft_start + mft_clusters) are in use.
  std::vector<std::byte> bitmap(bitmap_clusters * kClusterSize, std::byte{0});
  const std::uint64_t reserved = mft_start + mft_clusters;
  for (std::uint64_t c = 0; c < reserved; ++c) {
    bitmap[c / 8] |= static_cast<std::byte>(1u << (c % 8));
  }
  dev.write(bitmap_start * kSectorsPerCluster, bitmap);

  // Zero the MFT region, then write the system records.
  const std::vector<std::byte> zero_cluster(kClusterSize, std::byte{0});
  for (std::uint64_t c = 0; c < mft_clusters; ++c) {
    dev.write((mft_start + c) * kSectorsPerCluster, zero_cluster);
  }

  auto write_record = [&](const MftRecord& rec) {
    const auto image = rec.serialize();
    dev.write(mft_start * kSectorsPerCluster +
                  rec.record_number * (kMftRecordSize / kSectorSize),
              image);
  };

  // Record 0: $MFT itself, non-resident data covering the MFT region.
  MftRecord mft_rec;
  mft_rec.record_number = kMftRecordMft;
  mft_rec.flags = kRecordInUse;
  mft_rec.std_info = StandardInfo{0, 0, 0, kAttrHidden | kAttrSystem};
  mft_rec.file_name = FileNameAttr{kMftRecordRoot, "$MFT"};
  DataAttr mft_data;
  mft_data.resident = false;
  mft_data.runs = {Run{mft_start, mft_clusters}};
  mft_data.real_size =
      static_cast<std::uint64_t>(mft_record_count) * kMftRecordSize;
  mft_rec.data = std::move(mft_data);
  write_record(mft_rec);

  // Record 5: root directory.
  MftRecord root;
  root.record_number = kMftRecordRoot;
  root.flags = kRecordInUse | kRecordIsDirectory;
  root.std_info = StandardInfo{0, 0, 0, kAttrDirectory};
  root.file_name = FileNameAttr{kRootParentRef, "."};
  write_record(root);

  // Record 6: $Bitmap.
  MftRecord bm;
  bm.record_number = kMftRecordBitmap;
  bm.flags = kRecordInUse;
  bm.std_info = StandardInfo{0, 0, 0, kAttrHidden | kAttrSystem};
  bm.file_name = FileNameAttr{kMftRecordRoot, "$Bitmap"};
  DataAttr bm_data;
  bm_data.resident = false;
  bm_data.runs = {Run{bitmap_start, bitmap_clusters}};
  bm_data.real_size = bitmap.size();
  bm.data = std::move(bm_data);
  write_record(bm);
}

NtfsVolume::NtfsVolume(disk::SectorDevice& dev, MountMode mode)
    : dev_(dev), read_only_(mode == MountMode::kReadOnly) {
  // Parse boot sector.
  std::vector<std::byte> bs(kSectorSize);
  dev_.read(0, bs);
  ByteReader r(bs);
  r.seek(BootSectorLayout::kOemOffset);
  if (r.str(8) != std::string(kOemId, sizeof kOemId)) {
    throw ParseError("not an NTFS volume (bad OEM id)");
  }
  r.seek(BootSectorLayout::kTotalSectors);
  const std::uint64_t total_sectors = r.u64();
  mft_start_cluster_ = r.u64();
  mft_record_count_ = r.u32();
  bitmap_start_cluster_ = r.u64();
  bitmap_cluster_count_ = r.u32();
  total_clusters_ = total_sectors / kSectorsPerCluster;
  const std::uint64_t serial = r.u64();
  // Bump the on-device mount sequence and derive this incarnation's
  // journal id from (serial, sequence): deterministic (no wall clock, no
  // randomness) yet never reused, so a cursor from a previous mount can
  // only ever hit the "journal reset" fallback — it cannot alias into
  // this incarnation's USN space and splice stale records. A read-only
  // mount skips the bump (it must not touch the device); its journal is
  // inert anyway, since every mutation throws before journaling.
  r.seek(BootSectorLayout::kJournalSeq);
  const std::uint64_t mount_seq = r.u64() + 1;
  if (!read_only_) {
    for (std::size_t i = 0; i < 8; ++i) {
      bs[BootSectorLayout::kJournalSeq + i] =
          static_cast<std::byte>((mount_seq >> (8 * i)) & 0xff);
    }
    dev_.write(0, bs);
  }
  journal_.reset(journal_incarnation_id(serial, mount_seq));

  // Load bitmap.
  std::vector<std::byte> raw_bitmap(
      static_cast<std::size_t>(bitmap_cluster_count_) * kClusterSize);
  dev_.read(bitmap_start_cluster_ * kSectorsPerCluster, raw_bitmap);
  bitmap_.resize(raw_bitmap.size());
  std::memcpy(bitmap_.data(), raw_bitmap.data(), raw_bitmap.size());

  // Load all MFT records.
  records_.resize(mft_record_count_);
  std::vector<std::byte> image(kMftRecordSize);
  for (std::uint64_t i = 0; i < mft_record_count_; ++i) {
    dev_.read(mft_lba(i), image);
    if (!MftRecord::looks_live(image)) {
      if (i >= kFirstUserRecord) free_records_.push_back(i);
      continue;
    }
    records_[i] = MftRecord::parse(image);
  }
  // Free list should hand out low record numbers first for determinism.
  std::reverse(free_records_.begin(), free_records_.end());

  // Build directory membership from the on-disk index attributes (the
  // authoritative enumeration source).
  for (std::uint64_t i = 0; i < mft_record_count_; ++i) {
    if (!records_[i] || !records_[i]->is_directory() || !records_[i]->index) {
      continue;
    }
    const auto blob = attr_payload(*records_[i]->index);
    for (const auto& e : decode_index_entries(blob)) {
      children_[i][fold_case(e.name)] = e.record;
    }
  }
  // Legacy fallback: link records whose parent directory carries no index
  // attribute at all (e.g. images written before indexes existed). A
  // parent that HAS an index but omits the record is intentional — that
  // is the data-only hiding this design exposes to the raw scan.
  for (std::uint64_t i = kFirstUserRecord; i < mft_record_count_; ++i) {
    if (!records_[i] || !records_[i]->file_name) continue;
    const auto parent = records_[i]->file_name->parent_ref;
    if (parent >= records_.size() || !records_[parent]) continue;
    if (records_[parent]->index) continue;
    children_[parent][fold_case(records_[i]->file_name->name)] = i;
  }
}

std::uint64_t NtfsVolume::mft_lba(std::uint64_t record) const {
  return mft_start_cluster_ * kSectorsPerCluster +
         record * (kMftRecordSize / kSectorSize);
}

void NtfsVolume::link_child(std::uint64_t parent, std::string_view name,
                            std::uint64_t rec) {
  children_[parent][fold_case(name)] = rec;
  persist_index(parent);
}

void NtfsVolume::unlink_child(std::uint64_t parent, std::string_view name) {
  auto it = children_.find(parent);
  if (it == children_.end()) return;
  it->second.erase(fold_case(name));
  persist_index(parent);
}

void NtfsVolume::persist_index(std::uint64_t dir) {
  if (dir >= records_.size() || !records_[dir]) return;
  MftRecord& rec = *records_[dir];
  if (rec.index) free_attr_clusters(*rec.index);

  std::vector<IndexEntry> entries;
  if (auto it = children_.find(dir); it != children_.end()) {
    entries.reserve(it->second.size());
    for (const auto& [folded, child_rec] : it->second) {
      if (child_rec >= records_.size() || !records_[child_rec] ||
          !records_[child_rec]->file_name) {
        continue;
      }
      entries.push_back(
          IndexEntry{child_rec, records_[child_rec]->file_name->name});
    }
  }
  const auto blob = encode_index_entries(entries);
  DataAttr attr;
  attr.resident = true;
  attr.resident_data = blob;
  attr.real_size = blob.size();
  rec.index = std::move(attr);
  if (rec.serialized_size() > kMftRecordSize) {
    const std::uint64_t clusters =
        (blob.size() + kClusterSize - 1) / kClusterSize;
    RunList runs = allocate_clusters(clusters);
    write_clusters(runs, blob);
    rec.index->resident = false;
    rec.index->resident_data.clear();
    rec.index->runs = std::move(runs);
  }
  store_record(dir, disk::UsnReason::kIndexChange);
}

void NtfsVolume::free_attr_clusters(DataAttr& attr) {
  if (attr.resident) return;
  for (const Run& run : attr.runs) {
    for (std::uint64_t c = run.lcn; c < run.lcn + run.length; ++c) {
      bitmap_[c / 8] &= static_cast<std::uint8_t>(~(1u << (c % 8)));
    }
  }
  attr.runs.clear();
  flush_bitmap();
}

std::vector<std::byte> NtfsVolume::attr_payload(const DataAttr& attr) const {
  if (attr.resident) return attr.resident_data;
  return read_clusters(attr.runs, attr.real_size);
}

std::uint64_t NtfsVolume::index_unlink(std::string_view path) {
  ensure_writable();
  const std::uint64_t rec_no = resolve(path);
  if (rec_no < kFirstUserRecord) throw FsError("cannot unlink system file");
  const MftRecord& rec = *records_[rec_no];
  unlink_child(rec.file_name->parent_ref, rec.file_name->name);
  return rec_no;
}

bool NtfsVolume::index_relink(std::uint64_t record_number) {
  ensure_writable();
  if (record_number >= records_.size() || !records_[record_number] ||
      !records_[record_number]->file_name) {
    return false;
  }
  const auto& fn = *records_[record_number]->file_name;
  if (child(fn.parent_ref, fn.name).has_value()) return false;
  link_child(fn.parent_ref, fn.name, record_number);
  return true;
}

std::optional<std::uint64_t> NtfsVolume::child(std::uint64_t dir,
                                               std::string_view name) const {
  auto it = children_.find(dir);
  if (it == children_.end()) return std::nullopt;
  auto jt = it->second.find(fold_case(name));
  if (jt == it->second.end()) return std::nullopt;
  return jt->second;
}

std::optional<std::uint64_t> NtfsVolume::try_resolve(
    std::string_view path) const {
  std::uint64_t cur = kMftRecordRoot;
  for (const auto& comp : components(path)) {
    auto next = child(cur, comp);
    if (!next) return std::nullopt;
    cur = *next;
  }
  return cur;
}

std::uint64_t NtfsVolume::resolve(std::string_view path) const {
  auto rec = try_resolve(path);
  if (!rec) throw FsError("path not found: " + std::string(path));
  return *rec;
}

bool NtfsVolume::exists(std::string_view path) const {
  return try_resolve(path).has_value();
}

std::optional<FileInfo> NtfsVolume::stat(std::string_view path) const {
  auto rec_no = try_resolve(path);
  if (!rec_no) return std::nullopt;
  const MftRecord& rec = *records_[*rec_no];
  FileInfo info;
  info.name = rec.file_name ? rec.file_name->name : std::string{};
  info.record = *rec_no;
  info.is_directory = rec.is_directory();
  info.size = rec.data ? rec.data->real_size : 0;
  info.attributes = rec.std_info ? rec.std_info->file_attributes : 0;
  info.created_us = rec.std_info ? rec.std_info->created_us : 0;
  info.modified_us = rec.std_info ? rec.std_info->modified_us : 0;
  return info;
}

std::vector<DirEntry> NtfsVolume::list_directory(std::string_view path) const {
  const std::uint64_t dir = resolve(path);
  if (!records_[dir]->is_directory()) {
    throw FsError("not a directory: " + std::string(path));
  }
  std::vector<DirEntry> out;
  auto it = children_.find(dir);
  if (it == children_.end()) return out;
  for (const auto& [folded, rec_no] : it->second) {
    const MftRecord& rec = *records_[rec_no];
    DirEntry e;
    e.name = rec.file_name->name;  // original case
    e.record = rec_no;
    e.is_directory = rec.is_directory();
    e.size = rec.data ? rec.data->real_size : 0;
    e.attributes = rec.std_info ? rec.std_info->file_attributes : 0;
    out.push_back(std::move(e));
  }
  return out;  // map iteration is already folded-name order
}

std::vector<std::byte> NtfsVolume::read_file(std::string_view path) const {
  const std::uint64_t rec_no = resolve(path);
  const MftRecord& rec = *records_[rec_no];
  if (rec.is_directory()) throw FsError("is a directory: " + std::string(path));
  if (!rec.data) return {};
  if (rec.data->resident) return rec.data->resident_data;
  return read_clusters(rec.data->runs, rec.data->real_size);
}

void NtfsVolume::write_file(std::string_view path,
                            std::span<const std::byte> data,
                            std::uint32_t attributes) {
  ensure_writable();
  const auto comps = components(path);
  if (comps.empty()) throw FsError("empty path");
  const std::string& name = comps.back();
  if (name.size() > 255) throw FsError("name too long: " + printable(name));

  std::uint64_t parent = kMftRecordRoot;
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    auto next = child(parent, comps[i]);
    if (!next || !records_[*next]->is_directory()) {
      throw FsError("parent directory missing: " + std::string(path));
    }
    parent = *next;
  }

  std::uint64_t rec_no;
  bool created = false;
  if (auto existing = child(parent, name)) {
    rec_no = *existing;
    MftRecord& rec = *records_[rec_no];
    if (rec.is_directory()) {
      throw FsError("name is a directory: " + std::string(path));
    }
    free_file_clusters(rec);
  } else {
    created = true;
    rec_no = allocate_record();
    MftRecord rec;
    rec.record_number = rec_no;
    rec.flags = kRecordInUse;
    rec.std_info = StandardInfo{now_us(), now_us(), now_us(), attributes};
    rec.file_name = FileNameAttr{parent, name};
    records_[rec_no] = std::move(rec);
    link_child(parent, name, rec_no);
  }

  MftRecord& rec = *records_[rec_no];
  rec.std_info->modified_us = now_us();
  rec.std_info->file_attributes = attributes;
  DataAttr da;
  da.resident = true;
  da.resident_data.assign(data.begin(), data.end());
  da.real_size = data.size();
  rec.data = std::move(da);

  if (rec.serialized_size() > kMftRecordSize) {
    // Spill to non-resident storage.
    const std::uint64_t clusters = clusters_for(data.size());
    RunList runs = allocate_clusters(clusters);
    write_clusters(runs, data);
    rec.data->resident = false;
    rec.data->resident_data.clear();
    rec.data->runs = std::move(runs);
  }
  store_record(rec_no, created ? disk::UsnReason::kCreate
                               : disk::UsnReason::kDataOverwrite);
}

void NtfsVolume::write_file(std::string_view path, std::string_view text,
                            std::uint32_t attributes) {
  write_file(path, to_bytes(text), attributes);
}

void NtfsVolume::append_file(std::string_view path, std::string_view text) {
  std::vector<std::byte> data;
  if (exists(path)) data = read_file(path);
  const auto extra = to_bytes(text);
  data.insert(data.end(), extra.begin(), extra.end());
  const auto info = stat(path);
  write_file(path, data, info ? info->attributes : kAttrArchive);
}

void NtfsVolume::create_directories(std::string_view path) {
  ensure_writable();
  std::uint64_t parent = kMftRecordRoot;
  for (const auto& comp : components(path)) {
    if (auto next = child(parent, comp)) {
      if (!records_[*next]->is_directory()) {
        throw FsError("path component is a file: " + comp);
      }
      parent = *next;
      continue;
    }
    if (comp.size() > 255) throw FsError("name too long: " + printable(comp));
    const std::uint64_t rec_no = allocate_record();
    MftRecord rec;
    rec.record_number = rec_no;
    rec.flags = kRecordInUse | kRecordIsDirectory;
    rec.std_info = StandardInfo{now_us(), now_us(), now_us(), kAttrDirectory};
    rec.file_name = FileNameAttr{parent, comp};
    records_[rec_no] = std::move(rec);
    store_record(rec_no, disk::UsnReason::kCreate);
    link_child(parent, comp, rec_no);
    parent = rec_no;
  }
}

void NtfsVolume::remove_one(std::uint64_t rec_no, std::uint64_t parent,
                            std::string name) {
  MftRecord& rec = *records_[rec_no];
  free_file_clusters(rec);
  // Alternate data streams die with the file.
  for (const auto& s : rec.named_streams) {
    if (s.data.resident) continue;
    for (const Run& run : s.data.runs) {
      for (std::uint64_t c = run.lcn; c < run.lcn + run.length; ++c) {
        bitmap_[c / 8] &= static_cast<std::uint8_t>(~(1u << (c % 8)));
      }
    }
  }
  if (!rec.named_streams.empty()) {
    rec.named_streams.clear();
    flush_bitmap();
  }
  if (rec.index) free_attr_clusters(*rec.index);
  rec.flags = static_cast<std::uint16_t>(rec.flags & ~kRecordInUse);
  rec.sequence++;
  // Journaled while the record still exists: the tombstone write IS the
  // delete event the incremental scan must observe.
  store_record(rec_no, disk::UsnReason::kDelete);
  records_[rec_no].reset();
  free_records_.push_back(rec_no);
  unlink_child(parent, name);
  children_.erase(rec_no);
}

void NtfsVolume::remove(std::string_view path) {
  ensure_writable();
  const std::uint64_t rec_no = resolve(path);
  if (rec_no < kFirstUserRecord) throw FsError("cannot remove system file");
  const MftRecord& rec = *records_[rec_no];
  if (rec.is_directory()) {
    auto it = children_.find(rec_no);
    if (it != children_.end() && !it->second.empty()) {
      throw FsError("directory not empty: " + std::string(path));
    }
  }
  remove_one(rec_no, rec.file_name->parent_ref, rec.file_name->name);
}

void NtfsVolume::remove_recursive(std::string_view path) {
  const std::uint64_t rec_no = resolve(path);
  if (records_[rec_no]->is_directory()) {
    // Copy the child list: remove_one mutates children_.
    std::vector<std::string> names;
    if (auto it = children_.find(rec_no); it != children_.end()) {
      for (const auto& [folded, child_rec] : it->second) {
        names.push_back(records_[child_rec]->file_name->name);
      }
    }
    for (const auto& name : names) {
      remove_recursive(join_path(path, name));
    }
  }
  remove(path);
}

void NtfsVolume::set_attributes(std::string_view path,
                                std::uint32_t attributes) {
  ensure_writable();
  const std::uint64_t rec_no = resolve(path);
  records_[rec_no]->std_info->file_attributes = attributes;
  store_record(rec_no, disk::UsnReason::kAttrChange);
}

void NtfsVolume::rename(std::string_view old_path, std::string_view new_path) {
  ensure_writable();
  const std::uint64_t rec_no = resolve(old_path);
  if (rec_no < kFirstUserRecord) throw FsError("cannot rename system file");

  const auto comps = components(new_path);
  if (comps.empty()) throw FsError("empty rename target");
  const std::string& new_name = comps.back();
  if (new_name.size() > 255) {
    throw FsError("name too long: " + printable(new_name));
  }
  std::uint64_t new_parent = kMftRecordRoot;
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    auto next = child(new_parent, comps[i]);
    if (!next || !records_[*next]->is_directory()) {
      throw FsError("parent directory missing: " + std::string(new_path));
    }
    new_parent = *next;
  }
  if (auto clash = child(new_parent, new_name); clash && *clash != rec_no) {
    throw FsError("rename target exists: " + std::string(new_path));
  }
  // A directory must not be moved into its own subtree.
  for (std::uint64_t cur = new_parent; cur != kMftRecordRoot;) {
    if (cur == rec_no) {
      throw FsError("cannot move a directory into itself: " +
                    std::string(old_path));
    }
    if (cur >= records_.size() || !records_[cur] || !records_[cur]->file_name) {
      break;
    }
    cur = records_[cur]->file_name->parent_ref;
  }

  MftRecord& rec = *records_[rec_no];
  const std::uint64_t old_parent = rec.file_name->parent_ref;
  const std::string old_name = rec.file_name->name;
  unlink_child(old_parent, old_name);
  rec.file_name = FileNameAttr{new_parent, new_name};
  store_record(rec_no, disk::UsnReason::kRename);
  link_child(new_parent, new_name, rec_no);
}

void NtfsVolume::write_stream(std::string_view path,
                              std::string_view stream_name,
                              std::span<const std::byte> data) {
  ensure_writable();
  if (stream_name.empty()) throw FsError("empty stream name");
  const std::uint64_t rec_no = resolve(path);
  MftRecord& rec = *records_[rec_no];
  // Replace an existing stream of the same name.
  std::erase_if(rec.named_streams, [&](const StreamAttr& s) {
    return iequals(s.name, stream_name);
  });
  StreamAttr stream;
  stream.name = std::string(stream_name);
  stream.data.resident = true;
  stream.data.resident_data.assign(data.begin(), data.end());
  stream.data.real_size = data.size();
  rec.named_streams.push_back(std::move(stream));
  if (rec.serialized_size() > kMftRecordSize) {
    StreamAttr& s = rec.named_streams.back();
    const std::uint64_t clusters =
        (data.size() + kClusterSize - 1) / kClusterSize;
    RunList runs = allocate_clusters(clusters);
    write_clusters(runs, data);
    s.data.resident = false;
    s.data.resident_data.clear();
    s.data.runs = std::move(runs);
  }
  store_record(rec_no, disk::UsnReason::kDataOverwrite);
}

void NtfsVolume::write_stream(std::string_view path,
                              std::string_view stream_name,
                              std::string_view text) {
  write_stream(path, stream_name, to_bytes(text));
}

std::vector<std::byte> NtfsVolume::read_stream(
    std::string_view path, std::string_view stream_name) const {
  const std::uint64_t rec_no = resolve(path);
  const MftRecord& rec = *records_[rec_no];
  for (const auto& s : rec.named_streams) {
    if (!iequals(s.name, stream_name)) continue;
    if (s.data.resident) return s.data.resident_data;
    return read_clusters(s.data.runs, s.data.real_size);
  }
  throw FsError("no such stream: " + std::string(path) + ":" +
                std::string(stream_name));
}

std::vector<std::string> NtfsVolume::list_streams(std::string_view path) const {
  const std::uint64_t rec_no = resolve(path);
  std::vector<std::string> out;
  for (const auto& s : records_[rec_no]->named_streams) out.push_back(s.name);
  return out;
}

bool NtfsVolume::remove_stream(std::string_view path,
                               std::string_view stream_name) {
  ensure_writable();
  const std::uint64_t rec_no = resolve(path);
  MftRecord& rec = *records_[rec_no];
  for (auto it = rec.named_streams.begin(); it != rec.named_streams.end();
       ++it) {
    if (!iequals(it->name, stream_name)) continue;
    if (!it->data.resident) {
      for (const Run& run : it->data.runs) {
        for (std::uint64_t c = run.lcn; c < run.lcn + run.length; ++c) {
          bitmap_[c / 8] &= static_cast<std::uint8_t>(~(1u << (c % 8)));
        }
      }
      flush_bitmap();
    }
    rec.named_streams.erase(it);
    store_record(rec_no, disk::UsnReason::kDataOverwrite);
    return true;
  }
  return false;
}

std::size_t NtfsVolume::live_record_count() const {
  std::size_t n = 0;
  for (const auto& rec : records_) {
    if (rec) ++n;
  }
  return n;
}

std::uint64_t NtfsVolume::used_data_bytes() const {
  std::uint64_t total = 0;
  for (const auto& rec : records_) {
    if (rec && rec->data) total += rec->data->real_size;
  }
  return total;
}

void NtfsVolume::ensure_writable() const {
  if (read_only_) throw FsError("volume is mounted read-only");
}

std::uint64_t NtfsVolume::allocate_record() {
  if (free_records_.empty()) throw FsError("MFT full");
  const std::uint64_t rec = free_records_.back();
  free_records_.pop_back();
  return rec;
}

void NtfsVolume::store_record(std::uint64_t number, disk::UsnReason reason) {
  ensure_writable();
  std::vector<std::byte> image;
  if (records_[number]) {
    image = records_[number]->serialize();
  } else {
    // Freed record: keep the (now not-in-use) tombstone already written by
    // the caller, or zero if never used. No device write, no journal entry.
    return;
  }
  dev_.write(mft_lba(number), image);
  journal_.append(number, reason);
}

void NtfsVolume::free_file_clusters(MftRecord& rec) {
  if (!rec.data || rec.data->resident) return;
  for (const Run& run : rec.data->runs) {
    for (std::uint64_t c = run.lcn; c < run.lcn + run.length; ++c) {
      bitmap_[c / 8] &= static_cast<std::uint8_t>(~(1u << (c % 8)));
    }
  }
  rec.data.reset();
  flush_bitmap();
}

RunList NtfsVolume::allocate_clusters(std::uint64_t count) {
  RunList runs;
  std::uint64_t remaining = count;
  std::uint64_t run_start = 0;
  std::uint64_t run_len = 0;
  for (std::uint64_t c = 0; c < total_clusters_ && remaining > 0; ++c) {
    const bool used = bitmap_[c / 8] & (1u << (c % 8));
    if (!used) {
      bitmap_[c / 8] |= static_cast<std::uint8_t>(1u << (c % 8));
      if (run_len == 0) run_start = c;
      ++run_len;
      --remaining;
    } else if (run_len > 0) {
      runs.push_back(Run{run_start, run_len});
      run_len = 0;
    }
  }
  if (run_len > 0) runs.push_back(Run{run_start, run_len});
  if (remaining > 0) {
    // Roll back the partial allocation before failing.
    for (const Run& run : runs) {
      for (std::uint64_t c = run.lcn; c < run.lcn + run.length; ++c) {
        bitmap_[c / 8] &= static_cast<std::uint8_t>(~(1u << (c % 8)));
      }
    }
    throw FsError("volume full");
  }
  flush_bitmap();
  return runs;
}

void NtfsVolume::write_clusters(const RunList& runs,
                                std::span<const std::byte> data) {
  ensure_writable();
  std::size_t offset = 0;
  std::vector<std::byte> cluster(kClusterSize);
  for (const Run& run : runs) {
    for (std::uint64_t c = run.lcn; c < run.lcn + run.length; ++c) {
      const std::size_t n = std::min(kClusterSize, data.size() - offset);
      std::memcpy(cluster.data(), data.data() + offset, n);
      std::memset(cluster.data() + n, 0, kClusterSize - n);
      dev_.write(c * kSectorsPerCluster, cluster);
      offset += n;
    }
  }
}

std::vector<std::byte> NtfsVolume::read_clusters(const RunList& runs,
                                                 std::uint64_t size) const {
  std::vector<std::byte> out;
  out.reserve(size);
  std::vector<std::byte> cluster(kClusterSize);
  for (const Run& run : runs) {
    for (std::uint64_t c = run.lcn; c < run.lcn + run.length; ++c) {
      dev_.read(c * kSectorsPerCluster, cluster);
      const std::size_t n =
          std::min<std::uint64_t>(kClusterSize, size - out.size());
      out.insert(out.end(), cluster.begin(),
                 cluster.begin() + static_cast<std::ptrdiff_t>(n));
      if (out.size() == size) return out;
    }
  }
  return out;
}

void NtfsVolume::flush_bitmap() {
  ensure_writable();
  std::vector<std::byte> raw(bitmap_.size());
  std::memcpy(raw.data(), bitmap_.data(), bitmap_.size());
  dev_.write(bitmap_start_cluster_ * kSectorsPerCluster, raw);
}

}  // namespace gb::ntfs
