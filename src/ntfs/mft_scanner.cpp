#include "ntfs/mft_scanner.h"

#include <map>
#include <set>
#include <string>

#include "ntfs/dir_index.h"
#include "ntfs/ntfs_format.h"
#include "obs/trace.h"
#include "support/strings.h"

namespace gb::ntfs {

MftScanner::MftScanner(disk::SectorDevice& dev) : dev_(dev) {
  std::vector<std::byte> bs(kSectorSize);
  dev_.read(0, bs);
  ByteReader r(bs);
  r.seek(BootSectorLayout::kOemOffset);
  if (r.str(8) != std::string(kOemId, sizeof kOemId)) {
    throw ParseError("not an NTFS volume (bad OEM id)");
  }
  r.seek(BootSectorLayout::kMftStartCluster);
  mft_start_cluster_ = r.u64();
  mft_record_count_ = r.u32();
}

support::StatusOr<MftScanner> MftScanner::open(disk::SectorDevice& dev) {
  try {
    return MftScanner(dev);
  } catch (const ParseError& e) {
    return support::Status::corrupt(e.what());
  }
}

MftRecord MftScanner::load_record_from(disk::SectorDevice& dev,
                                       std::uint64_t number) {
  std::vector<std::byte> image(kMftRecordSize);
  dev.read(mft_start_cluster_ * kSectorsPerCluster +
               number * (kMftRecordSize / kSectorSize),
           image);
  return MftRecord::parse(image);
}

bool MftScanner::record_live_from(disk::SectorDevice& dev,
                                  std::uint64_t number) {
  std::vector<std::byte> image(kMftRecordSize);
  dev.read(mft_start_cluster_ * kSectorsPerCluster +
               number * (kMftRecordSize / kSectorSize),
           image);
  return MftRecord::looks_live(image);
}

MftRecord MftScanner::load_record(std::uint64_t number) {
  return load_record_from(dev_, number);
}

bool MftScanner::record_live(std::uint64_t number) {
  return record_live_from(dev_, number);
}

std::optional<MftNode> node_from(const MftRecord& rec) {
  if (!rec.file_name) return std::nullopt;
  MftNode n;
  n.name = rec.file_name->name;
  n.parent = rec.file_name->parent_ref;
  n.is_directory = rec.is_directory();
  n.size = rec.data ? rec.data->real_size : 0;
  n.attributes = rec.std_info ? rec.std_info->file_attributes : 0;
  for (const auto& stream : rec.named_streams) {
    n.stream_names.push_back(stream.name);
  }
  return n;
}

std::vector<RawFile> assemble_listing(
    const std::map<std::uint64_t, MftNode>& nodes) {
  // Resolve full paths with memoization; cycles/broken chains -> orphan.
  std::map<std::uint64_t, std::string> paths;
  paths[kMftRecordRoot] = "";

  auto resolve_path = [&](std::uint64_t rec) -> const std::string& {
    std::vector<std::uint64_t> chain;
    std::uint64_t cur = rec;
    while (!paths.contains(cur)) {
      auto it = nodes.find(cur);
      if (it == nodes.end() || chain.size() > nodes.size()) {
        paths[cur] = "<orphan>";
        break;
      }
      chain.push_back(cur);
      cur = it->second.parent;
    }
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      paths[*it] = join_path(paths[nodes.at(*it).parent], nodes.at(*it).name);
    }
    return paths.at(rec);
  };

  std::vector<RawFile> out;
  out.reserve(nodes.size());
  for (const auto& [rec_no, node] : nodes) {
    if (rec_no == kMftRecordRoot) continue;
    RawFile f;
    f.record = rec_no;
    f.path = resolve_path(rec_no);
    f.is_directory = node.is_directory;
    f.is_system = rec_no < kFirstUserRecord;
    f.size = node.size;
    f.attributes = node.attributes;
    f.stream_names = node.stream_names;
    out.push_back(std::move(f));
  }
  return out;
}

std::vector<RawFile> MftScanner::scan(support::ThreadPool* pool,
                                      std::uint32_t batch_records) {
  if (batch_records == 0) batch_records = kDefaultScanBatch;
  auto whole = obs::default_tracer().span("mft.scan", "parse");
  whole.arg("records", std::to_string(mft_record_count_));

  // Phase 1: parse records in fixed-size batches. The batch boundaries
  // depend only on batch_records, never on the worker count, and each
  // batch tracks its own I/O — so merging the per-batch outputs in batch
  // order reproduces the serial walk exactly.
  struct Batch {
    std::vector<std::pair<std::uint64_t, MftNode>> nodes;  // record order
    std::size_t corrupt = 0;
    disk::IoStats io;
  };
  const std::size_t batch_count =
      (mft_record_count_ + batch_records - 1) / batch_records;
  std::vector<Batch> batches(batch_count);

  auto parse_batch = [&](std::size_t b) {
    auto span = obs::default_tracer().span("mft.parse_batch", "parse");
    span.arg("batch", std::to_string(b));
    disk::CountingDevice dev(dev_);
    Batch& out = batches[b];
    const std::uint64_t begin = std::uint64_t{b} * batch_records;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + batch_records, mft_record_count_);
    for (std::uint64_t i = begin; i < end; ++i) {
      if (!record_live_from(dev, i)) continue;
      MftRecord rec;
      try {
        rec = load_record_from(dev, i);
      } catch (const ParseError&) {
        ++out.corrupt;  // torn write / corruption: skip, keep scanning
        continue;
      }
      auto n = node_from(rec);
      if (!n) continue;
      out.nodes.emplace_back(i, std::move(*n));
    }
    out.io = dev.stats();
  };
  if (pool) {
    pool->parallel_for(batch_count, parse_batch);
  } else {
    for (std::size_t b = 0; b < batch_count; ++b) parse_batch(b);
  }

  std::map<std::uint64_t, MftNode> nodes;
  corrupt_records_ = 0;
  scan_stats_.reset();
  for (auto& b : batches) {
    for (auto& [rec_no, node] : b.nodes) {
      nodes.emplace(rec_no, std::move(node));
    }
    corrupt_records_ += b.corrupt;
    scan_stats_.sectors_read += b.io.sectors_read;
    scan_stats_.sectors_written += b.io.sectors_written;
    scan_stats_.seeks += b.io.seeks;
  }

  return assemble_listing(nodes);
}

std::vector<RawFile> MftScanner::scan_deleted(support::ThreadPool* pool,
                                              std::uint32_t batch_records) {
  if (batch_records == 0) batch_records = kDefaultScanBatch;
  if (mft_record_count_ <= kFirstUserRecord) return {};
  auto whole = obs::default_tracer().span("mft.scan_deleted", "parse");

  // Fixed-size record batches, like scan(): boundaries depend only on
  // batch_records, and per-batch outputs merge in record order, so the
  // listing is identical at any worker count. The tombstone sweep feeds
  // no timing model, so batches read dev_ directly (MemDisk guards its
  // shared counters; see disk.h).
  const std::uint64_t span = mft_record_count_ - kFirstUserRecord;
  const std::size_t batch_count = (span + batch_records - 1) / batch_records;
  std::vector<std::vector<RawFile>> batches(batch_count);

  auto sweep_batch = [&](std::size_t b) {
    std::vector<std::byte> image(kMftRecordSize);
    const std::uint64_t begin =
        kFirstUserRecord + std::uint64_t{b} * batch_records;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + batch_records, mft_record_count_);
    for (std::uint64_t i = begin; i < end; ++i) {
      dev_.read(mft_start_cluster_ * kSectorsPerCluster +
                    i * (kMftRecordSize / kSectorSize),
                image);
      ByteReader r(image);
      if (r.u32() != kFileRecordMagic) continue;  // never used
      r.skip(2);
      if (r.u16() & kRecordInUse) continue;  // live, not deleted
      MftRecord rec;
      try {
        rec = MftRecord::parse(image);
      } catch (const ParseError&) {
        continue;  // tombstone too damaged to recover
      }
      if (!rec.file_name) continue;
      RawFile f;
      f.record = i;
      f.path = "<deleted>\\" + rec.file_name->name;
      f.is_directory = (rec.flags & kRecordIsDirectory) != 0;
      f.size = rec.data ? rec.data->real_size : 0;
      f.attributes = rec.std_info ? rec.std_info->file_attributes : 0;
      batches[b].push_back(std::move(f));
    }
  };
  if (pool) {
    pool->parallel_for(batch_count, sweep_batch);
  } else {
    for (std::size_t b = 0; b < batch_count; ++b) sweep_batch(b);
  }

  std::vector<RawFile> out;
  for (auto& b : batches) {
    out.insert(out.end(), std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()));
  }
  return out;
}

namespace {

std::vector<std::byte> read_attr_payload(disk::SectorDevice& dev,
                                         const DataAttr& attr) {
  if (attr.resident) return attr.resident_data;
  std::vector<std::byte> out;
  out.reserve(attr.real_size);
  std::vector<std::byte> cluster(kClusterSize);
  for (const Run& run : attr.runs) {
    for (std::uint64_t c = run.lcn; c < run.lcn + run.length; ++c) {
      dev.read(c * kSectorsPerCluster, cluster);
      const std::size_t n =
          std::min<std::uint64_t>(kClusterSize, attr.real_size - out.size());
      out.insert(out.end(), cluster.begin(),
                 cluster.begin() + static_cast<std::ptrdiff_t>(n));
      if (out.size() == attr.real_size) return out;
    }
  }
  return out;
}

}  // namespace

std::vector<std::byte> MftScanner::read_file_data(std::uint64_t record) {
  const MftRecord rec = load_record(record);
  if (!rec.data) return {};
  return read_attr_payload(dev_, *rec.data);
}

std::vector<RawFile> MftScanner::index_orphans(support::ThreadPool* pool,
                                               std::uint32_t batch_records) {
  if (batch_records == 0) batch_records = kDefaultScanBatch;
  auto whole = obs::default_tracer().span("mft.index_orphans", "parse");

  // Pass 1: collect each directory's indexed child-record set. Fixed
  // record batches (boundaries depend only on batch_records, never the
  // worker count); each directory lands in exactly one batch, so the
  // per-batch maps merge disjointly and the merged result matches the
  // serial walk exactly. Like scan_deleted(), batches read dev_ directly
  // (MemDisk guards its shared counters; no timing model consumes this
  // walk).
  struct IndexBatch {
    std::map<std::uint64_t, std::set<std::uint64_t>> indexed;
    std::vector<std::uint64_t> has_index;
  };
  const std::size_t batch_count =
      (mft_record_count_ + batch_records - 1) / batch_records;
  std::vector<IndexBatch> parts(batch_count);
  auto index_batch = [&](std::size_t b) {
    auto span = obs::default_tracer().span("mft.index_batch", "parse");
    span.arg("batch", std::to_string(b));
    IndexBatch& out = parts[b];
    const std::uint64_t begin = std::uint64_t{b} * batch_records;
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + batch_records, mft_record_count_);
    for (std::uint64_t i = begin; i < end; ++i) {
      if (!record_live(i)) continue;
      MftRecord rec;
      try {
        rec = load_record(i);
      } catch (const ParseError&) {
        continue;
      }
      if (!rec.is_directory() || !rec.index) continue;
      out.has_index.push_back(i);
      auto& children = out.indexed[i];  // present even when the index
                                        // holds zero entries
      const auto blob = read_attr_payload(dev_, *rec.index);
      for (const auto& e : decode_index_entries(blob)) {
        children.insert(e.record);
      }
    }
  };
  if (pool) {
    pool->parallel_for(batch_count, index_batch);
  } else {
    for (std::size_t b = 0; b < batch_count; ++b) index_batch(b);
  }

  std::map<std::uint64_t, std::set<std::uint64_t>> indexed;
  std::set<std::uint64_t> has_index;
  for (auto& p : parts) {
    has_index.insert(p.has_index.begin(), p.has_index.end());
    for (auto& [dir, children] : p.indexed) {
      indexed.insert_or_assign(dir, std::move(children));
    }
  }

  // Pass 2: live records absent from their (indexed) parent, checked in
  // fixed batches over the scan listing. The lookups into `indexed` and
  // `has_index` are read-only, so batches share them without locking.
  const std::vector<RawFile> files = scan(pool, batch_records);
  const std::size_t check_count =
      (files.size() + batch_records - 1) / batch_records;
  std::vector<std::vector<RawFile>> found(check_count);
  auto check_batch = [&](std::size_t b) {
    auto span = obs::default_tracer().span("mft.orphan_check", "parse");
    span.arg("batch", std::to_string(b));
    const std::size_t begin = std::size_t{b} * batch_records;
    const std::size_t end =
        std::min<std::size_t>(begin + batch_records, files.size());
    for (std::size_t k = begin; k < end; ++k) {
      const RawFile& f = files[k];
      if (f.is_system) continue;
      MftRecord rec;
      try {
        rec = load_record(f.record);
      } catch (const ParseError&) {
        continue;
      }
      if (!rec.file_name) continue;
      const auto parent = rec.file_name->parent_ref;
      if (!has_index.contains(parent)) continue;  // legacy/unindexed parent
      const auto it = indexed.find(parent);
      if (it == indexed.end() || !it->second.contains(f.record)) {
        found[b].push_back(f);
      }
    }
  };
  if (pool) {
    pool->parallel_for(check_count, check_batch);
  } else {
    for (std::size_t b = 0; b < check_count; ++b) check_batch(b);
  }

  std::vector<RawFile> out;
  for (auto& b : found) {
    out.insert(out.end(), std::make_move_iterator(b.begin()),
               std::make_move_iterator(b.end()));
  }
  return out;
}

std::optional<std::uint64_t> MftScanner::find_in(
    const std::vector<RawFile>& files, std::string_view path) {
  std::string_view stripped = path;
  if (stripped.size() >= 2 && stripped[1] == ':') stripped.remove_prefix(2);
  while (!stripped.empty() && stripped.front() == '\\') {
    stripped.remove_prefix(1);
  }
  for (const auto& f : files) {
    if (iequals(f.path, stripped)) return f.record;
  }
  return std::nullopt;
}

std::optional<std::uint64_t> MftScanner::find(std::string_view path) {
  return find_in(scan(), path);
}

}  // namespace gb::ntfs
