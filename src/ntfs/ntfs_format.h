// On-disk format constants for the simplified NTFS volume.
//
// The layout is a faithful miniature of NTFS's MFT-centric design: a boot
// sector locating the MFT, fixed-size FILE records holding typed
// attributes (STANDARD_INFORMATION, FILE_NAME, DATA), NTFS-style encoded
// data run lists for non-resident data, and a cluster allocation bitmap.
// Deviations from real NTFS are listed in DESIGN.md §6.
#pragma once

#include <cstddef>
#include <cstdint>

namespace gb::ntfs {

inline constexpr std::size_t kSectorSize = 512;
inline constexpr std::size_t kSectorsPerCluster = 8;
inline constexpr std::size_t kClusterSize = kSectorSize * kSectorsPerCluster;
inline constexpr std::size_t kMftRecordSize = 1024;

/// FILE record signature, little-endian 'F','I','L','E'.
inline constexpr std::uint32_t kFileRecordMagic = 0x454c4946;

/// Boot sector OEM id bytes ("NTFS    ") at offset 3.
inline constexpr char kOemId[8] = {'N', 'T', 'F', 'S', ' ', ' ', ' ', ' '};

/// Attribute type codes (real NTFS values).
enum class AttrType : std::uint32_t {
  kStandardInformation = 0x10,
  kFileName = 0x30,
  kData = 0x80,
  kIndexRoot = 0x90,  // directory index (entries blob; resident or spilled)
  kEnd = 0xffffffff,
};

/// MFT record header flags.
inline constexpr std::uint16_t kRecordInUse = 0x0001;
inline constexpr std::uint16_t kRecordIsDirectory = 0x0002;

/// File attribute flags stored in STANDARD_INFORMATION (real Win32 values).
inline constexpr std::uint32_t kAttrReadOnly = 0x0001;
inline constexpr std::uint32_t kAttrHidden = 0x0002;
inline constexpr std::uint32_t kAttrSystem = 0x0004;
inline constexpr std::uint32_t kAttrDirectory = 0x0010;
inline constexpr std::uint32_t kAttrArchive = 0x0020;
inline constexpr std::uint32_t kAttrNormal = 0x0080;

/// Reserved MFT record numbers (matching real NTFS system files).
inline constexpr std::uint64_t kMftRecordMft = 0;      // $MFT itself
inline constexpr std::uint64_t kMftRecordBitmap = 6;   // $Bitmap
inline constexpr std::uint64_t kMftRecordRoot = 5;     // root directory "."
inline constexpr std::uint64_t kFirstUserRecord = 16;

/// Sentinel parent reference for the root directory itself.
inline constexpr std::uint64_t kRootParentRef = kMftRecordRoot;

/// Boot sector field offsets (simplified layout; signature at 510 as real).
struct BootSectorLayout {
  static constexpr std::size_t kOemOffset = 3;
  static constexpr std::size_t kBytesPerSector = 11;     // u16
  static constexpr std::size_t kSectorsPerClusterOff = 13;  // u8
  static constexpr std::size_t kTotalSectors = 40;       // u64
  static constexpr std::size_t kMftStartCluster = 48;    // u64
  static constexpr std::size_t kMftRecordCount = 56;     // u32
  static constexpr std::size_t kBitmapStartCluster = 60;  // u64
  static constexpr std::size_t kBitmapClusterCount = 68;  // u32
  static constexpr std::size_t kSerial = 72;             // u64
  /// Mount sequence number (u64). format() zeroes it; every mount reads
  /// it, increments it, and writes it back, then derives the change
  /// journal's incarnation id from (serial, sequence). Persisting the
  /// counter on the device is what makes journal ids unique across
  /// mounts — a cursor saved under one mount can never validate against
  /// a later mount's journal (see NtfsVolume::journal()).
  static constexpr std::size_t kJournalSeq = 80;         // u64
  static constexpr std::size_t kSignature = 510;         // 0x55 0xAA
};

}  // namespace gb::ntfs
