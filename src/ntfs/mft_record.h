// MFT FILE record build/parse.
//
// Each record serializes to exactly kMftRecordSize bytes: a header
// followed by a chain of typed attributes ending with an 0xFFFFFFFF type
// marker. The parser is strict: it validates magic, offsets and attribute
// lengths so the raw scanner can distinguish live records from garbage.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ntfs/ntfs_format.h"
#include "ntfs/runlist.h"
#include "support/bytes.h"

namespace gb::ntfs {

/// $STANDARD_INFORMATION: timestamps and DOS attribute flags.
struct StandardInfo {
  std::uint64_t created_us = 0;
  std::uint64_t modified_us = 0;
  std::uint64_t accessed_us = 0;
  std::uint32_t file_attributes = 0;

  bool operator==(const StandardInfo&) const = default;
};

/// $FILE_NAME: parent directory reference plus the (counted) name.
/// Names are stored as UTF-16LE on disk; this simulation restricts names
/// to 8-bit characters but keeps the two-byte encoding for format realism.
struct FileNameAttr {
  std::uint64_t parent_ref = 0;  // MFT record number of parent directory
  std::string name;              // counted; up to 255 chars

  bool operator==(const FileNameAttr&) const = default;
};

/// $DATA: resident payload or non-resident run list.
struct DataAttr {
  bool resident = true;
  std::vector<std::byte> resident_data;  // valid when resident
  RunList runs;                          // valid when non-resident
  std::uint64_t real_size = 0;           // byte size (both forms)

  bool operator==(const DataAttr&) const = default;
};

/// A named $DATA attribute — an Alternate Data Stream. The paper's
/// future-work list names ADS as a hiding place with *no* Win32
/// query/enumeration API at all; only the raw MFT shows them.
struct StreamAttr {
  std::string name;  // e.g. "payload" in "file.txt:payload"
  DataAttr data;

  bool operator==(const StreamAttr&) const = default;
};

/// A parsed or to-be-written MFT FILE record.
struct MftRecord {
  std::uint64_t record_number = 0;
  std::uint16_t sequence = 1;
  std::uint16_t flags = 0;  // kRecordInUse | kRecordIsDirectory

  std::optional<StandardInfo> std_info;
  std::optional<FileNameAttr> file_name;
  std::optional<DataAttr> data;          // the unnamed (main) $DATA
  std::vector<StreamAttr> named_streams; // alternate data streams
  /// Directory index payload ($INDEX_ROOT): the authoritative entry list
  /// enumeration reads. A record can exist in the MFT while *absent*
  /// from its parent's index — unreachable by name, invisible to every
  /// enumeration, yet fully present: data-only persistent file hiding,
  /// the file-system analogue of FU's process unlinking.
  std::optional<DataAttr> index;

  bool in_use() const { return flags & kRecordInUse; }
  bool is_directory() const { return flags & kRecordIsDirectory; }

  /// Serializes to exactly kMftRecordSize bytes.
  /// Throws std::length_error if the attributes do not fit (callers are
  /// expected to convert DATA to non-resident form and retry).
  std::vector<std::byte> serialize() const;

  /// Byte size the record would occupy if serialized; used to decide
  /// resident vs non-resident data placement.
  std::size_t serialized_size() const;

  /// Parses one record image. Throws gb::ParseError on malformed input.
  static MftRecord parse(std::span<const std::byte> image);

  /// Cheap check whether an image looks like a live FILE record.
  static bool looks_live(std::span<const std::byte> image);
};

}  // namespace gb::ntfs
