#include "ntfs/snapshot.h"

#include <algorithm>
#include <new>
#include <set>
#include <stdexcept>
#include <string>

#include "ntfs/ntfs_format.h"

namespace gb::ntfs {

namespace {

constexpr std::uint32_t kSnapshotMagic = 0x50414E53;  // "SNAP"
constexpr std::uint16_t kSnapshotVersion = 1;

std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t record_lba(std::uint64_t mft_start_cluster,
                         std::uint64_t record) {
  return mft_start_cluster * kSectorsPerCluster +
         record * (kMftRecordSize / kSectorSize);
}

}  // namespace

void MftSnapshot::classify_into(std::uint64_t record,
                                std::span<const std::byte> image) {
  MftSlot s;
  s.digest = fnv1a(image);
  if (!MftRecord::looks_live(image)) {
    s.kind = MftSlotKind::kFree;
  } else {
    bool parsed = true;
    MftRecord rec;
    try {
      rec = MftRecord::parse(image);
    } catch (const ParseError&) {
      parsed = false;
    }
    if (!parsed) {
      s.kind = MftSlotKind::kCorrupt;
    } else if (auto node = node_from(rec)) {
      s.kind = MftSlotKind::kLive;
      s.node = std::move(node);
    } else {
      s.kind = MftSlotKind::kNoName;
    }
  }
  cache_.insert_or_assign(s.digest, s);
  slots_[record] = std::move(s);
}

support::StatusOr<MftSnapshot> MftSnapshot::capture(disk::SectorDevice& dev) {
  std::vector<std::byte> bs(kSectorSize);
  dev.read(0, bs);
  ByteReader r(bs);
  r.seek(BootSectorLayout::kOemOffset);
  if (r.str(8) != std::string(kOemId, sizeof kOemId)) {
    return support::Status::corrupt("not an NTFS volume (bad OEM id)");
  }
  r.seek(BootSectorLayout::kMftStartCluster);
  MftSnapshot snap;
  snap.mft_start_cluster_ = r.u64();
  snap.slots_.resize(r.u32());
  std::vector<std::byte> image(kMftRecordSize);
  for (std::uint64_t i = 0; i < snap.slots_.size(); ++i) {
    dev.read(record_lba(snap.mft_start_cluster_, i), image);
    snap.classify_into(i, image);
  }
  return snap;
}

void MftSnapshot::refresh(disk::SectorDevice& dev,
                          const std::vector<std::uint64_t>& records,
                          RefreshStats* stats) {
  std::set<std::uint64_t> unique(records.begin(), records.end());
  std::vector<std::byte> image(kMftRecordSize);
  for (std::uint64_t rec : unique) {
    if (rec >= slots_.size()) continue;
    dev.read(record_lba(mft_start_cluster_, rec), image);
    const std::uint64_t digest = fnv1a(image);
    if (digest == slots_[rec].digest) {
      if (stats) ++stats->unchanged;
      continue;
    }
    if (auto it = cache_.find(digest); it != cache_.end()) {
      // Content seen before (e.g. a rename chain restored the original
      // bytes): splice the remembered parse, no re-parse needed.
      slots_[rec] = it->second;
      if (stats) ++stats->cache_spliced;
      continue;
    }
    classify_into(rec, image);
    if (stats) ++stats->reparsed;
  }
}

std::vector<std::uint64_t> MftSnapshot::verify(disk::SectorDevice& dev) const {
  std::vector<std::uint64_t> mismatched;
  std::vector<std::byte> image(kMftRecordSize);
  for (std::uint64_t i = 0; i < slots_.size(); ++i) {
    dev.read(record_lba(mft_start_cluster_, i), image);
    if (fnv1a(image) != slots_[i].digest) mismatched.push_back(i);
  }
  return mismatched;
}

std::vector<RawFile> MftSnapshot::listing() const {
  std::map<std::uint64_t, MftNode> nodes;
  for (std::uint64_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].kind == MftSlotKind::kLive) nodes.emplace(i, *slots_[i].node);
  }
  return assemble_listing(nodes);
}

disk::IoStats MftSnapshot::simulate_scan_io(std::uint32_t batch_records) const {
  if (batch_records == 0) batch_records = MftScanner::kDefaultScanBatch;
  disk::IoStats io;
  const std::uint64_t record_sectors = kMftRecordSize / kSectorSize;
  for (std::uint64_t begin = 0; begin < slots_.size();
       begin += batch_records) {
    const std::uint64_t end =
        std::min<std::uint64_t>(begin + batch_records, slots_.size());
    io.seeks += 1;  // first probe of the batch, on a fresh CountingDevice
    for (std::uint64_t i = begin; i < end; ++i) {
      io.sectors_read += record_sectors;  // liveness probe
      if (slots_[i].kind != MftSlotKind::kFree) {
        io.sectors_read += record_sectors;  // re-read before parsing
        io.seeks += 1;  // same LBA as the probe just past it: a seek
      }
    }
  }
  return io;
}

std::size_t MftSnapshot::corrupt_records() const {
  std::size_t n = 0;
  for (const MftSlot& s : slots_) {
    if (s.kind == MftSlotKind::kCorrupt) ++n;
  }
  return n;
}

void MftSnapshot::serialize(ByteWriter& w) const {
  w.u32(kSnapshotMagic);
  w.u16(kSnapshotVersion);
  w.u64(mft_start_cluster_);
  w.u32(static_cast<std::uint32_t>(slots_.size()));
  for (const MftSlot& s : slots_) {
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.u64(s.digest);
    if (s.kind != MftSlotKind::kLive) continue;
    const MftNode& n = *s.node;
    w.u16(static_cast<std::uint16_t>(n.name.size()));
    w.str(n.name);
    w.u64(n.parent);
    w.u8(n.is_directory ? 1 : 0);
    w.u64(n.size);
    w.u32(n.attributes);
    w.u16(static_cast<std::uint16_t>(n.stream_names.size()));
    for (const std::string& name : n.stream_names) {
      w.u16(static_cast<std::uint16_t>(name.size()));
      w.str(name);
    }
  }
}

support::StatusOr<MftSnapshot> MftSnapshot::deserialize(ByteReader& r) {
  try {
    if (r.u32() != kSnapshotMagic) {
      return support::Status::corrupt("not an MFT snapshot (bad magic)");
    }
    if (const auto v = r.u16(); v != kSnapshotVersion) {
      return support::Status::corrupt("unsupported snapshot version " +
                                      std::to_string(v));
    }
    MftSnapshot snap;
    snap.mft_start_cluster_ = r.u64();
    const std::uint32_t slot_count = r.u32();
    // Every serialized slot costs at least 9 bytes (kind + digest), so a
    // count beyond remaining()/9 cannot be satisfied by the input — fail
    // as corrupt instead of attempting a gigantic resize (which would
    // throw bad_alloc past the ParseError handler below).
    if (slot_count > r.remaining() / 9) {
      return support::Status::corrupt(
          "snapshot slot count " + std::to_string(slot_count) +
          " exceeds input size");
    }
    snap.slots_.resize(slot_count);
    for (MftSlot& s : snap.slots_) {
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(MftSlotKind::kLive)) {
        return support::Status::corrupt("bad slot kind in snapshot");
      }
      s.kind = static_cast<MftSlotKind>(kind);
      s.digest = r.u64();
      if (s.kind != MftSlotKind::kLive) continue;
      MftNode n;
      n.name = r.str(r.u16());
      n.parent = r.u64();
      n.is_directory = r.u8() != 0;
      n.size = r.u64();
      n.attributes = r.u32();
      const std::uint16_t streams = r.u16();
      n.stream_names.reserve(streams);
      for (std::uint16_t i = 0; i < streams; ++i) {
        n.stream_names.push_back(r.str(r.u16()));
      }
      s.node = std::move(n);
    }
    // Rebuild the content-addressed cache from the current slots.
    for (const MftSlot& s : snap.slots_) {
      snap.cache_.insert_or_assign(s.digest, s);
    }
    return snap;
  } catch (const ParseError& e) {
    return support::Status::corrupt(std::string("truncated snapshot: ") +
                                    e.what());
  } catch (const std::bad_alloc&) {
    // Belt and braces: no single length field survives the bound above,
    // but a corrupt store must never crash the restore path.
    return support::Status::corrupt("snapshot too large for memory");
  } catch (const std::length_error&) {
    return support::Status::corrupt("snapshot length field out of range");
  }
}

}  // namespace gb::ntfs
