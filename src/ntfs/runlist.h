// NTFS data run list encoding.
//
// Non-resident attribute data is described by a sequence of "runs", each
// a (cluster count, cluster offset) pair encoded with a variable-length
// header byte exactly as NTFS does: low nibble = byte length of the run
// length field, high nibble = byte length of the signed LCN delta field,
// terminated by a zero header byte.
#pragma once

#include <cstdint>
#include <vector>

#include "support/bytes.h"

namespace gb::ntfs {

struct Run {
  std::uint64_t lcn = 0;     // starting logical cluster number
  std::uint64_t length = 0;  // cluster count

  bool operator==(const Run&) const = default;
};

using RunList = std::vector<Run>;

/// Encodes a run list in NTFS mapping-pairs format (deltas are signed,
/// relative to the previous run's start).
void encode_runlist(const RunList& runs, ByteWriter& out);

/// Decodes until the terminating zero header byte.
RunList decode_runlist(ByteReader& in);

/// Total clusters covered.
std::uint64_t runlist_clusters(const RunList& runs);

}  // namespace gb::ntfs
