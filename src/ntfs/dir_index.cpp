#include "ntfs/dir_index.h"

namespace gb::ntfs {

std::vector<std::byte> encode_index_entries(
    const std::vector<IndexEntry>& entries) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) {
    w.u64(e.record);
    w.u16(static_cast<std::uint16_t>(e.name.size()));
    w.str(e.name);
  }
  return std::move(w).take();
}

std::vector<IndexEntry> decode_index_entries(
    std::span<const std::byte> blob) {
  ByteReader r(blob);
  const std::uint32_t count = r.u32();
  std::vector<IndexEntry> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    IndexEntry e;
    e.record = r.u64();
    const std::uint16_t len = r.u16();
    e.name = r.str(len);
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace gb::ntfs
