#include "ntfs/runlist.h"

namespace gb::ntfs {

namespace {

/// Minimum bytes needed to store an unsigned value.
std::size_t unsigned_width(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= (1ull << (8 * n)) && n < 8) ++n;
  return n;
}

/// Minimum bytes needed to store a signed value (two's complement).
std::size_t signed_width(std::int64_t v) {
  for (std::size_t n = 1; n < 8; ++n) {
    const std::int64_t lo = -(1ll << (8 * n - 1));
    const std::int64_t hi = (1ll << (8 * n - 1)) - 1;
    if (v >= lo && v <= hi) return n;
  }
  return 8;
}

void put_le(ByteWriter& out, std::uint64_t v, std::size_t width) {
  for (std::size_t i = 0; i < width; ++i) {
    out.u8(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t get_le(ByteReader& in, std::size_t width) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    v |= static_cast<std::uint64_t>(in.u8()) << (8 * i);
  }
  return v;
}

std::int64_t sign_extend(std::uint64_t v, std::size_t width) {
  if (width == 8) return static_cast<std::int64_t>(v);
  const std::uint64_t sign_bit = 1ull << (8 * width - 1);
  if (v & sign_bit) v |= ~((sign_bit << 1) - 1);
  return static_cast<std::int64_t>(v);
}

}  // namespace

void encode_runlist(const RunList& runs, ByteWriter& out) {
  std::int64_t prev_lcn = 0;
  for (const Run& run : runs) {
    const std::int64_t delta = static_cast<std::int64_t>(run.lcn) - prev_lcn;
    const std::size_t len_w = unsigned_width(run.length);
    const std::size_t off_w = signed_width(delta);
    out.u8(static_cast<std::uint8_t>((off_w << 4) | len_w));
    put_le(out, run.length, len_w);
    put_le(out, static_cast<std::uint64_t>(delta), off_w);
    prev_lcn = static_cast<std::int64_t>(run.lcn);
  }
  out.u8(0);  // terminator
}

RunList decode_runlist(ByteReader& in) {
  RunList runs;
  std::int64_t prev_lcn = 0;
  for (;;) {
    const std::uint8_t header = in.u8();
    if (header == 0) break;
    const std::size_t len_w = header & 0x0f;
    const std::size_t off_w = header >> 4;
    if (len_w == 0 || len_w > 8 || off_w > 8) {
      throw ParseError("malformed run list header");
    }
    const std::uint64_t length = get_le(in, len_w);
    const std::int64_t delta = sign_extend(get_le(in, off_w), off_w);
    const std::int64_t lcn = prev_lcn + delta;
    if (lcn < 0) throw ParseError("run list LCN underflow");
    runs.push_back(Run{static_cast<std::uint64_t>(lcn), length});
    prev_lcn = lcn;
  }
  return runs;
}

std::uint64_t runlist_clusters(const RunList& runs) {
  std::uint64_t total = 0;
  for (const Run& r : runs) total += r.length;
  return total;
}

}  // namespace gb::ntfs
