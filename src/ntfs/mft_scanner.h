// Raw MFT scanner — the paper's low-level file scan.
//
// This code is deliberately independent of NtfsVolume: it consumes only
// raw device bytes (boot sector, MFT records, run lists) and reconstructs
// full paths from FILE_NAME parent references. Nothing a ghostware
// program does to the API stack, the filter-driver chain, or the SSDT can
// affect what this scanner sees, which is exactly the trust argument of
// Section 2 of the paper.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "disk/disk.h"
#include "ntfs/mft_record.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::ntfs {

/// One file or directory as seen in the raw MFT.
struct RawFile {
  std::uint64_t record = 0;
  std::string path;  // full path from volume root, '\\'-separated
  bool is_directory = false;
  /// NTFS metadata records ($MFT, $Bitmap, record numbers < 16). The
  /// GhostBuster file diff excludes these, as the real tool must.
  bool is_system = false;
  std::uint64_t size = 0;
  std::uint32_t attributes = 0;
  /// Names of alternate data streams found on this record. The Win32 API
  /// surface has no way to enumerate these; the raw scan is the only
  /// view that shows them.
  std::vector<std::string> stream_names;
};

/// One live MFT record reduced to exactly the fields the listing needs —
/// the unit the snapshot store caches per record digest. A parsed record
/// maps to its node deterministically, so two records with identical raw
/// bytes always produce identical nodes (the content-addressing premise).
struct MftNode {
  std::string name;
  std::uint64_t parent = 0;
  bool is_directory = false;
  std::uint64_t size = 0;
  std::uint32_t attributes = 0;
  std::vector<std::string> stream_names;
};

/// Reduces a parsed record to its listing node; nullopt when the record
/// carries no FILE_NAME attribute and is invisible to the path walk.
[[nodiscard]] std::optional<MftNode> node_from(const MftRecord& rec);

/// Phase 2 of MftScanner::scan(): resolves full paths over the node map
/// (memoized parent-chain walk, cycles/broken chains under "<orphan>\")
/// and emits the listing in record order, skipping the root. Shared with
/// the snapshot splice path so a cached re-scan produces the same bytes
/// as a cold walk over the same records.
[[nodiscard]] std::vector<RawFile> assemble_listing(
    const std::map<std::uint64_t, MftNode>& nodes);

class MftScanner {
 public:
  /// Parses the boot sector; throws gb::ParseError if not NTFS.
  explicit MftScanner(disk::SectorDevice& dev);

  /// Status-returning factory: a device without a valid NTFS boot sector
  /// yields kCorrupt instead of a throw, so a trashed disk degrades the
  /// file scan rather than aborting the session.
  [[nodiscard]] static support::StatusOr<MftScanner> open(
      disk::SectorDevice& dev);

  /// Walks every MFT record and reconstructs paths. Orphaned records
  /// (broken or cyclic parent chains) are reported under "<orphan>\".
  /// Records that fail to parse (disk corruption, torn writes) are
  /// skipped and counted — a forensic scanner must survive them.
  ///
  /// Record parsing proceeds in fixed-size batches; with a pool the
  /// batches run concurrently (each through its own CountingDevice, so
  /// the I/O accounting in last_scan_stats() is identical at any worker
  /// count), and batch outputs merge in record order. The result is
  /// byte-identical to the serial walk.
  std::vector<RawFile> scan(support::ThreadPool* pool = nullptr,
                            std::uint32_t batch_records = 0);

  /// Default record-batch granularity for scan(); small enough to
  /// balance across workers, large enough to amortize task overhead.
  static constexpr std::uint32_t kDefaultScanBatch = 1024;

  /// Deterministic I/O accounting for the last scan() (bytes and seeks
  /// accumulated batch-by-batch in record order).
  const disk::IoStats& last_scan_stats() const { return scan_stats_; }

  /// Live-looking records that failed to parse during the last scan().
  std::size_t corrupt_records() const { return corrupt_records_; }

  /// Forensic recovery: tombstoned records (valid FILE magic, in-use flag
  /// cleared) whose metadata is still intact — recently deleted files.
  /// Names are best-effort; parent paths may themselves be gone.
  ///
  /// Like scan(), the record space is processed in fixed-size batches
  /// (boundaries depend only on batch_records) that run concurrently on a
  /// pool and merge in record order, so the listing is byte-identical at
  /// any worker count.
  std::vector<RawFile> scan_deleted(support::ThreadPool* pool = nullptr,
                                    std::uint32_t batch_records = 0);

  /// chkdsk-style consistency check: live records whose parent directory
  /// carries an index that does NOT list them. A benign volume has none;
  /// an entry deleted from the index (data-only hiding) shows up here —
  /// and in the cross-view diff, since enumeration cannot see it either.
  ///
  /// Both passes (directory-index collection, then the per-file
  /// membership check) run in fixed-size record batches like scan():
  /// boundaries depend only on batch_records and outputs merge in record
  /// order, so the listing is byte-identical at any worker count.
  std::vector<RawFile> index_orphans(support::ThreadPool* pool = nullptr,
                                     std::uint32_t batch_records = 0);

  /// Reads the full data payload of a record (resident or via run list).
  std::vector<std::byte> read_file_data(std::uint64_t record);

  /// Case-insensitive path lookup over the raw structures.
  std::optional<std::uint64_t> find(std::string_view path);

  /// Case-insensitive lookup in an already-scanned listing (lets callers
  /// resolve many paths from one scan() instead of rescanning per path).
  static std::optional<std::uint64_t> find_in(
      const std::vector<RawFile>& files, std::string_view path);

  std::uint32_t record_capacity() const { return mft_record_count_; }

 private:
  MftRecord load_record(std::uint64_t number);
  bool record_live(std::uint64_t number);
  MftRecord load_record_from(disk::SectorDevice& dev, std::uint64_t number);
  bool record_live_from(disk::SectorDevice& dev, std::uint64_t number);

  disk::SectorDevice& dev_;
  std::uint64_t mft_start_cluster_ = 0;
  std::uint32_t mft_record_count_ = 0;
  std::size_t corrupt_records_ = 0;
  disk::IoStats scan_stats_;
};

}  // namespace gb::ntfs
