#include "ntfs/mft_record.h"

#include <stdexcept>

namespace gb::ntfs {

namespace {

// Record header layout (offsets within the 1024-byte record):
//   0  u32 magic 'FILE'
//   4  u16 sequence
//   6  u16 flags
//   8  u64 record number
//   16 u32 used size (bytes actually occupied, for diagnostics)
//   20 u16 first attribute offset
constexpr std::size_t kHeaderSize = 24;
constexpr std::size_t kUsedSizeOffset = 16;

// Attribute header: type u32, total length u32 (patched), resident u8,
// name length u8, 2 reserved bytes, then the UTF-16LE attribute name.
// Named $DATA attributes are Alternate Data Streams.
void write_attr_header(ByteWriter& w, AttrType type, bool resident,
                       std::string_view name) {
  w.u32(static_cast<std::uint32_t>(type));
  w.u32(0);  // total length, patched after the body is written
  w.u8(resident ? 0 : 1);
  w.u8(static_cast<std::uint8_t>(name.size()));
  w.zeros(2);  // reserved / alignment
  for (char c : name) {
    w.u8(static_cast<std::uint8_t>(c));
    w.u8(0);
  }
}

}  // namespace

std::size_t MftRecord::serialized_size() const {
  // Conservative but exact: serialize into a scratch writer.
  auto attr_size = [](std::size_t body, std::size_t name_len = 0) {
    return 12 + name_len * 2 + body;
  };
  auto data_body = [](const DataAttr& da) {
    if (da.resident) return 8 + 4 + da.resident_data.size();
    ByteWriter rl;
    encode_runlist(da.runs, rl);
    return 8 + rl.size();
  };
  std::size_t total = kHeaderSize + 4;  // header + end marker
  if (std_info) total += attr_size(28);
  if (file_name) total += attr_size(8 + 2 + file_name->name.size() * 2);
  if (data) total += attr_size(data_body(*data));
  for (const auto& stream : named_streams) {
    total += attr_size(data_body(stream.data), stream.name.size());
  }
  if (index) total += attr_size(data_body(*index));
  return total;
}

std::vector<std::byte> MftRecord::serialize() const {
  ByteWriter w;
  w.u32(kFileRecordMagic);
  w.u16(sequence);
  w.u16(flags);
  w.u64(record_number);
  w.u32(0);  // used size, patched below
  w.u16(kHeaderSize);
  w.u16(0);  // padding to kHeaderSize
  if (w.size() != kHeaderSize) throw std::logic_error("bad header layout");

  auto begin_attr = [&w](AttrType type, bool resident,
                         std::string_view name = {}) {
    const std::size_t header_at = w.size();
    write_attr_header(w, type, resident, name);
    return header_at;
  };
  auto end_attr = [&w](std::size_t header_at) {
    w.patch_u32(header_at + 4, static_cast<std::uint32_t>(w.size() - header_at));
  };

  if (std_info) {
    const auto at = begin_attr(AttrType::kStandardInformation, true);
    w.u64(std_info->created_us);
    w.u64(std_info->modified_us);
    w.u64(std_info->accessed_us);
    w.u32(std_info->file_attributes);
    end_attr(at);
  }
  if (file_name) {
    if (file_name->name.size() > 255) {
      throw std::length_error("file name exceeds 255 characters");
    }
    const auto at = begin_attr(AttrType::kFileName, true);
    w.u64(file_name->parent_ref);
    w.u16(static_cast<std::uint16_t>(file_name->name.size()));
    for (char c : file_name->name) {  // UTF-16LE with 8-bit repertoire
      w.u8(static_cast<std::uint8_t>(c));
      w.u8(0);
    }
    end_attr(at);
  }
  auto write_data_body = [&w](const DataAttr& da) {
    w.u64(da.real_size);
    if (da.resident) {
      w.u32(static_cast<std::uint32_t>(da.resident_data.size()));
      w.bytes(da.resident_data);
    } else {
      encode_runlist(da.runs, w);
    }
  };
  if (data) {
    const auto at = begin_attr(AttrType::kData, data->resident);
    write_data_body(*data);
    end_attr(at);
  }
  for (const auto& stream : named_streams) {
    if (stream.name.empty() || stream.name.size() > 255) {
      throw std::length_error("invalid stream name");
    }
    const auto at =
        begin_attr(AttrType::kData, stream.data.resident, stream.name);
    write_data_body(stream.data);
    end_attr(at);
  }
  if (index) {
    const auto at = begin_attr(AttrType::kIndexRoot, index->resident);
    write_data_body(*index);
    end_attr(at);
  }

  w.u32(static_cast<std::uint32_t>(AttrType::kEnd));
  if (w.size() > kMftRecordSize) {
    throw std::length_error("MFT record overflow: " + std::to_string(w.size()));
  }
  w.patch_u32(kUsedSizeOffset, static_cast<std::uint32_t>(w.size()));
  w.zeros(kMftRecordSize - w.size());
  return std::move(w).take();
}

bool MftRecord::looks_live(std::span<const std::byte> image) {
  if (image.size() < kHeaderSize) return false;
  ByteReader r(image);
  if (r.u32() != kFileRecordMagic) return false;
  r.skip(2);  // sequence
  const std::uint16_t fl = r.u16();
  return (fl & kRecordInUse) != 0;
}

MftRecord MftRecord::parse(std::span<const std::byte> image) {
  if (image.size() != kMftRecordSize) {
    throw ParseError("MFT record image must be exactly 1024 bytes");
  }
  ByteReader r(image);
  if (r.u32() != kFileRecordMagic) throw ParseError("bad FILE magic");

  MftRecord rec;
  rec.sequence = r.u16();
  rec.flags = r.u16();
  rec.record_number = r.u64();
  const std::uint32_t used = r.u32();
  const std::uint16_t first_attr = r.u16();
  if (used > kMftRecordSize || first_attr < kHeaderSize ||
      first_attr > kMftRecordSize) {
    throw ParseError("corrupt record header");
  }
  r.seek(first_attr);

  for (;;) {
    const std::uint32_t type_raw = r.u32();
    if (type_raw == static_cast<std::uint32_t>(AttrType::kEnd)) break;
    const std::size_t attr_start = r.pos() - 4;
    const std::uint32_t total_len = r.u32();
    if (total_len < 12 || attr_start + total_len > kMftRecordSize) {
      throw ParseError("corrupt attribute length");
    }
    const bool nonresident = r.u8() != 0;
    const std::uint8_t name_len = r.u8();
    r.skip(2);
    std::string attr_name;
    attr_name.reserve(name_len);
    for (std::uint8_t i = 0; i < name_len; ++i) {
      attr_name.push_back(static_cast<char>(r.u8()));
      r.skip(1);
    }

    switch (static_cast<AttrType>(type_raw)) {
      case AttrType::kStandardInformation: {
        StandardInfo si;
        si.created_us = r.u64();
        si.modified_us = r.u64();
        si.accessed_us = r.u64();
        si.file_attributes = r.u32();
        rec.std_info = si;
        break;
      }
      case AttrType::kFileName: {
        FileNameAttr fn;
        fn.parent_ref = r.u64();
        const std::uint16_t len = r.u16();
        fn.name.reserve(len);
        for (std::uint16_t i = 0; i < len; ++i) {
          fn.name.push_back(static_cast<char>(r.u8()));
          r.skip(1);  // high byte of UTF-16LE code unit
        }
        rec.file_name = std::move(fn);
        break;
      }
      case AttrType::kIndexRoot: {
        DataAttr da;
        da.resident = !nonresident;
        da.real_size = r.u64();
        if (da.resident) {
          const std::uint32_t len = r.u32();
          da.resident_data = r.bytes(len);
        } else {
          da.runs = decode_runlist(r);
        }
        rec.index = std::move(da);
        break;
      }
      case AttrType::kData: {
        DataAttr da;
        da.resident = !nonresident;
        da.real_size = r.u64();
        if (da.resident) {
          const std::uint32_t len = r.u32();
          da.resident_data = r.bytes(len);
        } else {
          da.runs = decode_runlist(r);
        }
        if (attr_name.empty()) {
          rec.data = std::move(da);
        } else {
          rec.named_streams.push_back(StreamAttr{attr_name, std::move(da)});
        }
        break;
      }
      default:
        // Unknown attribute: skip by declared length (forward compat).
        break;
    }
    r.seek(attr_start + total_len);
  }
  return rec;
}

}  // namespace gb::ntfs
