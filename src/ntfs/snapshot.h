// MftSnapshot: content-addressed cache of one volume's parsed MFT.
//
// The incremental re-scan's core data structure. Each MFT record slot is
// remembered as (classification, digest of the raw 1024-byte record
// image, parsed listing node), and every digest ever seen maps to its
// parse result in a content-addressed cache. A re-scan that knows which
// records were dirtied (from the change journal) re-reads only those
// slots; a dirtied slot whose new digest was seen before — e.g. a rename
// chain A→B→A restoring the original bytes — splices the cached parse
// without re-parsing at all.
//
// Byte-identity argument (DESIGN.md "Incremental scanning"): a record's
// listing node is a pure function of its raw bytes (MftRecord::parse +
// node_from have no other inputs), and assemble_listing() is a pure
// function of the node map — so a snapshot whose per-slot bytes match
// the device reproduces MftScanner::scan()'s listing exactly. The
// journal guarantees the match: every scan-visible record write goes
// through NtfsVolume::store_record(), which journals the record number.
// Out-of-band device writes bypass the journal; verify() exists to
// detect exactly those, at full re-digest cost.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "disk/disk.h"
#include "ntfs/mft_scanner.h"
#include "support/bytes.h"
#include "support/status.h"

namespace gb::ntfs {

/// What a record slot's raw bytes held when last read. Everything that
/// "looks live" (valid FILE magic + in-use flag) costs the scanner a
/// second read, so liveness must be remembered per slot for the I/O
/// simulation even when the record contributes nothing to the listing.
enum class MftSlotKind : std::uint8_t {
  kFree = 0,     // never used, or tombstoned
  kCorrupt = 1,  // looks live but fails to parse
  kNoName = 2,   // parses but has no FILE_NAME (invisible to the walk)
  kLive = 3,     // parses into a listing node
};

struct MftSlot {
  MftSlotKind kind = MftSlotKind::kFree;
  std::uint64_t digest = 0;      // FNV-1a 64 of the raw record image
  std::optional<MftNode> node;   // engaged iff kind == kLive
};

class MftSnapshot {
 public:
  MftSnapshot() = default;

  /// Full walk: reads and classifies every record on the device.
  /// kCorrupt if the device has no valid NTFS boot sector.
  [[nodiscard]] static support::StatusOr<MftSnapshot> capture(
      disk::SectorDevice& dev);

  struct RefreshStats {
    std::uint64_t reparsed = 0;       // freshly parsed this refresh
    std::uint64_t cache_spliced = 0;  // digest seen before; parse reused
    std::uint64_t unchanged = 0;      // digest identical to the slot's
  };

  /// Re-reads only `records` (deduplicated; out-of-range numbers are
  /// ignored), splicing parses from the digest cache where the new bytes
  /// have been seen before.
  void refresh(disk::SectorDevice& dev,
               const std::vector<std::uint64_t>& records,
               RefreshStats* stats = nullptr);

  /// Re-digests EVERY slot and returns the record numbers whose device
  /// bytes no longer match the snapshot — writes the journal never saw.
  /// Empty means the snapshot is exact. Does not mutate the snapshot.
  [[nodiscard]] std::vector<std::uint64_t> verify(
      disk::SectorDevice& dev) const;

  /// The listing a fresh MftScanner::scan() over the same bytes returns,
  /// assembled from cached nodes with zero device I/O.
  [[nodiscard]] std::vector<RawFile> listing() const;

  /// Reproduces the IoStats MftScanner::scan(pool, batch_records) would
  /// report for the snapshot's state. Exact, not an estimate: the
  /// scanner's access pattern is a pure function of per-slot liveness
  /// and the batch boundaries. Per batch, the first record's probe read
  /// seeks (fresh CountingDevice), each later probe is contiguous with
  /// its predecessor, and every live-looking slot costs one extra
  /// 2-sector read of the same LBA (always a seek) — so
  ///   seeks        = sum over batches of (1 + live_looking_in_batch)
  ///   sectors_read = 2 * capacity + 2 * live_looking_total.
  [[nodiscard]] disk::IoStats simulate_scan_io(
      std::uint32_t batch_records = 0) const;

  /// Live-looking slots that fail to parse (MftScanner::corrupt_records).
  [[nodiscard]] std::size_t corrupt_records() const;

  [[nodiscard]] std::uint32_t record_capacity() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  [[nodiscard]] const std::vector<MftSlot>& slots() const { return slots_; }

  /// Persistence (magic + version guarded). The digest cache is rebuilt
  /// from the slots on load, so digests of states no longer on the
  /// volume are forgotten across a save/load round trip — strictly a
  /// performance matter, never a correctness one.
  void serialize(ByteWriter& w) const;
  [[nodiscard]] static support::StatusOr<MftSnapshot> deserialize(
      ByteReader& r);

 private:
  void classify_into(std::uint64_t record,
                     std::span<const std::byte> image);

  std::uint64_t mft_start_cluster_ = 0;
  std::vector<MftSlot> slots_;
  /// digest -> parse result, across every state this snapshot has seen.
  std::map<std::uint64_t, MftSlot> cache_;
};

}  // namespace gb::ntfs
