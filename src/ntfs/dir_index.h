// Directory index entry blob codec ($INDEX_ROOT payload).
//
// Each directory's enumerable children are recorded on disk as a list of
// (MFT record, name) entries. The driver's enumeration reads this index;
// the raw scanner reconstructs membership from FILE_NAME parent
// references instead — so an entry deleted from the index (data-only
// hiding) diverges the two views, exactly the cross-view signal.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/bytes.h"

namespace gb::ntfs {

struct IndexEntry {
  std::uint64_t record = 0;
  std::string name;  // original case

  bool operator==(const IndexEntry&) const = default;
};

std::vector<std::byte> encode_index_entries(
    const std::vector<IndexEntry>& entries);

/// Throws gb::ParseError on malformed input.
std::vector<IndexEntry> decode_index_entries(std::span<const std::byte> blob);

}  // namespace gb::ntfs
