// NtfsVolume: the file-system driver.
//
// Provides native-semantics operations (any name the on-disk format can
// hold is accepted; Win32 name restrictions are enforced one layer up, in
// winapi/kernel32, exactly as in Windows). All metadata mutations are
// written through to the underlying device immediately, so the raw disk
// image is always consistent with the driver's view — the property the
// low-level MFT scan depends on.
//
// Simplification (DESIGN.md §6): directory membership is derived from
// FILE_NAME parent references at mount time instead of on-disk index
// B-trees; the MFT, bitmap and data runs are genuine on-disk structures.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "disk/change_journal.h"
#include "disk/disk.h"
#include "ntfs/mft_record.h"
#include "ntfs/ntfs_format.h"
#include "support/clock.h"

namespace gb::ntfs {

struct DirEntry {
  std::string name;
  std::uint64_t record = 0;
  bool is_directory = false;
  std::uint64_t size = 0;
  std::uint32_t attributes = 0;
};

struct FileInfo {
  std::string name;
  std::uint64_t record = 0;
  bool is_directory = false;
  std::uint64_t size = 0;
  std::uint32_t attributes = 0;
  std::uint64_t created_us = 0;
  std::uint64_t modified_us = 0;
};

/// Thrown for semantic file-system errors (missing parent, name in use as
/// wrong kind, volume full).
class FsError : public std::runtime_error {
 public:
  explicit FsError(const std::string& what) : std::runtime_error(what) {}
};

/// How a mount may touch the device. A kReadWrite mount bumps the
/// boot-sector mount sequence (journal incarnation) at mount time and
/// writes metadata through as usual. A kReadOnly mount never writes the
/// device at all — not even the sequence bump — and every mutation
/// throws FsError; the outside-the-box scan uses it so examining the
/// evidence disk provably cannot alter it.
enum class MountMode { kReadWrite, kReadOnly };

class NtfsVolume {
 public:
  /// Writes a fresh file system onto the device.
  static void format(disk::SectorDevice& dev, std::uint32_t mft_record_count,
                     std::uint64_t serial = 0xC0FFEE);

  /// Mounts an already formatted device (parses boot sector + full MFT).
  explicit NtfsVolume(disk::SectorDevice& dev,
                      MountMode mode = MountMode::kReadWrite);

  /// Clock used for file timestamps; optional.
  void set_clock(VirtualClock* clock) { clock_ = clock; }

  // --- queries (accept optional "X:" drive prefix; '\\'-separated) ---
  bool exists(std::string_view path) const;
  std::optional<FileInfo> stat(std::string_view path) const;
  /// Entries sorted by case-folded name. Throws FsError if not a directory.
  std::vector<DirEntry> list_directory(std::string_view path) const;
  std::vector<std::byte> read_file(std::string_view path) const;

  // --- mutations ---
  /// Creates or overwrites a file. Parent directory must exist.
  void write_file(std::string_view path, std::span<const std::byte> data,
                  std::uint32_t attributes = kAttrArchive);
  void write_file(std::string_view path, std::string_view text,
                  std::uint32_t attributes = kAttrArchive);
  void append_file(std::string_view path, std::string_view text);
  /// mkdir -p.
  void create_directories(std::string_view path);
  /// Removes a file or empty directory.
  void remove(std::string_view path);
  void remove_recursive(std::string_view path);
  void set_attributes(std::string_view path, std::uint32_t attributes);
  /// Moves/renames a file or directory. The target parent must exist and
  /// the target name must be free. Deliberately does NOT touch the
  /// standard-information timestamps (as NTFS does not on rename), so a
  /// rename chain A→B→A restores the record to byte-identical content —
  /// the property the content-addressed snapshot cache exploits.
  void rename(std::string_view old_path, std::string_view new_path);

  // --- alternate data streams (named $DATA attributes) --------------------
  // No Win32 enumeration API exists for these (the paper's future-work
  // hiding place); they are reachable only by exact "file:stream" name
  // at the native level, and visible to the raw MFT scan.
  // --- directory-index manipulation (data-only hiding) --------------------
  /// Removes the entry for `path` from its parent directory's on-disk
  /// index while leaving the MFT record (and its data) fully intact. The
  /// file becomes unreachable by name and invisible to every enumeration
  /// — the file-system analogue of FU's DKOM process unlinking. Returns
  /// the orphaned record number.
  std::uint64_t index_unlink(std::string_view path);
  /// Re-links an index-orphaned record into its parent's index using its
  /// FILE_NAME attribute. Returns false if the record is not live or is
  /// already linked.
  bool index_relink(std::uint64_t record_number);

  void write_stream(std::string_view path, std::string_view stream_name,
                    std::span<const std::byte> data);
  void write_stream(std::string_view path, std::string_view stream_name,
                    std::string_view text);
  std::vector<std::byte> read_stream(std::string_view path,
                                     std::string_view stream_name) const;
  std::vector<std::string> list_streams(std::string_view path) const;
  bool remove_stream(std::string_view path, std::string_view stream_name);

  // --- introspection for the timing model and tests ---
  std::size_t live_record_count() const;
  std::uint64_t used_data_bytes() const;
  std::uint32_t mft_record_capacity() const { return mft_record_count_; }
  disk::SectorDevice& device() { return dev_; }
  bool read_only() const { return read_only_; }

  /// The volume's USN-style change journal. Every MFT record write goes
  /// through the store_record() choke point, which appends here — so the
  /// journal sees exactly the set of records whose on-disk bytes may
  /// differ from what a previous scan parsed. The journal is in-memory
  /// per mount; each mount starts a fresh incarnation whose id is
  /// derived from the volume serial and a mount-sequence counter
  /// persisted in the boot sector, so ids are never reused across
  /// mounts and a cursor from an earlier mount always forces consumers
  /// into their full-walk fallback (it can never alias into the new
  /// incarnation's USN space).
  disk::ChangeJournal& journal() { return journal_; }
  const disk::ChangeJournal& journal() const { return journal_; }

 private:
  std::uint64_t resolve(std::string_view path) const;  // throws FsError
  std::optional<std::uint64_t> try_resolve(std::string_view path) const;
  std::optional<std::uint64_t> child(std::uint64_t dir, std::string_view name) const;
  std::uint64_t allocate_record();
  /// Throws FsError on a read-only mount. Every device-writing path
  /// passes through one of the guarded helpers below.
  void ensure_writable() const;
  /// Serializes records_[number] to the device and journals the write.
  /// The single choke point for every scan-visible MFT byte change.
  void store_record(std::uint64_t number, disk::UsnReason reason);
  void free_file_clusters(MftRecord& rec);
  RunList allocate_clusters(std::uint64_t count);
  void write_clusters(const RunList& runs, std::span<const std::byte> data);
  std::vector<std::byte> read_clusters(const RunList& runs,
                                       std::uint64_t size) const;
  void flush_bitmap();
  /// link/unlink update the in-memory map AND persist the parent's
  /// on-disk index attribute (write-through).
  void link_child(std::uint64_t parent, std::string_view name, std::uint64_t rec);
  void unlink_child(std::uint64_t parent, std::string_view name);
  void persist_index(std::uint64_t dir);
  void free_attr_clusters(DataAttr& attr);
  std::vector<std::byte> attr_payload(const DataAttr& attr) const;
  std::uint64_t now_us() const { return clock_ ? clock_->now() : 0; }
  std::uint64_t mft_lba(std::uint64_t record) const;
  // `name` by value: callers pass the record's own FILE_NAME string, and
  // this function destroys the record before unlinking the name.
  void remove_one(std::uint64_t rec_no, std::uint64_t parent,
                  std::string name);

  disk::SectorDevice& dev_;
  VirtualClock* clock_ = nullptr;
  bool read_only_ = false;
  disk::ChangeJournal journal_;

  // Geometry (from boot sector).
  std::uint64_t total_clusters_ = 0;
  std::uint64_t mft_start_cluster_ = 0;
  std::uint32_t mft_record_count_ = 0;
  std::uint64_t bitmap_start_cluster_ = 0;
  std::uint32_t bitmap_cluster_count_ = 0;

  // Cached state (rebuilt at mount, kept write-through).
  std::vector<std::optional<MftRecord>> records_;
  std::map<std::uint64_t, std::map<std::string, std::uint64_t>> children_;
  std::vector<std::uint8_t> bitmap_;
  std::vector<std::uint64_t> free_records_;
};

}  // namespace gb::ntfs
