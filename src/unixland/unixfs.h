// Compact inode file system for the Unix-side experiments (Section 5,
// "Detecting Linux/Unix Ghostware").
//
// Just enough VFS to host rootkits: inodes, directories, getdents-style
// enumeration. The cross-view trust argument on Unix in the paper is
// between the *infected* runtime (LKM syscall hooks, trojaned ls) and a
// *clean* runtime booted from CD over the same disk state — so the
// on-disk state here is this object, and "booting clean" means walking it
// through an unhooked syscall table.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gb::unixland {

struct UnixDirEnt {
  std::string name;
  std::uint32_t ino = 0;
  bool is_dir = false;
};

class UnixFsError : public std::runtime_error {
 public:
  explicit UnixFsError(const std::string& what) : std::runtime_error(what) {}
};

class UnixFs {
 public:
  UnixFs();

  /// mkdir -p; '/'-separated absolute paths.
  void mkdirs(std::string_view path);
  void write(std::string_view path, std::string_view content);
  void append(std::string_view path, std::string_view content);
  std::string read(std::string_view path) const;
  bool exists(std::string_view path) const;
  void unlink(std::string_view path);  // file or empty dir
  void unlink_recursive(std::string_view path);

  /// Raw directory enumeration (what the unhooked getdents returns).
  std::vector<UnixDirEnt> readdir(std::string_view path) const;

  std::size_t inode_count() const { return nodes_.size(); }

 private:
  struct Node {
    std::uint32_t ino = 0;
    bool is_dir = false;
    std::string content;                       // files
    std::map<std::string, std::uint32_t> children;  // dirs (sorted)
  };

  std::uint32_t resolve(std::string_view path) const;  // throws
  std::optional<std::uint32_t> try_resolve(std::string_view path) const;
  Node& node(std::uint32_t ino) { return nodes_.at(ino); }
  const Node& node(std::uint32_t ino) const { return nodes_.at(ino); }

  std::map<std::uint32_t, Node> nodes_;
  std::uint32_t next_ino_ = 2;  // 2 is the root, as in ext2
};

}  // namespace gb::unixland
