// Mechanism-based Unix checkers, after chkrootkit [YC] and KSTAT [YKS] —
// the contemporaneous Unix tools the paper's reference list points at.
//
// Two orthogonal mechanisms:
//   * syscall-table inspection (KSTAT-style): reports getdents hooks
//     installed by LKM rootkits — misses T0rnkit, which never touches
//     the kernel;
//   * known-good binary hashing (chkrootkit/Tripwire-style): reports
//     trojaned utility binaries — misses LKM kits, whose binaries are
//     untouched.
// The cross-view ls diff (rootkits.h) catches both; these checkers exist
// for the same mechanism-vs-behaviour comparison as the Windows side.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/hookable.h"
#include "unixland/unix_machine.h"

namespace gb::unixland {

/// KSTAT-style: what is hooked in the syscall table right now?
std::vector<HookInfo> check_syscall_table(const UnixMachine& m);

/// A known-good hash database of system binaries (built on a clean box).
using BinaryHashDb = std::map<std::string, std::uint64_t>;
BinaryHashDb build_hash_db(const UnixMachine& clean_box);

/// chkrootkit-style: binaries whose content no longer matches the db
/// (returns paths; missing binaries are reported too).
std::vector<std::string> check_binaries(const UnixMachine& m,
                                        const BinaryHashDb& db);

}  // namespace gb::unixland
