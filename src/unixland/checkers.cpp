#include "unixland/checkers.h"

namespace gb::unixland {

namespace {

std::uint64_t fnv1a(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// The binaries a 2004-era integrity db would track.
constexpr const char* kTrackedBinaries[] = {
    "/bin/ls",      "/bin/ps",         "/bin/netstat",
    "/bin/login",   "/bin/sh",         "/usr/bin/find",
    "/usr/bin/du",  "/sbin/ifconfig",  "/sbin/insmod",
};

}  // namespace

std::vector<HookInfo> check_syscall_table(const UnixMachine& m) {
  return m.sys_getdents().hooks();
}

BinaryHashDb build_hash_db(const UnixMachine& clean_box) {
  BinaryHashDb db;
  for (const char* path : kTrackedBinaries) {
    if (clean_box.fs().exists(path)) {
      db[path] = fnv1a(clean_box.fs().read(path));
    }
  }
  return db;
}

std::vector<std::string> check_binaries(const UnixMachine& m,
                                        const BinaryHashDb& db) {
  std::vector<std::string> bad;
  for (const auto& [path, good_hash] : db) {
    if (!m.fs().exists(path)) {
      bad.push_back(path + " (missing)");
      continue;
    }
    if (fnv1a(m.fs().read(path)) != good_hash) bad.push_back(path);
  }
  return bad;
}

}  // namespace gb::unixland
