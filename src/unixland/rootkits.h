// The Unix rootkits of Section 5.
//
//   Darkside 0.2.3 (FreeBSD), Superkit and Synapsis (Linux) — LKM
//   rootkits hooking getdents-style syscalls to hide files;
//   T0rnkit — replaces OS utility programs (ls et al.) with trojanized
//   versions instead of touching the kernel.
//
// Each install() plants files and the hiding mechanism; `manifest()`
// records ground truth for the Figure-style bench and tests.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "unixland/unix_machine.h"

namespace gb::unixland {

class UnixRootkit {
 public:
  virtual ~UnixRootkit() = default;
  virtual std::string name() const = 0;
  virtual std::string technique() const = 0;
  virtual void install(UnixMachine& m) = 0;
  const std::vector<std::string>& hidden_paths() const { return hidden_; }

 protected:
  std::vector<std::string> hidden_;
};

/// LKM rootkit: hooks getdents and filters any name containing one of its
/// patterns. Parameterized to cover Darkside/Superkit/Synapsis (and
/// Knark-alikes).
class LkmRootkit : public UnixRootkit {
 public:
  LkmRootkit(std::string kit_name, std::string module_name,
             std::vector<std::string> hide_substrings,
             bool hide_module = true);

  std::string name() const override { return kit_name_; }
  std::string technique() const override {
    return "LKM getdents syscall hook";
  }
  void install(UnixMachine& m) override;

 private:
  std::string kit_name_;
  std::string module_name_;
  std::vector<std::string> substrings_;
  bool hide_module_;
};

/// T0rnkit: replaces /bin/ls (and friends) with trojans; no kernel hook.
class T0rnkit : public UnixRootkit {
 public:
  std::string name() const override { return "t0rnkit"; }
  std::string technique() const override {
    return "trojanized OS utility binaries";
  }
  void install(UnixMachine& m) override;
};

/// Factories matching the paper's experiment set.
std::unique_ptr<UnixRootkit> make_darkside();
std::unique_ptr<UnixRootkit> make_superkit();
std::unique_ptr<UnixRootkit> make_synapsis();
std::unique_ptr<UnixRootkit> make_t0rnkit();
/// Knark [ZK in the paper's references]: the classic Linux LKM rootkit.
std::unique_ptr<UnixRootkit> make_knark();

/// Cross-view diff on the Unix box: clean-CD view minus infected view.
struct UnixDiff {
  std::vector<std::string> hidden;  // in clean view, not infected view
  std::vector<std::string> extra;   // in infected view only (unexpected)
};
UnixDiff unix_cross_view_diff(const UnixMachine& m);

/// Diff of two explicit listings (used when daemon activity happens in
/// the window between the infected scan and the CD-boot scan).
UnixDiff unix_diff(const std::vector<std::string>& infected_view,
                   const std::vector<std::string>& clean_view);

}  // namespace gb::unixland
