#include "unixland/rootkits.h"

#include <algorithm>
#include <set>

#include "support/strings.h"

namespace gb::unixland {

LkmRootkit::LkmRootkit(std::string kit_name, std::string module_name,
                       std::vector<std::string> hide_substrings,
                       bool hide_module)
    : kit_name_(std::move(kit_name)),
      module_name_(std::move(module_name)),
      substrings_(std::move(hide_substrings)),
      hide_module_(hide_module) {}

void LkmRootkit::install(UnixMachine& m) {
  // Drop the kit's files.
  const std::string kit_dir = "/usr/lib/." + kit_name_;
  m.fs().mkdirs(kit_dir);
  m.fs().write(kit_dir + "/" + module_name_ + ".o", "\x7f" "ELF-lkm");
  m.fs().write(kit_dir + "/sniff.log", "captured packets\n");
  m.fs().write("/lib/modules/" + module_name_ + ".o", "\x7f" "ELF-lkm");
  hidden_ = {kit_dir, kit_dir + "/" + module_name_ + ".o",
             kit_dir + "/sniff.log", "/lib/modules/" + module_name_ + ".o"};

  m.load_lkm(module_name_, /*visible=*/!hide_module_);

  const auto substrings = substrings_;
  m.sys_getdents().install(
      HookInfo{kit_name_, HookType::kLkm, "sys_getdents"},
      [substrings](const auto& next, const std::string& path) {
        auto entries = next(path);
        std::erase_if(entries, [&](const UnixDirEnt& e) {
          for (const auto& s : substrings) {
            if (icontains(e.name, s)) return true;
          }
          return false;
        });
        return entries;
      });
}

void T0rnkit::install(UnixMachine& m) {
  // Plant the kit directory and trojaned binaries.
  m.fs().mkdirs("/usr/src/.puta");
  m.fs().write("/usr/src/.puta/t0rns", "sniffed passwords\n");
  m.fs().write("/usr/src/.puta/t0rnsb", "log cleaner");
  m.fs().write("/usr/src/.puta/t0rnp", "parser");
  m.fs().write("/bin/ls", "\x7f" "ELF-trojan-ls");  // replaced utility
  hidden_ = {"/usr/src/.puta", "/usr/src/.puta/t0rns",
             "/usr/src/.puta/t0rnsb", "/usr/src/.puta/t0rnp"};

  m.trojan_ls([](std::vector<UnixDirEnt>& entries) {
    std::erase_if(entries, [](const UnixDirEnt& e) {
      return icontains(e.name, ".puta") || icontains(e.name, "t0rn");
    });
  });
}

std::unique_ptr<UnixRootkit> make_darkside() {
  return std::make_unique<LkmRootkit>("darkside", "ds023",
                                      std::vector<std::string>{".darkside",
                                                               "ds023"});
}

std::unique_ptr<UnixRootkit> make_superkit() {
  return std::make_unique<LkmRootkit>("superkit", "skit",
                                      std::vector<std::string>{".superkit",
                                                               "skit"});
}

std::unique_ptr<UnixRootkit> make_synapsis() {
  return std::make_unique<LkmRootkit>(
      "synapsis", "synmod", std::vector<std::string>{".synapsis", "synmod"},
      /*hide_module=*/false);
}

std::unique_ptr<UnixRootkit> make_t0rnkit() {
  return std::make_unique<T0rnkit>();
}

std::unique_ptr<UnixRootkit> make_knark() {
  return std::make_unique<LkmRootkit>("knark", "knark",
                                      std::vector<std::string>{".knark",
                                                               "knark"});
}

UnixDiff unix_diff(const std::vector<std::string>& infected_view,
                   const std::vector<std::string>& clean_view) {
  const std::set<std::string> infected(infected_view.begin(),
                                       infected_view.end());
  const std::set<std::string> clean(clean_view.begin(), clean_view.end());
  UnixDiff diff;
  std::set_difference(clean.begin(), clean.end(), infected.begin(),
                      infected.end(), std::back_inserter(diff.hidden));
  std::set_difference(infected.begin(), infected.end(), clean.begin(),
                      clean.end(), std::back_inserter(diff.extra));
  return diff;
}

UnixDiff unix_cross_view_diff(const UnixMachine& m) {
  return unix_diff(m.scan_all_infected(), m.scan_all_clean());
}

}  // namespace gb::unixland
