#include "unixland/unixfs.h"

namespace gb::unixland {

namespace {

std::vector<std::string> components(std::string_view path) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : path) {
    if (c == '/') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

}  // namespace

UnixFs::UnixFs() {
  Node root;
  root.ino = 2;
  root.is_dir = true;
  nodes_.emplace(2u, std::move(root));
  next_ino_ = 3;
}

std::optional<std::uint32_t> UnixFs::try_resolve(std::string_view path) const {
  std::uint32_t cur = 2;
  for (const auto& comp : components(path)) {
    const Node& n = node(cur);
    if (!n.is_dir) return std::nullopt;
    const auto it = n.children.find(comp);
    if (it == n.children.end()) return std::nullopt;
    cur = it->second;
  }
  return cur;
}

std::uint32_t UnixFs::resolve(std::string_view path) const {
  const auto ino = try_resolve(path);
  if (!ino) throw UnixFsError("no such path: " + std::string(path));
  return *ino;
}

void UnixFs::mkdirs(std::string_view path) {
  std::uint32_t cur = 2;
  for (const auto& comp : components(path)) {
    Node& n = node(cur);
    const auto it = n.children.find(comp);
    if (it != n.children.end()) {
      if (!node(it->second).is_dir) {
        throw UnixFsError("path component is a file: " + comp);
      }
      cur = it->second;
      continue;
    }
    Node child;
    child.ino = next_ino_++;
    child.is_dir = true;
    const auto ino = child.ino;
    nodes_.emplace(ino, std::move(child));
    node(cur).children.emplace(comp, ino);
    cur = ino;
  }
}

void UnixFs::write(std::string_view path, std::string_view content) {
  auto comps = components(path);
  if (comps.empty()) throw UnixFsError("empty path");
  const std::string leaf = comps.back();
  std::uint32_t dir = 2;
  for (std::size_t i = 0; i + 1 < comps.size(); ++i) {
    const Node& n = node(dir);
    const auto it = n.children.find(comps[i]);
    if (it == n.children.end() || !node(it->second).is_dir) {
      throw UnixFsError("parent missing: " + std::string(path));
    }
    dir = it->second;
  }
  Node& parent = node(dir);
  const auto it = parent.children.find(leaf);
  if (it != parent.children.end()) {
    Node& existing = node(it->second);
    if (existing.is_dir) throw UnixFsError("is a directory: " + leaf);
    existing.content = std::string(content);
    return;
  }
  Node file;
  file.ino = next_ino_++;
  file.is_dir = false;
  file.content = std::string(content);
  const auto ino = file.ino;
  nodes_.emplace(ino, std::move(file));
  parent.children.emplace(leaf, ino);
}

void UnixFs::append(std::string_view path, std::string_view content) {
  if (!exists(path)) {
    write(path, content);
    return;
  }
  node(resolve(path)).content += std::string(content);
}

std::string UnixFs::read(std::string_view path) const {
  const Node& n = node(resolve(path));
  if (n.is_dir) throw UnixFsError("is a directory: " + std::string(path));
  return n.content;
}

bool UnixFs::exists(std::string_view path) const {
  return try_resolve(path).has_value();
}

void UnixFs::unlink(std::string_view path) {
  auto comps = components(path);
  if (comps.empty()) throw UnixFsError("cannot unlink root");
  const std::string leaf = comps.back();
  comps.pop_back();
  std::string parent_path;
  for (const auto& c : comps) parent_path += "/" + c;
  Node& parent = node(resolve(parent_path));
  const auto it = parent.children.find(leaf);
  if (it == parent.children.end()) throw UnixFsError("no such entry: " + leaf);
  const Node& victim = node(it->second);
  if (victim.is_dir && !victim.children.empty()) {
    throw UnixFsError("directory not empty: " + leaf);
  }
  nodes_.erase(it->second);
  parent.children.erase(it);
}

void UnixFs::unlink_recursive(std::string_view path) {
  const auto ino = resolve(path);
  if (node(ino).is_dir) {
    std::vector<std::string> names;
    for (const auto& [name, child] : node(ino).children) names.push_back(name);
    for (const auto& name : names) {
      unlink_recursive(std::string(path) + "/" + name);
    }
  }
  unlink(path);
}

std::vector<UnixDirEnt> UnixFs::readdir(std::string_view path) const {
  const Node& n = node(resolve(path));
  if (!n.is_dir) throw UnixFsError("not a directory: " + std::string(path));
  std::vector<UnixDirEnt> out;
  out.reserve(n.children.size());
  for (const auto& [name, ino] : n.children) {
    out.push_back(UnixDirEnt{name, ino, node(ino).is_dir});
  }
  return out;
}

}  // namespace gb::unixland
