#include "unixland/unix_machine.h"

#include <functional>

namespace gb::unixland {

UnixMachine::UnixMachine() {
  sys_getdents_.set_base(
      [this](const std::string& path) { return fs_.readdir(path); });
  create_baseline();
}

void UnixMachine::create_baseline() {
  for (const char* dir :
       {"/bin", "/sbin", "/etc", "/lib/modules", "/usr/bin", "/usr/sbin",
        "/var/log", "/var/run", "/tmp", "/home/user", "/root"}) {
    fs_.mkdirs(dir);
  }
  for (const char* bin :
       {"/bin/ls", "/bin/ps", "/bin/netstat", "/bin/login", "/bin/sh",
        "/usr/bin/find", "/usr/bin/du", "/sbin/ifconfig", "/sbin/insmod"}) {
    fs_.write(bin, "\x7f" "ELF-binary");
  }
  fs_.write("/etc/passwd", "root:x:0:0::/root:/bin/sh\n");
  fs_.write("/etc/inetd.conf", "ftp stream tcp nowait root in.ftpd\n");
  fs_.write("/var/log/messages", "kernel: booted\n");
  fs_.write("/var/log/xferlog", "");
  fs_.write("/home/user/notes.txt", "hello\n");
}

void UnixMachine::load_lkm(std::string_view name, bool visible) {
  lkms_.emplace_back(std::string(name), visible);
}

std::vector<std::string> UnixMachine::lsmod() const {
  std::vector<std::string> out;
  for (const auto& [name, visible] : lkms_) {
    if (visible) out.push_back(name);
  }
  return out;
}

bool UnixMachine::unload_lkm(std::string_view name) {
  const auto before = lkms_.size();
  std::erase_if(lkms_, [&](const auto& p) { return p.first == name; });
  if (lkms_.size() == before) return false;
  return true;
}

std::vector<UnixDirEnt> UnixMachine::run_ls(const std::string& path) const {
  auto entries = sys_getdents_(path);  // hooked view
  if (ls_trojan_) ls_trojan_(entries);
  return entries;
}

namespace {

void walk(const std::function<std::vector<UnixDirEnt>(const std::string&)>& ls,
          const std::string& dir, std::vector<std::string>& out) {
  for (const auto& e : ls(dir)) {
    const std::string full = (dir == "/" ? "" : dir) + "/" + e.name;
    out.push_back(full);
    if (e.is_dir) walk(ls, full, out);
  }
}

}  // namespace

std::vector<std::string> UnixMachine::scan_all_infected() const {
  std::vector<std::string> out;
  walk([this](const std::string& d) { return run_ls(d); }, "/", out);
  return out;
}

std::vector<std::string> UnixMachine::scan_all_clean() const {
  // Clean CD boot: pristine ls over unhooked getdents, same disk.
  std::vector<std::string> out;
  walk([this](const std::string& d) { return sys_getdents_.call_base(d); },
       "/", out);
  return out;
}

void UnixMachine::daemon_activity(int max_new_files) {
  // FTP transfer log lines (append: no presence change)...
  fs_.append("/var/log/xferlog", "RETR file.bin ok\n");
  // ...plus a bounded number of new temp/log files (presence FPs).
  for (int i = 0; i < max_new_files; ++i) {
    const std::string n = std::to_string(daemon_seq_++);
    if (i % 2 == 0) {
      fs_.write("/tmp/ftpd" + n, "transfer scratch");
    } else {
      fs_.write("/var/log/daemon" + n + ".log", "daemon says hi\n");
    }
  }
}

}  // namespace gb::unixland
