// Simulated NTFS change journal ($UsnJrnl) — the incremental-scan feed.
//
// Every metadata mutation the file-system driver persists appends one
// append-only record here: create, delete, rename, data overwrite,
// attribute change, directory-index change. A re-scan that remembers the
// (journal id, next-USN) cursor from its last walk can ask "what changed
// since?" and re-parse only those MFT records instead of the whole
// volume — the paper's fleet deployment re-scans millions of endpoints
// on a cadence, and ~92% of an inside scan is the raw MFT walks over an
// almost entirely unchanged volume.
//
// Semantics mirror the real journal closely enough for the consumer
// contract to be honest:
//   * USNs are monotonically increasing within one journal incarnation.
//   * The journal is a bounded ring: once more than `capacity` records
//     have been appended, the oldest fall off and a cursor older than
//     first_usn() can no longer be served — read_since() reports the
//     wrap and the caller must fall back to a full walk.
//   * reset() starts a new incarnation under a new journal id; cursors
//     from the old incarnation are invalid (same fallback).
//
// Determinism: the journal holds no wall-clock time and draws no random
// ids — the id is caller-chosen and USNs count from zero. The volume
// derives it from its boot-sector serial and an on-device mount-sequence
// counter, so every mount is a distinct incarnation without sacrificing
// determinism. Identical mutation sequences produce byte-identical
// journals, which is what lets the incremental scan keep the report
// byte-identical to a cold scan.
//
// Id uniqueness matters: reset() restarts USNs at zero, so if two
// incarnations shared an id, a cursor saved under the first could look
// serveable against the second once it had journaled that many writes —
// and a consumer would silently miss the second incarnation's earliest
// changes. Callers of reset() must supply an id never used before on
// the volume (the mount-sequence scheme above guarantees this).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "support/status.h"

namespace gb::disk {

/// Why a record changed. One reason per journal record (the simulation
/// journals at the record-write choke point, so compound operations emit
/// one record per MFT write rather than OR-ed reason masks).
enum class UsnReason : std::uint8_t {
  kCreate = 0,
  kDelete = 1,
  kRename = 2,
  kDataOverwrite = 3,
  kAttrChange = 4,
  kIndexChange = 5,
};

const char* usn_reason_name(UsnReason reason);

/// One journal entry: which MFT record changed, why, and its USN.
struct UsnRecord {
  std::uint64_t usn = 0;
  std::uint64_t record = 0;  // MFT record number
  UsnReason reason = UsnReason::kDataOverwrite;

  bool operator==(const UsnRecord&) const = default;
};

class ChangeJournal {
 public:
  /// Default ring capacity — generous for test volumes, small enough
  /// that a busy volume demonstrably wraps.
  static constexpr std::size_t kDefaultCapacity = 64 * 1024;

  explicit ChangeJournal(std::uint64_t journal_id = 1,
                         std::size_t capacity = kDefaultCapacity)
      : journal_id_(journal_id), capacity_(capacity ? capacity : 1) {}

  /// Identity of this journal incarnation. Changes only via reset().
  [[nodiscard]] std::uint64_t journal_id() const { return journal_id_; }
  /// The USN the next append will receive; a reader holding this cursor
  /// is fully caught up.
  [[nodiscard]] std::uint64_t next_usn() const { return next_usn_; }
  /// Oldest USN still in the ring. A cursor below this has been wrapped
  /// past and cannot be served.
  [[nodiscard]] std::uint64_t first_usn() const {
    return next_usn_ - ring_.size();
  }
  [[nodiscard]] std::size_t size() const { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  /// Appends one record, evicting the oldest when the ring is full.
  void append(std::uint64_t record, UsnReason reason) {
    ring_.push_back(UsnRecord{next_usn_++, record, reason});
    while (ring_.size() > capacity_) ring_.pop_front();
  }

  /// Everything in [cursor, next_usn()), in append order. Errors demand
  /// a full-walk fallback from the caller:
  ///   * kNotFound — the ring wrapped past `cursor` (truncation); the
  ///     missing records are gone for good.
  ///   * kFailedPrecondition — `cursor` is ahead of next_usn(), i.e. it
  ///     came from a different journal incarnation.
  [[nodiscard]] support::StatusOr<std::vector<UsnRecord>> read_since(
      std::uint64_t cursor) const {
    if (cursor > next_usn_) {
      return support::Status::failed_precondition(
          "journal cursor " + std::to_string(cursor) +
          " is ahead of next USN " + std::to_string(next_usn_));
    }
    if (cursor < first_usn()) {
      return support::Status::not_found(
          "journal wrapped: cursor " + std::to_string(cursor) +
          " older than first retained USN " + std::to_string(first_usn()));
    }
    std::vector<UsnRecord> out;
    out.reserve(static_cast<std::size_t>(next_usn_ - cursor));
    for (const UsnRecord& r : ring_) {
      if (r.usn >= cursor) out.push_back(r);
    }
    return out;
  }

  /// Shrinks (or grows) the ring, evicting oldest records immediately.
  /// Tests use a tiny capacity to force the wrap fallback on demand.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity ? capacity : 1;
    while (ring_.size() > capacity_) ring_.pop_front();
  }

  /// Starts a new incarnation: new id, empty ring, USNs from zero.
  /// Every outstanding cursor becomes invalid.
  void reset(std::uint64_t new_journal_id) {
    journal_id_ = new_journal_id;
    ring_.clear();
    next_usn_ = 0;
  }

 private:
  std::uint64_t journal_id_;
  std::size_t capacity_;
  std::uint64_t next_usn_ = 0;
  std::deque<UsnRecord> ring_;
};

}  // namespace gb::disk
