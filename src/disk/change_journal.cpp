#include "disk/change_journal.h"

namespace gb::disk {

const char* usn_reason_name(UsnReason reason) {
  switch (reason) {
    case UsnReason::kCreate: return "create";
    case UsnReason::kDelete: return "delete";
    case UsnReason::kRename: return "rename";
    case UsnReason::kDataOverwrite: return "data-overwrite";
    case UsnReason::kAttrChange: return "attr-change";
    case UsnReason::kIndexChange: return "index-change";
  }
  return "unknown";
}

}  // namespace gb::disk
