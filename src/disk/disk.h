// Sector-addressed block device abstraction.
//
// The NTFS driver writes real on-disk structures through this interface,
// and the low-level MFT scanner reads them back independently — the same
// bytes a raw-disk read would see on the paper's machines. I/O statistics
// feed the machine timing model that reproduces the paper's scan-time
// tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/status.h"
#include "support/thread_annotations.h"

namespace gb::disk {

inline constexpr std::size_t kSectorSize = 512;

/// Cumulative I/O counters; reset-able between measured phases.
struct IoStats {
  std::uint64_t sectors_read = 0;
  std::uint64_t sectors_written = 0;
  std::uint64_t seeks = 0;  // non-contiguous accesses

  std::uint64_t bytes_read() const { return sectors_read * kSectorSize; }
  std::uint64_t bytes_written() const { return sectors_written * kSectorSize; }
  void reset() { *this = IoStats{}; }
};

/// Abstract block device.
class SectorDevice {
 public:
  virtual ~SectorDevice() = default;

  virtual std::uint64_t sector_count() const = 0;
  virtual void read(std::uint64_t lba, std::span<std::byte> out) = 0;
  virtual void write(std::uint64_t lba, std::span<const std::byte> data) = 0;

  std::uint64_t size_bytes() const { return sector_count() * kSectorSize; }
};

/// In-memory disk image with seek tracking.
///
/// This object doubles as the "physical drive": the outside-the-box WinPE
/// scan and the VM host-side scan both operate on the same image after
/// the machine that owned it has shut down.
///
/// Concurrent reads are safe (the access counters are mutex-guarded so
/// parallel scans race-free); the stats() reference itself should only be
/// inspected while no other thread is doing I/O. Scans that need
/// deterministic per-scan accounting wrap the device in a CountingDevice
/// instead of reading these shared counters.
class MemDisk final : public SectorDevice {
 public:
  explicit MemDisk(std::uint64_t sector_count);
  // The stats mutex is not movable; a moved disk starts with a fresh one.
  // Off-analysis: the source must be quiescent (documented move contract),
  // which Clang cannot see while its guarded counters are copied.
  MemDisk(MemDisk&& other) noexcept GB_NO_THREAD_SAFETY_ANALYSIS
      : sector_count_(other.sector_count_),
        image_(std::move(other.image_)),
        stats_(other.stats_),
        last_lba_(other.last_lba_) {}

  std::uint64_t sector_count() const override { return sector_count_; }
  void read(std::uint64_t lba, std::span<std::byte> out) override;
  void write(std::uint64_t lba, std::span<const std::byte> data) override;

  // Off-analysis: documented contract above — inspect only while no
  // other thread is doing I/O on this disk.
  IoStats& stats() GB_NO_THREAD_SAFETY_ANALYSIS { return stats_; }
  const IoStats& stats() const GB_NO_THREAD_SAFETY_ANALYSIS {
    return stats_;
  }

  /// Full raw image view (for the byte-level scanners).
  std::span<const std::byte> image() const { return image_; }

  /// Writes the raw image to a host file (a ".img" a VM product would
  /// expose — Section 5 scans a powered-down VM's virtual disk from the
  /// host through exactly such a file).
  void save_image(const std::string& host_path) const;
  /// Loads a previously saved image; the file size must be a whole number
  /// of sectors.
  static MemDisk load_image(const std::string& host_path);
  /// Non-throwing variant: a missing file is kNotFound, a short or
  /// unaligned one kCorrupt — what a host-side image-scan tool reports
  /// instead of crashing.
  [[nodiscard]] static support::StatusOr<MemDisk> load_image_or(
      const std::string& host_path);

 private:
  void check_range(std::uint64_t lba, std::size_t sectors) const;
  void note_access(std::uint64_t lba, std::size_t sectors, bool write);

  std::uint64_t sector_count_;
  std::vector<std::byte> image_;
  support::Mutex stats_mu_;
  IoStats stats_ GB_GUARDED_BY(stats_mu_);
  /// For seek detection.
  std::uint64_t last_lba_ GB_GUARDED_BY(stats_mu_) = ~0ull;
};

/// Pass-through device with private I/O accounting.
///
/// Each scan task wraps the shared device in its own CountingDevice, so
/// the work counters that feed the timing model depend only on that
/// scan's access pattern — never on what other threads read in between.
/// That is what keeps simulated scan times byte-identical between the
/// serial and parallel engines. Not thread-safe: one instance per task.
class CountingDevice final : public SectorDevice {
 public:
  explicit CountingDevice(SectorDevice& inner) : inner_(inner) {}

  std::uint64_t sector_count() const override { return inner_.sector_count(); }
  void read(std::uint64_t lba, std::span<std::byte> out) override;
  void write(std::uint64_t lba, std::span<const std::byte> data) override;

  const IoStats& stats() const { return stats_; }

 private:
  void note_access(std::uint64_t lba, std::size_t sectors, bool write);

  SectorDevice& inner_;
  IoStats stats_;
  std::uint64_t last_lba_ = ~0ull;
};

}  // namespace gb::disk
