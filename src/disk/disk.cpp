#include "disk/disk.h"

#include <cstring>
#include <fstream>

namespace gb::disk {

void MemDisk::save_image(const std::string& host_path) const {
  std::ofstream out(host_path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + host_path);
  out.write(reinterpret_cast<const char*>(image_.data()),
            static_cast<std::streamsize>(image_.size()));
  if (!out) throw std::runtime_error("short write to " + host_path);
}

MemDisk MemDisk::load_image(const std::string& host_path) {
  std::ifstream in(host_path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open " + host_path);
  const auto size = static_cast<std::uint64_t>(in.tellg());
  if (size % kSectorSize != 0) {
    throw std::runtime_error("image size is not sector-aligned");
  }
  MemDisk disk(size / kSectorSize);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(disk.image_.data()),
          static_cast<std::streamsize>(size));
  if (!in) throw std::runtime_error("short read from " + host_path);
  return disk;
}

support::StatusOr<MemDisk> MemDisk::load_image_or(
    const std::string& host_path) {
  std::ifstream in(host_path, std::ios::binary | std::ios::ate);
  if (!in) return support::Status::not_found("cannot open " + host_path);
  try {
    return load_image(host_path);
  } catch (const std::runtime_error& e) {
    return support::Status::corrupt(e.what());
  }
}

MemDisk::MemDisk(std::uint64_t sector_count)
    : sector_count_(sector_count), image_(sector_count * kSectorSize) {}

void MemDisk::check_range(std::uint64_t lba, std::size_t sectors) const {
  if (lba + sectors > sector_count_) {
    throw std::out_of_range("disk access beyond device: lba=" +
                            std::to_string(lba) +
                            " sectors=" + std::to_string(sectors));
  }
}

void MemDisk::note_access(std::uint64_t lba, std::size_t sectors, bool write) {
  support::MutexLock g(stats_mu_);
  if (lba != last_lba_) ++stats_.seeks;
  last_lba_ = lba + sectors;
  if (write) {
    stats_.sectors_written += sectors;
  } else {
    stats_.sectors_read += sectors;
  }
}

void MemDisk::read(std::uint64_t lba, std::span<std::byte> out) {
  if (out.size() % kSectorSize != 0) {
    throw std::invalid_argument("read size must be sector-aligned");
  }
  const std::size_t sectors = out.size() / kSectorSize;
  check_range(lba, sectors);
  note_access(lba, sectors, /*write=*/false);
  std::memcpy(out.data(), image_.data() + lba * kSectorSize, out.size());
}

void MemDisk::write(std::uint64_t lba, std::span<const std::byte> data) {
  if (data.size() % kSectorSize != 0) {
    throw std::invalid_argument("write size must be sector-aligned");
  }
  const std::size_t sectors = data.size() / kSectorSize;
  check_range(lba, sectors);
  note_access(lba, sectors, /*write=*/true);
  std::memcpy(image_.data() + lba * kSectorSize, data.data(), data.size());
}

void CountingDevice::note_access(std::uint64_t lba, std::size_t sectors,
                                 bool write) {
  if (lba != last_lba_) ++stats_.seeks;
  last_lba_ = lba + sectors;
  if (write) {
    stats_.sectors_written += sectors;
  } else {
    stats_.sectors_read += sectors;
  }
}

void CountingDevice::read(std::uint64_t lba, std::span<std::byte> out) {
  inner_.read(lba, out);
  note_access(lba, out.size() / kSectorSize, /*write=*/false);
}

void CountingDevice::write(std::uint64_t lba,
                           std::span<const std::byte> data) {
  inner_.write(lba, data);
  note_access(lba, data.size() / kSectorSize, /*write=*/true);
}

}  // namespace gb::disk
