// Win32 subsystem: owns one ApiEnv per process and supports system-wide
// DLL injection.
//
// "Injection" here is the mechanism behind three behaviours in the paper:
// ghostware like Hacker Defender patching the API code of *every* running
// process, AppInit_DLLs-style auto-loading into new processes, and the
// GhostBuster extension of Section 5 that injects the scanner DLL into
// every process (turning each one into a GhostBuster).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "winapi/api_env.h"

namespace gb::winapi {

class Win32Subsystem {
 public:
  explicit Win32Subsystem(kernel::Kernel& kernel) : kernel_(kernel) {}

  /// Creates the environment for a new process and runs all registered
  /// injectors over it.
  ApiEnv& create_env(kernel::Pid pid);
  void destroy_env(kernel::Pid pid) { envs_.erase(pid); }

  ApiEnv* env(kernel::Pid pid);
  const std::map<kernel::Pid, std::unique_ptr<ApiEnv>>& envs() const {
    return envs_;
  }

  /// Applies `fn` to every existing environment and every future one.
  using Injector = std::function<void(kernel::Pid, ApiEnv&)>;
  void inject_all(std::string owner, Injector fn);

  /// Removes injectors registered under `owner` (future processes no
  /// longer receive them) and rips `owner`'s hooks out of every existing
  /// environment. Returns the number of hooks removed.
  std::size_t remove_owner(std::string_view owner);

 private:
  kernel::Kernel& kernel_;
  std::map<kernel::Pid, std::unique_ptr<ApiEnv>> envs_;
  std::vector<std::pair<std::string, Injector>> injectors_;
};

}  // namespace gb::winapi
