// Win32 filename restrictions.
//
// NTFS (and this project's native volume API) accepts names that the
// Win32 layer cannot express: trailing dots or spaces, reserved device
// names (CON, AUX, NUL, COM1…), special characters, and full paths beyond
// MAX_PATH. Section 2 of the paper lists creating such files through
// low-level APIs as a file-hiding technique — the Win32 view simply
// cannot see them, while the raw MFT scan can. These rules are enforced
// in the Kernel32 layer (winapi/api_env.cpp), never in the volume.
#pragma once

#include <string_view>

namespace gb::winapi {

inline constexpr std::size_t kMaxPath = 260;

/// True if a single path component is expressible through Win32.
bool valid_win32_component(std::string_view name);

/// True if a full path is expressible: every component valid and the
/// total length within MAX_PATH.
bool valid_win32_path(std::string_view path);

/// True if `name` (without extension) is a reserved DOS device name.
bool is_reserved_device_name(std::string_view name);

}  // namespace gb::winapi
