#include "winapi/api_env.h"

#include "support/strings.h"
#include "winapi/win32_names.h"

namespace gb::winapi {

namespace {

/// Advapi32's counted-to-NUL-terminated conversion, plus the long-name
/// handling bug the paper describes in real registry editors: names the
/// editor's fixed buffer cannot hold are silently skipped.
constexpr std::size_t kRegEditNameBuffer = 255;

}  // namespace

ApiEnv::ApiEnv(kernel::Kernel& kernel) : kernel_(kernel) {
  // ---- NtDll bases trap into the SSDT (running its hook chain). ----------
  ntdll_query_directory_file.set_base(
      [this](const Ctx& ctx, const std::string& dir) {
        return kernel_.ssdt().nt_query_directory_file(ctx, dir);
      });
  ntdll_enumerate_key.set_base([this](const Ctx& ctx, const std::string& key) {
    return kernel_.ssdt().nt_enumerate_key(ctx, key);
  });
  ntdll_enumerate_value_key.set_base(
      [this](const Ctx& ctx, const std::string& key) {
        return kernel_.ssdt().nt_enumerate_value_key(ctx, key);
      });
  ntdll_query_system_information.set_base([this](const Ctx& ctx) {
    return kernel_.ssdt().nt_query_system_information(ctx);
  });
  ntdll_query_information_process.set_base(
      [this](const Ctx& ctx, kernel::Pid target) {
        return kernel_.ssdt().nt_query_information_process(ctx, target);
      });

  // ---- Kernel32/Advapi32 bases call this process's NtDll code and apply
  // Win32 semantics. -------------------------------------------------------
  k32_find_file.set_base([this](const Ctx& ctx, const std::string& dir) {
    if (!valid_win32_path(dir)) {
      throw Win32Error("path not expressible through Win32: " +
                       printable(dir));
    }
    auto entries = ntdll_query_directory_file(ctx, dir);
    std::erase_if(entries, [](const kernel::FindData& e) {
      return !valid_win32_component(e.name);
    });
    return entries;
  });

  advapi_reg_enum_key.set_base([this](const Ctx& ctx, const std::string& key) {
    auto names = ntdll_enumerate_key(ctx, key);
    std::vector<std::string> out;
    out.reserve(names.size());
    for (auto& n : names) {
      if (n.size() > kRegEditNameBuffer) continue;  // editor-buffer bug
      out.emplace_back(truncate_at_nul(n));
    }
    return out;
  });

  advapi_reg_enum_value.set_base(
      [this](const Ctx& ctx, const std::string& key) {
        auto values = ntdll_enumerate_value_key(ctx, key);
        std::vector<Win32RegValue> out;
        out.reserve(values.size());
        for (auto& v : values) {
          if (v.name.size() > kRegEditNameBuffer) continue;
          Win32RegValue w;
          w.name = std::string(truncate_at_nul(v.name));
          w.value = std::move(v);
          out.push_back(std::move(w));
        }
        return out;
      });

  k32_process32.set_base(
      [this](const Ctx& ctx) { return ntdll_query_system_information(ctx); });
  k32_module32.set_base([this](const Ctx& ctx, kernel::Pid target) {
    return ntdll_query_information_process(ctx, target);
  });

  // ---- IAT entries point at the in-process DLL code. ---------------------
  iat_find_file.set_base([this](const Ctx& ctx, const std::string& dir) {
    return k32_find_file(ctx, dir);
  });
  iat_reg_enum_key.set_base([this](const Ctx& ctx, const std::string& key) {
    return advapi_reg_enum_key(ctx, key);
  });
  iat_reg_enum_value.set_base([this](const Ctx& ctx, const std::string& key) {
    return advapi_reg_enum_value(ctx, key);
  });
  iat_nt_query_system_information.set_base(
      [this](const Ctx& ctx) { return ntdll_query_system_information(ctx); });
}

std::vector<kernel::FindData> ApiEnv::find_files(const Ctx& ctx,
                                                 const std::string& dir,
                                                 bool* ok) {
  try {
    auto out = iat_find_file(ctx, dir);
    if (ok) *ok = true;
    return out;
  } catch (const Win32Error&) {
    if (ok) *ok = false;
    return {};
  }
}

std::vector<std::string> ApiEnv::reg_enum_keys(const Ctx& ctx,
                                               const std::string& key_path) {
  return iat_reg_enum_key(ctx, key_path);
}

std::vector<Win32RegValue> ApiEnv::reg_enum_values(
    const Ctx& ctx, const std::string& key_path) {
  return iat_reg_enum_value(ctx, key_path);
}

std::vector<kernel::ProcessInfo> ApiEnv::toolhelp_processes(const Ctx& ctx) {
  return k32_process32(ctx);
}

std::vector<kernel::PebModuleEntry> ApiEnv::toolhelp_modules(
    const Ctx& ctx, kernel::Pid target) {
  return k32_module32(ctx, target);
}

std::vector<kernel::ProcessInfo> ApiEnv::nt_query_system_information(
    const Ctx& ctx) {
  return iat_nt_query_system_information(ctx);
}

std::size_t ApiEnv::remove_owner(std::string_view owner) {
  return iat_find_file.remove_owner(owner) +
         iat_reg_enum_key.remove_owner(owner) +
         iat_reg_enum_value.remove_owner(owner) +
         iat_nt_query_system_information.remove_owner(owner) +
         k32_find_file.remove_owner(owner) +
         advapi_reg_enum_key.remove_owner(owner) +
         advapi_reg_enum_value.remove_owner(owner) +
         k32_process32.remove_owner(owner) +
         k32_module32.remove_owner(owner) +
         ntdll_query_directory_file.remove_owner(owner) +
         ntdll_enumerate_key.remove_owner(owner) +
         ntdll_enumerate_value_key.remove_owner(owner) +
         ntdll_query_system_information.remove_owner(owner) +
         ntdll_query_information_process.remove_owner(owner);
}

std::vector<HookInfo> ApiEnv::all_hooks() const {
  std::vector<HookInfo> out;
  for (const auto& hooks :
       {iat_find_file.hooks(), iat_reg_enum_key.hooks(),
        iat_reg_enum_value.hooks(), iat_nt_query_system_information.hooks(),
        k32_find_file.hooks(), advapi_reg_enum_key.hooks(),
        advapi_reg_enum_value.hooks(), k32_process32.hooks(),
        k32_module32.hooks(), ntdll_query_directory_file.hooks(),
        ntdll_enumerate_key.hooks(), ntdll_enumerate_value_key.hooks(),
        ntdll_query_system_information.hooks(),
        ntdll_query_information_process.hooks()}) {
    out.insert(out.end(), hooks.begin(), hooks.end());
  }
  return out;
}

}  // namespace gb::winapi
