// Per-process API environment: the interception surface of Figure 2/5.
//
// Each process owns private copies of its import address table and of the
// loaded DLLs' in-memory API code (on Windows, code pages become private
// the moment a rootkit writes to them). Every level is a Hookable chain:
//
//   user call
//     -> IAT entry                 (Urbin/Mersting hook here, per process)
//     -> Kernel32/Advapi32 code    (Vanquish inline, Aphex detour)
//     -> NtDll code                (Hacker Defender detour, Berbew jmp)
//     -> SSDT                      (ProBot SE; system-wide, in the kernel)
//     -> filter drivers / config manager / process lists
//
// GhostBuster's *high-level* scans enter at the top of this stack from a
// chosen process context; its *low-level* scans never touch it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "hive/hive.h"
#include "kernel/kernel.h"
#include "support/hookable.h"

namespace gb::winapi {

using Ctx = kernel::SyscallContext;

/// Thrown by Win32-layer calls for conditions Win32 reports as errors
/// (e.g. a path it cannot express). Native-layer calls never throw this.
class Win32Error : public std::runtime_error {
 public:
  explicit Win32Error(const std::string& what) : std::runtime_error(what) {}
};

/// API identities used in hook metadata strings.
namespace api_names {
inline constexpr const char* kFindFile = "Kernel32!FindFirst(Next)File";
inline constexpr const char* kNtQueryDirectoryFile =
    "NtDll!NtQueryDirectoryFile";
inline constexpr const char* kRegEnumValue = "Advapi32!RegEnumValue";
inline constexpr const char* kRegEnumKey = "Advapi32!RegEnumKey";
inline constexpr const char* kNtEnumerateKey = "NtDll!NtEnumerateKey";
inline constexpr const char* kNtEnumerateValueKey =
    "NtDll!NtEnumerateValueKey";
inline constexpr const char* kNtQuerySystemInformation =
    "NtDll!NtQuerySystemInformation";
inline constexpr const char* kNtQueryInformationProcess =
    "NtDll!NtQueryInformationProcess";
inline constexpr const char* kProcess32 = "Kernel32!Process32First(Next)";
inline constexpr const char* kModule32 = "Kernel32!Module32First(Next)";
}  // namespace api_names

/// Registry value as returned by the Win32 (Advapi32) layer: the name has
/// been squeezed through NUL-terminated string handling.
struct Win32RegValue {
  std::string name;  // truncated at the first NUL
  hive::Value value;

  bool operator==(const Win32RegValue&) const = default;
};

class ApiEnv {
 public:
  /// Binds all base implementations down to the kernel's SSDT.
  explicit ApiEnv(kernel::Kernel& kernel);

  // --- user-facing entry points (dispatch through the IAT chains) --------
  /// FindFirstFile/FindNextFile enumeration of one directory, with Win32
  /// name semantics. Returns nullopt-like empty + sets ok=false when the
  /// path itself is not Win32-expressible (caller cannot descend).
  std::vector<kernel::FindData> find_files(const Ctx& ctx,
                                           const std::string& dir,
                                           bool* ok = nullptr);
  std::vector<std::string> reg_enum_keys(const Ctx& ctx,
                                         const std::string& key_path);
  std::vector<Win32RegValue> reg_enum_values(const Ctx& ctx,
                                             const std::string& key_path);
  std::vector<kernel::ProcessInfo> toolhelp_processes(const Ctx& ctx);
  std::vector<kernel::PebModuleEntry> toolhelp_modules(const Ctx& ctx,
                                                       kernel::Pid target);
  /// Direct NtDll import — what tlist-style tools and Task Manager use.
  std::vector<kernel::ProcessInfo> nt_query_system_information(const Ctx& ctx);

  // --- hook surfaces ------------------------------------------------------
  // IAT entries (HookType::kIat belongs here).
  Hookable<std::vector<kernel::FindData>(const Ctx&, const std::string&)>
      iat_find_file;
  Hookable<std::vector<std::string>(const Ctx&, const std::string&)>
      iat_reg_enum_key;
  Hookable<std::vector<Win32RegValue>(const Ctx&, const std::string&)>
      iat_reg_enum_value;
  Hookable<std::vector<kernel::ProcessInfo>(const Ctx&)>
      iat_nt_query_system_information;

  // Kernel32 / Advapi32 in-memory code (inline patches & detours).
  Hookable<std::vector<kernel::FindData>(const Ctx&, const std::string&)>
      k32_find_file;
  Hookable<std::vector<std::string>(const Ctx&, const std::string&)>
      advapi_reg_enum_key;
  Hookable<std::vector<Win32RegValue>(const Ctx&, const std::string&)>
      advapi_reg_enum_value;
  Hookable<std::vector<kernel::ProcessInfo>(const Ctx&)> k32_process32;
  Hookable<std::vector<kernel::PebModuleEntry>(const Ctx&, kernel::Pid)>
      k32_module32;

  // NtDll in-memory code.
  Hookable<std::vector<kernel::FindData>(const Ctx&, const std::string&)>
      ntdll_query_directory_file;
  Hookable<std::vector<std::string>(const Ctx&, const std::string&)>
      ntdll_enumerate_key;
  Hookable<std::vector<hive::Value>(const Ctx&, const std::string&)>
      ntdll_enumerate_value_key;
  Hookable<std::vector<kernel::ProcessInfo>(const Ctx&)>
      ntdll_query_system_information;
  Hookable<std::vector<kernel::PebModuleEntry>(const Ctx&, kernel::Pid)>
      ntdll_query_information_process;

  /// Removes every hook `owner` installed anywhere in this environment.
  std::size_t remove_owner(std::string_view owner);
  /// All hooks installed in this environment (hook-detector view).
  std::vector<HookInfo> all_hooks() const;

 private:
  kernel::Kernel& kernel_;
};

}  // namespace gb::winapi
