#include "winapi/win32_names.h"

#include <array>

#include "support/strings.h"

namespace gb::winapi {

bool is_reserved_device_name(std::string_view name) {
  // Strip extension: "CON.txt" is also reserved.
  const auto dot = name.find('.');
  const std::string_view stem =
      dot == std::string_view::npos ? name : name.substr(0, dot);
  static constexpr std::array<std::string_view, 4> kPlain = {"con", "prn",
                                                             "aux", "nul"};
  for (const auto r : kPlain) {
    if (iequals(stem, r)) return true;
  }
  if (stem.size() == 4 &&
      (istarts_with(stem, "com") || istarts_with(stem, "lpt")) &&
      stem[3] >= '1' && stem[3] <= '9') {
    return true;
  }
  return false;
}

bool valid_win32_component(std::string_view name) {
  if (name.empty()) return false;
  if (name.back() == '.' || name.back() == ' ') return false;
  if (is_reserved_device_name(name)) return false;
  for (const char c : name) {
    const auto uc = static_cast<unsigned char>(c);
    if (uc < 0x20) return false;
    switch (c) {
      case '<':
      case '>':
      case ':':
      case '"':
      case '/':
      case '\\':
      case '|':
      case '?':
      case '*':
        return false;
      default:
        break;
    }
  }
  return true;
}

bool valid_win32_path(std::string_view path) {
  if (path.size() >= kMaxPath) return false;
  std::string_view rest = path;
  if (rest.size() >= 2 && rest[1] == ':') rest.remove_prefix(2);
  for (const auto& comp : split(rest, '\\')) {
    if (comp.empty()) continue;
    if (!valid_win32_component(comp)) return false;
  }
  return true;
}

}  // namespace gb::winapi
