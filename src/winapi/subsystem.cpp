#include "winapi/subsystem.h"

namespace gb::winapi {

ApiEnv& Win32Subsystem::create_env(kernel::Pid pid) {
  auto env = std::make_unique<ApiEnv>(kernel_);
  ApiEnv& ref = *env;
  envs_[pid] = std::move(env);
  for (const auto& [owner, fn] : injectors_) fn(pid, ref);
  return ref;
}

ApiEnv* Win32Subsystem::env(kernel::Pid pid) {
  const auto it = envs_.find(pid);
  return it == envs_.end() ? nullptr : it->second.get();
}

void Win32Subsystem::inject_all(std::string owner, Injector fn) {
  for (auto& [pid, env] : envs_) fn(pid, *env);
  injectors_.emplace_back(std::move(owner), std::move(fn));
}

std::size_t Win32Subsystem::remove_owner(std::string_view owner) {
  std::erase_if(injectors_, [&](const auto& entry) {
    return entry.first == owner;
  });
  std::size_t removed = 0;
  for (auto& [pid, env] : envs_) removed += env->remove_owner(owner);
  return removed;
}

}  // namespace gb::winapi
