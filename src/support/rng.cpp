#include "support/rng.h"

namespace gb {

std::uint64_t Rng::next() {
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Modulo bias is irrelevant for workload synthesis.
  return next() % bound;
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  return lo + below(hi - lo + 1);
}

bool Rng::chance(std::uint64_t num, std::uint64_t den) {
  return below(den) < num;
}

std::string Rng::identifier(std::size_t length) {
  static constexpr char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz";
  std::string out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    out.push_back(kAlphabet[below(26)]);
  }
  return out;
}

}  // namespace gb
