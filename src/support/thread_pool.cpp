#include "support/thread_pool.h"

#include <algorithm>
#include <chrono>

namespace gb::support {

namespace {

// Which pool (if any) the current thread is a worker of, and its index.
// Lets push() target the local deque and parallel_for() help-drain the
// right queues when invoked from inside a task.
thread_local ThreadPool* tls_pool = nullptr;
thread_local std::size_t tls_index = 0;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  queues_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stop_.store(true);
  {
    // Serialize with workers between their predicate check and sleep.
    MutexLock g(sleep_mu_);
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::instrument(obs::MetricsRegistry& registry) {
  m_tasks_ = &registry.counter("gb_pool_tasks_total");
  m_steals_ = &registry.counter("gb_pool_steals_total");
  m_task_seconds_ = &registry.histogram("gb_pool_task_seconds",
                                        obs::default_latency_buckets());
  m_busy_ = &registry.gauge("gb_pool_busy_workers");
  m_queue_depth_ = &registry.gauge("gb_pool_queue_depth_peak");
  registry.set_help("gb_pool_tasks_total", "Tasks executed by pool workers");
  registry.set_help("gb_pool_steals_total",
                    "Tasks stolen from another worker's queue");
  registry.set_help("gb_pool_task_seconds", "Task execution latency");
  registry.set_help("gb_pool_busy_workers",
                    "Workers currently running a task");
  registry.set_help("gb_pool_queue_depth_peak",
                    "High-water mark of queued tasks");
}

void ThreadPool::push(std::function<void()> task) {
  std::size_t target;
  if (tls_pool == this) {
    target = tls_index;  // worker: keep work local, let others steal
  } else {
    target = next_queue_.fetch_add(1) % queues_.size();
  }
  {
    MutexLock g(queues_[target]->mu);
    queues_[target]->tasks.push_back(std::move(task));
  }
  const std::size_t depth = pending_.fetch_add(1) + 1;
  if (m_queue_depth_ != nullptr) {
    m_queue_depth_->max_of(static_cast<double>(depth));
  }
  {
    MutexLock g(sleep_mu_);
  }
  wake_.notify_one();
}

bool ThreadPool::try_run_one(std::size_t home) {
  const std::size_t n = queues_.size();
  std::function<void()> task;
  // Own deque first, newest-first (the task most likely still in cache).
  if (home < n) {
    MutexLock g(queues_[home]->mu);
    if (!queues_[home]->tasks.empty()) {
      task = std::move(queues_[home]->tasks.back());
      queues_[home]->tasks.pop_back();
    }
  }
  bool stolen = false;
  if (!task) {
    // Steal oldest-first from the other deques.
    for (std::size_t k = 1; k <= n && !task; ++k) {
      const std::size_t victim = (home + k) % n;
      if (victim == home) continue;
      MutexLock g(queues_[victim]->mu);
      if (!queues_[victim]->tasks.empty()) {
        task = std::move(queues_[victim]->tasks.front());
        queues_[victim]->tasks.pop_front();
        stolen = home < n;  // a caller draining in parallel_for owns no
                            // deque, so its pops are not steals
      }
    }
  }
  if (!task) return false;
  pending_.fetch_sub(1);
  if (m_task_seconds_ != nullptr) {
    if (stolen && m_steals_ != nullptr) m_steals_->inc();
    if (m_busy_ != nullptr) m_busy_->add(1);
    const auto t0 = std::chrono::steady_clock::now();
    task();
    m_task_seconds_->observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    if (m_tasks_ != nullptr) m_tasks_->inc();
    if (m_busy_ != nullptr) m_busy_->add(-1);
  } else {
    task();
  }
  return true;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_pool = this;
  tls_index = index;
  for (;;) {
    if (try_run_one(index)) continue;
    CondLock lk(sleep_mu_);
    wake_.wait(lk.native(), [this] {
      return stop_.load() || pending_.load() > 0;
    });
    if (stop_.load() && pending_.load() == 0) return;
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn,
                              const CancelToken* cancel) {
  if (n == 0) return;
  if (queues_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      if (cancel && cancel->cancelled()) return;
      fn(i);
    }
    return;
  }

  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  std::mutex error_mu;
  std::exception_ptr first_error;

  auto drain = [&] {
    for (std::size_t i; (i = next.fetch_add(1)) < n;) {
      // A raised token fast-forwards the remaining indices: they are
      // claimed and counted (so every waiter still terminates) but fn is
      // not entered for them.
      if (!(cancel && cancel->cancelled())) {
        try {
          fn(i);
          // Not a swallow: the first exception is captured whole and
          // rethrown to the caller once the index space has drained.
          // gb-lint: allow(catch-all)
        } catch (...) {
          std::lock_guard<std::mutex> g(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
      }
      done.fetch_add(1);
    }
  };

  // One helper per worker (capped at n-1: the caller takes at least one
  // index). Helpers that arrive after the caller has drained everything
  // see the exhausted counter and exit immediately.
  const std::size_t helpers = std::min(threads_.size(), n - 1);
  std::atomic<std::size_t> helpers_exited{0};
  for (std::size_t h = 0; h < helpers; ++h) {
    push([&] {
      drain();
      helpers_exited.fetch_add(1);
    });
  }

  drain();

  // Help instead of blocking — ever. A straggler index may be waiting on
  // tasks queued behind our helpers, and a not-yet-started helper may sit
  // in the deque of a thread that is itself waiting; blocking on either
  // deadlocks when every executor reaches this point (nested
  // parallel_for). So keep executing pool work until every index is done
  // AND every helper has left this stack frame's captured state.
  const std::size_t home =
      tls_pool == this ? tls_index : queues_.size();
  while (done.load() < n || helpers_exited.load() < helpers) {
    if (!try_run_one(home)) std::this_thread::yield();
  }

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gb::support
