#include "support/bytes.h"

#include <cstring>

namespace gb {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v & 0xff));
  u8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v & 0xffff));
  u16(static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v & 0xffffffffu));
  u32(static_cast<std::uint32_t>(v >> 32));
}

void ByteWriter::bytes(std::span<const std::byte> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::str(std::string_view s) {
  for (char c : s) buf_.push_back(static_cast<std::byte>(c));
}

void ByteWriter::zeros(std::size_t count) {
  buf_.insert(buf_.end(), count, std::byte{0});
}

void ByteWriter::align(std::size_t alignment) {
  while (buf_.size() % alignment != 0) buf_.push_back(std::byte{0});
}

void ByteWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  if (offset + 2 > buf_.size()) throw ParseError("patch_u16 out of range");
  buf_[offset] = static_cast<std::byte>(v & 0xff);
  buf_[offset + 1] = static_cast<std::byte>(v >> 8);
}

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  patch_u16(offset, static_cast<std::uint16_t>(v & 0xffff));
  patch_u16(offset + 2, static_cast<std::uint16_t>(v >> 16));
}

void ByteWriter::patch_u64(std::size_t offset, std::uint64_t v) {
  patch_u32(offset, static_cast<std::uint32_t>(v & 0xffffffffu));
  patch_u32(offset + 4, static_cast<std::uint32_t>(v >> 32));
}

void ByteReader::require(std::size_t count) const {
  if (pos_ + count > data_.size()) {
    throw ParseError("truncated input: need " + std::to_string(count) +
                     " bytes at offset " + std::to_string(pos_) + " of " +
                     std::to_string(data_.size()));
  }
}

std::uint8_t ByteReader::u8() {
  require(1);
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint16_t ByteReader::u16() {
  const auto lo = u8();
  const auto hi = u8();
  return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t ByteReader::u32() {
  const std::uint32_t lo = u16();
  const std::uint32_t hi = u16();
  return lo | (hi << 16);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t lo = u32();
  const std::uint64_t hi = u32();
  return lo | (hi << 32);
}

std::vector<std::byte> ByteReader::bytes(std::size_t count) {
  require(count);
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() +
                                 static_cast<std::ptrdiff_t>(pos_ + count));
  pos_ += count;
  return out;
}

std::string ByteReader::str(std::size_t count) {
  require(count);
  std::string out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(static_cast<char>(data_[pos_ + i]));
  }
  pos_ += count;
  return out;
}

void ByteReader::skip(std::size_t count) {
  require(count);
  pos_ += count;
}

void ByteReader::seek(std::size_t offset) {
  if (offset > data_.size()) throw ParseError("seek out of range");
  pos_ = offset;
}

std::span<const std::byte> ByteReader::subspan(std::size_t offset,
                                               std::size_t len) const {
  if (offset + len > data_.size()) throw ParseError("subspan out of range");
  return data_.subspan(offset, len);
}

std::vector<std::byte> to_bytes(std::string_view s) {
  std::vector<std::byte> out(s.size());
  // An empty string_view may carry a null data(); memcpy's arguments are
  // declared nonnull even for size 0.
  if (!s.empty()) std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string to_string(std::span<const std::byte> data) {
  std::string out(data.size(), '\0');
  if (!data.empty()) std::memcpy(out.data(), data.data(), data.size());
  return out;
}

}  // namespace gb
