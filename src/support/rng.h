// Deterministic pseudo-random generator used everywhere randomness is
// needed (random malware file names, synthetic workload population).
// The whole reproduction is seeded, so every run of every bench and test
// produces identical machines and identical reports.
#pragma once

#include <cstdint>
#include <string>

namespace gb {

/// SplitMix64-based deterministic RNG. Not cryptographic; stable across
/// platforms (unlike std::mt19937 distributions, whose outputs are
/// implementation-defined for some distribution types).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

  /// Uniform in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// True with probability num/den.
  bool chance(std::uint64_t num, std::uint64_t den);

  /// Random lowercase ASCII identifier of the given length, e.g. for
  /// ProBot SE's <random name>.exe artifacts.
  std::string identifier(std::size_t length);

 private:
  std::uint64_t state_;
};

}  // namespace gb
