// Table-driven CRC-32 (polynomial 0xEDB88320, the reflected IEEE form).
//
// The integrity primitive shared by every CRC-framed byte stream in the
// tree: the daemon's job journal, the wire protocol's frames, and the
// observability flight recorder. Hoisted into support so layers below
// gb::daemon (notably gb::obs) can frame their own persistence without
// a dependency inversion.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace gb::support {

namespace internal {

inline const std::array<std::uint32_t, 256>& crc32_table() {
  static const std::array<std::uint32_t, 256> kTable = [] {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      table[i] = c;
    }
    return table;
  }();
  return kTable;
}

}  // namespace internal

/// CRC-32 over raw bytes; built once at first use, byte-at-a-time update.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> data) {
  const auto& table = internal::crc32_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = table[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace gb::support
