// String and path utilities shared across the simulation.
//
// Windows paths are case-insensitive-preserving; canonical resource keys
// used by the cross-view differ are ASCII-case-folded. Names may contain
// embedded NUL characters (the registry's counted-string hiding trick
// depends on this), so everything here is std::string-based and never
// assumes NUL termination.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace gb {

/// ASCII lowercase fold (Windows name comparison approximation).
std::string fold_case(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

/// True if `s` starts with / ends with the given prefix/suffix,
/// case-insensitively.
bool istarts_with(std::string_view s, std::string_view prefix);
bool iends_with(std::string_view s, std::string_view suffix);
bool icontains(std::string_view haystack, std::string_view needle);

/// Splits on a delimiter; empty components preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Joins path components with backslashes, collapsing duplicate
/// separators: join_path("C:\\windows", "system32") == "C:\\windows\\system32".
std::string join_path(std::string_view dir, std::string_view name);

/// Returns the final path component ("C:\\a\\b.txt" -> "b.txt").
std::string_view base_name(std::string_view path);

/// Returns everything before the final component ("C:\\a\\b.txt" -> "C:\\a").
std::string_view dir_name(std::string_view path);

/// Simple glob match supporting '*' and '?', case-insensitive.
/// Used by Hacker Defender-style hxdef100.ini hide patterns.
bool glob_match(std::string_view pattern, std::string_view text);

/// Renders a string for reports, escaping embedded NULs as "\0" and other
/// non-printable bytes as "\xNN" so hidden-name tricks are visible.
std::string printable(std::string_view s);

/// Renders `s` as a JSON string literal, surrounding quotes included:
/// quote and backslash are backslash-escaped, control bytes (embedded
/// NULs and the registry's counted-string tricks) become \u00XX. Shared
/// by the report and scheduler-stats JSON emitters.
std::string json_quote(std::string_view s);

/// Truncates a counted string at its first NUL, mimicking Win32
/// NUL-terminated string semantics (vs. the Native API's counted strings).
std::string_view truncate_at_nul(std::string_view s);

}  // namespace gb
