#include "support/strings.h"

#include <algorithm>
#include <cctype>

namespace gb {

namespace {
char fold(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string fold_case(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), fold);
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(),
                    [](char x, char y) { return fold(x) == fold(y); });
}

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

bool iends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         iequals(s.substr(s.size() - suffix.size()), suffix);
}

bool icontains(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (needle.size() > haystack.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return true;
  }
  return false;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string join_path(std::string_view dir, std::string_view name) {
  if (dir.empty()) return std::string(name);
  std::string out(dir);
  while (!out.empty() && out.back() == '\\') out.pop_back();
  out.push_back('\\');
  std::size_t skip = 0;
  while (skip < name.size() && name[skip] == '\\') ++skip;
  out.append(name.substr(skip));
  return out;
}

std::string_view base_name(std::string_view path) {
  const auto pos = path.find_last_of('\\');
  return pos == std::string_view::npos ? path : path.substr(pos + 1);
}

std::string_view dir_name(std::string_view path) {
  const auto pos = path.find_last_of('\\');
  return pos == std::string_view::npos ? std::string_view{} : path.substr(0, pos);
}

bool glob_match(std::string_view pattern, std::string_view text) {
  // Iterative two-pointer glob with backtracking over the last '*'.
  std::size_t p = 0, t = 0;
  std::size_t star = std::string_view::npos, match = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || fold(pattern[p]) == fold(text[t]))) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      match = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++match;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

std::string printable(std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const auto uc = static_cast<unsigned char>(c);
    if (uc == 0) {
      out += "\\0";
    } else if (uc < 0x20 || uc >= 0x7f) {
      out += "\\x";
      out.push_back(kHex[uc >> 4]);
      out.push_back(kHex[uc & 0xf]);
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    const auto uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (uc < 0x20) {
          out += "\\u00";
          out.push_back(kHex[uc >> 4]);
          out.push_back(kHex[uc & 0xf]);
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string_view truncate_at_nul(std::string_view s) {
  const auto pos = s.find('\0');
  return pos == std::string_view::npos ? s : s.substr(0, pos);
}

}  // namespace gb
