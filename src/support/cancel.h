// Cooperative cancellation and progress primitives.
//
// A fleet scheduler cannot preempt a scan task that is half-way through a
// hive parse without leaving a torn report behind, so cancellation here is
// cooperative: the job's owner raises a CancelToken, and the code running
// the job polls it at task boundaries (between provider views, between
// MFT batches fanned out through ThreadPool::parallel_for) and bails out
// cleanly. A cancelled job reports Status kCancelled — never a partial
// result dressed up as a complete one.
//
// TaskCounter is the matching progress side-channel: the job increments
// it as tasks finish, the owner snapshots it lock-free from any thread.
#pragma once

#include <atomic>
#include <cstdint>

namespace gb::support {

/// One-way cancellation flag shared between a job's owner and the
/// workers running it. cancel() is idempotent and may be called from any
/// thread; there is no way to un-cancel.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void cancel() noexcept {
    cancelled_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Monotonic task-completion counters for one job. `total` grows as the
/// job discovers work (one increment per fan-out phase), `done` as tasks
/// retire; a snapshot of the two is the job's progress.
struct TaskCounter {
  std::atomic<std::uint32_t> done{0};
  std::atomic<std::uint32_t> total{0};
};

}  // namespace gb::support
