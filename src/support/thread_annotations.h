#ifndef GB_SUPPORT_THREAD_ANNOTATIONS_H_
#define GB_SUPPORT_THREAD_ANNOTATIONS_H_

// Clang thread-safety-analysis capability annotations, plus the annotated
// mutex/lock wrappers the tree locks with.
//
// libstdc++'s std::mutex carries no capability attributes, so annotating
// members as GB_GUARDED_BY(some_std_mutex) teaches Clang nothing. The
// standard pattern (Abseil, Chromium) is a thin annotated wrapper:
// gb::support::Mutex is a std::mutex declared as a capability, MutexLock
// is the scoped lock_guard analogue, and CondLock is the unique_lock
// analogue whose native() handle feeds std::condition_variable::wait.
//
// Off Clang every macro expands to nothing and the wrappers compile down
// to the std types they hold; there is no behavioural difference. The
// analysis itself runs only under `-Wthread-safety`, wired to the
// GB_THREAD_SAFETY CMake option (Clang only, warn-and-skip elsewhere).

#include <mutex>

#if defined(__clang__)
#define GB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GB_THREAD_ANNOTATION(x)
#endif

// A type that is a lockable capability ("mutex").
#define GB_CAPABILITY(x) GB_THREAD_ANNOTATION(capability(x))

// A RAII type that acquires a capability in its constructor and releases
// it in its destructor.
#define GB_SCOPED_CAPABILITY GB_THREAD_ANNOTATION(scoped_lockable)

// Data member readable/writable only while holding the named capability.
#define GB_GUARDED_BY(x) GB_THREAD_ANNOTATION(guarded_by(x))

// Pointer member whose pointee is guarded by the named capability.
#define GB_PT_GUARDED_BY(x) GB_THREAD_ANNOTATION(pt_guarded_by(x))

// Function acquires / releases the capability.
#define GB_ACQUIRE(...) GB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GB_RELEASE(...) GB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define GB_TRY_ACQUIRE(...) \
  GB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Caller must hold / must NOT hold the capability at entry.
#define GB_REQUIRES(...) GB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define GB_EXCLUDES(...) GB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Documented lock-order edges, checked by Clang when both ends are
// annotated capabilities.
#define GB_ACQUIRED_BEFORE(...) GB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define GB_ACQUIRED_AFTER(...) GB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Function returns a reference to the named capability.
#define GB_RETURN_CAPABILITY(x) GB_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch for functions the analysis cannot model (move
// constructors reading the source object's guarded state, documented
// single-threaded accessors). Every use carries a rationale comment.
#define GB_NO_THREAD_SAFETY_ANALYSIS \
  GB_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gb::support {

/// std::mutex declared as a Clang capability. Code that waits on a
/// condition variable reaches the raw handle through native().
class GB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GB_ACQUIRE() { mu_.lock(); }
  void unlock() GB_RELEASE() { mu_.unlock(); }
  bool try_lock() GB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped handle, for std::condition_variable and std::scoped_lock.
  /// Deliberately unannotated: the analysis models acquisition through the
  /// scoped wrappers below, not through the raw handle.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock (lock_guard analogue) over a Mutex.
class GB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GB_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GB_RELEASE() { mu_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped lock (unique_lock analogue) over a Mutex, for condition-variable
/// waits: cv.wait(lk.native(), pred). Clang treats the capability as held
/// across the wait, which matches the predicate-holds-on-return contract.
class GB_SCOPED_CAPABILITY CondLock {
 public:
  explicit CondLock(Mutex& mu) GB_ACQUIRE(mu) : lk_(mu.native()) {}
  ~CondLock() GB_RELEASE() {}
  CondLock(const CondLock&) = delete;
  CondLock& operator=(const CondLock&) = delete;

  /// The wrapped handle, passed to std::condition_variable::wait.
  std::unique_lock<std::mutex>& native() { return lk_; }

 private:
  std::unique_lock<std::mutex> lk_;
};

}  // namespace gb::support

#endif  // GB_SUPPORT_THREAD_ANNOTATIONS_H_
