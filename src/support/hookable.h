// Uniform interception-chain model.
//
// Figures 2 and 5 of the paper enumerate six distinct places ghostware
// intercepts queries: per-process IAT entries, in-memory API code
// modification, detour patches, the kernel Service Dispatch Table, file
// system filter drivers, and (on Unix) syscall-table hooks. All of these
// share one shape — "run my code, with the ability to call the next
// implementation and tamper with its result" — which this template
// expresses directly. Each installed hook carries typed metadata so
// reports can attribute the hiding technique and so a VICE-style hook
// detector (the paper's contrasted first approach) can enumerate them.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace gb {

/// Where/how an interception was installed (Figure 2 / Figure 5 taxonomy).
enum class HookType {
  kIat,               // Import Address Table entry modification (Urbin, Mersting)
  kInlinePatch,       // in-memory API code overwrite calling next (Vanquish)
  kDetour,            // jmp-detour with return-path tampering (Aphex, HxDef)
  kSsdt,              // Service Dispatch Table entry (ProBot SE)
  kFilterDriver,      // file-system filter driver (commercial file hiders)
  kRegistryCallback,  // kernel registry callback
  kLkm,               // Unix loadable-kernel-module syscall hook
};

const char* hook_type_name(HookType t);

struct HookInfo {
  std::string owner;  // installing program, e.g. "hackerdefender"
  HookType type = HookType::kInlinePatch;
  std::string api;  // e.g. "NtDll!NtQueryDirectoryFile"
};

template <typename Sig>
class Hookable;

/// An interceptable function. Hooks stack LIFO (the most recently
/// installed hook runs first), receive a `next` continuation, and may
/// filter or replace its result — exactly how stacked detours behave.
template <typename R, typename... Args>
class Hookable<R(Args...)> {
 public:
  using Base = std::function<R(Args...)>;
  using Next = std::function<R(Args...)>;
  using Hook = std::function<R(const Next& next, Args...)>;

  Hookable() = default;
  explicit Hookable(Base base) : base_(std::move(base)) {}

  void set_base(Base base) { base_ = std::move(base); }
  bool has_base() const { return static_cast<bool>(base_); }

  void install(HookInfo info, Hook hook) {
    hooks_.push_back({std::move(info), std::move(hook)});
  }

  /// Removes all hooks installed by `owner`; returns how many.
  std::size_t remove_owner(std::string_view owner) {
    const auto before = hooks_.size();
    std::erase_if(hooks_, [&](const Entry& e) { return e.info.owner == owner; });
    return before - hooks_.size();
  }

  void clear_hooks() { hooks_.clear(); }
  std::size_t hook_count() const { return hooks_.size(); }

  /// Installed-hook metadata, outermost (most recently installed) first.
  std::vector<HookInfo> hooks() const {
    std::vector<HookInfo> out;
    out.reserve(hooks_.size());
    for (auto it = hooks_.rbegin(); it != hooks_.rend(); ++it) {
      out.push_back(it->info);
    }
    return out;
  }

  R operator()(Args... args) const { return invoke(hooks_.size(), args...); }

  /// Calls the unhooked base implementation directly (what a tool that
  /// "restores the SDT" would observe; also used by trusted scans).
  R call_base(Args... args) const { return base_(args...); }

 private:
  struct Entry {
    HookInfo info;
    Hook hook;
  };

  R invoke(std::size_t depth, Args... args) const {
    if (depth == 0) return base_(args...);
    const Entry& e = hooks_[depth - 1];
    Next next = [this, depth](Args... inner) {
      return invoke(depth - 1, inner...);
    };
    return e.hook(next, args...);
  }

  Base base_;
  std::vector<Entry> hooks_;
};

inline const char* hook_type_name(HookType t) {
  switch (t) {
    case HookType::kIat: return "IAT";
    case HookType::kInlinePatch: return "inline-patch";
    case HookType::kDetour: return "detour";
    case HookType::kSsdt: return "SSDT";
    case HookType::kFilterDriver: return "filter-driver";
    case HookType::kRegistryCallback: return "registry-callback";
    case HookType::kLkm: return "LKM";
  }
  return "unknown";
}

}  // namespace gb
