// Virtual clock driving the simulation.
//
// The paper reports wall-clock scan times on eight physical machines.
// Our substrate is a simulator, so absolute times are reproduced through
// a cost model (see machine/profile.h) that advances this virtual clock
// as simulated I/O and CPU work is performed. Tests and benches read the
// clock to obtain deterministic "measured" durations.
#pragma once

#include <cstdint>

namespace gb {

/// Microsecond-resolution virtual time.
class VirtualClock {
 public:
  using Micros = std::uint64_t;

  Micros now() const { return now_us_; }
  void advance(Micros us) { now_us_ += us; }

  static constexpr Micros seconds(double s) {
    return static_cast<Micros>(s * 1'000'000.0);
  }
  static double to_seconds(Micros us) {
    return static_cast<double>(us) / 1'000'000.0;
  }

 private:
  Micros now_us_ = 0;
};

}  // namespace gb
