// Status / StatusOr<T>: recoverable-error propagation for the scan stack.
//
// A forensic scanner meets damaged state by design — torn hive writes,
// scrubbed dumps, trashed MFT records. Those must degrade the one
// resource type they affect, not abort the whole session, so the scan
// stack (disk -> ntfs/hive/kernel parsers -> core scan functions)
// returns Status values instead of throwing. Exceptions remain the
// mechanism *inside* the byte-decoding layer (gb::ParseError) and for
// true programming errors; each parser's public `_or` entry point is
// the boundary where they become data.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

namespace gb::support {

enum class StatusCode {
  kOk,
  /// Input bytes violate the on-disk format (torn write, scrubbed dump).
  kCorrupt,
  /// A required object (backing file, record, process) does not exist.
  kNotFound,
  /// The subsystem cannot serve the request right now (machine off...).
  kUnavailable,
  /// The call was made in a state it does not support (dead context).
  kFailedPrecondition,
  /// Invariant violation inside the scanner itself.
  kInternal,
  /// The caller cancelled the operation before it completed. The result
  /// was discarded whole — never a torn partial report.
  kCancelled,
  /// The caller exhausted a quota or rate limit (per-tenant token bucket,
  /// outstanding-job cap). Retry later; the request itself was valid.
  kResourceExhausted,
};

constexpr std::string_view status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kCorrupt: return "CORRUPT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kCancelled: return "CANCELLED";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

/// A success/error outcome with a code and a human-readable message.
/// Default-constructed Status is success; error states come from the
/// named factories.
class Status {
 public:
  Status() = default;

  [[nodiscard]] static Status corrupt(std::string msg) {
    return Status(StatusCode::kCorrupt, std::move(msg));
  }
  [[nodiscard]] static Status not_found(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  [[nodiscard]] static Status failed_precondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status resource_exhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "CORRUPT: bad dump magic" — what reports and logs print.
  [[nodiscard]] std::string to_string() const {
    if (ok()) return "OK";
    std::string out(status_code_name(code_));
    if (!message_.empty()) {
      out += ": ";
      out += message_;
    }
    return out;
  }

  bool operator==(const Status&) const = default;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Thrown by StatusOr<T>::value() when the caller insists on a value
/// that is not there. Carries the original Status.
class StatusError : public std::runtime_error {
 public:
  explicit StatusError(Status status)
      : std::runtime_error(status.to_string()), status_(std::move(status)) {}

  [[nodiscard]] const Status& status() const { return status_; }

 private:
  Status status_;
};

/// Either a T or the non-ok Status explaining its absence.
template <typename T>
class StatusOr {
 public:
  /// Default state is an error, so a default-constructed slot in a task
  /// array reads as "never produced" rather than as a phantom value.
  StatusOr() : status_(Status::internal("StatusOr never assigned")) {}

  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(*-explicit-*)

  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::internal("StatusOr constructed from OK status");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  /// OK when a value is present, the carried error otherwise.
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() & { ensure(); return *value_; }
  [[nodiscard]] const T& value() const& { ensure(); return *value_; }
  [[nodiscard]] T&& value() && { ensure(); return *std::move(value_); }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

  /// The value, or `fallback` if this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return value_ ? *value_ : std::move(fallback);
  }

 private:
  void ensure() const {
    if (!value_) throw StatusError(status_);
  }

  std::optional<T> value_;
  Status status_;  // OK iff value_ is engaged
};

}  // namespace gb::support
