// Little-endian byte serialization primitives.
//
// All on-disk structures in this project (NTFS MFT records, registry hive
// cells, kernel crash dumps) are serialized through ByteWriter and parsed
// back through ByteReader. The low-level scanners consume only raw bytes,
// never live objects, which is the trust property the paper's low-level
// scans rely on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gb {

/// Thrown when a parser encounters malformed or truncated input.
class ParseError : public std::runtime_error {
 public:
  explicit ParseError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends little-endian encoded values to a growable byte buffer.
class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

  /// Appends raw bytes verbatim.
  void bytes(std::span<const std::byte> data);
  /// Appends the bytes of a string (no terminator, may contain NULs).
  void str(std::string_view s);
  /// Appends `count` zero bytes.
  void zeros(std::size_t count);
  /// Pads with zeros until the buffer size is a multiple of `alignment`.
  void align(std::size_t alignment);

  /// Overwrites a previously written u16/u32 at `offset` (for back-patching
  /// sizes and offsets, as real on-disk formats require).
  void patch_u16(std::size_t offset, std::uint16_t v);
  void patch_u32(std::size_t offset, std::uint32_t v);
  void patch_u64(std::size_t offset, std::uint64_t v);

  std::size_t size() const { return buf_.size(); }
  std::span<const std::byte> view() const { return buf_; }
  std::vector<std::byte> take() && { return std::move(buf_); }
  const std::vector<std::byte>& buffer() const { return buf_; }

 private:
  std::vector<std::byte> buf_;
};

/// Reads little-endian values from a fixed byte span with bounds checking.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Reads `count` raw bytes.
  std::vector<std::byte> bytes(std::size_t count);
  /// Reads `count` bytes as a string (may contain NULs).
  std::string str(std::size_t count);
  /// Skips `count` bytes.
  void skip(std::size_t count);
  /// Repositions the cursor.
  void seek(std::size_t offset);

  std::size_t pos() const { return pos_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  bool at_end() const { return pos_ == data_.size(); }

  /// Returns a sub-span [offset, offset+len) of the underlying data.
  std::span<const std::byte> subspan(std::size_t offset, std::size_t len) const;

 private:
  void require(std::size_t count) const;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// Converts a string to a byte vector (embedded NULs preserved).
std::vector<std::byte> to_bytes(std::string_view s);
/// Converts bytes back to a string.
std::string to_string(std::span<const std::byte> data);

}  // namespace gb
