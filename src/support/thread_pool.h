// Fixed-size work-stealing thread pool — the scan engine's substrate.
//
// The paper's cross-view diff is embarrassingly parallel: each resource
// type is scanned and diffed independently, and the Section 5 injected
// scan unions one high-level scan per running process. This pool supplies
// the concurrency those workloads need while keeping the rest of the
// system deterministic:
//
//   * each worker owns a deque; it pops its own work LIFO (cache-warm)
//     and steals the oldest task FIFO from a victim when empty;
//   * submit() returns a std::future and may be called from any thread
//     (external submitters round-robin across worker deques, workers
//     push to their own);
//   * parallel_for() runs an index space with the *calling thread
//     participating*, and while waiting for stragglers the caller helps
//     drain pool queues — so nested parallel_for calls from inside tasks
//     cannot deadlock, even on a single-worker pool;
//   * a pool with zero workers degenerates to inline execution on the
//     calling thread, which is the serial reference path the
//     determinism tests compare against.
//
// Rule for tasks: never block on a future inside a task (that can wait
// on work queued behind the blocker); express nested fan-out with
// parallel_for, which helps instead of blocking.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.h"
#include "support/cancel.h"
#include "support/thread_annotations.h"

namespace gb::support {

class ThreadPool {
 public:
  /// Spawns exactly `workers` background threads. Zero is valid and
  /// makes every submit()/parallel_for() run inline on the caller.
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  /// Attaches pool telemetry to `registry` (idempotent for the same
  /// registry): gb_pool_tasks_total, gb_pool_steals_total, the
  /// gb_pool_task_seconds latency histogram, and busy-worker /
  /// queue-depth gauges. Call before submitting work — the handles are
  /// read by workers only after they dequeue a task pushed afterwards,
  /// so no synchronization beyond the queue mutex is needed. Metrics are
  /// observations on the side; task execution order and results are
  /// unaffected.
  void instrument(obs::MetricsRegistry& registry);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of background worker threads (not counting callers that
  /// participate through parallel_for).
  std::size_t size() const { return threads_.size(); }

  /// Schedules `fn` and returns a future for its result. Exceptions
  /// thrown by `fn` propagate through the future.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    auto fut = task->get_future();
    if (queues_.empty()) {
      (*task)();  // zero-worker pool: inline execution
    } else {
      push([task] { (*task)(); });
    }
    return fut;
  }

  /// Runs fn(0..n-1), blocking until all indices complete. The calling
  /// thread executes indices itself; pool workers join in as they free
  /// up. The first exception thrown by any index is rethrown here after
  /// the whole index space has been drained.
  ///
  /// With a cancel token, indices claimed after the token is raised are
  /// skipped (indices already running finish normally) and the call still
  /// returns only once the index space is drained — cancellation is a
  /// fast-forward, not an abort, so no task is torn mid-flight. The
  /// caller decides what a partially-run index space means; the scan
  /// engine discards it and reports Status kCancelled.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn,
                    const CancelToken* cancel = nullptr);

 private:
  struct Queue {
    Mutex mu;
    std::deque<std::function<void()>> tasks GB_GUARDED_BY(mu);
  };

  void push(std::function<void()> task);
  /// Runs one task if any queue has one: own deque back-first when
  /// `home` < size(), then steal the oldest task from the others.
  bool try_run_one(std::size_t home);
  void worker_loop(std::size_t index);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> threads_;
  // Telemetry handles (null until instrument()). Stable addresses into
  // the registry; hot paths null-check and pay one relaxed add each.
  obs::Counter* m_tasks_ = nullptr;
  obs::Counter* m_steals_ = nullptr;
  obs::Histogram* m_task_seconds_ = nullptr;
  obs::Gauge* m_busy_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  // Pure handshake mutex: it guards the sleep predicate (the atomics
  // below), not any data member, so nothing is GB_GUARDED_BY it.
  // gb-lint: allow(unannotated-guarded-member)
  Mutex sleep_mu_;
  std::condition_variable wake_;
  std::atomic<std::size_t> pending_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};
};

}  // namespace gb::support
