// In-memory hive tree plus binary serialization/parsing.
//
// The ConfigurationManager (src/registry) keeps live Key trees and
// flushes them to hive files on the NTFS volume; GhostBuster's low-level
// registry scan re-parses those raw bytes with parse_hive(), bypassing
// every registry API layer — the paper's Section 3 "raw hive" scan.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "hive/hive_format.h"
#include "support/bytes.h"
#include "support/status.h"

namespace gb::hive {

/// A registry value. The name is counted: embedded NULs are legal and
/// significant (the hiding trick detected in Figure 4's framework).
struct Value {
  std::string name;
  ValueType type = ValueType::kString;
  std::vector<std::byte> data;

  /// Convenience constructors for the common types.
  static Value string(std::string_view name, std::string_view text);
  static Value dword(std::string_view name, std::uint32_t v);
  static Value binary(std::string_view name, std::vector<std::byte> bytes);

  /// Interprets data as text (REG_SZ / REG_EXPAND_SZ).
  std::string as_string() const;
  std::uint32_t as_dword() const;

  bool operator==(const Value&) const = default;
};

/// A registry key node. Subkey and value order is preserved (serialization
/// is deterministic); lookups are case-insensitive.
struct Key {
  std::string name;
  std::vector<Key> subkeys;
  std::vector<Value> values;

  Key* find_subkey(std::string_view name);
  const Key* find_subkey(std::string_view name) const;
  Value* find_value(std::string_view name);
  const Value* find_value(std::string_view name) const;

  /// Finds or creates a direct subkey.
  Key& ensure_subkey(std::string_view name);
  /// Adds or replaces a value (matched by case-insensitive counted name).
  void set_value(Value v);
  /// Removes a value; returns whether it existed.
  bool remove_value(std::string_view name);
  /// Removes a direct subkey; returns whether it existed.
  bool remove_subkey(std::string_view name);

  /// Total number of keys in this subtree (including this one).
  std::size_t tree_size() const;
};

/// Serializes a hive to regf bytes. `hive_name` lands in the base block.
std::vector<std::byte> serialize_hive(const Key& root,
                                      std::string_view hive_name);

/// Parses regf bytes back into a tree. Throws gb::ParseError on corrupt
/// input. Unknown cell types are an error (the format is closed here).
Key parse_hive(std::span<const std::byte> image);

/// Non-throwing variant: corrupt input becomes a kCorrupt Status. The
/// scan stack uses this so one torn hive degrades the registry diff
/// instead of aborting the session.
[[nodiscard]] support::StatusOr<Key> parse_hive_or(std::span<const std::byte> image);

/// Reads the hive name from the base block without a full parse.
std::string hive_name(std::span<const std::byte> image);

}  // namespace gb::hive
