// Windows registry hive ("regf") binary format, miniature edition.
//
// A hive file is a 4 KiB base block followed by "hbin" allocation bins
// containing cells. Cell kinds reproduced here: key nodes ("nk"), value
// records ("vk"), subkey lists ("lh"), value lists (bare offset arrays)
// and raw data cells. Names are *counted* — they may legally contain
// embedded NUL characters, which is exactly the Native-API registry
// hiding trick of Section 3 of the paper. Small value data (<= 4 bytes)
// is stored inline in the offset field with the 0x80000000 length bit
// set, as in the real format.
//
// Deviations (DESIGN.md §6): no 'lf' list variant, no 'db' big data
// cells, no security descriptors, single-file hives.
#pragma once

#include <cstdint>

namespace gb::hive {

inline constexpr std::uint32_t kRegfMagic = 0x66676572;  // "regf"
inline constexpr std::uint32_t kHbinMagic = 0x6e696268;  // "hbin"
inline constexpr std::uint16_t kNkMagic = 0x6b6e;        // "nk"
inline constexpr std::uint16_t kVkMagic = 0x6b76;        // "vk"
inline constexpr std::uint16_t kLhMagic = 0x686c;        // "lh"
inline constexpr std::uint16_t kRiMagic = 0x6972;        // "ri" (indirect)

/// Subkey-list split threshold: an 'lh' cell holds at most this many
/// entries; larger key sets go through an 'ri' indirection cell pointing
/// at multiple 'lh' cells, as in real hives.
inline constexpr std::size_t kMaxLhEntries = 511;

inline constexpr std::size_t kBaseBlockSize = 4096;
inline constexpr std::size_t kHbinSize = 4096;

/// Inline-data marker on the vk data length field.
inline constexpr std::uint32_t kDataInline = 0x80000000u;

/// nk flags.
inline constexpr std::uint16_t kNkRoot = 0x0004;

/// Registry value types (REG_*; real Win32 values).
enum class ValueType : std::uint32_t {
  kNone = 0,
  kString = 1,       // REG_SZ
  kExpandString = 2, // REG_EXPAND_SZ
  kBinary = 3,       // REG_BINARY
  kDword = 4,        // REG_DWORD
  kMultiString = 7,  // REG_MULTI_SZ
};

/// Base block field offsets.
struct BaseBlockLayout {
  static constexpr std::size_t kMagic = 0;        // u32 "regf"
  static constexpr std::size_t kSeq1 = 4;         // u32
  static constexpr std::size_t kSeq2 = 8;         // u32
  static constexpr std::size_t kRootCell = 36;    // u32, offset from hbin area
  static constexpr std::size_t kDataLength = 40;  // u32, hbin area bytes
  static constexpr std::size_t kName = 48;        // 64 bytes, hive name
};

}  // namespace gb::hive
