#include "hive/hive.h"

#include <algorithm>

#include "support/strings.h"

namespace gb::hive {

namespace {

constexpr std::uint32_t kNoCell = 0xffffffffu;
constexpr std::size_t kHbinHeaderSize = 32;

/// Case-fold hash used in 'lh' list entries (stand-in for the real
/// base-37 hash; only consumed for format fidelity, not lookup).
std::uint32_t name_hash(std::string_view name) {
  std::uint32_t h = 0;
  for (char c : name) {
    const char f = (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
    h = h * 37 + static_cast<unsigned char>(f);
  }
  return h;
}

/// Writes cells into an hbin-structured area buffer.
class HiveAreaWriter {
 public:
  /// Allocates a cell with the given payload; returns its area-relative
  /// offset (pointing at the cell size field, as real hive offsets do).
  std::uint32_t alloc(std::span<const std::byte> payload) {
    std::size_t cell_size = 4 + payload.size();
    cell_size = (cell_size + 7) & ~std::size_t{7};  // 8-byte alignment

    if (bin_remaining() < cell_size) start_bin(cell_size);

    const auto offset = static_cast<std::uint32_t>(area_.size());
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(-static_cast<std::int32_t>(cell_size)));
    w.bytes(payload);
    w.zeros(cell_size - 4 - payload.size());
    append(w.view());
    return offset;
  }

  /// Closes the final bin and returns the area bytes.
  std::vector<std::byte> finish() {
    close_bin();
    return std::move(area_);
  }

 private:
  std::size_t bin_remaining() const {
    return bin_end_ > area_.size() ? bin_end_ - area_.size() : 0;
  }

  void start_bin(std::size_t need) {
    close_bin();
    std::size_t bin_size = kHbinSize;
    while (bin_size - kHbinHeaderSize < need) bin_size += kHbinSize;
    bin_start_ = area_.size();
    bin_end_ = bin_start_ + bin_size;
    ByteWriter w;
    w.u32(kHbinMagic);
    w.u32(static_cast<std::uint32_t>(bin_start_));
    w.u32(static_cast<std::uint32_t>(bin_size));
    w.zeros(kHbinHeaderSize - 12);
    append(w.view());
  }

  /// Marks the remainder of the current bin as one free (positive size)
  /// cell and pads to the bin boundary.
  void close_bin() {
    if (bin_end_ == 0 || area_.size() >= bin_end_) return;
    const std::size_t free_size = bin_end_ - area_.size();
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(free_size));
    append(w.view());
    area_.resize(bin_end_, std::byte{0});
  }

  void append(std::span<const std::byte> bytes) {
    area_.insert(area_.end(), bytes.begin(), bytes.end());
  }

  std::vector<std::byte> area_;
  std::size_t bin_start_ = 0;
  std::size_t bin_end_ = 0;
};

std::uint32_t write_key(const Key& key, std::uint32_t parent_offset,
                        HiveAreaWriter& out);

std::uint32_t write_value(const Value& v, HiveAreaWriter& out) {
  ByteWriter w;
  w.u16(kVkMagic);
  w.u16(static_cast<std::uint16_t>(v.name.size()));
  if (v.data.size() <= 4) {
    w.u32(static_cast<std::uint32_t>(v.data.size()) | kDataInline);
    ByteWriter inline_data;
    inline_data.bytes(v.data);
    inline_data.zeros(4 - v.data.size());
    w.bytes(inline_data.view());
  } else {
    ByteWriter payload;
    payload.bytes(v.data);
    const std::uint32_t data_cell = out.alloc(payload.view());
    w.u32(static_cast<std::uint32_t>(v.data.size()));
    w.u32(data_cell);
  }
  w.u32(static_cast<std::uint32_t>(v.type));
  w.str(v.name);
  return out.alloc(w.view());
}

std::uint32_t write_key(const Key& key, std::uint32_t parent_offset,
                        HiveAreaWriter& out) {
  // Children first (their offsets go into this key's lists). The nk cell
  // itself is written last, so child nk parent links use a forward
  // placeholder: real hives have true back-pointers, but nothing in this
  // project consumes them, so we store the grandparent-relative order
  // without a second patching pass. Parsing reconstructs structure purely
  // from the subkey lists.
  std::vector<std::uint32_t> value_offsets;
  value_offsets.reserve(key.values.size());
  for (const Value& v : key.values) value_offsets.push_back(write_value(v, out));

  std::uint32_t value_list = kNoCell;
  if (!value_offsets.empty()) {
    ByteWriter w;
    for (auto off : value_offsets) w.u32(off);
    value_list = out.alloc(w.view());
  }

  std::vector<std::uint32_t> child_offsets;
  child_offsets.reserve(key.subkeys.size());
  for (const Key& child : key.subkeys) {
    child_offsets.push_back(write_key(child, parent_offset, out));
  }

  std::uint32_t subkey_list = kNoCell;
  if (!child_offsets.empty()) {
    // Write one 'lh' per chunk of kMaxLhEntries; a single chunk is
    // referenced directly, multiple chunks go through an 'ri' cell.
    std::vector<std::uint32_t> lh_cells;
    for (std::size_t start = 0; start < child_offsets.size();
         start += kMaxLhEntries) {
      const std::size_t count =
          std::min(kMaxLhEntries, child_offsets.size() - start);
      ByteWriter w;
      w.u16(kLhMagic);
      w.u16(static_cast<std::uint16_t>(count));
      for (std::size_t i = 0; i < count; ++i) {
        w.u32(child_offsets[start + i]);
        w.u32(name_hash(key.subkeys[start + i].name));
      }
      lh_cells.push_back(out.alloc(w.view()));
    }
    if (lh_cells.size() == 1) {
      subkey_list = lh_cells[0];
    } else {
      ByteWriter w;
      w.u16(kRiMagic);
      w.u16(static_cast<std::uint16_t>(lh_cells.size()));
      for (const auto cell : lh_cells) w.u32(cell);
      subkey_list = out.alloc(w.view());
    }
  }

  ByteWriter w;
  w.u16(kNkMagic);
  w.u16(parent_offset == kNoCell ? kNkRoot : 0);
  w.u32(parent_offset);
  w.u32(static_cast<std::uint32_t>(key.subkeys.size()));
  w.u32(subkey_list);
  w.u32(static_cast<std::uint32_t>(key.values.size()));
  w.u32(value_list);
  w.u16(static_cast<std::uint16_t>(key.name.size()));
  w.str(key.name);
  return out.alloc(w.view());
}

/// Random-access cell reader over the hbin area.
class HiveAreaReader {
 public:
  explicit HiveAreaReader(std::span<const std::byte> area) : area_(area) {}

  /// Returns the payload of the cell at `offset`; validates the size field.
  std::span<const std::byte> cell(std::uint32_t offset) const {
    if (offset + 4 > area_.size()) throw ParseError("cell offset out of range");
    ByteReader r(area_.subspan(offset, 4));
    const auto raw = static_cast<std::int32_t>(r.u32());
    if (raw >= 0) throw ParseError("reference to free cell");
    const auto size = static_cast<std::size_t>(-raw);
    if (size < 4 || offset + size > area_.size()) {
      throw ParseError("corrupt cell size");
    }
    return area_.subspan(offset + 4, size - 4);
  }

 private:
  std::span<const std::byte> area_;
};

Value parse_value(const HiveAreaReader& area, std::uint32_t offset) {
  ByteReader r(area.cell(offset));
  if (r.u16() != kVkMagic) throw ParseError("expected vk cell");
  const std::uint16_t name_len = r.u16();
  const std::uint32_t raw_len = r.u32();
  Value v;
  if (raw_len & kDataInline) {
    const std::uint32_t len = raw_len & ~kDataInline;
    if (len > 4) throw ParseError("inline data too long");
    auto all = r.bytes(4);
    v.data.assign(all.begin(), all.begin() + len);
  } else {
    const std::uint32_t data_cell = r.u32();
    const auto payload = area.cell(data_cell);
    if (raw_len > payload.size()) throw ParseError("data cell too small");
    v.data.assign(payload.begin(), payload.begin() + raw_len);
  }
  v.type = static_cast<ValueType>(r.u32());
  v.name = r.str(name_len);
  return v;
}

Key parse_key(const HiveAreaReader& area, std::uint32_t offset, int depth) {
  if (depth > 512) throw ParseError("hive key tree too deep (cycle?)");
  ByteReader r(area.cell(offset));
  if (r.u16() != kNkMagic) throw ParseError("expected nk cell");
  r.u16();  // flags
  r.u32();  // parent (not consumed; structure comes from subkey lists)
  const std::uint32_t subkey_count = r.u32();
  const std::uint32_t subkey_list = r.u32();
  const std::uint32_t value_count = r.u32();
  const std::uint32_t value_list = r.u32();
  const std::uint16_t name_len = r.u16();
  Key key;
  key.name = r.str(name_len);

  if (value_count > 0) {
    if (value_list == kNoCell) throw ParseError("missing value list");
    ByteReader vl(area.cell(value_list));
    for (std::uint32_t i = 0; i < value_count; ++i) {
      key.values.push_back(parse_value(area, vl.u32()));
    }
  }
  if (subkey_count > 0) {
    if (subkey_list == kNoCell) throw ParseError("missing subkey list");
    // The list is either one 'lh' or an 'ri' pointing at several 'lh's.
    std::vector<std::uint32_t> lh_cells;
    {
      ByteReader head(area.cell(subkey_list));
      const std::uint16_t magic = head.u16();
      if (magic == kLhMagic) {
        lh_cells.push_back(subkey_list);
      } else if (magic == kRiMagic) {
        const std::uint16_t n = head.u16();
        for (std::uint16_t i = 0; i < n; ++i) lh_cells.push_back(head.u32());
      } else {
        throw ParseError("expected lh or ri list");
      }
    }
    std::uint32_t seen = 0;
    for (const auto cell : lh_cells) {
      ByteReader sl(area.cell(cell));
      if (sl.u16() != kLhMagic) throw ParseError("ri entry is not an lh");
      const std::uint16_t count = sl.u16();
      for (std::uint16_t i = 0; i < count; ++i) {
        const std::uint32_t child = sl.u32();
        sl.u32();  // hash (not used for lookup here)
        key.subkeys.push_back(parse_key(area, child, depth + 1));
        ++seen;
      }
    }
    if (seen != subkey_count) throw ParseError("subkey count mismatch");
  }
  return key;
}

}  // namespace

Value Value::string(std::string_view name, std::string_view text) {
  Value v;
  v.name = std::string(name);
  v.type = ValueType::kString;
  v.data = to_bytes(text);
  return v;
}

Value Value::dword(std::string_view name, std::uint32_t val) {
  Value v;
  v.name = std::string(name);
  v.type = ValueType::kDword;
  ByteWriter w;
  w.u32(val);
  v.data = std::move(w).take();
  return v;
}

Value Value::binary(std::string_view name, std::vector<std::byte> bytes) {
  Value v;
  v.name = std::string(name);
  v.type = ValueType::kBinary;
  v.data = std::move(bytes);
  return v;
}

std::string Value::as_string() const { return to_string(data); }

std::uint32_t Value::as_dword() const {
  ByteReader r(data);
  return r.u32();
}

Key* Key::find_subkey(std::string_view n) {
  for (Key& k : subkeys) {
    if (iequals(k.name, n)) return &k;
  }
  return nullptr;
}

const Key* Key::find_subkey(std::string_view n) const {
  for (const Key& k : subkeys) {
    if (iequals(k.name, n)) return &k;
  }
  return nullptr;
}

Value* Key::find_value(std::string_view n) {
  for (Value& v : values) {
    if (iequals(v.name, n)) return &v;
  }
  return nullptr;
}

const Value* Key::find_value(std::string_view n) const {
  for (const Value& v : values) {
    if (iequals(v.name, n)) return &v;
  }
  return nullptr;
}

Key& Key::ensure_subkey(std::string_view n) {
  if (Key* existing = find_subkey(n)) return *existing;
  Key k;
  k.name = std::string(n);
  subkeys.push_back(std::move(k));
  return subkeys.back();
}

void Key::set_value(Value v) {
  if (Value* existing = find_value(v.name)) {
    *existing = std::move(v);
  } else {
    values.push_back(std::move(v));
  }
}

bool Key::remove_value(std::string_view n) {
  const auto it = std::find_if(values.begin(), values.end(),
                               [&](const Value& v) { return iequals(v.name, n); });
  if (it == values.end()) return false;
  values.erase(it);
  return true;
}

bool Key::remove_subkey(std::string_view n) {
  const auto it = std::find_if(subkeys.begin(), subkeys.end(),
                               [&](const Key& k) { return iequals(k.name, n); });
  if (it == subkeys.end()) return false;
  subkeys.erase(it);
  return true;
}

std::size_t Key::tree_size() const {
  std::size_t n = 1;
  for (const Key& k : subkeys) n += k.tree_size();
  return n;
}

std::vector<std::byte> serialize_hive(const Key& root,
                                      std::string_view hive_name_str) {
  HiveAreaWriter area;
  const std::uint32_t root_cell = write_key(root, kNoCell, area);
  const auto area_bytes = area.finish();

  ByteWriter w;
  w.u32(kRegfMagic);
  w.u32(1);  // seq1
  w.u32(1);  // seq2 (equal: hive is consistent)
  w.zeros(BaseBlockLayout::kRootCell - w.size());
  w.u32(root_cell);
  w.u32(static_cast<std::uint32_t>(area_bytes.size()));
  w.zeros(BaseBlockLayout::kName - w.size());
  std::string name(hive_name_str.substr(0, 64));
  w.str(name);
  w.zeros(64 - name.size());
  w.zeros(kBaseBlockSize - w.size());
  w.bytes(area_bytes);
  return std::move(w).take();
}

Key parse_hive(std::span<const std::byte> image) {
  if (image.size() < kBaseBlockSize) throw ParseError("hive too small");
  ByteReader r(image);
  if (r.u32() != kRegfMagic) throw ParseError("bad regf magic");
  const std::uint32_t seq1 = r.u32();
  const std::uint32_t seq2 = r.u32();
  if (seq1 != seq2) throw ParseError("hive sequence mismatch (dirty hive)");
  r.seek(BaseBlockLayout::kRootCell);
  const std::uint32_t root_cell = r.u32();
  const std::uint32_t data_length = r.u32();
  if (kBaseBlockSize + data_length > image.size()) {
    throw ParseError("hive data length exceeds image");
  }
  HiveAreaReader area(image.subspan(kBaseBlockSize, data_length));
  return parse_key(area, root_cell, 0);
}

support::StatusOr<Key> parse_hive_or(std::span<const std::byte> image) {
  try {
    return parse_hive(image);
  } catch (const ParseError& e) {
    return support::Status::corrupt(e.what());
  }
}

std::string hive_name(std::span<const std::byte> image) {
  if (image.size() < kBaseBlockSize) throw ParseError("hive too small");
  ByteReader r(image);
  if (r.u32() != kRegfMagic) throw ParseError("bad regf magic");
  r.seek(BaseBlockLayout::kName);
  const std::string raw = r.str(64);
  return std::string(raw.c_str());  // trim trailing NUL padding
}

}  // namespace gb::hive
