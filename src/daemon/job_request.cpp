#include "daemon/job_request.h"

#include <array>

namespace gb::daemon {
namespace {

// Table-driven CRC-32 (polynomial 0xEDB88320, the reflected IEEE form).
// Built once at static-init time; 256 entries, byte-at-a-time update.
std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data) {
  static const std::array<std::uint32_t, 256> kTable = build_crc_table();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = kTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

support::Status status_from_wire(std::uint8_t code, std::string message) {
  using support::Status;
  using support::StatusCode;
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk: return Status();
    case StatusCode::kCorrupt: return Status::corrupt(std::move(message));
    case StatusCode::kNotFound: return Status::not_found(std::move(message));
    case StatusCode::kUnavailable:
      return Status::unavailable(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::failed_precondition(std::move(message));
    case StatusCode::kInternal: return Status::internal(std::move(message));
    case StatusCode::kCancelled: return Status::cancelled(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::resource_exhausted(std::move(message));
  }
  return Status::internal("unknown status code " + std::to_string(code) +
                          ": " + std::move(message));
}

std::uint64_t machine_shard_hash(std::string_view machine_id) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  for (char ch : machine_id) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x00000100000001B3ull;  // FNV prime
  }
  return h;
}

void JobRequest::serialize(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(machine_id.size()));
  w.str(machine_id);
  w.u32(static_cast<std::uint32_t>(tenant.size()));
  w.str(tenant);
  w.u32(static_cast<std::uint32_t>(priority));
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(static_cast<std::uint32_t>(resources));
  w.u8(advanced ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(carve));
}

support::StatusOr<JobRequest> JobRequest::deserialize(ByteReader& r) {
  // ByteReader throws ParseError on truncation; this is the `_or`
  // boundary where that becomes a Status for journal/wire callers.
  try {
    JobRequest req;
    req.machine_id = r.str(r.u32());
    req.tenant = r.str(r.u32());
    req.priority = static_cast<std::int32_t>(r.u32());
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(core::ScanKind::kOutside)) {
      return support::Status::corrupt("job request: bad scan kind");
    }
    req.kind = static_cast<core::ScanKind>(kind);
    const std::uint32_t resources = r.u32();
    if ((resources & ~static_cast<std::uint32_t>(core::ResourceMask::kAll)) !=
        0) {
      return support::Status::corrupt("job request: bad resource mask");
    }
    req.resources = static_cast<core::ResourceMask>(resources);
    req.advanced = r.u8() != 0;
    const std::uint8_t carve = r.u8();
    if (carve > static_cast<std::uint8_t>(core::CarveMode::kOn)) {
      return support::Status::corrupt("job request: bad carve mode");
    }
    req.carve = static_cast<core::CarveMode>(carve);
    return req;
  } catch (const ParseError& e) {
    return support::Status::corrupt(std::string("job request: ") + e.what());
  }
}

}  // namespace gb::daemon
