#include "daemon/job_request.h"

namespace gb::daemon {

support::Status status_from_wire(std::uint8_t code, std::string message) {
  using support::Status;
  using support::StatusCode;
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk: return Status();
    case StatusCode::kCorrupt: return Status::corrupt(std::move(message));
    case StatusCode::kNotFound: return Status::not_found(std::move(message));
    case StatusCode::kUnavailable:
      return Status::unavailable(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::failed_precondition(std::move(message));
    case StatusCode::kInternal: return Status::internal(std::move(message));
    case StatusCode::kCancelled: return Status::cancelled(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::resource_exhausted(std::move(message));
  }
  return Status::internal("unknown status code " + std::to_string(code) +
                          ": " + std::move(message));
}

std::uint64_t machine_shard_hash(std::string_view machine_id) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a offset basis
  for (char ch : machine_id) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 0x00000100000001B3ull;  // FNV prime
  }
  return h;
}

void JobRequest::serialize(ByteWriter& w) const {
  w.u32(static_cast<std::uint32_t>(machine_id.size()));
  w.str(machine_id);
  w.u32(static_cast<std::uint32_t>(tenant.size()));
  w.str(tenant);
  w.u32(static_cast<std::uint32_t>(priority));
  w.u8(static_cast<std::uint8_t>(kind));
  w.u32(static_cast<std::uint32_t>(resources));
  w.u8(advanced ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(carve));
  w.u64(trace_id);
  w.u64(parent_span_id);
}

support::StatusOr<JobRequest> JobRequest::deserialize(ByteReader& r) {
  // ByteReader throws ParseError on truncation; this is the `_or`
  // boundary where that becomes a Status for journal/wire callers.
  try {
    JobRequest req;
    req.machine_id = r.str(r.u32());
    req.tenant = r.str(r.u32());
    req.priority = static_cast<std::int32_t>(r.u32());
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(core::ScanKind::kOutside)) {
      return support::Status::corrupt("job request: bad scan kind");
    }
    req.kind = static_cast<core::ScanKind>(kind);
    const std::uint32_t resources = r.u32();
    if ((resources & ~static_cast<std::uint32_t>(core::ResourceMask::kAll)) !=
        0) {
      return support::Status::corrupt("job request: bad resource mask");
    }
    req.resources = static_cast<core::ResourceMask>(resources);
    req.advanced = r.u8() != 0;
    const std::uint8_t carve = r.u8();
    if (carve > static_cast<std::uint8_t>(core::CarveMode::kOn)) {
      return support::Status::corrupt("job request: bad carve mode");
    }
    req.carve = static_cast<core::CarveMode>(carve);
    req.trace_id = r.u64();
    req.parent_span_id = r.u64();
    return req;
  } catch (const ParseError& e) {
    return support::Status::corrupt(std::string("job request: ") + e.what());
  }
}

}  // namespace gb::daemon
