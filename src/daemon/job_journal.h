// JobJournal: the daemon's crash-safe, append-only job store.
//
// Every externally visible job transition is appended here *before* it
// is acknowledged — submit before the client learns its job id, complete
// before any client can stream the result. Records are individually
// CRC-framed, so a daemon killed mid-append leaves at worst one torn
// tail record, which replay truncates; everything before it is truth.
// Replay reduces the record stream to the daemon's restart image: jobs
// with a durable result (served as-is — at-most-once delivery, the scan
// never re-runs) and jobs without one (re-queued, including jobs that
// were mid-scan on a lost worker — re-running is safe because a
// cancelled or interrupted scan never advances the machine's virtual
// clock, so the re-run is byte-identical to the run the crash stole).
//
// On-disk layout (little-endian throughout):
//
//   header   "GBJL" magic (u32) | format version (u32)
//   record*  payload_len (u32) | crc32(payload) (u32) | payload
//   payload  record type (u8) | job id (u64) | type-specific fields
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "daemon/job_request.h"
#include "support/status.h"

namespace gb::daemon {

enum class JournalRecordType : std::uint8_t {
  kSubmit = 1,    // job accepted: id + full JobRequest
  kStart = 2,     // job handed to a scheduler shard (informational)
  kComplete = 3,  // terminal: status + (on success) the report JSON
  kCancel = 4,    // terminal: cancelled before producing a report
};

/// The in-memory image a journal replay produces: what the restarted
/// daemon must re-queue and what it must serve from the store.
struct JournalReplay {
  struct PendingJob {
    std::uint64_t id = 0;
    JobRequest request;
    /// A kStart record was seen — the job was on a worker when the
    /// daemon died. Replay re-queues it either way; the flag feeds the
    /// requeued-after-loss stat.
    bool started = false;
  };
  struct CompletedJob {
    std::uint64_t id = 0;
    /// The originating request, folded over from the submit record, so
    /// lifetime quota accounting survives restarts.
    JobRequest request;
    support::Status status;
    /// Schema-v2 report JSON; empty unless status is OK.
    std::string report_json;
  };

  /// Submitted jobs with no terminal record, in submit order.
  std::vector<PendingJob> pending;
  /// Terminal jobs keyed by id — the at-most-once result store.
  std::map<std::uint64_t, CompletedJob> completed;
  /// One past the highest id seen; the restarted daemon allocates from
  /// here so ids never collide across incarnations.
  std::uint64_t next_job_id = 1;
  std::uint64_t records = 0;          // CRC-valid records replayed
  std::uint64_t truncated_bytes = 0;  // torn tail dropped at open
};

/// Append-only journal handle. Writes flush before returning: when an
/// append call comes back OK the record survives a kill -9 of the
/// daemon. Not internally synchronized — the daemon serializes appends
/// under its own lock.
class JobJournal {
 public:
  /// Opens (creating if absent) and replays the journal at `path`.
  /// A torn tail is truncated in place; a CRC-valid record stream that
  /// violates journal semantics (terminal record for an unknown id,
  /// duplicate submit) is kCorrupt — that is not crash damage.
  [[nodiscard]] static support::StatusOr<JobJournal> open(
      const std::string& path);

  JobJournal(JobJournal&&) = default;
  JobJournal& operator=(JobJournal&&) = default;

  /// The restart image captured by open(). Appends after open do not
  /// update it; the daemon folds live transitions into its own state.
  [[nodiscard]] const JournalReplay& replay() const { return replay_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  [[nodiscard]] support::Status append_submit(std::uint64_t id,
                                              const JobRequest& request);
  [[nodiscard]] support::Status append_start(std::uint64_t id,
                                             std::uint32_t shard);
  [[nodiscard]] support::Status append_complete(std::uint64_t id,
                                                const support::Status& result,
                                                std::string_view report_json);
  [[nodiscard]] support::Status append_cancel(std::uint64_t id);

 private:
  JobJournal() = default;

  [[nodiscard]] support::Status append_record(
      std::span<const std::byte> payload);

  std::string path_;
  std::ofstream out_;
  JournalReplay replay_;
};

}  // namespace gb::daemon
