// The daemon's length-prefixed binary wire protocol.
//
// Layer 1 — Framer: turns a raw byte stream (daemon::Transport) into a
// sequence of integrity-checked frames:
//
//   frame    "GBWF" magic (4 bytes) | payload_len (u32) | crc32 (u32)
//            | payload
//
// A frame either arrives whole and CRC-clean or the connection is
// declared corrupt (kCorrupt) — truncated header, bad magic, a length
// above kMaxFramePayload, or a checksum mismatch all poison the stream,
// because after any of them the frame boundary is unrecoverable. EOF
// exactly at a frame boundary is the one clean shutdown (kUnavailable).
//
// Layer 2 — verbs: each frame's payload begins with a Verb byte
// followed by that verb's ByteWriter encoding (see docs/
// wire_protocol.md for the field-by-field layout). Requests flow
// client -> server, each answered by its reply verb; kResult is
// answered by a kResultReply header and then a stream of kResultChunk
// frames carrying the schema-v2 report JSON. Decoders return kCorrupt
// on any malformed payload; the server answers undecodable requests
// with kErrorReply and drops the connection.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/scan_scheduler.h"
#include "daemon/job_request.h"
#include "daemon/transport.h"
#include "obs/trace.h"
#include "support/status.h"

namespace gb::daemon {

/// Hard ceiling on one frame's payload. Report chunks are far smaller
/// (kResultChunkBytes); anything larger is a corrupt length field, not
/// a big message.
inline constexpr std::uint32_t kMaxFramePayload = 4u << 20;

/// How much report JSON one kResultChunk frame carries.
inline constexpr std::uint32_t kResultChunkBytes = 64u * 1024;

enum class Verb : std::uint8_t {
  kSubmit = 1,       // JobRequest -> kSubmitReply
  kSubmitReply = 2,  // status + assigned job id
  kPoll = 3,         // job id -> kPollReply
  kPollReply = 4,    // status + JobView snapshot
  kCancel = 5,       // job id -> kCancelReply
  kCancelReply = 6,  // status + whether this call initiated cancellation
  kStats = 7,        // -> kStatsReply
  kStatsReply = 8,   // status + stats JSON + Prometheus metrics text
  kResult = 9,       // job id -> kResultReply, then kResultChunk stream
  kResultReply = 10,  // terminal job status + total result byte count
  kResultChunk = 11,  // sequence number + last flag + raw payload bytes
  kErrorReply = 12,   // request could not be decoded; connection closes
  kTrace = 13,       // job id -> kTraceReply, then kResultChunk stream
  kTraceReply = 14,  // status + total byte count of the span-tree blob
  kHealth = 15,      // -> kHealthReply
  kHealthReply = 16,  // status + health/SLO JSON (small, single frame)
};

/// Wire snapshot of one job, as kPollReply carries it.
struct JobView {
  std::uint64_t id = 0;
  core::JobPhase phase = core::JobPhase::kQueued;
  std::uint32_t tasks_done = 0;
  std::uint32_t tasks_total = 0;
  bool finished = false;
  /// Terminal outcome; meaningful only when `finished`.
  support::Status result;
};

struct SubmitReply {
  support::Status status;  // kResourceExhausted on over-quota submits
  std::uint64_t job_id = 0;
};

struct PollReply {
  support::Status status;  // kNotFound for an id this daemon never issued
  JobView view;
};

struct CancelReply {
  support::Status status;
  bool cancelled = false;
};

/// The assembled kStats answer, as the client API returns it.
struct StatsReply {
  support::Status status;
  std::string stats_json;    // DaemonStats::to_json()
  std::string metrics_text;  // gb::obs Prometheus exposition
};

/// What the kStatsReply frame itself carries. The two texts are NOT in
/// the header: they stream after it as kResultChunk frames (stats JSON
/// first, then the Prometheus text, back to back), so a giant registry
/// dump can never collide with kMaxFramePayload.
struct StatsReplyHeader {
  support::Status status;  // non-OK means no chunks follow
  std::uint64_t stats_bytes = 0;
  std::uint64_t metrics_bytes = 0;
};

/// kTraceReply header; OK means `total_bytes` of encode_trace_events
/// blob follow as kResultChunk frames.
struct TraceReply {
  support::Status status;  // kNotFound for an id this daemon never issued
  std::uint64_t total_bytes = 0;
};

/// kHealthReply body. Health JSON is a small fixed-shape document
/// (per-subsystem verdicts + latency quantiles), so unlike stats it
/// rides in its own frame.
struct HealthReply {
  support::Status status;
  std::string health_json;  // Daemon::health_json()
};

struct ResultReply {
  /// The job's terminal status. OK means `total_bytes` of report JSON
  /// follow as kResultChunk frames.
  support::Status status;
  std::uint64_t total_bytes = 0;
};

struct ResultChunk {
  std::uint32_t sequence = 0;
  bool last = false;
  std::string data;
};

/// kErrorReply body — a struct (not a bare Status) so decoders can
/// distinguish "the RPC failed" from "decoding the reply failed".
struct ErrorReply {
  support::Status error;
};

/// Frame codec over one transport. Not internally synchronized: the
/// client serializes request/reply exchanges under its own lock, and
/// the server runs one Framer per connection loop.
class Framer {
 public:
  explicit Framer(Transport& transport) : transport_(transport) {}

  /// Sends one frame wrapping `payload`.
  [[nodiscard]] support::Status write_frame(std::span<const std::byte> payload);

  /// Reads the next whole frame. kUnavailable: the peer closed cleanly
  /// between frames. kCorrupt: torn frame, bad magic, oversized length,
  /// or CRC mismatch — the stream is unusable and must be closed.
  [[nodiscard]] support::StatusOr<std::vector<std::byte>> read_frame();

 private:
  Transport& transport_;
};

// Requests (client -> server).
[[nodiscard]] std::vector<std::byte> encode_submit(const JobRequest& request);
[[nodiscard]] std::vector<std::byte> encode_poll(std::uint64_t job_id);
[[nodiscard]] std::vector<std::byte> encode_cancel(std::uint64_t job_id);
[[nodiscard]] std::vector<std::byte> encode_stats();
[[nodiscard]] std::vector<std::byte> encode_result(std::uint64_t job_id);
[[nodiscard]] std::vector<std::byte> encode_trace(std::uint64_t job_id);
[[nodiscard]] std::vector<std::byte> encode_health();

// Replies (server -> client).
[[nodiscard]] std::vector<std::byte> encode_submit_reply(
    const SubmitReply& reply);
[[nodiscard]] std::vector<std::byte> encode_poll_reply(const PollReply& reply);
[[nodiscard]] std::vector<std::byte> encode_cancel_reply(
    const CancelReply& reply);
[[nodiscard]] std::vector<std::byte> encode_stats_reply(
    const StatsReplyHeader& header);
[[nodiscard]] std::vector<std::byte> encode_result_reply(
    const ResultReply& reply);
[[nodiscard]] std::vector<std::byte> encode_result_chunk(
    const ResultChunk& chunk);
[[nodiscard]] std::vector<std::byte> encode_trace_reply(
    const TraceReply& reply);
[[nodiscard]] std::vector<std::byte> encode_health_reply(
    const HealthReply& reply);
[[nodiscard]] std::vector<std::byte> encode_error_reply(
    const support::Status& status);

// Chunk streaming. kResultChunk is the generic byte-stream carrier for
// every verb that answers with a header naming a byte count (kResult,
// kStats, kTrace): the sender splits `blob` into ≤ kResultChunkBytes
// frames (always at least one, so the reader's loop terminates on
// `last` even for an empty blob) and the reader reassembles, checking
// sequence numbers and the expected total.
[[nodiscard]] support::Status write_chunked(Framer& framer,
                                            std::string_view blob);
[[nodiscard]] support::StatusOr<std::string> read_chunked(
    Framer& framer, std::uint64_t expected_bytes);

// Span-tree blob codec for kTrace: a flat binary encoding of the
// events the daemon snapshots for one trace id (obs::Tracer::snapshot).
// The blob — not JSON — crosses the wire so the client can merge the
// daemon's events with its own before rendering one Chrome trace.
[[nodiscard]] std::string encode_trace_events(
    const std::vector<obs::TraceEvent>& events);
[[nodiscard]] support::StatusOr<std::vector<obs::TraceEvent>>
decode_trace_events(std::string_view blob);

/// First byte of a payload, or kCorrupt on an empty frame / unknown verb.
[[nodiscard]] support::StatusOr<Verb> decode_verb(
    std::span<const std::byte> payload);

// Decoders take the payload *after* the verb byte has been validated by
// decode_verb; all return kCorrupt on malformed bodies.
[[nodiscard]] support::StatusOr<JobRequest> decode_submit(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<std::uint64_t> decode_job_id(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<SubmitReply> decode_submit_reply(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<PollReply> decode_poll_reply(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<CancelReply> decode_cancel_reply(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<StatsReplyHeader> decode_stats_reply(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<ResultReply> decode_result_reply(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<ResultChunk> decode_result_chunk(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<TraceReply> decode_trace_reply(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<HealthReply> decode_health_reply(
    std::span<const std::byte> payload);
[[nodiscard]] support::StatusOr<ErrorReply> decode_error_reply(
    std::span<const std::byte> payload);

}  // namespace gb::daemon
