#include "daemon/wire.h"

#include <algorithm>
#include <array>
#include <utility>

#include "support/bytes.h"

namespace gb::daemon {
namespace {

constexpr char kFrameMagic[4] = {'G', 'B', 'W', 'F'};

// Reads exactly `out.size()` bytes. Returns the count actually read —
// short only at EOF — or a transport error.
support::StatusOr<std::size_t> read_exact(Transport& t,
                                          std::span<std::byte> out) {
  std::size_t off = 0;
  while (off < out.size()) {
    // Callers hold the connection lock across whole frames by design —
    // it is what keeps concurrent requests from interleaving bytes.
    // gb-lint: allow(blocking-under-lock)
    support::StatusOr<std::size_t> n = t.recv_bytes(out.subspan(off));
    if (!n.ok()) return n.status();
    if (*n == 0) break;  // EOF
    off += *n;
  }
  return off;
}

void put_status(ByteWriter& w, const support::Status& status) {
  w.u8(static_cast<std::uint8_t>(status.code()));
  w.u32(static_cast<std::uint32_t>(status.message().size()));
  w.str(status.message());
}

support::Status get_status(ByteReader& r) {
  const std::uint8_t code = r.u8();
  std::string message = r.str(r.u32());
  return status_from_wire(code, std::move(message));
}

void put_string(ByteWriter& w, std::string_view s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.str(s);
}

std::vector<std::byte> finish(ByteWriter&& w) { return std::move(w).take(); }

ByteWriter begin(Verb verb) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(verb));
  return w;
}

// The one `_or` boundary for all payload decoders: runs `fn(reader)`
// over the post-verb payload bytes and converts ParseError to kCorrupt.
template <typename Fn>
auto decode_body(std::span<const std::byte> payload, const char* what,
                 Fn&& fn) -> support::StatusOr<decltype(fn(
                   std::declval<ByteReader&>()))> {
  ByteReader r(payload.subspan(1));
  try {
    auto value = fn(r);
    if (!r.at_end()) {
      return support::Status::corrupt(std::string("wire: trailing bytes in ") +
                                      what);
    }
    return value;
  } catch (const ParseError& e) {
    return support::Status::corrupt(std::string("wire: bad ") + what + ": " +
                                    e.what());
  }
}

}  // namespace

support::Status Framer::write_frame(std::span<const std::byte> payload) {
  if (payload.size() > kMaxFramePayload) {
    return support::Status::internal("wire: frame payload too large");
  }
  ByteWriter w;
  w.str(std::string_view(kFrameMagic, 4));
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(crc32(payload));
  w.bytes(payload);
  // Same serialized-frame contract as read_exact above: the caller's
  // connection lock is what makes a frame atomic on the wire.
  // gb-lint: allow(blocking-under-lock)
  return transport_.send_bytes(w.view());
}

support::StatusOr<std::vector<std::byte>> Framer::read_frame() {
  std::array<std::byte, 12> header{};
  support::StatusOr<std::size_t> got = read_exact(transport_, header);
  if (!got.ok()) return got.status();
  if (*got == 0) {
    return support::Status::unavailable("wire: peer closed");
  }
  if (*got < header.size()) {
    return support::Status::corrupt("wire: truncated frame header");
  }
  ByteReader r(header);
  if (r.str(4) != std::string_view(kFrameMagic, 4)) {
    return support::Status::corrupt("wire: bad frame magic");
  }
  const std::uint32_t len = r.u32();
  const std::uint32_t crc = r.u32();
  if (len > kMaxFramePayload) {
    return support::Status::corrupt("wire: oversized frame length " +
                                    std::to_string(len));
  }
  std::vector<std::byte> payload(len);
  got = read_exact(transport_, payload);
  if (!got.ok()) return got.status();
  if (*got < payload.size()) {
    return support::Status::corrupt("wire: truncated frame payload");
  }
  if (crc32(payload) != crc) {
    return support::Status::corrupt("wire: frame checksum mismatch");
  }
  return payload;
}

std::vector<std::byte> encode_submit(const JobRequest& request) {
  ByteWriter w = begin(Verb::kSubmit);
  request.serialize(w);
  return finish(std::move(w));
}

std::vector<std::byte> encode_poll(std::uint64_t job_id) {
  ByteWriter w = begin(Verb::kPoll);
  w.u64(job_id);
  return finish(std::move(w));
}

std::vector<std::byte> encode_cancel(std::uint64_t job_id) {
  ByteWriter w = begin(Verb::kCancel);
  w.u64(job_id);
  return finish(std::move(w));
}

std::vector<std::byte> encode_stats() { return finish(begin(Verb::kStats)); }

std::vector<std::byte> encode_result(std::uint64_t job_id) {
  ByteWriter w = begin(Verb::kResult);
  w.u64(job_id);
  return finish(std::move(w));
}

std::vector<std::byte> encode_trace(std::uint64_t job_id) {
  ByteWriter w = begin(Verb::kTrace);
  w.u64(job_id);
  return finish(std::move(w));
}

std::vector<std::byte> encode_health() { return finish(begin(Verb::kHealth)); }

std::vector<std::byte> encode_submit_reply(const SubmitReply& reply) {
  ByteWriter w = begin(Verb::kSubmitReply);
  put_status(w, reply.status);
  w.u64(reply.job_id);
  return finish(std::move(w));
}

std::vector<std::byte> encode_poll_reply(const PollReply& reply) {
  ByteWriter w = begin(Verb::kPollReply);
  put_status(w, reply.status);
  w.u64(reply.view.id);
  w.u8(static_cast<std::uint8_t>(reply.view.phase));
  w.u32(reply.view.tasks_done);
  w.u32(reply.view.tasks_total);
  w.u8(reply.view.finished ? 1 : 0);
  put_status(w, reply.view.result);
  return finish(std::move(w));
}

std::vector<std::byte> encode_cancel_reply(const CancelReply& reply) {
  ByteWriter w = begin(Verb::kCancelReply);
  put_status(w, reply.status);
  w.u8(reply.cancelled ? 1 : 0);
  return finish(std::move(w));
}

std::vector<std::byte> encode_stats_reply(const StatsReplyHeader& header) {
  ByteWriter w = begin(Verb::kStatsReply);
  put_status(w, header.status);
  w.u64(header.stats_bytes);
  w.u64(header.metrics_bytes);
  return finish(std::move(w));
}

std::vector<std::byte> encode_result_reply(const ResultReply& reply) {
  ByteWriter w = begin(Verb::kResultReply);
  put_status(w, reply.status);
  w.u64(reply.total_bytes);
  return finish(std::move(w));
}

std::vector<std::byte> encode_result_chunk(const ResultChunk& chunk) {
  ByteWriter w = begin(Verb::kResultChunk);
  w.u32(chunk.sequence);
  w.u8(chunk.last ? 1 : 0);
  put_string(w, chunk.data);
  return finish(std::move(w));
}

std::vector<std::byte> encode_trace_reply(const TraceReply& reply) {
  ByteWriter w = begin(Verb::kTraceReply);
  put_status(w, reply.status);
  w.u64(reply.total_bytes);
  return finish(std::move(w));
}

std::vector<std::byte> encode_health_reply(const HealthReply& reply) {
  ByteWriter w = begin(Verb::kHealthReply);
  put_status(w, reply.status);
  put_string(w, reply.health_json);
  return finish(std::move(w));
}

std::vector<std::byte> encode_error_reply(const support::Status& status) {
  ByteWriter w = begin(Verb::kErrorReply);
  put_status(w, status);
  return finish(std::move(w));
}

support::Status write_chunked(Framer& framer, std::string_view blob) {
  std::uint32_t sequence = 0;
  std::size_t offset = 0;
  support::Status io;
  do {
    ResultChunk chunk;
    chunk.sequence = sequence;
    const std::size_t n =
        std::min<std::size_t>(kResultChunkBytes, blob.size() - offset);
    chunk.data = std::string(blob.substr(offset, n));
    offset += n;
    chunk.last = offset >= blob.size();
    io = framer.write_frame(encode_result_chunk(chunk));
    sequence += 1;
  } while (io.ok() && offset < blob.size());
  return io;
}

support::StatusOr<std::string> read_chunked(Framer& framer,
                                            std::uint64_t expected_bytes) {
  std::string out;
  out.reserve(expected_bytes);
  for (std::uint32_t expected_seq = 0;; ++expected_seq) {
    // Chunked results stream over the same locked connection; dropping
    // the lock between chunks would let another request interleave.
    // gb-lint: allow(blocking-under-lock)
    support::StatusOr<std::vector<std::byte>> frame = framer.read_frame();
    if (!frame.ok()) return frame.status();
    support::StatusOr<Verb> verb = decode_verb(*frame);
    if (!verb.ok()) return verb.status();
    if (*verb != Verb::kResultChunk) {
      return support::Status::corrupt("wire: expected chunk frame");
    }
    support::StatusOr<ResultChunk> chunk = decode_result_chunk(*frame);
    if (!chunk.ok()) return chunk.status();
    if (chunk->sequence != expected_seq) {
      return support::Status::corrupt("wire: chunk out of sequence");
    }
    out += chunk->data;
    if (chunk->last) break;
  }
  if (out.size() != expected_bytes) {
    return support::Status::corrupt("wire: chunk stream size mismatch");
  }
  return out;
}

std::string encode_trace_events(const std::vector<obs::TraceEvent>& events) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(events.size()));
  for (const obs::TraceEvent& e : events) {
    put_string(w, e.name);
    put_string(w, e.cat);
    w.u64(e.trace_id);
    w.u64(e.span_id);
    w.u64(e.parent_span_id);
    w.u64(e.ts_us);
    w.u64(e.dur_us);
    w.u32(e.pid);
    w.u32(e.tid);
    w.u8(static_cast<std::uint8_t>(e.ph));
    w.u32(static_cast<std::uint32_t>(e.args.size()));
    for (const auto& [key, value] : e.args) {
      put_string(w, key);
      put_string(w, value);
    }
  }
  std::vector<std::byte> bytes = std::move(w).take();
  return std::string(reinterpret_cast<const char*>(bytes.data()),
                     bytes.size());
}

support::StatusOr<std::vector<obs::TraceEvent>> decode_trace_events(
    std::string_view blob) {
  ByteReader r(std::as_bytes(std::span(blob.data(), blob.size())));
  try {
    // Counts are bounded by the blob size (every event and every arg
    // pair costs more than one byte), so a corrupt count can't force a
    // huge allocation before the reads start failing.
    const std::uint32_t count = r.u32();
    if (count > blob.size()) {
      return support::Status::corrupt("wire: trace blob count too large");
    }
    std::vector<obs::TraceEvent> events(count);
    for (obs::TraceEvent& e : events) {
      e.name = r.str(r.u32());
      e.cat = r.str(r.u32());
      e.trace_id = r.u64();
      e.span_id = r.u64();
      e.parent_span_id = r.u64();
      e.ts_us = r.u64();
      e.dur_us = r.u64();
      e.pid = r.u32();
      e.tid = r.u32();
      e.ph = static_cast<char>(r.u8());
      const std::uint32_t nargs = r.u32();
      if (nargs > blob.size()) {
        return support::Status::corrupt("wire: trace arg count too large");
      }
      e.args.resize(nargs);
      for (auto& [key, value] : e.args) {
        key = r.str(r.u32());
        value = r.str(r.u32());
      }
    }
    if (!r.at_end()) {
      return support::Status::corrupt("wire: trailing bytes in trace blob");
    }
    return events;
  } catch (const ParseError& e) {
    return support::Status::corrupt(std::string("wire: bad trace blob: ") +
                                    e.what());
  }
}

support::StatusOr<Verb> decode_verb(std::span<const std::byte> payload) {
  if (payload.empty()) {
    return support::Status::corrupt("wire: empty frame payload");
  }
  const auto v = static_cast<std::uint8_t>(payload[0]);
  if (v < static_cast<std::uint8_t>(Verb::kSubmit) ||
      v > static_cast<std::uint8_t>(Verb::kHealthReply)) {
    return support::Status::corrupt("wire: unknown verb " + std::to_string(v));
  }
  return static_cast<Verb>(v);
}

support::StatusOr<JobRequest> decode_submit(
    std::span<const std::byte> payload) {
  ByteReader r(payload.subspan(1));
  support::StatusOr<JobRequest> req = JobRequest::deserialize(r);
  if (req.ok() && !r.at_end()) {
    return support::Status::corrupt("wire: trailing bytes in submit");
  }
  return req;
}

support::StatusOr<std::uint64_t> decode_job_id(
    std::span<const std::byte> payload) {
  return decode_body(payload, "job id", [](ByteReader& r) { return r.u64(); });
}

support::StatusOr<SubmitReply> decode_submit_reply(
    std::span<const std::byte> payload) {
  return decode_body(payload, "submit reply", [](ByteReader& r) {
    SubmitReply reply;
    reply.status = get_status(r);
    reply.job_id = r.u64();
    return reply;
  });
}

support::StatusOr<PollReply> decode_poll_reply(
    std::span<const std::byte> payload) {
  return decode_body(payload, "poll reply", [](ByteReader& r) {
    PollReply reply;
    reply.status = get_status(r);
    reply.view.id = r.u64();
    const std::uint8_t phase = r.u8();
    if (phase > static_cast<std::uint8_t>(core::JobPhase::kDone)) {
      throw ParseError("bad job phase");
    }
    reply.view.phase = static_cast<core::JobPhase>(phase);
    reply.view.tasks_done = r.u32();
    reply.view.tasks_total = r.u32();
    reply.view.finished = r.u8() != 0;
    reply.view.result = get_status(r);
    return reply;
  });
}

support::StatusOr<CancelReply> decode_cancel_reply(
    std::span<const std::byte> payload) {
  return decode_body(payload, "cancel reply", [](ByteReader& r) {
    CancelReply reply;
    reply.status = get_status(r);
    reply.cancelled = r.u8() != 0;
    return reply;
  });
}

support::StatusOr<StatsReplyHeader> decode_stats_reply(
    std::span<const std::byte> payload) {
  return decode_body(payload, "stats reply", [](ByteReader& r) {
    StatsReplyHeader header;
    header.status = get_status(r);
    header.stats_bytes = r.u64();
    header.metrics_bytes = r.u64();
    return header;
  });
}

support::StatusOr<ResultReply> decode_result_reply(
    std::span<const std::byte> payload) {
  return decode_body(payload, "result reply", [](ByteReader& r) {
    ResultReply reply;
    reply.status = get_status(r);
    reply.total_bytes = r.u64();
    return reply;
  });
}

support::StatusOr<ResultChunk> decode_result_chunk(
    std::span<const std::byte> payload) {
  return decode_body(payload, "result chunk", [](ByteReader& r) {
    ResultChunk chunk;
    chunk.sequence = r.u32();
    chunk.last = r.u8() != 0;
    chunk.data = r.str(r.u32());
    return chunk;
  });
}

support::StatusOr<TraceReply> decode_trace_reply(
    std::span<const std::byte> payload) {
  return decode_body(payload, "trace reply", [](ByteReader& r) {
    TraceReply reply;
    reply.status = get_status(r);
    reply.total_bytes = r.u64();
    return reply;
  });
}

support::StatusOr<HealthReply> decode_health_reply(
    std::span<const std::byte> payload) {
  return decode_body(payload, "health reply", [](ByteReader& r) {
    HealthReply reply;
    reply.status = get_status(r);
    reply.health_json = r.str(r.u32());
    return reply;
  });
}

support::StatusOr<ErrorReply> decode_error_reply(
    std::span<const std::byte> payload) {
  return decode_body(payload, "error reply", [](ByteReader& r) {
    return ErrorReply{get_status(r)};
  });
}

}  // namespace gb::daemon
