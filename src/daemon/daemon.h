// gb_daemond's core: a long-lived, crash-safe serving layer over
// ScanScheduler.
//
// The paper's end state is GhostBuster as an always-on enterprise
// service, not an episodic CLI. This class is that service, minus the
// OS socket: it owns N ScanScheduler shards partitioned by machine-id
// hash, admits submits through per-tenant token buckets and quota caps
// (kResourceExhausted, before DRR fairness ever sees the job), journals
// every job transition to a JobJournal *before* acknowledging it, and
// serves the wire protocol over any daemon::Transport.
//
// Crash-safety invariants (tested by the journal crash matrix and the
// kill-and-restart suite; see DESIGN.md):
//
//   * No acknowledged job is ever lost. A submit is journaled before
//     its id is returned; restart re-queues every journaled job that
//     lacks a terminal record — including jobs that were mid-scan on a
//     worker when the process died.
//   * Results are delivered at most once and never torn. A report is
//     journaled whole (CRC-framed) before any waiter can observe it;
//     restart serves completed jobs straight from the journal and never
//     re-runs them.
//   * Re-running an interrupted job is byte-identical to the run the
//     crash stole: an interrupted scan never advances the machine's
//     virtual clock, so the replayed run sees exactly the state the
//     original saw (wall-clock-derived fields aside — compare with
//     client::normalized_report_json).
//
// kill() simulates the crash: it stops all journaling mid-flight and
// tears the workers down, exactly as a SIGKILL would at the journal
// level. A fresh Daemon on the same journal path is the restart.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/scan_scheduler.h"
#include "daemon/job_journal.h"
#include "daemon/rate_limiter.h"
#include "daemon/transport.h"
#include "daemon/wire.h"
#include "machine/machine.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/status.h"
#include "support/thread_annotations.h"
#include "support/thread_pool.h"

namespace gb::daemon {

struct DaemonOptions {
  /// Journal file backing the job store. Required. Opening an existing
  /// journal replays it — that IS the restart path.
  std::string journal_path;
  /// Scheduler shards; jobs partition by machine_shard_hash(machine_id),
  /// so one machine's jobs always land on (and replay to) one shard.
  std::size_t shards = 1;
  /// Worker pool width of each shard.
  std::size_t workers_per_shard = 2;
  /// Wire connections served concurrently; later connections queue.
  std::size_t max_connections = 4;
  /// Resolves a machine id to the live Machine to scan, or nullptr for
  /// an unknown id. Required. Called under the daemon lock — must be
  /// fast and must not call back into the daemon.
  std::function<machine::Machine*(const std::string&)> resolve_machine;
  /// Per-tenant admission limits (absent tenant = unlimited).
  std::map<std::string, TenantQuota> quotas;
  /// DRR weights forwarded to every shard (absent tenant = weight 1).
  std::map<std::string, std::uint32_t> tenant_weights;
  /// Monotonic seconds for the token buckets. Defaults to the steady
  /// clock measured from daemon start; tests inject a fake.
  std::function<double()> clock;
  /// Telemetry sink shared by shards and the daemon's own counters.
  /// Null gives the daemon a private registry (what stats() reads).
  obs::MetricsRegistry* metrics = nullptr;
  /// Flight-recorder file. Empty derives `journal_path + ".events"`, so
  /// the recorder is always on and crash-recoverable alongside the
  /// journal; `gb_daemond --flight-recorder` reads this file back.
  std::string event_log_path;
  /// Ring capacity of the in-memory flight recorder.
  std::size_t event_log_capacity = obs::EventLog::kDefaultCapacity;
};

/// Point-in-time view of the whole daemon: its own serving counters,
/// the restart image it replayed from, and scheduler stats both
/// combined and per shard.
struct DaemonStats {
  std::size_t shards = 0;
  // Serving counters, this incarnation.
  std::uint64_t submitted = 0;         // admitted + journaled
  std::uint64_t completed = 0;         // terminal, including errors
  std::uint64_t cancelled = 0;         // terminal via cancel
  std::uint64_t rejected_rate = 0;     // kResourceExhausted: token bucket
  std::uint64_t rejected_quota = 0;    // kResourceExhausted: caps
  std::uint64_t journal_append_failures = 0;
  // Restart image (zero for a fresh journal).
  std::uint64_t replayed_completed = 0;  // served from the journal store
  std::uint64_t requeued = 0;            // re-queued pending jobs
  std::uint64_t requeued_started = 0;    // of those, lost mid-scan
  std::uint64_t journal_truncated_bytes = 0;  // torn tail dropped at open
  /// Shard scheduler stats summed (tenants merged by id).
  core::SchedulerStats combined;
  std::vector<core::SchedulerStats> per_shard;

  [[nodiscard]] std::string to_string() const;
  /// Machine-readable counters (schema_version 2.6).
  [[nodiscard]] std::string to_json() const;
};

/// The serving daemon. Thread-safe: submits, polls, waits, cancels and
/// stats may race freely, from direct callers and serve() connections
/// alike. Destruction is a *graceful* shutdown — stop admitting, drain
/// every in-flight job (journaling each completion), then exit; kill()
/// is the crash.
class Daemon {
 public:
  [[nodiscard]] static support::StatusOr<std::unique_ptr<Daemon>> start(
      DaemonOptions opts);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Admits, journals, and enqueues one job; returns its daemon-assigned
  /// id (stable across restarts — it lives in the journal). Errors:
  /// kResourceExhausted (over quota/rate), kNotFound (unknown machine),
  /// kUnavailable (shutting down or journal write failed).
  [[nodiscard]] support::StatusOr<std::uint64_t> submit(
      const JobRequest& request);

  /// Non-blocking job snapshot. kNotFound for an id never issued (this
  /// incarnation or any journaled predecessor).
  [[nodiscard]] support::StatusOr<JobView> poll(std::uint64_t job_id) const;

  /// Blocks until the job is terminal, then returns its report JSON
  /// (schema v2, scheduler provenance carrying the daemon job id).
  /// Non-OK terminal outcomes return their status; a kill() while
  /// waiting returns kUnavailable.
  [[nodiscard]] support::StatusOr<std::string> wait_result(
      std::uint64_t job_id);

  /// Journals a cancel record, then cancels the underlying job. The
  /// durable record wins any race with completion: once it is written,
  /// the job's outcome is kCancelled in this incarnation and every
  /// later one, even if the scan finished first. Returns true if this
  /// call initiated the cancellation.
  [[nodiscard]] support::StatusOr<bool> cancel_job(std::uint64_t job_id);

  /// Blocks until every accepted job is terminal (or the daemon is
  /// killed). New submits may still arrive while draining; they are
  /// waited on too.
  void wait_idle();

  [[nodiscard]] DaemonStats stats() const;
  /// DaemonStats::to_json() of the current stats.
  [[nodiscard]] std::string stats_json() const;
  /// Prometheus exposition of the daemon's metrics registry.
  [[nodiscard]] std::string metrics_text() const;

  /// Per-subsystem health plus rolling latency quantiles, as JSON:
  /// journal (append failures, torn bytes), shards (queue depth,
  /// running), pool saturation, admission pressure, flight recorder —
  /// each with an `ok` verdict and a reason when degraded — and
  /// p50/p95/p99 of queue-wait and run-time (max across shards). The
  /// kHealth wire verb and `gb status` render this.
  [[nodiscard]] std::string health_json() const;

  /// The distributed-trace context of one job: the client-supplied ids
  /// if the submit carried them, else derived from the job id. kNotFound
  /// for an id this daemon never issued.
  [[nodiscard]] support::StatusOr<obs::TraceContext> job_trace_context(
      std::uint64_t job_id) const;

  /// Snapshot of the job's span tree from the process tracer, stamped
  /// pid 2 (daemon) for the merged-trace convention. What kTrace
  /// streams back.
  [[nodiscard]] support::StatusOr<std::vector<obs::TraceEvent>> trace_events(
      std::uint64_t job_id) const;

  /// The flight recorder (for tests and in-process observers).
  [[nodiscard]] const obs::EventLog& event_log() const { return event_log_; }

  /// Adopts one wire connection: serves request frames on the
  /// connection pool until the peer closes, a frame is corrupt, or the
  /// daemon shuts down. Returns immediately.
  void serve(std::shared_ptr<Transport> connection);

  /// Crash simulation at the journal level: journaling stops instantly
  /// (in-flight completions are NOT recorded, exactly as if the process
  /// died), workers are torn down, waiters unblock with kUnavailable.
  /// The object is unusable afterwards; restart by opening a new Daemon
  /// on the same journal path.
  void kill();

 private:
  struct JobRecord;

  explicit Daemon(DaemonOptions opts);

  [[nodiscard]] support::Status init();
  [[nodiscard]] double now_seconds() const;
  /// Resolves the machine, builds the JobSpec, and hands a journaled
  /// job to its shard; an unresolvable machine or a shard rejection
  /// becomes an immediate journaled terminal outcome. Caller holds mu_.
  void dispatch_locked(JobRecord& rec) GB_REQUIRES(mu_);
  /// Marks one record terminal: journals the outcome first (unless a
  /// durable cancel already decided it), then publishes in memory and
  /// wakes waiters. Caller holds mu_.
  void finish_locked(JobRecord& rec, const support::Status& status,
                     std::string report_json) GB_REQUIRES(mu_);
  void on_job_complete(std::uint64_t id,
                       support::StatusOr<core::Report>& result);
  /// Client-supplied trace ids if present, else derived from the job id.
  [[nodiscard]] static obs::TraceContext trace_context_for(
      const JobRecord& rec);
  void serve_connection(const std::shared_ptr<Transport>& connection);
  void close_connections();

  DaemonOptions opts_;
  /// Crash flag: once set, on_job_complete records nothing, as if the
  /// process had died. Checked without mu_ (hooks may run during shard
  /// teardown while kill() owns other state).
  std::atomic<bool> dying_{false};

  mutable support::Mutex mu_;
  std::condition_variable done_cv_;
  bool shutting_down_ GB_GUARDED_BY(mu_) = false;
  bool killed_ GB_GUARDED_BY(mu_) = false;
  /// Created in init() before any concurrency; appended to under mu_.
  std::unique_ptr<JobJournal> journal_ GB_PT_GUARDED_BY(mu_);
  std::unique_ptr<RateLimiter> limiter_ GB_PT_GUARDED_BY(mu_);
  std::map<std::uint64_t, std::unique_ptr<JobRecord>> jobs_ GB_GUARDED_BY(mu_);
  std::uint64_t next_id_ GB_GUARDED_BY(mu_) = 1;
  std::map<std::string, std::uint64_t> tenant_submitted_ GB_GUARDED_BY(mu_);
  std::map<std::string, std::size_t> tenant_outstanding_ GB_GUARDED_BY(mu_);
  /// Serving + replay counters (shard stats live).
  DaemonStats counters_ GB_GUARDED_BY(mu_);
  std::unique_ptr<obs::MetricsRegistry> own_metrics_;
  /// Flight recorder. Has its own mutex and never calls back into the
  /// daemon, so appending while holding mu_ is safe.
  obs::EventLog event_log_;
  /// attach() outcome; a recorder that cannot persist still records in
  /// memory, and health_json reports the degradation instead of init
  /// failing — observability must not take the daemon down.
  support::Status event_log_status_;
  std::chrono::steady_clock::time_point clock_epoch_{};
  // Telemetry handles into the registry (set once in init()).
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_completed_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_requeued_ = nullptr;

  std::vector<std::unique_ptr<core::ScanScheduler>> shards_;

  support::Mutex conns_mu_;
  std::vector<std::weak_ptr<Transport>> conns_ GB_GUARDED_BY(conns_mu_);
  /// Declared last: destroyed first, joining serve loops (unblocked by
  /// close_connections()) while everything they touch is still alive.
  support::ThreadPool serve_pool_;
};

}  // namespace gb::daemon
