#include "daemon/transport.h"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>

#include "support/thread_annotations.h"

namespace gb::daemon {
namespace {

// One direction of the stream: a bounded byte queue. `closed` means no
// further writes will arrive; readers drain what is buffered, then see
// EOF. Both endpoints share two of these, cross-wired.
struct Pipe {
  support::Mutex mu;
  std::condition_variable readable;
  std::condition_variable writable;
  std::deque<std::byte> buf GB_GUARDED_BY(mu);
  std::size_t capacity = 0;  // fixed at construction
  bool closed GB_GUARDED_BY(mu) = false;

  explicit Pipe(std::size_t cap) : capacity(cap == 0 ? 1 : cap) {}

  support::Status write(std::span<const std::byte> data) {
    std::size_t off = 0;
    support::CondLock lk(mu);
    while (off < data.size()) {
      writable.wait(lk.native(),
                    [&] { return closed || buf.size() < capacity; });
      if (closed) {
        return support::Status::unavailable("transport: peer closed");
      }
      const std::size_t room = capacity - buf.size();
      const std::size_t n = std::min(room, data.size() - off);
      buf.insert(buf.end(), data.begin() + static_cast<std::ptrdiff_t>(off),
                 data.begin() + static_cast<std::ptrdiff_t>(off + n));
      off += n;
      readable.notify_all();
    }
    return support::Status();
  }

  std::size_t read(std::span<std::byte> out) {
    support::CondLock lk(mu);
    readable.wait(lk.native(), [&] { return closed || !buf.empty(); });
    const std::size_t n = std::min(out.size(), buf.size());
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = buf.front();
      buf.pop_front();
    }
    if (n > 0) writable.notify_all();
    return n;  // 0 only when closed and drained: EOF
  }

  void close_side() {
    support::MutexLock lk(mu);
    closed = true;
    readable.notify_all();
    writable.notify_all();
  }
};

class PipeEndpoint final : public Transport {
 public:
  PipeEndpoint(std::shared_ptr<Pipe> rx, std::shared_ptr<Pipe> tx)
      : rx_(std::move(rx)), tx_(std::move(tx)) {}
  ~PipeEndpoint() override { close(); }

  support::Status send_bytes(std::span<const std::byte> data) override {
    return tx_->write(data);
  }

  support::StatusOr<std::size_t> recv_bytes(std::span<std::byte> out) override {
    if (out.empty()) return std::size_t{0};
    return rx_->read(out);
  }

  void close() override {
    // Closing tears down both directions: the peer's reads see EOF once
    // drained, and its writes fail immediately — socket-like semantics.
    rx_->close_side();
    tx_->close_side();
  }

 private:
  std::shared_ptr<Pipe> rx_;
  std::shared_ptr<Pipe> tx_;
};

}  // namespace

PipePair make_pipe(std::size_t capacity_bytes) {
  auto a_to_b = std::make_shared<Pipe>(capacity_bytes);
  auto b_to_a = std::make_shared<Pipe>(capacity_bytes);
  PipePair pair;
  pair.client = std::make_shared<PipeEndpoint>(b_to_a, a_to_b);
  pair.server = std::make_shared<PipeEndpoint>(a_to_b, b_to_a);
  return pair;
}

}  // namespace gb::daemon
