// Per-tenant admission control, layered *above* DRR fairness.
//
// The scheduler's deficit round-robin decides who dispatches next among
// admitted jobs; it cannot stop a tenant from flooding the queue itself
// and bloating every stats view and journal replay. These limits gate
// admission: a token-bucket rate (sustained submits/s with a burst
// allowance) plus two absolute caps (outstanding jobs now, total jobs
// ever). An over-limit submit is rejected with kResourceExhausted
// before anything is journaled — the request was valid, retry later.
//
// Time is a caller-supplied monotonic reading in seconds, not a wall
// clock: the daemon feeds it from its steady-clock epoch, tests feed a
// fake, and the math stays deterministic either way.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>

#include "support/status.h"

namespace gb::daemon {

/// Admission limits for one tenant. Zero in any field means "no limit
/// of that kind" — the all-zero default admits everything, preserving
/// PR 3's open-admission behavior for callers that configure nothing.
struct TenantQuota {
  /// Sustained submit rate (tokens refill at this rate).
  double rate_per_second = 0;
  /// Bucket capacity — how far above the sustained rate a burst may go.
  /// Unset (0) with a rate set defaults to max(rate, 1).
  double burst = 0;
  /// Cap on jobs submitted but not yet terminal.
  std::size_t max_outstanding = 0;
  /// Lifetime cap on submits across the journal's whole history.
  std::uint64_t max_total = 0;
};

/// Classic token bucket, clocked externally.
class TokenBucket {
 public:
  TokenBucket(double capacity, double refill_per_second)
      : capacity_(capacity), refill_per_second_(refill_per_second),
        tokens_(capacity) {}

  /// Takes one token if available at time `now_seconds`; false = limit.
  bool try_take(double now_seconds) {
    refill(now_seconds);
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  [[nodiscard]] double tokens(double now_seconds) {
    refill(now_seconds);
    return tokens_;
  }

 private:
  void refill(double now_seconds) {
    if (now_seconds > last_) {
      tokens_ = std::min(capacity_,
                         tokens_ + (now_seconds - last_) * refill_per_second_);
    }
    last_ = std::max(last_, now_seconds);
  }

  double capacity_;
  double refill_per_second_;
  double tokens_;
  double last_ = 0;
};

/// All tenants' admission state. Not internally synchronized — the
/// daemon calls it under its own lock.
class RateLimiter {
 public:
  explicit RateLimiter(std::map<std::string, TenantQuota> quotas)
      : quotas_(std::move(quotas)) {}

  /// Admission check for one submit at time `now_seconds`, given the
  /// tenant's current outstanding and lifetime-submitted counts. OK
  /// admits and consumes a token; kResourceExhausted names the limit
  /// that rejected. Rejected submits consume nothing.
  [[nodiscard]] support::Status admit(const std::string& tenant,
                                      double now_seconds,
                                      std::size_t outstanding,
                                      std::uint64_t total_submitted);

  /// Rejection counters for stats: tenant -> rejects by kind.
  struct Rejections {
    std::uint64_t rate = 0;
    std::uint64_t outstanding = 0;
    std::uint64_t total = 0;
  };
  [[nodiscard]] const std::map<std::string, Rejections>& rejections() const {
    return rejections_;
  }

 private:
  std::map<std::string, TenantQuota> quotas_;
  std::map<std::string, TokenBucket> buckets_;
  std::map<std::string, Rejections> rejections_;
};

}  // namespace gb::daemon
