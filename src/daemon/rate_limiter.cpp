#include "daemon/rate_limiter.h"

namespace gb::daemon {

support::Status RateLimiter::admit(const std::string& tenant,
                                   double now_seconds, std::size_t outstanding,
                                   std::uint64_t total_submitted) {
  const auto it = quotas_.find(tenant);
  if (it == quotas_.end()) return support::Status();  // unconfigured: open
  const TenantQuota& quota = it->second;

  // Absolute caps first — they are cheaper to check and a rejection must
  // not drain the bucket.
  if (quota.max_total != 0 && total_submitted >= quota.max_total) {
    rejections_[tenant].total += 1;
    return support::Status::resource_exhausted(
        "tenant '" + tenant + "' exhausted its total-submit quota (" +
        std::to_string(quota.max_total) + ")");
  }
  if (quota.max_outstanding != 0 && outstanding >= quota.max_outstanding) {
    rejections_[tenant].outstanding += 1;
    return support::Status::resource_exhausted(
        "tenant '" + tenant + "' has " + std::to_string(outstanding) +
        " outstanding jobs (cap " + std::to_string(quota.max_outstanding) +
        ")");
  }
  if (quota.rate_per_second > 0) {
    auto bucket = buckets_.find(tenant);
    if (bucket == buckets_.end()) {
      const double burst =
          quota.burst > 0 ? quota.burst : std::max(quota.rate_per_second, 1.0);
      bucket = buckets_
                   .emplace(tenant,
                            TokenBucket(burst, quota.rate_per_second))
                   .first;
    }
    if (!bucket->second.try_take(now_seconds)) {
      rejections_[tenant].rate += 1;
      return support::Status::resource_exhausted(
          "tenant '" + tenant + "' exceeded " +
          std::to_string(quota.rate_per_second) + " submits/s");
    }
  }
  return support::Status();
}

}  // namespace gb::daemon
