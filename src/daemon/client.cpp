#include "daemon/client.h"

#include <algorithm>
#include <mutex>
#include <regex>
#include <utility>

#include "daemon/wire.h"
#include "support/thread_annotations.h"

namespace gb::client {

namespace internal {

/// Transport-specific behavior behind JobHandle's shared state.
class HandleImpl {
 public:
  virtual ~HandleImpl() = default;
  [[nodiscard]] virtual std::uint64_t id() const = 0;
  virtual const JobResult& wait() = 0;
  virtual const JobResult* try_result() = 0;
  virtual bool cancel() = 0;
  [[nodiscard]] virtual core::JobProgress progress() = 0;
};

}  // namespace internal

std::uint64_t JobHandle::id() const { return impl_ ? impl_->id() : 0; }

const JobResult& JobHandle::wait() { return impl_->wait(); }

const JobResult* JobHandle::try_result() {
  return impl_ ? impl_->try_result() : nullptr;
}

bool JobHandle::cancel() { return impl_ && impl_->cancel(); }

core::JobProgress JobHandle::progress() const {
  return impl_ ? impl_->progress() : core::JobProgress{};
}

// --- in-process transport ---------------------------------------------------

namespace {

class InProcessHandle final : public internal::HandleImpl {
 public:
  explicit InProcessHandle(core::ScanJob job) : job_(std::move(job)) {}

  [[nodiscard]] std::uint64_t id() const override { return job_.id(); }

  const JobResult& wait() override {
    support::StatusOr<core::Report>& result = job_.wait();
    support::MutexLock lk(mu_);
    fill_locked(result);
    return result_;
  }

  const JobResult* try_result() override {
    support::StatusOr<core::Report>* result = job_.try_result();
    if (result == nullptr) return nullptr;
    support::MutexLock lk(mu_);
    fill_locked(*result);
    return &result_;
  }

  bool cancel() override { return job_.cancel(); }

  [[nodiscard]] core::JobProgress progress() override {
    return job_.progress();
  }

 private:
  // Serializes the report once; later calls reuse the cached JSON.
  void fill_locked(support::StatusOr<core::Report>& result)
      GB_REQUIRES(mu_) {
    if (cached_) return;
    if (result.ok()) {
      result_.report_json = result->to_json();
    } else {
      result_.status = result.status();
    }
    cached_ = true;
  }

  core::ScanJob job_;
  support::Mutex mu_;
  bool cached_ GB_GUARDED_BY(mu_) = false;
  JobResult result_ GB_GUARDED_BY(mu_);
};

}  // namespace

InProcessClient::InProcessClient(Options opts)
    : opts_(std::move(opts)),
      scheduler_([&] {
        core::ScanScheduler::Options sched;
        sched.workers = std::max<std::size_t>(opts_.workers, 1);
        sched.start_paused = opts_.start_paused;
        sched.metrics = opts_.metrics;
        return sched;
      }()) {
  for (const auto& [tenant, weight] : opts_.tenant_weights) {
    scheduler_.set_tenant_weight(tenant, weight);
  }
}

support::StatusOr<JobHandle> InProcessClient::submit(const JobSpec& spec) {
  if (!opts_.resolve_machine) {
    return support::Status::failed_precondition(
        "client: resolve_machine unset");
  }
  machine::Machine* machine = opts_.resolve_machine(spec.machine_id);
  if (machine == nullptr) {
    return support::Status::not_found("client: unknown machine '" +
                                      spec.machine_id + "'");
  }
  core::JobSpec job;
  job.machine = machine;
  job.tenant = spec.tenant;
  job.priority = spec.priority;
  job.kind = spec.kind;
  job.config = spec.to_scan_config();
  if (spec.trace_id != 0) {
    job.trace = obs::TraceContext{spec.trace_id, spec.parent_span_id};
  }
  auto span = obs::default_tracer().span("client.submit", "client");
  support::StatusOr<core::ScanJob> handle = scheduler_.submit(std::move(job));
  if (!handle.ok()) return handle.status();
  // The scheduler derived the job's context from the assigned id (or
  // took the caller's override) — rejoin it now that the id is known.
  span.adopt_context(spec.trace_id != 0
                         ? obs::TraceContext{spec.trace_id,
                                             spec.parent_span_id}
                         : obs::TraceContext::for_job(handle->id()));
  span.arg("job", std::to_string(handle->id()));
  return JobHandle(
      std::make_shared<InProcessHandle>(std::move(handle).value()));
}

support::StatusOr<std::string> InProcessClient::stats_json() {
  return scheduler_.stats().to_json();
}

// --- wire transport ---------------------------------------------------------

namespace internal {

/// One wire connection, shared by the client and every handle it
/// issued. RPCs hold `mu` for their whole request/reply exchange (a
/// result stream included), so frames never interleave.
struct WireConnection {
  explicit WireConnection(std::shared_ptr<daemon::Transport> t)
      : transport(std::move(t)), framer(*transport) {}

  support::Mutex mu;
  std::shared_ptr<daemon::Transport> transport;
  daemon::Framer framer GB_GUARDED_BY(mu);
  /// Set on the first transport/protocol failure; later RPCs fail fast.
  bool broken GB_GUARDED_BY(mu) = false;

  /// Sends `request` and reads one reply frame. Caller holds mu.
  [[nodiscard]] support::StatusOr<std::vector<std::byte>> roundtrip_locked(
      const std::vector<std::byte>& request) GB_REQUIRES(mu) {
    if (broken) {
      return support::Status::unavailable("client: connection is broken");
    }
    // Frame I/O under mu is the design, not an accident: the connection
    // lock exists precisely to serialize request/reply pairs on one
    // socket. Releasing it mid-roundtrip would interleave frames.
    // gb-lint: allow(blocking-under-lock)
    if (support::Status s = framer.write_frame(request); !s.ok()) {
      broken = true;
      return s;
    }
    // gb-lint: allow(blocking-under-lock)
    support::StatusOr<std::vector<std::byte>> reply = framer.read_frame();
    if (!reply.ok()) broken = true;
    return reply;
  }
};

}  // namespace internal

namespace {

using internal::WireConnection;

/// Interprets a reply frame: expected verb -> its payload; kErrorReply
/// -> the server's error as this RPC's status; anything else corrupt.
support::StatusOr<std::vector<std::byte>> expect_verb(
    support::StatusOr<std::vector<std::byte>> frame, daemon::Verb want) {
  if (!frame.ok()) return frame.status();
  support::StatusOr<daemon::Verb> verb = daemon::decode_verb(*frame);
  if (!verb.ok()) return verb.status();
  if (*verb == daemon::Verb::kErrorReply) {
    support::StatusOr<daemon::ErrorReply> err =
        daemon::decode_error_reply(*frame);
    if (!err.ok()) return err.status();
    return err->error;
  }
  if (*verb != want) {
    return support::Status::corrupt("client: unexpected reply verb");
  }
  return frame;
}

class DaemonHandle final : public internal::HandleImpl {
 public:
  DaemonHandle(std::shared_ptr<WireConnection> conn, std::uint64_t id,
               obs::TraceContext ctx)
      : conn_(std::move(conn)), id_(id), ctx_(ctx) {}

  [[nodiscard]] std::uint64_t id() const override { return id_; }

  const JobResult& wait() override {
    support::MutexLock lk(mu_);
    if (cached_) return result_;
    result_ = fetch_result();
    cached_ = true;
    return result_;
  }

  const JobResult* try_result() override {
    {
      support::MutexLock lk(mu_);
      if (cached_) return &result_;
    }
    support::StatusOr<daemon::PollReply> poll = poll_rpc();
    if (!poll.ok() || !poll->status.ok() || !poll->view.finished) {
      return nullptr;
    }
    return &wait();  // terminal: the result RPC returns immediately
  }

  bool cancel() override {
    support::MutexLock conn_lk(conn_->mu);
    support::StatusOr<std::vector<std::byte>> frame = expect_verb(
        conn_->roundtrip_locked(daemon::encode_cancel(id_)),
        daemon::Verb::kCancelReply);
    if (!frame.ok()) return false;
    support::StatusOr<daemon::CancelReply> reply =
        daemon::decode_cancel_reply(*frame);
    return reply.ok() && reply->status.ok() && reply->cancelled;
  }

  [[nodiscard]] core::JobProgress progress() override {
    support::StatusOr<daemon::PollReply> poll = poll_rpc();
    core::JobProgress progress;
    if (poll.ok() && poll->status.ok()) {
      progress.phase = poll->view.phase;
      progress.tasks_done = poll->view.tasks_done;
      progress.tasks_total = poll->view.tasks_total;
    }
    return progress;
  }

 private:
  support::StatusOr<daemon::PollReply> poll_rpc() {
    support::MutexLock conn_lk(conn_->mu);
    support::StatusOr<std::vector<std::byte>> frame =
        expect_verb(conn_->roundtrip_locked(daemon::encode_poll(id_)),
                    daemon::Verb::kPollReply);
    if (!frame.ok()) return frame.status();
    return daemon::decode_poll_reply(*frame);
  }

  /// The blocking stream-result RPC: header, then chunks until `last`.
  JobResult fetch_result() {
    JobResult out;
    // The wait is part of the job's story: one client.wait span, under
    // the job's root context, covering RPC + stream reassembly.
    obs::TraceContextScope trace_scope(ctx_);
    auto span = obs::default_tracer().span("client.wait", "client");
    span.arg("job", std::to_string(id_));
    support::MutexLock conn_lk(conn_->mu);
    support::StatusOr<std::vector<std::byte>> frame = expect_verb(
        conn_->roundtrip_locked(daemon::encode_result(id_)),
        daemon::Verb::kResultReply);
    if (!frame.ok()) {
      out.status = frame.status();
      return out;
    }
    support::StatusOr<daemon::ResultReply> header =
        daemon::decode_result_reply(*frame);
    if (!header.ok()) {
      out.status = header.status();
      conn_->broken = true;
      return out;
    }
    if (!header->status.ok()) {
      out.status = header->status;
      return out;
    }
    support::StatusOr<std::string> json =
        daemon::read_chunked(conn_->framer, header->total_bytes);
    if (!json.ok()) {
      conn_->broken = true;
      out.status = json.status();
      return out;
    }
    out.report_json = std::move(json).value();
    return out;
  }

  std::shared_ptr<WireConnection> conn_;
  std::uint64_t id_;
  obs::TraceContext ctx_;
  support::Mutex mu_;
  bool cached_ GB_GUARDED_BY(mu_) = false;
  JobResult result_ GB_GUARDED_BY(mu_);
};

}  // namespace

DaemonClient::DaemonClient(std::shared_ptr<daemon::Transport> connection)
    : conn_(std::make_shared<internal::WireConnection>(std::move(connection))) {
}

DaemonClient::~DaemonClient() { conn_->transport->close(); }

support::StatusOr<JobHandle> DaemonClient::submit(const JobSpec& spec) {
  // The submit span can only join the job's trace once the reply names
  // the id (the daemon derives the same context from that id — no ids
  // cross the wire backwards).
  auto span = obs::default_tracer().span("client.submit", "client");
  support::MutexLock lk(conn_->mu);
  support::StatusOr<std::vector<std::byte>> frame =
      expect_verb(conn_->roundtrip_locked(daemon::encode_submit(spec)),
                  daemon::Verb::kSubmitReply);
  if (!frame.ok()) return frame.status();
  support::StatusOr<daemon::SubmitReply> reply =
      daemon::decode_submit_reply(*frame);
  if (!reply.ok()) {
    conn_->broken = true;
    return reply.status();
  }
  if (!reply->status.ok()) return reply->status;
  const obs::TraceContext ctx =
      spec.trace_id != 0
          ? obs::TraceContext{spec.trace_id, spec.parent_span_id}
          : obs::TraceContext::for_job(reply->job_id);
  span.adopt_context(ctx);
  span.arg("job", std::to_string(reply->job_id));
  return JobHandle(std::make_shared<DaemonHandle>(conn_, reply->job_id, ctx));
}

JobHandle DaemonClient::attach(std::uint64_t job_id) {
  // Re-attachment derives the default context; a submit that overrode
  // its trace ids keeps them daemon-side (kTrace still finds them).
  return JobHandle(std::make_shared<DaemonHandle>(
      conn_, job_id, obs::TraceContext::for_job(job_id)));
}

support::StatusOr<daemon::StatsReply> DaemonClient::stats_rpc() {
  support::MutexLock lk(conn_->mu);
  support::StatusOr<std::vector<std::byte>> frame =
      expect_verb(conn_->roundtrip_locked(daemon::encode_stats()),
                  daemon::Verb::kStatsReply);
  if (!frame.ok()) return frame.status();
  support::StatusOr<daemon::StatsReplyHeader> header =
      daemon::decode_stats_reply(*frame);
  if (!header.ok()) {
    conn_->broken = true;
    return header.status();
  }
  if (!header->status.ok()) return header->status;
  support::StatusOr<std::string> blob = daemon::read_chunked(
      conn_->framer, header->stats_bytes + header->metrics_bytes);
  if (!blob.ok()) {
    conn_->broken = true;
    return blob.status();
  }
  daemon::StatsReply reply;
  reply.stats_json = blob->substr(0, header->stats_bytes);
  reply.metrics_text = blob->substr(header->stats_bytes);
  return reply;
}

support::StatusOr<std::string> DaemonClient::stats_json() {
  support::StatusOr<daemon::StatsReply> reply = stats_rpc();
  if (!reply.ok()) return reply.status();
  return std::move(reply->stats_json);
}

support::StatusOr<std::string> DaemonClient::metrics_text() {
  support::StatusOr<daemon::StatsReply> reply = stats_rpc();
  if (!reply.ok()) return reply.status();
  return std::move(reply->metrics_text);
}

support::StatusOr<std::vector<obs::TraceEvent>> DaemonClient::trace(
    std::uint64_t job_id) {
  support::MutexLock lk(conn_->mu);
  support::StatusOr<std::vector<std::byte>> frame =
      expect_verb(conn_->roundtrip_locked(daemon::encode_trace(job_id)),
                  daemon::Verb::kTraceReply);
  if (!frame.ok()) return frame.status();
  support::StatusOr<daemon::TraceReply> header =
      daemon::decode_trace_reply(*frame);
  if (!header.ok()) {
    conn_->broken = true;
    return header.status();
  }
  if (!header->status.ok()) return header->status;
  support::StatusOr<std::string> blob =
      daemon::read_chunked(conn_->framer, header->total_bytes);
  if (!blob.ok()) {
    conn_->broken = true;
    return blob.status();
  }
  support::StatusOr<std::vector<obs::TraceEvent>> events =
      daemon::decode_trace_events(*blob);
  if (!events.ok()) conn_->broken = true;
  return events;
}

support::StatusOr<std::string> DaemonClient::health_json() {
  support::MutexLock lk(conn_->mu);
  support::StatusOr<std::vector<std::byte>> frame =
      expect_verb(conn_->roundtrip_locked(daemon::encode_health()),
                  daemon::Verb::kHealthReply);
  if (!frame.ok()) return frame.status();
  support::StatusOr<daemon::HealthReply> reply =
      daemon::decode_health_reply(*frame);
  if (!reply.ok()) {
    conn_->broken = true;
    return reply.status();
  }
  if (!reply->status.ok()) return reply->status;
  return std::move(reply->health_json);
}

std::vector<obs::TraceEvent> merge_trace_events(
    std::vector<obs::TraceEvent> daemon_events,
    std::vector<obs::TraceEvent> local_events) {
  // Identity key: instants share their parent's span id, so the span id
  // alone would collapse distinct markers.
  const auto key = [](const obs::TraceEvent& e) {
    return std::to_string(e.span_id) + '/' + std::to_string(e.ts_us) + '/' +
           e.ph + ('/' + e.name);
  };
  std::map<std::string, std::size_t> by_span;
  for (std::size_t i = 0; i < daemon_events.size(); ++i) {
    by_span.emplace(key(daemon_events[i]), i);
  }
  for (obs::TraceEvent& e : local_events) {
    const auto it = by_span.find(key(e));
    if (it != by_span.end()) {
      // Same span both sides: the transport is in-process and the two
      // "processes" share one tracer — this span was recorded locally,
      // so it keeps its local pid.
      daemon_events[it->second].pid = e.pid;
      continue;
    }
    e.pid = 1;
    daemon_events.push_back(std::move(e));
  }
  return daemon_events;
}

std::string normalized_report_json(std::string_view report_json) {
  std::string j(report_json);
  j = std::regex_replace(j, std::regex("\"wall_seconds\":[0-9eE+.\\-]+"),
                         "\"wall_seconds\":0");
  j = std::regex_replace(j, std::regex("\"queue_seconds\":[0-9eE+.\\-]+"),
                         "\"queue_seconds\":0");
  j = std::regex_replace(j, std::regex("\"worker_threads\":[0-9]+"),
                         "\"worker_threads\":0");
  return j;
}

}  // namespace gb::client
