#include "daemon/client.h"

#include <algorithm>
#include <mutex>
#include <regex>
#include <utility>

#include "daemon/wire.h"

namespace gb::client {

namespace internal {

/// Transport-specific behavior behind JobHandle's shared state.
class HandleImpl {
 public:
  virtual ~HandleImpl() = default;
  [[nodiscard]] virtual std::uint64_t id() const = 0;
  virtual const JobResult& wait() = 0;
  virtual const JobResult* try_result() = 0;
  virtual bool cancel() = 0;
  [[nodiscard]] virtual core::JobProgress progress() = 0;
};

}  // namespace internal

std::uint64_t JobHandle::id() const { return impl_ ? impl_->id() : 0; }

const JobResult& JobHandle::wait() { return impl_->wait(); }

const JobResult* JobHandle::try_result() {
  return impl_ ? impl_->try_result() : nullptr;
}

bool JobHandle::cancel() { return impl_ && impl_->cancel(); }

core::JobProgress JobHandle::progress() const {
  return impl_ ? impl_->progress() : core::JobProgress{};
}

// --- in-process transport ---------------------------------------------------

namespace {

class InProcessHandle final : public internal::HandleImpl {
 public:
  explicit InProcessHandle(core::ScanJob job) : job_(std::move(job)) {}

  [[nodiscard]] std::uint64_t id() const override { return job_.id(); }

  const JobResult& wait() override {
    support::StatusOr<core::Report>& result = job_.wait();
    std::lock_guard<std::mutex> lk(mu_);
    fill_locked(result);
    return result_;
  }

  const JobResult* try_result() override {
    support::StatusOr<core::Report>* result = job_.try_result();
    if (result == nullptr) return nullptr;
    std::lock_guard<std::mutex> lk(mu_);
    fill_locked(*result);
    return &result_;
  }

  bool cancel() override { return job_.cancel(); }

  [[nodiscard]] core::JobProgress progress() override {
    return job_.progress();
  }

 private:
  // Serializes the report once; later calls reuse the cached JSON.
  void fill_locked(support::StatusOr<core::Report>& result) {
    if (cached_) return;
    if (result.ok()) {
      result_.report_json = result->to_json();
    } else {
      result_.status = result.status();
    }
    cached_ = true;
  }

  core::ScanJob job_;
  std::mutex mu_;
  bool cached_ = false;
  JobResult result_;
};

}  // namespace

InProcessClient::InProcessClient(Options opts)
    : opts_(std::move(opts)),
      scheduler_([&] {
        core::ScanScheduler::Options sched;
        sched.workers = std::max<std::size_t>(opts_.workers, 1);
        sched.start_paused = opts_.start_paused;
        sched.metrics = opts_.metrics;
        return sched;
      }()) {
  for (const auto& [tenant, weight] : opts_.tenant_weights) {
    scheduler_.set_tenant_weight(tenant, weight);
  }
}

support::StatusOr<JobHandle> InProcessClient::submit(const JobSpec& spec) {
  if (!opts_.resolve_machine) {
    return support::Status::failed_precondition(
        "client: resolve_machine unset");
  }
  machine::Machine* machine = opts_.resolve_machine(spec.machine_id);
  if (machine == nullptr) {
    return support::Status::not_found("client: unknown machine '" +
                                      spec.machine_id + "'");
  }
  core::JobSpec job;
  job.machine = machine;
  job.tenant = spec.tenant;
  job.priority = spec.priority;
  job.kind = spec.kind;
  job.config = spec.to_scan_config();
  support::StatusOr<core::ScanJob> handle = scheduler_.submit(std::move(job));
  if (!handle.ok()) return handle.status();
  return JobHandle(
      std::make_shared<InProcessHandle>(std::move(handle).value()));
}

support::StatusOr<std::string> InProcessClient::stats_json() {
  return scheduler_.stats().to_json();
}

// --- wire transport ---------------------------------------------------------

namespace internal {

/// One wire connection, shared by the client and every handle it
/// issued. RPCs hold `mu` for their whole request/reply exchange (a
/// result stream included), so frames never interleave.
struct WireConnection {
  explicit WireConnection(std::shared_ptr<daemon::Transport> t)
      : transport(std::move(t)), framer(*transport) {}

  std::mutex mu;
  std::shared_ptr<daemon::Transport> transport;
  daemon::Framer framer;
  /// Set on the first transport/protocol failure; later RPCs fail fast.
  bool broken = false;

  /// Sends `request` and reads one reply frame. Caller holds mu.
  [[nodiscard]] support::StatusOr<std::vector<std::byte>> roundtrip_locked(
      const std::vector<std::byte>& request) {
    if (broken) {
      return support::Status::unavailable("client: connection is broken");
    }
    if (support::Status s = framer.write_frame(request); !s.ok()) {
      broken = true;
      return s;
    }
    support::StatusOr<std::vector<std::byte>> reply = framer.read_frame();
    if (!reply.ok()) broken = true;
    return reply;
  }
};

}  // namespace internal

namespace {

using internal::WireConnection;

/// Interprets a reply frame: expected verb -> its payload; kErrorReply
/// -> the server's error as this RPC's status; anything else corrupt.
support::StatusOr<std::vector<std::byte>> expect_verb(
    support::StatusOr<std::vector<std::byte>> frame, daemon::Verb want) {
  if (!frame.ok()) return frame.status();
  support::StatusOr<daemon::Verb> verb = daemon::decode_verb(*frame);
  if (!verb.ok()) return verb.status();
  if (*verb == daemon::Verb::kErrorReply) {
    support::StatusOr<daemon::ErrorReply> err =
        daemon::decode_error_reply(*frame);
    if (!err.ok()) return err.status();
    return err->error;
  }
  if (*verb != want) {
    return support::Status::corrupt("client: unexpected reply verb");
  }
  return frame;
}

class DaemonHandle final : public internal::HandleImpl {
 public:
  DaemonHandle(std::shared_ptr<WireConnection> conn, std::uint64_t id)
      : conn_(std::move(conn)), id_(id) {}

  [[nodiscard]] std::uint64_t id() const override { return id_; }

  const JobResult& wait() override {
    std::lock_guard<std::mutex> lk(mu_);
    if (cached_) return result_;
    result_ = fetch_result();
    cached_ = true;
    return result_;
  }

  const JobResult* try_result() override {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (cached_) return &result_;
    }
    support::StatusOr<daemon::PollReply> poll = poll_rpc();
    if (!poll.ok() || !poll->status.ok() || !poll->view.finished) {
      return nullptr;
    }
    return &wait();  // terminal: the result RPC returns immediately
  }

  bool cancel() override {
    std::lock_guard<std::mutex> conn_lk(conn_->mu);
    support::StatusOr<std::vector<std::byte>> frame = expect_verb(
        conn_->roundtrip_locked(daemon::encode_cancel(id_)),
        daemon::Verb::kCancelReply);
    if (!frame.ok()) return false;
    support::StatusOr<daemon::CancelReply> reply =
        daemon::decode_cancel_reply(*frame);
    return reply.ok() && reply->status.ok() && reply->cancelled;
  }

  [[nodiscard]] core::JobProgress progress() override {
    support::StatusOr<daemon::PollReply> poll = poll_rpc();
    core::JobProgress progress;
    if (poll.ok() && poll->status.ok()) {
      progress.phase = poll->view.phase;
      progress.tasks_done = poll->view.tasks_done;
      progress.tasks_total = poll->view.tasks_total;
    }
    return progress;
  }

 private:
  support::StatusOr<daemon::PollReply> poll_rpc() {
    std::lock_guard<std::mutex> conn_lk(conn_->mu);
    support::StatusOr<std::vector<std::byte>> frame =
        expect_verb(conn_->roundtrip_locked(daemon::encode_poll(id_)),
                    daemon::Verb::kPollReply);
    if (!frame.ok()) return frame.status();
    return daemon::decode_poll_reply(*frame);
  }

  /// The blocking stream-result RPC: header, then chunks until `last`.
  JobResult fetch_result() {
    JobResult out;
    std::lock_guard<std::mutex> conn_lk(conn_->mu);
    support::StatusOr<std::vector<std::byte>> frame = expect_verb(
        conn_->roundtrip_locked(daemon::encode_result(id_)),
        daemon::Verb::kResultReply);
    if (!frame.ok()) {
      out.status = frame.status();
      return out;
    }
    support::StatusOr<daemon::ResultReply> header =
        daemon::decode_result_reply(*frame);
    if (!header.ok()) {
      out.status = header.status();
      conn_->broken = true;
      return out;
    }
    if (!header->status.ok()) {
      out.status = header->status;
      return out;
    }
    out.report_json.reserve(header->total_bytes);
    for (std::uint32_t expected_seq = 0;; ++expected_seq) {
      support::StatusOr<std::vector<std::byte>> chunk_frame =
          conn_->framer.read_frame();
      if (!chunk_frame.ok()) {
        conn_->broken = true;
        out = JobResult{chunk_frame.status(), ""};
        return out;
      }
      support::StatusOr<daemon::Verb> verb =
          daemon::decode_verb(*chunk_frame);
      if (!verb.ok() || *verb != daemon::Verb::kResultChunk) {
        conn_->broken = true;
        out = JobResult{
            support::Status::corrupt("client: expected result chunk"), ""};
        return out;
      }
      support::StatusOr<daemon::ResultChunk> chunk =
          daemon::decode_result_chunk(*chunk_frame);
      if (!chunk.ok() || chunk->sequence != expected_seq) {
        conn_->broken = true;
        out = JobResult{
            support::Status::corrupt("client: bad result chunk"), ""};
        return out;
      }
      out.report_json += chunk->data;
      if (chunk->last) break;
    }
    if (out.report_json.size() != header->total_bytes) {
      conn_->broken = true;
      out = JobResult{
          support::Status::corrupt("client: result stream size mismatch"),
          ""};
    }
    return out;
  }

  std::shared_ptr<WireConnection> conn_;
  std::uint64_t id_;
  std::mutex mu_;
  bool cached_ = false;
  JobResult result_;
};

}  // namespace

DaemonClient::DaemonClient(std::shared_ptr<daemon::Transport> connection)
    : conn_(std::make_shared<internal::WireConnection>(std::move(connection))) {
}

DaemonClient::~DaemonClient() { conn_->transport->close(); }

support::StatusOr<JobHandle> DaemonClient::submit(const JobSpec& spec) {
  std::lock_guard<std::mutex> lk(conn_->mu);
  support::StatusOr<std::vector<std::byte>> frame =
      expect_verb(conn_->roundtrip_locked(daemon::encode_submit(spec)),
                  daemon::Verb::kSubmitReply);
  if (!frame.ok()) return frame.status();
  support::StatusOr<daemon::SubmitReply> reply =
      daemon::decode_submit_reply(*frame);
  if (!reply.ok()) {
    conn_->broken = true;
    return reply.status();
  }
  if (!reply->status.ok()) return reply->status;
  return JobHandle(std::make_shared<DaemonHandle>(conn_, reply->job_id));
}

JobHandle DaemonClient::attach(std::uint64_t job_id) {
  return JobHandle(std::make_shared<DaemonHandle>(conn_, job_id));
}

support::StatusOr<std::string> DaemonClient::stats_json() {
  std::lock_guard<std::mutex> lk(conn_->mu);
  support::StatusOr<std::vector<std::byte>> frame =
      expect_verb(conn_->roundtrip_locked(daemon::encode_stats()),
                  daemon::Verb::kStatsReply);
  if (!frame.ok()) return frame.status();
  support::StatusOr<daemon::StatsReply> reply =
      daemon::decode_stats_reply(*frame);
  if (!reply.ok()) {
    conn_->broken = true;
    return reply.status();
  }
  if (!reply->status.ok()) return reply->status;
  return reply->stats_json;
}

support::StatusOr<std::string> DaemonClient::metrics_text() {
  std::lock_guard<std::mutex> lk(conn_->mu);
  support::StatusOr<std::vector<std::byte>> frame =
      expect_verb(conn_->roundtrip_locked(daemon::encode_stats()),
                  daemon::Verb::kStatsReply);
  if (!frame.ok()) return frame.status();
  support::StatusOr<daemon::StatsReply> reply =
      daemon::decode_stats_reply(*frame);
  if (!reply.ok()) {
    conn_->broken = true;
    return reply.status();
  }
  if (!reply->status.ok()) return reply->status;
  return reply->metrics_text;
}

std::string normalized_report_json(std::string_view report_json) {
  std::string j(report_json);
  j = std::regex_replace(j, std::regex("\"wall_seconds\":[0-9eE+.\\-]+"),
                         "\"wall_seconds\":0");
  j = std::regex_replace(j, std::regex("\"queue_seconds\":[0-9eE+.\\-]+"),
                         "\"queue_seconds\":0");
  j = std::regex_replace(j, std::regex("\"worker_threads\":[0-9]+"),
                         "\"worker_threads\":0");
  return j;
}

}  // namespace gb::client
