// gb::client — the one fleet-scan client API, over two transports.
//
// Before this layer, callers picked their abstraction by picking a
// process boundary: in-process code drove ScanScheduler/ScanJob
// directly, and anything out-of-process had no API at all. gb::client
// unifies them: submit(JobSpec) returns a JobHandle with the same
// wait / try_result / cancel / progress surface as ScanJob, and the
// transport is an implementation detail —
//
//   * InProcessClient owns a ScanScheduler and runs scans in this
//     process (what examples/enterprise_sweep and `gb scan --fleet`
//     use);
//   * DaemonClient speaks the wire protocol over a daemon::Transport
//     to a (possibly restarted) Daemon, which adds journals, quotas
//     and shards without the caller changing a line.
//
// Results are delivered as schema-v2 report JSON — the only form that
// crosses the wire unchanged — so code written against JobResult works
// identically on both transports.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "core/scan_scheduler.h"
#include "daemon/job_request.h"
#include "daemon/transport.h"
#include "daemon/wire.h"
#include "machine/machine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "support/status.h"

namespace gb::client {

/// The job description clients submit. One value type for both
/// transports (it is what the daemon journals and the wire carries).
using JobSpec = daemon::JobRequest;

/// Terminal outcome of one job.
struct JobResult {
  /// OK, the scan's own error, kCancelled, or — DaemonClient only — a
  /// transport failure (kUnavailable/kCorrupt) if the connection died
  /// before the result arrived.
  support::Status status;
  /// Schema-v2 report JSON; empty unless status is OK.
  std::string report_json;
};

namespace internal {
class HandleImpl;
struct WireConnection;
}  // namespace internal

/// Future-like handle to one submitted job, mirroring core::ScanJob.
/// Cheap to copy (shared state); safe to destroy before completion.
/// All methods may be called from any thread, though on a DaemonClient
/// handle a blocked wait() serializes the connection (other RPCs on
/// the same client wait their turn).
class JobHandle {
 public:
  JobHandle() = default;

  [[nodiscard]] bool valid() const { return impl_ != nullptr; }
  /// Id in the submitting client's domain: the scheduler job id for
  /// InProcessClient, the daemon's journaled (restart-stable) id for
  /// DaemonClient.
  [[nodiscard]] std::uint64_t id() const;

  /// Blocks until the job is terminal; the result is cached, so later
  /// calls are free. The reference lives as long as this handle.
  const JobResult& wait();

  /// Non-blocking: the result if terminal, nullptr while running (or,
  /// for DaemonClient, if the connection failed — poll again or wait()).
  const JobResult* try_result();

  /// Requests cancellation; true if this call initiated it. Through a
  /// daemon the cancel is journaled, so it survives a daemon restart.
  bool cancel();

  /// Progress snapshot. Best-effort over the wire: a failed poll
  /// reports a default (queued, 0/0) snapshot.
  [[nodiscard]] core::JobProgress progress() const;

 private:
  friend class InProcessClient;
  friend class DaemonClient;
  explicit JobHandle(std::shared_ptr<internal::HandleImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::HandleImpl> impl_;
};

/// The transport-agnostic client surface.
class Client {
 public:
  virtual ~Client() = default;

  /// Submits one job. Errors mirror the serving side: kNotFound for an
  /// unknown machine, kResourceExhausted over quota (daemon),
  /// kUnavailable when the service or connection is down.
  [[nodiscard]] virtual support::StatusOr<JobHandle> submit(
      const JobSpec& spec) = 0;

  /// Serving-side stats as JSON (SchedulerStats for InProcessClient,
  /// DaemonStats for DaemonClient).
  [[nodiscard]] virtual support::StatusOr<std::string> stats_json() = 0;
};

/// Runs jobs on a ScanScheduler it owns — the zero-infrastructure
/// transport.
class InProcessClient final : public Client {
 public:
  struct Options {
    /// Scheduler worker-pool width (>= 1; the fleet is the parallelism).
    std::size_t workers = 2;
    /// Queue jobs but dispatch nothing until resume().
    bool start_paused = false;
    /// DRR weights (absent tenant = 1).
    std::map<std::string, std::uint32_t> tenant_weights;
    /// Maps JobSpec::machine_id to the Machine to scan. Required.
    std::function<machine::Machine*(const std::string&)> resolve_machine;
    /// Scheduler telemetry sink (null = private registry).
    obs::MetricsRegistry* metrics = nullptr;
  };

  explicit InProcessClient(Options opts);

  [[nodiscard]] support::StatusOr<JobHandle> submit(
      const JobSpec& spec) override;
  [[nodiscard]] support::StatusOr<std::string> stats_json() override;

  // Local-only controls, passed through to the owned scheduler.
  void resume() { scheduler_.resume(); }
  void wait_idle() { scheduler_.wait_idle(); }
  [[nodiscard]] core::SchedulerStats stats() const {
    return scheduler_.stats();
  }

 private:
  Options opts_;
  core::ScanScheduler scheduler_;
};

/// Speaks the wire protocol to a Daemon over one connection. RPCs are
/// serialized on that connection; a corrupt or closed stream fails the
/// in-flight call with kCorrupt/kUnavailable and poisons the client
/// (subsequent calls fail fast — reconnect by building a new client).
class DaemonClient final : public Client {
 public:
  explicit DaemonClient(std::shared_ptr<daemon::Transport> connection);
  ~DaemonClient() override;

  [[nodiscard]] support::StatusOr<JobHandle> submit(
      const JobSpec& spec) override;
  [[nodiscard]] support::StatusOr<std::string> stats_json() override;

  /// Re-attaches to a job submitted by an earlier client (the daemon's
  /// job ids are journaled, so they survive both client and daemon
  /// restarts). The handle works exactly like one from submit().
  [[nodiscard]] JobHandle attach(std::uint64_t job_id);

  /// The daemon's Prometheus metrics exposition (kStats verb).
  [[nodiscard]] support::StatusOr<std::string> metrics_text();

  /// The daemon's span tree for one job (kTrace verb): every event the
  /// daemon recorded under the job's trace id, pid-stamped 2. Merge
  /// with the local tracer's events (obs::merge docs in
  /// docs/observability.md) and render via obs::chrome_trace_json for
  /// the single cross-process trace `gb trace <job-id>` writes.
  [[nodiscard]] support::StatusOr<std::vector<obs::TraceEvent>> trace(
      std::uint64_t job_id);

  /// The daemon's health/SLO surface (kHealth verb): per-subsystem
  /// verdicts plus rolling latency quantiles, as JSON.
  [[nodiscard]] support::StatusOr<std::string> health_json();

 private:
  /// One kStats exchange: header + chunk stream, reassembled.
  [[nodiscard]] support::StatusOr<daemon::StatsReply> stats_rpc();

  std::shared_ptr<internal::WireConnection> conn_;
};

/// Merges daemon-fetched trace events with the local tracer's by span
/// id: daemon events come first; local events whose span id the daemon
/// already returned win their pid back (they were recorded in THIS
/// process — the in-process-transport case, where both sides share one
/// tracer); local-only events append as pid 1. The result renders as
/// one multi-process Chrome trace either way.
[[nodiscard]] std::vector<obs::TraceEvent> merge_trace_events(
    std::vector<obs::TraceEvent> daemon_events,
    std::vector<obs::TraceEvent> local_events);

/// Report JSON with the wall-clock-derived fields (wall_seconds,
/// queue_seconds, worker_threads) normalized to 0 — the projection in
/// which reports are byte-identical across worker counts, restarts and
/// journal replays. What the kill-and-restart tests and bench_daemon
/// compare.
[[nodiscard]] std::string normalized_report_json(std::string_view report_json);

}  // namespace gb::client
