#include "daemon/daemon.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace gb::daemon {
namespace {

// Sums shard scheduler stats into one fleet view; tenants merge by id
// (weights are identical across shards — the daemon sets them all).
core::SchedulerStats merge_shard_stats(
    const std::vector<core::SchedulerStats>& per_shard) {
  core::SchedulerStats out;
  std::map<std::string, core::SchedulerStats::Tenant> tenants;
  for (const core::SchedulerStats& s : per_shard) {
    out.queue_depth += s.queue_depth;
    out.running += s.running;
    out.submitted += s.submitted;
    out.served += s.served;
    out.cancelled += s.cancelled;
    out.total_queue_seconds += s.total_queue_seconds;
    out.total_run_seconds += s.total_run_seconds;
    out.max_latency_seconds =
        std::max(out.max_latency_seconds, s.max_latency_seconds);
    for (const core::SchedulerStats::Tenant& t : s.tenants) {
      core::SchedulerStats::Tenant& m = tenants[t.id];
      m.id = t.id;
      m.weight = t.weight;
      m.submitted += t.submitted;
      m.served += t.served;
      m.cancelled += t.cancelled;
      m.queued += t.queued;
    }
  }
  for (auto& [id, t] : tenants) out.tenants.push_back(std::move(t));
  return out;
}

}  // namespace

struct Daemon::JobRecord {
  std::uint64_t id = 0;
  JobRequest request;
  std::uint32_t shard = 0;
  /// Invalid for jobs served straight from the journal's result store.
  core::ScanJob handle;
  /// A journal record already decided this job's terminal outcome (a
  /// kCancel written by cancel_job, or the kComplete written here).
  /// Once set, no further terminal record may be appended for this id.
  bool terminal_journaled = false;
  bool done = false;
  support::Status result_status;
  std::string report_json;
};

Daemon::Daemon(DaemonOptions opts)
    : opts_(std::move(opts)),
      event_log_(opts_.event_log_capacity),
      clock_epoch_(std::chrono::steady_clock::now()),
      serve_pool_(std::max<std::size_t>(opts_.max_connections, 1)) {}

support::StatusOr<std::unique_ptr<Daemon>> Daemon::start(DaemonOptions opts) {
  // gb-lint: allow(naked-new) — make_unique cannot reach the private ctor.
  std::unique_ptr<Daemon> daemon(new Daemon(std::move(opts)));
  if (support::Status s = daemon->init(); !s.ok()) return s;
  return daemon;
}

support::Status Daemon::init() {
  if (opts_.journal_path.empty()) {
    return support::Status::failed_precondition("daemon: journal_path unset");
  }
  if (!opts_.resolve_machine) {
    return support::Status::failed_precondition(
        "daemon: resolve_machine unset");
  }
  if (opts_.shards == 0) opts_.shards = 1;
  // Zero shard workers would dispatch inline on the submitting thread —
  // under the daemon lock, straight into the completion hook. Refuse.
  opts_.workers_per_shard = std::max<std::size_t>(opts_.workers_per_shard, 1);

  obs::MetricsRegistry* registry = opts_.metrics;
  if (registry == nullptr) {
    own_metrics_ = std::make_unique<obs::MetricsRegistry>();
    registry = own_metrics_.get();
  }
  m_submitted_ = &registry->counter("gb_daemon_submitted_total");
  m_completed_ = &registry->counter("gb_daemon_completed_total");
  m_rejected_ = &registry->counter("gb_daemon_rejected_total");
  m_requeued_ = &registry->counter("gb_daemon_requeued_total");
  registry->set_help("gb_daemon_submitted_total",
                     "Jobs admitted and journaled by the daemon");
  registry->set_help("gb_daemon_completed_total",
                     "Jobs that reached a terminal result");
  registry->set_help("gb_daemon_rejected_total",
                     "Submits refused by admission control");
  registry->set_help("gb_daemon_requeued_total",
                     "Journaled jobs re-queued at restart");

  limiter_ = std::make_unique<RateLimiter>(opts_.quotas);

  support::StatusOr<JobJournal> journal = JobJournal::open(opts_.journal_path);
  if (!journal.ok()) return journal.status();
  journal_ = std::make_unique<JobJournal>(std::move(journal).value());

  // The flight recorder rides alongside the journal: same directory,
  // same crash-recovery story (attach replays the previous incarnation
  // and truncates its torn tail). A recorder that cannot persist still
  // records in memory — observability must not take the daemon down.
  if (opts_.event_log_path.empty()) {
    opts_.event_log_path = opts_.journal_path + ".events";
  }
  event_log_status_ = event_log_.attach(opts_.event_log_path);

  // Shards get private metric registries: scheduler stats are read back
  // from the registry, and N shards writing one registry would mix.
  for (std::size_t i = 0; i < opts_.shards; ++i) {
    core::ScanScheduler::Options shard_opts;
    shard_opts.workers = opts_.workers_per_shard;
    shards_.push_back(std::make_unique<core::ScanScheduler>(shard_opts));
    for (const auto& [tenant, weight] : opts_.tenant_weights) {
      shards_.back()->set_tenant_weight(tenant, weight);
    }
  }

  // Fold the journal's replay image in: completed jobs become the
  // at-most-once result store, pending jobs (submitted, maybe started,
  // never terminal) go back on their shards.
  const JournalReplay& replay = journal_->replay();
  support::MutexLock lk(mu_);
  next_id_ = replay.next_job_id;
  counters_.journal_truncated_bytes = replay.truncated_bytes;
  if (replay.truncated_bytes > 0) {
    event_log_.append(obs::EventType::kJournalTruncated, 0,
                      std::to_string(replay.truncated_bytes) +
                          " torn byte(s) dropped at open");
  }
  for (const auto& [id, done] : replay.completed) {
    auto rec = std::make_unique<JobRecord>();
    rec->id = id;
    rec->request = done.request;
    rec->terminal_journaled = true;
    rec->done = true;
    rec->result_status = done.status;
    rec->report_json = done.report_json;
    tenant_submitted_[done.request.tenant] += 1;
    counters_.replayed_completed += 1;
    jobs_.emplace(id, std::move(rec));
  }
  for (const JournalReplay::PendingJob& pending : replay.pending) {
    auto rec = std::make_unique<JobRecord>();
    rec->id = pending.id;
    rec->request = pending.request;
    JobRecord& r = *rec;
    jobs_.emplace(pending.id, std::move(rec));
    tenant_submitted_[pending.request.tenant] += 1;
    tenant_outstanding_[pending.request.tenant] += 1;
    counters_.requeued += 1;
    if (pending.started) counters_.requeued_started += 1;
    m_requeued_->inc();
    event_log_.append(obs::EventType::kRequeued, pending.id,
                      pending.started ? "lost mid-scan" : "never started");
    dispatch_locked(r);
  }
  return support::Status();
}

Daemon::~Daemon() {
  {
    support::MutexLock lk(mu_);
    shutting_down_ = true;
  }
  close_connections();
  if (!dying_.load(std::memory_order_acquire)) {
    // Graceful: drain every in-flight job; each completion journals
    // before the journal handle is destroyed below.
    for (const auto& shard : shards_) shard->wait_idle();
    event_log_.append(obs::EventType::kDrain, 0, "graceful shutdown");
  }
  done_cv_.notify_all();
  // Members unwind in reverse order: serve_pool_ joins the (now
  // unblocked) connection loops first, then shards, journal, the rest.
}

double Daemon::now_seconds() const {
  if (opts_.clock) return opts_.clock();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       clock_epoch_)
      .count();
}

support::StatusOr<std::uint64_t> Daemon::submit(const JobRequest& request) {
  support::MutexLock lk(mu_);
  if (shutting_down_ || killed_) {
    return support::Status::unavailable("daemon: shutting down");
  }
  if (opts_.resolve_machine(request.machine_id) == nullptr) {
    return support::Status::not_found("daemon: unknown machine '" +
                                      request.machine_id + "'");
  }
  support::Status admitted =
      limiter_->admit(request.tenant, now_seconds(),
                      tenant_outstanding_[request.tenant],
                      tenant_submitted_[request.tenant]);
  if (!admitted.ok()) {
    m_rejected_->inc();
    event_log_.append(obs::EventType::kRejected, 0,
                      request.tenant + ": " + admitted.message());
    return admitted;
  }
  const std::uint64_t id = next_id_;
  // Durable before acknowledged: the id is only issued (and the in-
  // memory record only created) once the submit record is on disk.
  if (support::Status s = journal_->append_submit(id, request); !s.ok()) {
    counters_.journal_append_failures += 1;
    return support::Status::unavailable("daemon: journal append failed: " +
                                        s.message());
  }
  next_id_ += 1;
  auto rec = std::make_unique<JobRecord>();
  rec->id = id;
  rec->request = request;
  JobRecord& r = *rec;
  jobs_.emplace(id, std::move(rec));
  tenant_submitted_[request.tenant] += 1;
  tenant_outstanding_[request.tenant] += 1;
  counters_.submitted += 1;
  m_submitted_->inc();
  event_log_.append(obs::EventType::kSubmit, id,
                    request.tenant + " -> " + request.machine_id);
  dispatch_locked(r);
  return id;
}

obs::TraceContext Daemon::trace_context_for(const JobRecord& rec) {
  if (rec.request.trace_id != 0) {
    return obs::TraceContext{rec.request.trace_id,
                             rec.request.parent_span_id};
  }
  return obs::TraceContext::for_job(rec.id);
}

void Daemon::dispatch_locked(JobRecord& rec) {
  rec.shard = static_cast<std::uint32_t>(
      machine_shard_hash(rec.request.machine_id) % shards_.size());
  machine::Machine* machine = opts_.resolve_machine(rec.request.machine_id);
  if (machine == nullptr) {
    // Replayed job whose machine left the catalog: terminal, not lost.
    finish_locked(rec, support::Status::not_found(
                           "daemon: unknown machine '" +
                           rec.request.machine_id + "'"),
                  "");
    return;
  }
  core::JobSpec spec;
  spec.machine = machine;
  spec.tenant = rec.request.tenant;
  spec.priority = rec.request.priority;
  spec.kind = rec.request.kind;
  spec.config = rec.request.to_scan_config();
  // The job runs under the daemon's trace identity — client-supplied
  // ids if the submit carried them, else derived from the journaled job
  // id (which a remote client re-derives from the submit reply). Either
  // way both sides of the wire agree without shipping ids back.
  spec.trace = trace_context_for(rec);
  const std::uint64_t id = rec.id;
  spec.on_complete = [this, id](std::uint64_t,
                                support::StatusOr<core::Report>& result) {
    on_job_complete(id, result);
  };
  // Dispatch under mu is the journal-before-acknowledge invariant: the
  // job record, shard assignment, and journal entry must be one atomic
  // step or a crash between them orphans the job. The shard's pool has
  // dedicated workers, so submit() enqueues without running work inline.
  support::StatusOr<core::ScanJob> handle =
      // gb-lint: allow(blocking-under-lock)
      shards_[rec.shard]->submit(std::move(spec));
  if (!handle.ok()) {
    finish_locked(rec, handle.status(), "");
    return;
  }
  rec.handle = std::move(handle).value();
  if (support::Status s = journal_->append_start(rec.id, rec.shard);
      !s.ok()) {
    counters_.journal_append_failures += 1;
  }
  event_log_.append(obs::EventType::kStart, rec.id,
                    "shard " + std::to_string(rec.shard));
}

void Daemon::finish_locked(JobRecord& rec, const support::Status& status,
                           std::string report_json) {
  if (rec.done) return;
  if (!rec.terminal_journaled) {
    support::Status s =
        status.code() == support::StatusCode::kCancelled
            ? journal_->append_cancel(rec.id)
            : journal_->append_complete(rec.id, status, report_json);
    if (!s.ok()) counters_.journal_append_failures += 1;
    rec.terminal_journaled = true;
  }
  rec.done = true;
  rec.result_status = status;
  rec.report_json = std::move(report_json);
  counters_.completed += 1;
  if (status.code() == support::StatusCode::kCancelled) {
    counters_.cancelled += 1;
    event_log_.append(obs::EventType::kCancel, rec.id, status.message());
  } else {
    event_log_.append(obs::EventType::kComplete, rec.id,
                      status.ok() ? "ok" : status.to_string());
  }
  m_completed_->inc();
  auto outstanding = tenant_outstanding_.find(rec.request.tenant);
  if (outstanding != tenant_outstanding_.end() && outstanding->second > 0) {
    outstanding->second -= 1;
  }
  done_cv_.notify_all();
}

void Daemon::on_job_complete(std::uint64_t id,
                             support::StatusOr<core::Report>& result) {
  // A dying daemon records nothing — this is the crash: the journal
  // keeps the submit but never the completion, so restart re-runs it.
  if (dying_.load(std::memory_order_acquire)) return;
  std::string report_json;
  if (result.ok()) {
    // The scheduler stamped its shard-local job id; overwrite with the
    // daemon's journaled id, which is the one stable across restarts.
    if (result->scheduler) result->scheduler->job_id = id;
    report_json = result->to_json();
    // One event per degraded diff, so the recorder answers "which view
    // fell back" without re-parsing the report.
    for (const auto& d : result->diffs) {
      if (d.degraded()) {
        event_log_.append(obs::EventType::kDegraded, id,
                          std::string(core::resource_type_name(d.type)) +
                              ": " + d.status.to_string());
      }
    }
  }
  support::MutexLock lk(mu_);
  if (killed_) return;
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return;
  JobRecord& rec = *it->second;
  if (rec.done) return;
  if (rec.terminal_journaled) {
    // A durable cancel record (cancel_job) already decided this job:
    // the race is resolved in the journal's favor, the report dropped,
    // so the live daemon and every replay agree.
    finish_locked(rec, support::Status::cancelled("cancelled via daemon"),
                  "");
    return;
  }
  finish_locked(rec, result.ok() ? support::Status() : result.status(),
                std::move(report_json));
}

support::StatusOr<JobView> Daemon::poll(std::uint64_t job_id) const {
  support::MutexLock lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return support::Status::not_found("daemon: no job " +
                                      std::to_string(job_id));
  }
  const JobRecord& rec = *it->second;
  JobView view;
  view.id = job_id;
  if (rec.handle.valid()) {
    const core::JobProgress progress = rec.handle.progress();
    view.phase = progress.phase;
    view.tasks_done = progress.tasks_done;
    view.tasks_total = progress.tasks_total;
  }
  if (rec.done) {
    view.phase = core::JobPhase::kDone;
    view.finished = true;
    view.result = rec.result_status;
  }
  return view;
}

support::StatusOr<std::string> Daemon::wait_result(std::uint64_t job_id) {
  support::CondLock lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return support::Status::not_found("daemon: no job " +
                                      std::to_string(job_id));
  }
  JobRecord& rec = *it->second;
  done_cv_.wait(lk.native(), [&] { return rec.done || killed_; });
  if (!rec.done) {
    return support::Status::unavailable("daemon: killed while waiting");
  }
  if (!rec.result_status.ok()) return rec.result_status;
  return rec.report_json;
}

support::StatusOr<bool> Daemon::cancel_job(std::uint64_t job_id) {
  JobRecord* rec = nullptr;
  {
    support::MutexLock lk(mu_);
    const auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return support::Status::not_found("daemon: no job " +
                                        std::to_string(job_id));
    }
    rec = it->second.get();
    if (rec->done || rec->terminal_journaled) return false;
    if (killed_) return support::Status::unavailable("daemon: killed");
    // The durable record comes first and thereafter *is* the outcome:
    // even if the scan wins the race below, every incarnation of this
    // daemon reports the job cancelled.
    if (support::Status s = journal_->append_cancel(job_id); !s.ok()) {
      counters_.journal_append_failures += 1;
      return support::Status::unavailable("daemon: journal append failed: " +
                                          s.message());
    }
    rec->terminal_journaled = true;
  }
  // Outside mu_: cancelling a queued job completes it synchronously,
  // which re-enters on_job_complete -> mu_.
  if (rec->handle.valid()) (void)rec->handle.cancel();
  return true;
}

void Daemon::wait_idle() {
  {
    support::CondLock lk(mu_);
    done_cv_.wait(lk.native(), [&] {
      if (killed_) return true;
      for (const auto& [id, rec] : jobs_) {
        if (!rec->done) return false;
      }
      return true;
    });
    if (killed_) return;
  }
  // The daemon marks a job done from inside the completion hook, a hair
  // before the scheduler retires the worker — drain the shards too so a
  // stats() call right after wait_idle() sees nothing still "running".
  // (Not safe against a concurrent kill(); drain from the control
  // thread that would issue it.)
  for (const auto& shard : shards_) shard->wait_idle();
}

DaemonStats Daemon::stats() const {
  support::MutexLock lk(mu_);
  DaemonStats stats = counters_;
  stats.shards = shards_.empty() ? opts_.shards : shards_.size();
  for (const auto& [tenant, rejections] : limiter_->rejections()) {
    stats.rejected_rate += rejections.rate;
    stats.rejected_quota += rejections.outstanding + rejections.total;
  }
  for (const auto& shard : shards_) {
    stats.per_shard.push_back(shard->stats());
  }
  stats.combined = merge_shard_stats(stats.per_shard);
  return stats;
}

std::string Daemon::stats_json() const { return stats().to_json(); }

std::string Daemon::metrics_text() const {
  const obs::MetricsRegistry* registry =
      opts_.metrics != nullptr ? opts_.metrics : own_metrics_.get();
  return registry->to_prometheus_text();
}

std::string Daemon::health_json() const {
  support::MutexLock lk(mu_);
  const std::uint64_t journal_failures = counters_.journal_append_failures;
  const std::uint64_t truncated = counters_.journal_truncated_bytes;
  // Torn bytes mean the last incarnation crashed mid-append; the tail
  // was repaired, but the operator should know — degraded, not broken.
  const bool journal_ok = journal_failures == 0 && truncated == 0;

  std::size_t queue_depth = 0;
  std::size_t running = 0;
  core::LatencyQuantiles queue_wait;
  core::LatencyQuantiles run;
  for (const auto& shard : shards_) {
    const core::SchedulerStats s = shard->stats();
    queue_depth += s.queue_depth;
    running += s.running;
    // Exact cross-shard quantile merging would need the raw buckets;
    // the max over shards is the conservative fleet view (no shard is
    // slower than reported) and is exact for the one-shard case.
    const core::LatencyQuantiles qw = shard->queue_wait_quantiles();
    const core::LatencyQuantiles rn = shard->run_quantiles();
    queue_wait.p50 = std::max(queue_wait.p50, qw.p50);
    queue_wait.p95 = std::max(queue_wait.p95, qw.p95);
    queue_wait.p99 = std::max(queue_wait.p99, qw.p99);
    run.p50 = std::max(run.p50, rn.p50);
    run.p95 = std::max(run.p95, rn.p95);
    run.p99 = std::max(run.p99, rn.p99);
  }
  const std::size_t workers =
      shards_.size() * std::max<std::size_t>(opts_.workers_per_shard, 1);
  const bool pool_saturated = running >= workers && queue_depth > 0;

  std::uint64_t rejected = 0;
  for (const auto& [tenant, rejections] : limiter_->rejections()) {
    rejected += rejections.rate + rejections.outstanding + rejections.total;
  }

  const bool recorder_ok =
      event_log_status_.ok() && event_log_.write_failures() == 0;
  const bool ok = journal_ok && !killed_ && recorder_ok;

  const auto verdict = [](bool subsystem_ok) {
    return subsystem_ok ? "true" : "false";
  };
  std::ostringstream os;
  os << "{\"schema_version\":\"1.0\",\"ok\":" << verdict(ok)
     << ",\"subsystems\":{";
  os << "\"journal\":{\"ok\":" << verdict(journal_ok)
     << ",\"append_failures\":" << journal_failures
     << ",\"truncated_bytes\":" << truncated << ",\"reason\":\""
     << (journal_ok ? ""
         : journal_failures > 0
             ? "journal appends are failing"
             : "torn tail repaired after a crash")
     << "\"}";
  os << ",\"shards\":{\"ok\":true,\"count\":" << shards_.size()
     << ",\"queue_depth\":" << queue_depth << ",\"running\":" << running
     << "}";
  os << ",\"pool\":{\"ok\":" << verdict(!pool_saturated)
     << ",\"workers\":" << workers << ",\"reason\":\""
     << (pool_saturated ? "all workers busy with jobs queued" : "")
     << "\"}";
  os << ",\"admission\":{\"ok\":" << verdict(rejected == 0)
     << ",\"rejected\":" << rejected << ",\"reason\":\""
     << (rejected == 0 ? "" : "tenants are being rejected") << "\"}";
  os << ",\"flight_recorder\":{\"ok\":" << verdict(recorder_ok)
     << ",\"events\":" << event_log_.appended()
     << ",\"write_failures\":" << event_log_.write_failures()
     << ",\"reason\":\""
     << (recorder_ok ? "" : "recorder persistence unavailable") << "\"}";
  os << "},\"latency_seconds\":{";
  os << "\"queue_wait\":{\"p50\":" << queue_wait.p50
     << ",\"p95\":" << queue_wait.p95 << ",\"p99\":" << queue_wait.p99
     << "}";
  os << ",\"run\":{\"p50\":" << run.p50 << ",\"p95\":" << run.p95
     << ",\"p99\":" << run.p99 << "}";
  os << "}}";
  return os.str();
}

support::StatusOr<obs::TraceContext> Daemon::job_trace_context(
    std::uint64_t job_id) const {
  support::MutexLock lk(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end()) {
    return support::Status::not_found("daemon: no job " +
                                      std::to_string(job_id));
  }
  return trace_context_for(*it->second);
}

support::StatusOr<std::vector<obs::TraceEvent>> Daemon::trace_events(
    std::uint64_t job_id) const {
  support::StatusOr<obs::TraceContext> ctx = job_trace_context(job_id);
  if (!ctx.ok()) return ctx.status();
  std::vector<obs::TraceEvent> events =
      obs::default_tracer().snapshot(ctx->trace_id);
  // pid 2 marks "recorded daemon-side" in the merged-trace convention.
  // A client sharing this process (and hence the tracer) re-labels the
  // spans it recorded itself back to pid 1 by span id.
  for (obs::TraceEvent& e : events) e.pid = 2;
  return events;
}

void Daemon::serve(std::shared_ptr<Transport> connection) {
  {
    support::MutexLock lk(conns_mu_);
    std::erase_if(conns_, [](const std::weak_ptr<Transport>& conn) {
      return conn.expired();
    });
    conns_.push_back(connection);
  }
  (void)serve_pool_.submit(
      [this, connection] { serve_connection(connection); });
}

void Daemon::serve_connection(const std::shared_ptr<Transport>& connection) {
  Framer framer(*connection);
  for (;;) {
    support::StatusOr<std::vector<std::byte>> frame = framer.read_frame();
    if (!frame.ok()) {
      // Clean close (kUnavailable) ends the loop silently; a poisoned
      // stream (kCorrupt) gets a best-effort error reply first. Either
      // way only this connection dies — the daemon serves on.
      if (frame.status().code() == support::StatusCode::kCorrupt) {
        (void)framer.write_frame(encode_error_reply(frame.status()));
      }
      break;
    }
    support::StatusOr<Verb> verb = decode_verb(*frame);
    if (!verb.ok()) {
      (void)framer.write_frame(encode_error_reply(verb.status()));
      break;
    }
    support::Status io;
    bool drop = false;
    switch (*verb) {
      case Verb::kSubmit: {
        support::StatusOr<JobRequest> request = decode_submit(*frame);
        if (!request.ok()) {
          io = framer.write_frame(encode_error_reply(request.status()));
          drop = true;
          break;
        }
        SubmitReply reply;
        // The span's trace identity only exists once the id is
        // assigned, so it is adopted after the fact — the same move the
        // remote client makes with the reply.
        auto span = obs::default_tracer().span("wire.submit", "wire");
        support::StatusOr<std::uint64_t> id = submit(*request);
        if (id.ok()) {
          reply.job_id = *id;
          span.adopt_context(
              request->trace_id != 0
                  ? obs::TraceContext{request->trace_id,
                                      request->parent_span_id}
                  : obs::TraceContext::for_job(*id));
          span.arg("job", std::to_string(*id));
        } else {
          reply.status = id.status();
        }
        io = framer.write_frame(encode_submit_reply(reply));
        break;
      }
      case Verb::kPoll: {
        support::StatusOr<std::uint64_t> id = decode_job_id(*frame);
        if (!id.ok()) {
          io = framer.write_frame(encode_error_reply(id.status()));
          drop = true;
          break;
        }
        PollReply reply;
        support::StatusOr<JobView> view = poll(*id);
        if (view.ok()) {
          reply.view = *view;
        } else {
          reply.status = view.status();
        }
        io = framer.write_frame(encode_poll_reply(reply));
        break;
      }
      case Verb::kCancel: {
        support::StatusOr<std::uint64_t> id = decode_job_id(*frame);
        if (!id.ok()) {
          io = framer.write_frame(encode_error_reply(id.status()));
          drop = true;
          break;
        }
        CancelReply reply;
        support::StatusOr<bool> cancelled = cancel_job(*id);
        if (cancelled.ok()) {
          reply.cancelled = *cancelled;
        } else {
          reply.status = cancelled.status();
        }
        io = framer.write_frame(encode_cancel_reply(reply));
        break;
      }
      case Verb::kStats: {
        // Header names the byte counts, then both texts stream as
        // chunks — a giant registry dump can never hit the frame cap.
        const std::string stats = stats_json();
        const std::string metrics = metrics_text();
        StatsReplyHeader header;
        header.stats_bytes = stats.size();
        header.metrics_bytes = metrics.size();
        io = framer.write_frame(encode_stats_reply(header));
        if (io.ok()) io = write_chunked(framer, stats + metrics);
        break;
      }
      case Verb::kResult: {
        support::StatusOr<std::uint64_t> id = decode_job_id(*frame);
        if (!id.ok()) {
          io = framer.write_frame(encode_error_reply(id.status()));
          drop = true;
          break;
        }
        auto span = obs::default_tracer().span("wire.result", "wire");
        if (support::StatusOr<obs::TraceContext> ctx = job_trace_context(*id);
            ctx.ok()) {
          span.adopt_context(*ctx);
          span.arg("job", std::to_string(*id));
        }
        support::StatusOr<std::string> result = wait_result(*id);
        ResultReply header;
        if (result.ok()) {
          header.total_bytes = result->size();
        } else {
          header.status = result.status();
        }
        io = framer.write_frame(encode_result_reply(header));
        if (!io.ok() || !result.ok()) break;
        io = write_chunked(framer, *result);
        break;
      }
      case Verb::kTrace: {
        support::StatusOr<std::uint64_t> id = decode_job_id(*frame);
        if (!id.ok()) {
          io = framer.write_frame(encode_error_reply(id.status()));
          drop = true;
          break;
        }
        support::StatusOr<std::vector<obs::TraceEvent>> events =
            trace_events(*id);
        TraceReply header;
        std::string blob;
        if (events.ok()) {
          blob = encode_trace_events(*events);
          header.total_bytes = blob.size();
        } else {
          header.status = events.status();
        }
        io = framer.write_frame(encode_trace_reply(header));
        if (!io.ok() || !events.ok()) break;
        io = write_chunked(framer, blob);
        break;
      }
      case Verb::kHealth: {
        HealthReply reply;
        reply.health_json = health_json();
        io = framer.write_frame(encode_health_reply(reply));
        break;
      }
      default: {
        // A reply verb from a client is a protocol violation.
        io = framer.write_frame(encode_error_reply(support::Status::corrupt(
            "wire: unexpected verb from client")));
        drop = true;
        break;
      }
    }
    if (!io.ok() || drop) break;
  }
  connection->close();
}

void Daemon::close_connections() {
  support::MutexLock lk(conns_mu_);
  for (const std::weak_ptr<Transport>& weak : conns_) {
    if (std::shared_ptr<Transport> conn = weak.lock()) conn->close();
  }
  conns_.clear();
}

void Daemon::kill() {
  // Recorded (and flushed) before journaling stops: the crash itself is
  // the last thing a post-mortem `--flight-recorder` dump shows. A real
  // SIGKILL would leave no such record — the replay then simply ends at
  // the last lifecycle event, which is the same story one line shorter.
  event_log_.append(obs::EventType::kKill, 0, "simulated SIGKILL");
  dying_.store(true, std::memory_order_release);
  {
    support::MutexLock lk(mu_);
    killed_ = true;
    shutting_down_ = true;
  }
  close_connections();
  // Tear the workers down the way a SIGKILL would look to the journal:
  // queued jobs cancel, running scans bail at the next task boundary
  // (never advancing their machine's clock), and none of it is
  // journaled — dying_ makes the completion hook a no-op.
  shards_.clear();
  done_cv_.notify_all();
}

std::string DaemonStats::to_string() const {
  std::ostringstream os;
  os << "daemon: " << shards << " shard(s); " << submitted << " submitted / "
     << completed << " completed / " << cancelled << " cancelled";
  if (rejected_rate + rejected_quota > 0) {
    os << "; rejected " << rejected_rate << " rate + " << rejected_quota
       << " quota";
  }
  os << "\n";
  if (replayed_completed + requeued > 0) {
    os << "  restart: " << replayed_completed << " served from journal, "
       << requeued << " re-queued (" << requeued_started
       << " lost mid-scan), " << journal_truncated_bytes
       << " torn byte(s) truncated\n";
  }
  os << "  " << combined.to_string();
  return os.str();
}

std::string DaemonStats::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":\"2.6\",\"shards\":" << shards
     << ",\"submitted\":" << submitted << ",\"completed\":" << completed
     << ",\"cancelled\":" << cancelled
     << ",\"rejected_rate\":" << rejected_rate
     << ",\"rejected_quota\":" << rejected_quota
     << ",\"journal_append_failures\":" << journal_append_failures
     << ",\"replayed_completed\":" << replayed_completed
     << ",\"requeued\":" << requeued
     << ",\"requeued_started\":" << requeued_started
     << ",\"journal_truncated_bytes\":" << journal_truncated_bytes
     << ",\"combined\":" << combined.to_json() << ",\"per_shard\":[";
  for (std::size_t i = 0; i < per_shard.size(); ++i) {
    if (i > 0) os << ",";
    os << per_shard[i].to_json();
  }
  os << "]}";
  return os.str();
}

}  // namespace gb::daemon
