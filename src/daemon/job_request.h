// The daemon's job vocabulary: a scan job described by value.
//
// core::JobSpec carries live pointers (the Machine, a session, engine
// hooks) because the in-process scheduler can. A serving daemon cannot:
// a job must survive a daemon crash inside an append-only journal and
// cross a byte-stream wire protocol, so the fleet-facing description is
// pure data — the machine is named by id and resolved server-side, and
// the config is the small deterministic subset a remote caller may
// choose. JobRequest is that description; it serializes through the same
// ByteWriter/ByteReader primitives as every other on-disk format here.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/scan_engine.h"
#include "support/bytes.h"
#include "support/checksum.h"
#include "support/status.h"

namespace gb::daemon {

/// CRC-32 (IEEE 802.3, reflected) over raw bytes. The integrity check
/// framing both the job journal and the wire protocol — a torn journal
/// tail or a corrupted frame fails its CRC and is rejected instead of
/// being replayed/served as truth. The implementation lives in
/// support/checksum.h so gb::obs can share the exact same framing.
[[nodiscard]] inline std::uint32_t crc32(std::span<const std::byte> data) {
  return support::crc32(data);
}

/// Rebuilds a Status from its serialized (code, message) pair, as the
/// journal's complete records and the wire protocol's replies carry it.
/// A code outside the StatusCode enum maps to kInternal.
[[nodiscard]] support::Status status_from_wire(std::uint8_t code,
                                               std::string message);

/// Stable 64-bit hash of a machine id — the shard-partitioning key.
/// FNV-1a: deterministic across runs and platforms, so a job re-queued
/// after a daemon restart lands on the same shard index.
[[nodiscard]] std::uint64_t machine_shard_hash(std::string_view machine_id);

/// One fleet scan job, by value. Everything here is journal- and
/// wire-serializable; nothing points at live state.
struct JobRequest {
  /// Server-side machine name, resolved through the daemon's machine
  /// catalog at dispatch (and again at journal replay).
  std::string machine_id;
  /// Fair-queuing tenant + within-tenant priority (see ScanScheduler).
  std::string tenant = "default";
  std::int32_t priority = 0;
  core::ScanKind kind = core::ScanKind::kInside;
  /// Resource coverage and the remotely selectable process-view policy.
  core::ResourceMask resources = core::ResourceMask::kAll;
  bool advanced = false;  // scheduler thread-table view (paper's advanced mode)
  core::CarveMode carve = core::CarveMode::kOutsideOnly;
  /// Cross-process trace propagation (see obs/trace.h). Zero means "no
  /// caller-supplied context": the daemon derives the canonical ids from
  /// the assigned job id (obs::TraceContext::for_job), which the client
  /// re-derives from the submit reply — both sides agree without a
  /// second round trip. A non-zero trace_id overrides the derivation so
  /// an outer trace (e.g. a console request id) can adopt the job.
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span_id = 0;

  bool operator==(const JobRequest&) const = default;

  /// Projects this request onto an engine config (the scheduler forces
  /// parallelism to 1 itself — the fleet fan-out is the parallelism).
  [[nodiscard]] core::ScanConfig to_scan_config() const {
    core::ScanConfig cfg;
    cfg.resources = resources;
    cfg.processes.scheduler_view = advanced;
    cfg.processes.carve = carve;
    return cfg;
  }

  /// Appends the canonical little-endian encoding (shared by the journal
  /// submit record and the wire submit verb).
  void serialize(ByteWriter& w) const;
  /// Decodes one serialized JobRequest. kCorrupt on truncated input or
  /// out-of-range enum values.
  [[nodiscard]] static support::StatusOr<JobRequest> deserialize(
      ByteReader& r);
};

}  // namespace gb::daemon
