// Byte-stream transport: the daemon's stand-in for a Unix socket pair.
//
// The wire protocol is defined over an abstract full-duplex byte stream
// so the framing and verb layers never depend on an OS socket API the
// test environment may not have. make_pipe() builds the in-repo
// implementation: two bounded in-memory pipes cross-wired into a pair
// of endpoints. Semantics deliberately mirror a SOCK_STREAM socket —
// writes block on a full buffer (backpressure), reads block until at
// least one byte or EOF, close wakes the peer, and nothing preserves
// message boundaries. Only daemon::Framer may call send_bytes/
// recv_bytes directly (lint rule raw-transport-io): every frame on the
// wire carries a CRC, and raw I/O elsewhere would bypass it.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "support/status.h"

namespace gb::daemon {

/// A connected full-duplex byte stream endpoint. Thread-safe: one
/// thread may send while another receives; concurrent senders are
/// serialized internally.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Sends every byte of `data`, blocking on backpressure.
  /// kUnavailable once either side has closed.
  [[nodiscard]] virtual support::Status send_bytes(
      std::span<const std::byte> data) = 0;

  /// Blocks until at least one byte is available, then reads up to
  /// `out.size()` bytes and returns the count. Returns 0 at EOF (peer
  /// closed and the stream is drained) — the clean-shutdown signal.
  [[nodiscard]] virtual support::StatusOr<std::size_t> recv_bytes(
      std::span<std::byte> out) = 0;

  /// Closes both directions and wakes any blocked peer. Idempotent.
  virtual void close() = 0;
};

/// The two connected endpoints of one in-memory stream pair.
struct PipePair {
  std::shared_ptr<Transport> client;
  std::shared_ptr<Transport> server;
};

/// Builds a connected endpoint pair. `capacity_bytes` bounds each
/// direction's buffer — the backpressure window.
[[nodiscard]] PipePair make_pipe(std::size_t capacity_bytes = 64 * 1024);

}  // namespace gb::daemon
