#include "daemon/job_journal.h"

#include <filesystem>
#include <utility>

#include "support/bytes.h"

namespace gb::daemon {
namespace {

constexpr char kMagic[4] = {'G', 'B', 'J', 'L'};
constexpr std::uint32_t kFormatVersion = 2;  // v2: JobRequest carries trace ids
constexpr std::size_t kHeaderBytes = 8;
// Backstop against a torn length field decoding as a huge allocation.
// Reports are a few hundred KB; nothing legitimate approaches this.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

struct ParseState {
  std::map<std::uint64_t, JournalReplay::PendingJob> pending;
  JournalReplay replay;
};

// Applies one CRC-valid payload to the replay image. A payload that
// fails here was durably written yet violates journal semantics — that
// is corruption or a daemon bug, never an ordinary torn tail.
support::Status apply_record(std::span<const std::byte> payload,
                             ParseState& st) {
  ByteReader r(payload);
  std::uint8_t type = 0;
  std::uint64_t id = 0;
  try {
    type = r.u8();
    id = r.u64();
  } catch (const ParseError& e) {
    return support::Status::corrupt(std::string("journal record: ") +
                                    e.what());
  }
  if (id >= st.replay.next_job_id) st.replay.next_job_id = id + 1;
  const bool is_pending = st.pending.contains(id);
  const bool is_completed = st.replay.completed.contains(id);
  switch (static_cast<JournalRecordType>(type)) {
    case JournalRecordType::kSubmit: {
      if (is_pending || is_completed) {
        return support::Status::corrupt("journal: duplicate submit for job " +
                                        std::to_string(id));
      }
      support::StatusOr<JobRequest> req = JobRequest::deserialize(r);
      if (!req.ok()) return req.status();
      st.pending[id] =
          JournalReplay::PendingJob{id, std::move(req).value(), false};
      return support::Status();
    }
    case JournalRecordType::kStart: {
      // Shard index follows but replay ignores it: the restarted daemon
      // re-derives the shard from the machine-id hash.
      if (!is_pending) {
        return support::Status::corrupt("journal: start for unknown job " +
                                        std::to_string(id));
      }
      st.pending[id].started = true;
      return support::Status();
    }
    case JournalRecordType::kComplete: {
      if (!is_pending) {
        return support::Status::corrupt("journal: complete for unknown job " +
                                        std::to_string(id));
      }
      try {
        const std::uint8_t code = r.u8();
        std::string message = r.str(r.u32());
        std::string report_json = r.str(r.u32());
        st.replay.completed[id] = JournalReplay::CompletedJob{
            id, std::move(st.pending[id].request),
            status_from_wire(code, std::move(message)),
            std::move(report_json)};
      } catch (const ParseError& e) {
        return support::Status::corrupt(std::string("journal complete: ") +
                                        e.what());
      }
      st.pending.erase(id);
      return support::Status();
    }
    case JournalRecordType::kCancel: {
      if (!is_pending) {
        return support::Status::corrupt("journal: cancel for unknown job " +
                                        std::to_string(id));
      }
      st.replay.completed[id] = JournalReplay::CompletedJob{
          id, std::move(st.pending[id].request),
          support::Status::cancelled("cancelled via daemon"), ""};
      st.pending.erase(id);
      return support::Status();
    }
  }
  return support::Status::corrupt("journal: unknown record type " +
                                  std::to_string(type));
}

}  // namespace

support::StatusOr<JobJournal> JobJournal::open(const std::string& path) {
  std::vector<std::byte> data;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      in.seekg(0, std::ios::end);
      const std::streamoff size = in.tellg();
      in.seekg(0, std::ios::beg);
      data.resize(static_cast<std::size_t>(size));
      if (size > 0) {
        in.read(reinterpret_cast<char*>(data.data()), size);
        if (!in) {
          return support::Status::unavailable("journal: read failed: " + path);
        }
      }
    }
  }

  JobJournal journal;
  journal.path_ = path;

  bool fresh = data.size() < kHeaderBytes;
  if (fresh) {
    // Empty, absent, or torn mid-header-write: start over. Losing a
    // torn header loses nothing — no record can precede it.
    journal.replay_.truncated_bytes = data.size();
  } else {
    ByteReader header(std::span<const std::byte>(data).subspan(0, 4));
    if (header.str(4) != std::string_view(kMagic, 4)) {
      return support::Status::corrupt("journal: bad magic: " + path);
    }
    ByteReader ver(std::span<const std::byte>(data).subspan(4, 4));
    if (const std::uint32_t v = ver.u32(); v != kFormatVersion) {
      return support::Status::corrupt("journal: unsupported version " +
                                      std::to_string(v));
    }
  }

  // Walk the record stream. The first frame that cannot be proven whole
  // (short header, length past EOF or past the cap, CRC mismatch) marks
  // the torn tail; everything from there on is discarded.
  std::size_t good_end = kHeaderBytes;
  ParseState st;
  if (!fresh) {
    std::size_t pos = kHeaderBytes;
    while (pos < data.size()) {
      if (data.size() - pos < 8) break;
      ByteReader frame(std::span<const std::byte>(data).subspan(pos, 8));
      const std::uint32_t len = frame.u32();
      const std::uint32_t crc = frame.u32();
      if (len > kMaxRecordBytes || len > data.size() - pos - 8) break;
      const std::span<const std::byte> payload =
          std::span<const std::byte>(data).subspan(pos + 8, len);
      if (crc32(payload) != crc) break;
      if (support::Status s = apply_record(payload, st); !s.ok()) return s;
      st.replay.records += 1;
      pos += 8 + len;
      good_end = pos;
    }
    st.replay.truncated_bytes = data.size() - good_end;
  }

  journal.replay_.records = st.replay.records;
  journal.replay_.truncated_bytes += st.replay.truncated_bytes;
  journal.replay_.next_job_id = st.replay.next_job_id;
  journal.replay_.completed = std::move(st.replay.completed);
  for (auto& [id, job] : st.pending) {
    journal.replay_.pending.push_back(std::move(job));  // id order
  }

  namespace fs = std::filesystem;
  std::error_code ec;
  if (fresh) {
    std::ofstream create(path, std::ios::binary | std::ios::trunc);
    ByteWriter w;
    w.str(std::string_view(kMagic, 4));
    w.u32(kFormatVersion);
    create.write(reinterpret_cast<const char*>(w.buffer().data()),
                 static_cast<std::streamsize>(w.size()));
    create.flush();
    if (!create) {
      return support::Status::unavailable("journal: cannot create " + path);
    }
  } else if (good_end < data.size()) {
    fs::resize_file(path, good_end, ec);
    if (ec) {
      return support::Status::unavailable("journal: cannot truncate tail: " +
                                          ec.message());
    }
  }

  journal.out_.open(path, std::ios::binary | std::ios::app);
  if (!journal.out_) {
    return support::Status::unavailable("journal: cannot open for append: " +
                                        path);
  }
  return journal;
}

support::Status JobJournal::append_record(std::span<const std::byte> payload) {
  ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u32(crc32(payload));
  frame.bytes(payload);
  out_.write(reinterpret_cast<const char*>(frame.buffer().data()),
             static_cast<std::streamsize>(frame.size()));
  // Flushing under the daemon's lock is the durability contract: the
  // journal record must hit the stream before the state change it
  // describes becomes observable to any other thread.
  // gb-lint: allow(blocking-under-lock)
  out_.flush();
  if (!out_) {
    return support::Status::unavailable("journal: append failed: " + path_);
  }
  return support::Status();
}

support::Status JobJournal::append_submit(std::uint64_t id,
                                          const JobRequest& request) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecordType::kSubmit));
  w.u64(id);
  request.serialize(w);
  return append_record(w.view());
}

support::Status JobJournal::append_start(std::uint64_t id,
                                         std::uint32_t shard) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecordType::kStart));
  w.u64(id);
  w.u32(shard);
  return append_record(w.view());
}

support::Status JobJournal::append_complete(std::uint64_t id,
                                            const support::Status& result,
                                            std::string_view report_json) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecordType::kComplete));
  w.u64(id);
  w.u8(static_cast<std::uint8_t>(result.code()));
  w.u32(static_cast<std::uint32_t>(result.message().size()));
  w.str(result.message());
  w.u32(static_cast<std::uint32_t>(report_json.size()));
  w.str(report_json);
  return append_record(w.view());
}

support::Status JobJournal::append_cancel(std::uint64_t id) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(JournalRecordType::kCancel));
  w.u64(id);
  return append_record(w.view());
}

}  // namespace gb::daemon
