// Flight recorder: a lock-cheap ring buffer of structured lifecycle
// events with CRC-framed persistence, readable after a crash.
//
// The job journal records what the daemon *owes* (which jobs must
// survive); the flight recorder records what the daemon was *doing* —
// submits, dispatch starts, completions, admission rejections, per-view
// degradations, journal truncations, the kill itself. Every append is
// framed and flushed before it returns, exactly like a journal record,
// so `gb_daemond --flight-recorder` can replay the last N events of a
// daemon that died mid-job.
//
// Framing (shared shape with daemon::JobJournal, support::crc32):
//
//   header   "GBEL" magic (4 bytes) | format version (u32)
//   record*  payload_len (u32) | crc32(payload) (u32) | payload
//   payload  seq (u64) | type (u8) | job id (u64) | ts_us (u64)
//            | detail_len (u32) | detail bytes
//
// A torn tail (partial record, bad CRC) ends the replay at the last
// intact record — that is the crash point, not corruption to report.
//
// Determinism: the recorder observes; it never feeds back into scan
// output. Reports are byte-identical with the event log on or off.
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "support/status.h"
#include "support/thread_annotations.h"

namespace gb::obs {

/// What happened. Values are the on-disk encoding — append only.
enum class EventType : std::uint8_t {
  kSubmit = 1,            // job accepted and journaled
  kStart = 2,             // job dispatched to a shard scheduler
  kComplete = 3,          // terminal result published
  kCancel = 4,            // cancelled (client ask or crash requeue race)
  kRejected = 5,          // admission control refused the submit
  kDegraded = 6,          // a view degraded inside the job's report
  kJournalTruncated = 7,  // torn journal tail dropped at open
  kRequeued = 8,          // replay re-queued an interrupted job
  kKill = 9,              // simulated SIGKILL (crash drill)
  kDrain = 10,            // graceful drain/shutdown
};

/// Human-readable tag for dumps ("submit", "start", ...).
[[nodiscard]] const char* event_type_name(EventType type);

/// One recorded lifecycle event. job_id == 0 means daemon-scoped.
struct LogEvent {
  std::uint64_t seq = 0;
  EventType type = EventType::kSubmit;
  std::uint64_t job_id = 0;
  std::uint64_t ts_us = 0;  // since the recorder's epoch
  std::string detail;
};

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);

  /// Attaches persistence: replays any existing file (seq numbering
  /// continues where the previous incarnation stopped), then appends —
  /// each append is flushed before returning, so everything up to a
  /// kill survives. Without attach() the log is memory-only.
  [[nodiscard]] support::Status attach(const std::string& path);

  /// Records one event. Thread-safe; cheap (one small mutex, one framed
  /// write when attached). Never throws; a failed persistence write is
  /// counted, not fatal — the ring still records.
  void append(EventType type, std::uint64_t job_id, std::string detail);

  /// The last n events (oldest first). n == 0 returns everything the
  /// ring still holds.
  [[nodiscard]] std::vector<LogEvent> recent(std::size_t n = 0) const;

  [[nodiscard]] std::uint64_t appended() const;
  [[nodiscard]] std::uint64_t write_failures() const;

  /// Post-mortem read of a persisted event file: every intact record in
  /// order. A torn tail ends the list; a bad header is kCorrupt.
  [[nodiscard]] static support::StatusOr<std::vector<LogEvent>> read_file(
      const std::string& path);

 private:
  mutable support::Mutex mu_;
  std::size_t capacity_;
  std::vector<LogEvent> ring_ GB_GUARDED_BY(mu_);  // ring_[seq % capacity_]
  std::uint64_t next_seq_ GB_GUARDED_BY(mu_) = 0;
  std::uint64_t write_failures_ GB_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::ofstream file_ GB_GUARDED_BY(mu_);
  bool attached_ GB_GUARDED_BY(mu_) = false;
};

}  // namespace gb::obs
