#include "obs/event_log.h"

#include <filesystem>
#include <utility>

#include "support/checksum.h"

namespace gb::obs {

namespace {

constexpr char kMagic[4] = {'G', 'B', 'E', 'L'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 8;
constexpr std::size_t kMaxRecordBytes = 64 * 1024;

// gb::ByteWriter/ByteReader live in gb_support, which links *against*
// gb_obs (the pool instruments metrics) — so the recorder hand-rolls
// its little-endian framing to keep obs at the bottom of the stack.

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
  }
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v & 0xffffffffu));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

/// Bounds-checked little-endian reader; ok flips false on truncation
/// and every later read returns zero, so callers test once at the end.
struct Cursor {
  std::span<const std::byte> data;
  std::size_t pos = 0;
  bool ok = true;

  [[nodiscard]] std::size_t remaining() const { return data.size() - pos; }

  std::uint8_t u8() {
    if (remaining() < 1) {
      ok = false;
      return 0;
    }
    return static_cast<std::uint8_t>(data[pos++]);
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= std::uint32_t{u8()} << (8 * i);
    return v;
  }
  std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (std::uint64_t{u32()} << 32);
  }
  std::string str(std::size_t n) {
    if (remaining() < n) {
      ok = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data.data() + pos), n);
    pos += n;
    return s;
  }
  std::span<const std::byte> bytes(std::size_t n) {
    if (remaining() < n) {
      ok = false;
      return {};
    }
    const auto out = data.subspan(pos, n);
    pos += n;
    return out;
  }
};

struct ParsedFile {
  std::vector<LogEvent> events;
  std::uint64_t intact_bytes = 0;  // header + every intact record
  bool fresh = false;              // missing or sub-header file
};

/// Reads and walks one event file. A torn tail (truncated record, CRC
/// mismatch) ends the walk at the last intact record; a bad header or a
/// CRC-valid record with a bad event type is kCorrupt.
support::StatusOr<ParsedFile> parse_file(const std::string& path) {
  ParsedFile out;
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    out.fresh = true;
    return out;
  }
  const auto size = static_cast<std::size_t>(in.tellg());
  if (size < kHeaderBytes) {
    out.fresh = true;
    return out;
  }
  std::vector<std::byte> bytes(size);
  in.seekg(0);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (!in) return support::Status::internal("event log: short read: " + path);

  Cursor r{bytes};
  if (r.str(4) != std::string(kMagic, 4)) {
    return support::Status::corrupt("event log: bad magic: " + path);
  }
  if (const std::uint32_t version = r.u32(); version != kFormatVersion) {
    return support::Status::corrupt("event log: unsupported version " +
                                    std::to_string(version));
  }
  out.intact_bytes = kHeaderBytes;
  while (r.remaining() > 0) {
    if (r.remaining() < 8) break;  // torn length/crc prefix
    const std::uint32_t len = r.u32();
    const std::uint32_t crc = r.u32();
    if (len == 0 || len > kMaxRecordBytes || r.remaining() < len) break;
    const auto payload = r.bytes(len);
    if (support::crc32(payload) != crc) break;
    Cursor pr{payload};
    LogEvent e;
    e.seq = pr.u64();
    const std::uint8_t type = pr.u8();
    if (type < static_cast<std::uint8_t>(EventType::kSubmit) ||
        type > static_cast<std::uint8_t>(EventType::kDrain)) {
      return support::Status::corrupt("event log: bad event type " +
                                      std::to_string(type));
    }
    e.type = static_cast<EventType>(type);
    e.job_id = pr.u64();
    e.ts_us = pr.u64();
    e.detail = pr.str(pr.u32());
    if (!pr.ok || pr.remaining() != 0) {
      return support::Status::corrupt("event log: malformed record payload");
    }
    out.events.push_back(std::move(e));
    out.intact_bytes += 8 + len;
  }
  return out;
}

}  // namespace

const char* event_type_name(EventType type) {
  switch (type) {
    case EventType::kSubmit: return "submit";
    case EventType::kStart: return "start";
    case EventType::kComplete: return "complete";
    case EventType::kCancel: return "cancel";
    case EventType::kRejected: return "rejected";
    case EventType::kDegraded: return "degraded";
    case EventType::kJournalTruncated: return "journal-truncated";
    case EventType::kRequeued: return "requeued";
    case EventType::kKill: return "kill";
    case EventType::kDrain: return "drain";
  }
  return "unknown";
}

EventLog::EventLog(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      epoch_(std::chrono::steady_clock::now()) {
  ring_.resize(capacity_);
}

support::Status EventLog::attach(const std::string& path) {
  support::MutexLock lk(mu_);
  auto parsed = parse_file(path);
  if (!parsed.ok()) return parsed.status();
  if (parsed->fresh) {
    std::ofstream fresh(path, std::ios::binary | std::ios::trunc);
    if (!fresh) {
      return support::Status::internal("event log: cannot create " + path);
    }
    std::vector<std::byte> header;
    header.insert(header.end(),
                  {std::byte{'G'}, std::byte{'B'}, std::byte{'E'},
                   std::byte{'L'}});
    put_u32(header, kFormatVersion);
    fresh.write(reinterpret_cast<const char*>(header.data()),
                static_cast<std::streamsize>(header.size()));
    // One-time file creation: the header must be durable before any
    // appender can race in, and open() already holds mu for that reason.
    // gb-lint: allow(blocking-under-lock)
    fresh.flush();
    if (!fresh) {
      return support::Status::internal("event log: cannot write " + path);
    }
  } else {
    // Drop any torn tail so this incarnation appends after the last
    // intact record, then continue its sequence numbering.
    std::error_code ec;
    const auto on_disk = std::filesystem::file_size(path, ec);
    if (!ec && on_disk > parsed->intact_bytes) {
      std::filesystem::resize_file(path, parsed->intact_bytes, ec);
      if (ec) {
        return support::Status::internal(
            "event log: cannot truncate torn tail of " + path);
      }
    }
    for (const LogEvent& e : parsed->events) {
      ring_[e.seq % capacity_] = e;
      next_seq_ = e.seq + 1;
    }
  }
  file_.open(path, std::ios::binary | std::ios::app);
  if (!file_) {
    return support::Status::internal("event log: cannot open " + path);
  }
  attached_ = true;
  return support::Status();
}

void EventLog::append(EventType type, std::uint64_t job_id,
                      std::string detail) {
  support::MutexLock lk(mu_);
  LogEvent e;
  e.seq = next_seq_++;
  e.type = type;
  e.job_id = job_id;
  e.ts_us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  e.detail = std::move(detail);
  if (attached_) {
    std::vector<std::byte> payload;
    payload.reserve(29 + e.detail.size());
    put_u64(payload, e.seq);
    payload.push_back(static_cast<std::byte>(e.type));
    put_u64(payload, e.job_id);
    put_u64(payload, e.ts_us);
    put_u32(payload, static_cast<std::uint32_t>(e.detail.size()));
    for (const char c : e.detail) payload.push_back(static_cast<std::byte>(c));
    std::vector<std::byte> frame;
    frame.reserve(8 + payload.size());
    put_u32(frame, static_cast<std::uint32_t>(payload.size()));
    put_u32(frame, support::crc32(payload));
    frame.insert(frame.end(), payload.begin(), payload.end());
    file_.write(reinterpret_cast<const char*>(frame.data()),
                static_cast<std::streamsize>(frame.size()));
    // Flush-per-record under mu is the event log's durability contract:
    // a record is either fully on disk or never acknowledged, and the
    // lock is what keeps frames from interleaving mid-write.
    // gb-lint: allow(blocking-under-lock)
    file_.flush();
    if (!file_) {
      ++write_failures_;
      file_.clear();
    }
  }
  ring_[e.seq % capacity_] = std::move(e);
}

std::vector<LogEvent> EventLog::recent(std::size_t n) const {
  support::MutexLock lk(mu_);
  const std::uint64_t held =
      next_seq_ < capacity_ ? next_seq_ : static_cast<std::uint64_t>(capacity_);
  const std::uint64_t want = (n == 0 || n > held) ? held : n;
  std::vector<LogEvent> out;
  out.reserve(static_cast<std::size_t>(want));
  for (std::uint64_t seq = next_seq_ - want; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % capacity_]);
  }
  return out;
}

std::uint64_t EventLog::appended() const {
  support::MutexLock lk(mu_);
  return next_seq_;
}

std::uint64_t EventLog::write_failures() const {
  support::MutexLock lk(mu_);
  return write_failures_;
}

support::StatusOr<std::vector<LogEvent>> EventLog::read_file(
    const std::string& path) {
  auto parsed = parse_file(path);
  if (!parsed.ok()) return parsed.status();
  if (parsed->fresh) {
    return support::Status::not_found("event log: no such file: " + path);
  }
  return std::move(parsed->events);
}

}  // namespace gb::obs
