// gb::obs — the telemetry substrate for the scan stack.
//
// GhostBuster's value is a *diff between views*, so an operator has to be
// able to tell "the scan is slow or degraded" apart from "the machine is
// hiding things". This registry gives every layer (pool, engine,
// scheduler, parsers) named counters, gauges and fixed-bucket histograms
// with two design rules:
//
//   * the hot path pays one relaxed atomic add. Counters and histograms
//     are sharded into cache-line-aligned per-thread slots; aggregation
//     happens at read time (to_prometheus_text / to_json / value()),
//     which is rare and may be slow.
//   * telemetry never alters scan output. Reports remain byte-identical
//     at any worker count whether or not a registry is attached; only
//     deterministic quantities (resource counts, simulated seconds,
//     failure counts) are ever copied into report JSON.
//
// Metric naming convention: gb_<area>_<name>, with the Prometheus-style
// suffixes `_total` for monotonic counters and `_seconds` for time
// (histograms and duration sums). Examples: gb_pool_steals_total,
// gb_sched_queue_wait_seconds, gb_engine_degraded_diffs_total.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/thread_annotations.h"

namespace gb::obs {

/// Label set attached to one metric instance, e.g. {{"tenant","corp"}}.
/// Order is preserved in the export output.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace internal {

/// Shard count for per-thread striping. A power of two; threads hash to
/// a stable slot, so contention is rare without unbounded memory.
inline constexpr std::size_t kSlots = 16;

/// Stable slot index of the calling thread.
std::size_t thread_slot();

}  // namespace internal

/// Monotonically increasing value. add() is wait-free: one relaxed
/// fetch_add on this thread's slot.
class Counter {
 public:
  void add(double n = 1.0) {
    slots_[internal::thread_slot()].v.fetch_add(n,
                                                std::memory_order_relaxed);
  }
  void inc() { add(1.0); }

  /// Aggregated value (sums the shards; approximate while writers race).
  [[nodiscard]] double value() const {
    double total = 0;
    for (const auto& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<double> v{0};
  };
  std::array<Slot, internal::kSlots> slots_;
};

/// Last-write-wins instantaneous value (queue depth, busy workers).
/// add() supports up/down adjustment; max_of ratchets upward.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double n) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Sets the gauge to max(current, v) — for high-water marks.
  void max_of(double v) {
    double cur = v_.load(std::memory_order_relaxed);
    while (cur < v &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-bucket histogram: upper bounds are set at creation and never
/// change, so observe() is a binary search plus two relaxed adds on this
/// thread's shard.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] const std::vector<double>& upper_bounds() const {
    return bounds_;
  }
  /// Per-bucket (non-cumulative) counts; the last entry is the overflow
  /// (+Inf) bucket, so the size is upper_bounds().size() + 1.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] std::uint64_t count() const;

  /// Estimated q-quantile (q in [0,1]) by linear interpolation inside
  /// the bucket containing the rank — the standard histogram_quantile
  /// estimate, good enough for p50/p95/p99 health surfaces. Returns 0
  /// with no observations; an answer in the overflow bucket clamps to
  /// the highest finite bound.
  [[nodiscard]] double quantile(double q) const;

 private:
  struct alignas(64) Slot {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<double> sum{0};
  };
  std::vector<double> bounds_;
  std::array<Slot, internal::kSlots> slots_;
};

/// Exponentially spaced bucket bounds: start, start*factor, ... (n of
/// them). The conventional shape for latency histograms.
std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t n);

/// Default bounds for task/scan latency histograms: 10us .. ~100s.
const std::vector<double>& default_latency_buckets();

/// Named-metric registry. Creation (counter()/gauge()/histogram()) takes
/// a mutex and is expected at setup time; the returned references are
/// stable for the registry's lifetime, so hot paths hold the handle and
/// never touch the registry again. Requesting an existing name+labels
/// returns the same instance; requesting it as a different kind (or a
/// histogram with different buckets) throws std::logic_error.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(std::string_view name, Labels labels = {});
  Gauge& gauge(std::string_view name, Labels labels = {});
  Histogram& histogram(std::string_view name,
                       std::vector<double> upper_bounds,
                       Labels labels = {});

  /// Registers the family's `# HELP` text (emitted before `# TYPE` in
  /// the exposition). Idempotent; the first non-empty text wins so
  /// every shard minting the same family agrees.
  void set_help(std::string_view name, std::string_view help);

  /// Prometheus text exposition format: per family an optional `# HELP`
  /// line, then one `# TYPE` line, then every sample — histograms
  /// expanded into cumulative `_bucket{le=...}` series plus `_sum` /
  /// `_count`. Each family appears exactly once.
  [[nodiscard]] std::string to_prometheus_text() const;

  /// JSON array of every metric with kind, labels and aggregated value
  /// (histograms carry bounds/counts/sum/count).
  [[nodiscard]] std::string to_json() const;

  /// Number of registered metric instances (for tests).
  [[nodiscard]] std::size_t size() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    std::string name;
    Labels labels;
    Kind kind = Kind::kCounter;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& find_or_create(std::string_view name, Labels& labels, Kind kind)
      GB_REQUIRES(mu_);

  mutable support::Mutex mu_;
  /// Registration order.
  std::vector<std::unique_ptr<Entry>> entries_ GB_GUARDED_BY(mu_);
  /// name+labels -> entry.
  std::map<std::string, std::size_t> index_ GB_GUARDED_BY(mu_);
  /// family -> # HELP text.
  std::map<std::string, std::string> help_ GB_GUARDED_BY(mu_);
};

/// Process-wide registry: what the CLI's --metrics flag exports, and the
/// default sink for engines whose config does not name one.
MetricsRegistry& default_registry();

}  // namespace gb::obs
