#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"  // internal::thread_slot / kSlots

namespace gb::obs {

namespace {

/// Stable, human-friendly thread id for trace tracks: the order in which
/// threads first record an event.
std::uint32_t thread_track_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// The propagated per-thread context slot TraceContextScope installs
/// into and spans read from.
TraceContext& thread_context() {
  thread_local TraceContext ctx;
  return ctx;
}

/// splitmix64 finalizer: the deterministic id derivation. Any two
/// distinct job ids map to distinct, well-mixed 64-bit ids.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void escape_into(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

std::string hex_id(std::uint64_t id) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// TraceContext

TraceContext TraceContext::for_job(std::uint64_t job_id) {
  TraceContext ctx;
  ctx.trace_id = splitmix64(job_id ^ 0x4742545241434531ull);  // "GBTRACE1"
  if (ctx.trace_id == 0) ctx.trace_id = 1;
  ctx.span_id = splitmix64(job_id ^ 0x474253504A4F4231ull);  // "GBSPJOB1"
  if (ctx.span_id == 0) ctx.span_id = 1;
  return ctx;
}

TraceContext current_trace_context() { return thread_context(); }

TraceContextScope::TraceContextScope(TraceContext ctx)
    : prev_(thread_context()) {
  thread_context() = ctx;
}

TraceContextScope::~TraceContextScope() { thread_context() = prev_; }

// ---------------------------------------------------------------------------
// ScopedSpan

ScopedSpan::ScopedSpan(Tracer* tracer, std::string_view name,
                       std::string_view cat, std::uint64_t start_us)
    : tracer_(tracer), name_(name), cat_(cat), start_us_(start_us) {
  const TraceContext enclosing = thread_context();
  ctx_.trace_id = enclosing.trace_id;
  ctx_.span_id = tracer_->next_span_id();
  parent_ = enclosing.span_id;
  prev_ = enclosing;
  // Same-thread nested spans parent-link here until this span closes.
  thread_context() = ctx_;
}

void ScopedSpan::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(std::string(key), std::string(value));
}

void ScopedSpan::adopt_context(const TraceContext& ctx) {
  if (tracer_ == nullptr) return;
  ctx_.trace_id = ctx.trace_id;
  parent_ = ctx.span_id;
  // If this span is the thread's current parent, refresh the installed
  // slot too, so later same-thread children inherit the adopted trace.
  if (thread_context().span_id == ctx_.span_id) thread_context() = ctx_;
}

void ScopedSpan::finish() {
  if (tracer_ == nullptr) return;
  thread_context() = prev_;
  TraceEvent e;
  e.name = std::move(name_);
  e.cat = std::move(cat_);
  e.trace_id = ctx_.trace_id;
  e.span_id = ctx_.span_id;
  e.parent_span_id = parent_;
  e.ts_us = start_us_;
  e.dur_us = tracer_->now_us() - start_us_;
  e.tid = thread_track_id();
  e.ph = 'X';
  e.args = std::move(args_);
  tracer_->record(std::move(e));
  tracer_ = nullptr;
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  buffers_.reserve(internal::kSlots);
  for (std::size_t i = 0; i < internal::kSlots; ++i) {
    buffers_.push_back(std::make_unique<Buffer>());
  }
}

std::uint64_t Tracer::now_us() const {
  return to_us(std::chrono::steady_clock::now());
}

std::uint64_t Tracer::to_us(std::chrono::steady_clock::time_point t) const {
  if (t <= epoch_) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(t - epoch_)
          .count());
}

std::uint64_t Tracer::next_span_id() {
  return next_span_.fetch_add(1, std::memory_order_relaxed);
}

ScopedSpan Tracer::span(std::string_view name, std::string_view cat) {
  if (!enabled()) return ScopedSpan();
  return ScopedSpan(this, name, cat, now_us());
}

void Tracer::instant(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  const TraceContext ctx = thread_context();
  TraceEvent e;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.trace_id = ctx.trace_id;
  e.parent_span_id = ctx.span_id;
  e.ts_us = now_us();
  e.tid = thread_track_id();
  e.ph = 'i';
  record(std::move(e));
}

void Tracer::record_span(std::string_view name, std::string_view cat,
                         const TraceContext& ctx,
                         std::chrono::steady_clock::time_point start,
                         std::chrono::steady_clock::time_point end) {
  if (!enabled()) return;
  TraceEvent e;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.trace_id = ctx.trace_id;
  e.span_id = next_span_id();
  e.parent_span_id = ctx.span_id;
  e.ts_us = to_us(start);
  e.dur_us = to_us(end) - e.ts_us;
  e.tid = thread_track_id();
  e.ph = 'X';
  record(std::move(e));
}

void Tracer::record(TraceEvent e) {
  Buffer& buf = *buffers_[internal::thread_slot()];
  support::MutexLock lk(buf.mu);
  buf.events.push_back(std::move(e));
}

void Tracer::clear() {
  for (auto& buf : buffers_) {
    support::MutexLock lk(buf->mu);
    buf->events.clear();
  }
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    support::MutexLock lk(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::vector<TraceEvent> Tracer::snapshot(std::uint64_t trace_id) const {
  std::vector<TraceEvent> events;
  for (const auto& buf : buffers_) {
    support::MutexLock lk(buf->mu);
    for (const TraceEvent& e : buf->events) {
      if (trace_id == 0 || e.trace_id == trace_id) events.push_back(e);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;  // parents before children
                   });
  return events;
}

std::string Tracer::to_chrome_json() const {
  return chrome_trace_json(snapshot());
}

std::string chrome_trace_json(std::vector<TraceEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;  // parents before children
                   });

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    escape_into(os, e.name);
    os << ",\"cat\":";
    escape_into(os, e.cat);
    os << ",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts_us;
    if (e.ph == 'X') os << ",\"dur\":" << e.dur_us;
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
    const bool traced = e.trace_id != 0;
    if (!e.args.empty() || traced) {
      os << ",\"args\":{";
      bool fa = true;
      for (const auto& [k, v] : e.args) {
        if (!fa) os << ',';
        fa = false;
        escape_into(os, k);
        os << ':';
        escape_into(os, v);
      }
      if (traced) {
        if (!fa) os << ',';
        os << "\"trace_id\":\"" << hex_id(e.trace_id) << "\"";
        if (e.span_id != 0) {
          os << ",\"span_id\":\"" << hex_id(e.span_id) << "\"";
        }
        if (e.parent_span_id != 0) {
          os << ",\"parent_span_id\":\"" << hex_id(e.parent_span_id) << "\"";
        }
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

Tracer& default_tracer() {
  // Leaked on purpose: spans may close during static destruction.
  // gb-lint: allow(naked-new)
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace gb::obs
