#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "obs/metrics.h"  // internal::thread_slot / kSlots

namespace gb::obs {

namespace {

/// Stable, human-friendly thread id for trace tracks: the order in which
/// threads first record an event.
std::uint32_t thread_track_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void escape_into(std::ostringstream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

// ---------------------------------------------------------------------------
// ScopedSpan

void ScopedSpan::arg(std::string_view key, std::string_view value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(std::string(key), std::string(value));
}

void ScopedSpan::finish() {
  if (tracer_ == nullptr) return;
  Tracer::Event e;
  e.name = std::move(name_);
  e.cat = std::move(cat_);
  e.ts_us = start_us_;
  e.dur_us = tracer_->now_us() - start_us_;
  e.tid = thread_track_id();
  e.ph = 'X';
  e.args = std::move(args_);
  tracer_->record(std::move(e));
  tracer_ = nullptr;
}

// ---------------------------------------------------------------------------
// Tracer

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  buffers_.reserve(internal::kSlots);
  for (std::size_t i = 0; i < internal::kSlots; ++i) {
    buffers_.push_back(std::make_unique<Buffer>());
  }
}

std::uint64_t Tracer::now_us() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

ScopedSpan Tracer::span(std::string_view name, std::string_view cat) {
  if (!enabled()) return ScopedSpan();
  return ScopedSpan(this, name, cat, now_us());
}

void Tracer::instant(std::string_view name, std::string_view cat) {
  if (!enabled()) return;
  Event e;
  e.name = std::string(name);
  e.cat = std::string(cat);
  e.ts_us = now_us();
  e.tid = thread_track_id();
  e.ph = 'i';
  record(std::move(e));
}

void Tracer::record(Event e) {
  Buffer& buf = *buffers_[internal::thread_slot()];
  std::lock_guard<std::mutex> lk(buf.mu);
  buf.events.push_back(std::move(e));
}

void Tracer::clear() {
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> lk(buf->mu);
    buf->events.clear();
  }
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> lk(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::string Tracer::to_chrome_json() const {
  std::vector<Event> events;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> lk(buf->mu);
    events.insert(events.end(), buf->events.begin(), buf->events.end());
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     return a.dur_us > b.dur_us;  // parents before children
                   });

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    if (!first) os << ',';
    first = false;
    os << "{\"name\":";
    escape_into(os, e.name);
    os << ",\"cat\":";
    escape_into(os, e.cat);
    os << ",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts_us;
    if (e.ph == 'X') os << ",\"dur\":" << e.dur_us;
    if (e.ph == 'i') os << ",\"s\":\"t\"";
    os << ",\"pid\":1,\"tid\":" << e.tid;
    if (!e.args.empty()) {
      os << ",\"args\":{";
      bool fa = true;
      for (const auto& [k, v] : e.args) {
        if (!fa) os << ',';
        fa = false;
        escape_into(os, k);
        os << ':';
        escape_into(os, v);
      }
      os << '}';
    }
    os << '}';
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

Tracer& default_tracer() {
  // Leaked on purpose: spans may close during static destruction.
  // gb-lint: allow(naked-new)
  static Tracer* tracer = new Tracer();
  return *tracer;
}

}  // namespace gb::obs
