// Scan-span tracing: nested, steady-clock-timed spans recorded into
// per-thread buffers and exported as Chrome trace_event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//
//   auto span = obs::default_tracer().span("engine.inside", "engine");
//   span.arg("batch", "12");
//   ... work ...            // span closes (and is timed) on destruction
//
// Spans nest by containment: each is a complete event ("ph":"X") with a
// start timestamp and duration on one thread track, which is exactly the
// nesting model Perfetto renders. A disabled tracer (the default) makes
// span() return an inert handle — the cost is one relaxed atomic load,
// so instrumentation points can stay in release builds and hot paths.
//
// Cross-process propagation: a TraceContext (trace_id + span_id) rides
// a thread-local slot. Installing one via TraceContextScope makes every
// span opened on that thread while the scope is live carry the trace_id
// and parent-link to the enclosing span, so one fleet job's spans —
// client submit, wire round trips, daemon dispatch, scheduler queue
// wait, engine providers — share one trace_id and can be carved out of
// the tracer as a single tree (snapshot()) and merged across the wire
// (chrome_trace_json()). Ids are derived deterministically from the job
// id (TraceContext::for_job), so client and daemon agree on the ids
// without shipping them both ways.
//
// Determinism: tracing records wall-time observations on the side; it
// never feeds back into scan output. Reports are byte-identical with
// tracing on or off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "support/thread_annotations.h"

namespace gb::obs {

class Tracer;

/// The propagated slice of a trace: which trace this thread is working
/// for, and which span is the current parent. Valid when trace_id != 0.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool valid() const { return trace_id != 0; }
  bool operator==(const TraceContext&) const = default;

  /// Canonical context for a fleet job: both ids are a deterministic
  /// (splitmix64) function of the job id, so every process that knows
  /// the job id derives the same trace_id independently.
  [[nodiscard]] static TraceContext for_job(std::uint64_t job_id);
};

/// The calling thread's current context (invalid when none installed).
[[nodiscard]] TraceContext current_trace_context();

/// RAII: installs a context as the calling thread's current one and
/// restores the previous context on destruction. Place one at every
/// unit-of-work boundary (scheduler job dispatch, client RPC) so spans
/// opened downstream on the same thread join the trace automatically.
class TraceContextScope {
 public:
  explicit TraceContextScope(TraceContext ctx);
  ~TraceContextScope();
  TraceContextScope(const TraceContextScope&) = delete;
  TraceContextScope& operator=(const TraceContextScope&) = delete;

 private:
  TraceContext prev_;
};

/// One recorded event, public so span trees can cross the wire: the
/// daemon snapshots a job's events, serializes them, and the client
/// merges them with its own before rendering. pid distinguishes the
/// processes in a merged trace (1 = local/client, 2 = daemon).
struct TraceEvent {
  std::string name;
  std::string cat;
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  std::uint64_t ts_us = 0;   // since tracer epoch
  std::uint64_t dur_us = 0;  // 0 for instants
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  char ph = 'X';
  std::vector<std::pair<std::string, std::string>> args;
};

/// Renders events (e.g. a merged client+daemon set) as Chrome
/// trace_event JSON: complete events sorted by start time, instants with
/// thread scope, trace/span ids surfaced in the args pane.
[[nodiscard]] std::string chrome_trace_json(std::vector<TraceEvent> events);

/// RAII span handle. Movable; records its event (duration = construction
/// to destruction) into the owning tracer when it goes out of scope.
/// A default-constructed or disabled-tracer span is inert. An active
/// span installs itself as the thread's current context parent, so
/// same-thread nested spans parent-link to it.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(ScopedSpan&& o) noexcept
      : tracer_(o.tracer_),
        name_(std::move(o.name_)),
        cat_(std::move(o.cat_)),
        ctx_(o.ctx_),
        parent_(o.parent_),
        prev_(o.prev_),
        start_us_(o.start_us_),
        args_(std::move(o.args_)) {
    o.tracer_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      finish();
      tracer_ = o.tracer_;
      name_ = std::move(o.name_);
      cat_ = std::move(o.cat_);
      ctx_ = o.ctx_;
      parent_ = o.parent_;
      prev_ = o.prev_;
      start_us_ = o.start_us_;
      args_ = std::move(o.args_);
      o.tracer_ = nullptr;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { finish(); }

  /// Attaches a key/value argument shown in the trace viewer's detail
  /// pane. No-op on an inert span.
  void arg(std::string_view key, std::string_view value);

  /// Re-homes the span onto a context learned after it opened (the
  /// client's submit span: the job id — hence the derived trace_id —
  /// only arrives with the reply). No-op on an inert span.
  void adopt_context(const TraceContext& ctx);

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  ScopedSpan(Tracer* tracer, std::string_view name, std::string_view cat,
             std::uint64_t start_us);

  void finish();

  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string cat_;
  TraceContext ctx_;     // this span's own (trace_id, span_id)
  std::uint64_t parent_ = 0;
  TraceContext prev_;    // thread context to restore on finish
  std::uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Collects span events into per-thread-slot buffers (mutex per slot,
/// effectively uncontended) and serializes them as Chrome trace JSON.
/// enable()/disable() may be called at any time; spans opened while
/// enabled record even if the tracer is disabled before they close.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Opens a span; inert (and allocation-free beyond the name/category
  /// strings the caller already built) when the tracer is disabled.
  [[nodiscard]] ScopedSpan span(std::string_view name,
                                std::string_view cat = "scan");

  /// Zero-duration marker event.
  void instant(std::string_view name, std::string_view cat = "scan");

  /// Records a complete event for an interval observed elsewhere — the
  /// scheduler's queue wait, say, which has no live scope of its own.
  /// Time points are this tracer's steady clock; no-op when disabled.
  void record_span(std::string_view name, std::string_view cat,
                   const TraceContext& ctx,
                   std::chrono::steady_clock::time_point start,
                   std::chrono::steady_clock::time_point end);

  /// Chrome trace_event JSON of every recorded event (all traces).
  [[nodiscard]] std::string to_chrome_json() const;

  /// Copies out recorded events, sorted by start time. trace_id == 0
  /// returns everything; otherwise only that trace's events — the span
  /// tree the daemon streams back for `gb trace <job-id>`.
  [[nodiscard]] std::vector<TraceEvent> snapshot(
      std::uint64_t trace_id = 0) const;

  /// Drops every recorded event (the enabled flag is unchanged).
  void clear();

  [[nodiscard]] std::size_t event_count() const;

 private:
  friend class ScopedSpan;

  struct Buffer {
    support::Mutex mu;
    std::vector<TraceEvent> events GB_GUARDED_BY(mu);
  };

  [[nodiscard]] std::uint64_t now_us() const;
  [[nodiscard]] std::uint64_t to_us(
      std::chrono::steady_clock::time_point t) const;
  [[nodiscard]] std::uint64_t next_span_id();
  void record(TraceEvent e);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_span_{1};
  std::chrono::steady_clock::time_point epoch_;
  // Sized like the metrics shards; see obs::internal::kSlots.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// Process-wide tracer, enabled by the CLI's --trace flag. Library code
/// records through this by default so one flag captures every layer.
Tracer& default_tracer();

}  // namespace gb::obs
