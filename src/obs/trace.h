// Scan-span tracing: nested, steady-clock-timed spans recorded into
// per-thread buffers and exported as Chrome trace_event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//
//   auto span = obs::default_tracer().span("scan.file.low", "engine");
//   span.arg("batch", "12");
//   ... work ...            // span closes (and is timed) on destruction
//
// Spans nest by containment: each is a complete event ("ph":"X") with a
// start timestamp and duration on one thread track, which is exactly the
// nesting model Perfetto renders. A disabled tracer (the default) makes
// span() return an inert handle — the cost is one relaxed atomic load,
// so instrumentation points can stay in release builds and hot paths.
//
// Determinism: tracing records wall-time observations on the side; it
// never feeds back into scan output. Reports are byte-identical with
// tracing on or off.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gb::obs {

class Tracer;

/// RAII span handle. Movable; records its event (duration = construction
/// to destruction) into the owning tracer when it goes out of scope.
/// A default-constructed or disabled-tracer span is inert.
class ScopedSpan {
 public:
  ScopedSpan() = default;
  ScopedSpan(ScopedSpan&& o) noexcept
      : tracer_(o.tracer_),
        name_(std::move(o.name_)),
        cat_(std::move(o.cat_)),
        start_us_(o.start_us_),
        args_(std::move(o.args_)) {
    o.tracer_ = nullptr;
  }
  ScopedSpan& operator=(ScopedSpan&& o) noexcept {
    if (this != &o) {
      finish();
      tracer_ = o.tracer_;
      name_ = std::move(o.name_);
      cat_ = std::move(o.cat_);
      start_us_ = o.start_us_;
      args_ = std::move(o.args_);
      o.tracer_ = nullptr;
    }
    return *this;
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() { finish(); }

  /// Attaches a key/value argument shown in the trace viewer's detail
  /// pane. No-op on an inert span.
  void arg(std::string_view key, std::string_view value);

  [[nodiscard]] bool active() const { return tracer_ != nullptr; }

 private:
  friend class Tracer;
  ScopedSpan(Tracer* tracer, std::string_view name, std::string_view cat,
             std::uint64_t start_us)
      : tracer_(tracer), name_(name), cat_(cat), start_us_(start_us) {}

  void finish();

  Tracer* tracer_ = nullptr;
  std::string name_;
  std::string cat_;
  std::uint64_t start_us_ = 0;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// Collects span events into per-thread-slot buffers (mutex per slot,
/// effectively uncontended) and serializes them as Chrome trace JSON.
/// enable()/disable() may be called at any time; spans opened while
/// enabled record even if the tracer is disabled before they close.
class Tracer {
 public:
  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  void enable() { enabled_.store(true, std::memory_order_relaxed); }
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Opens a span; inert (and allocation-free beyond the name/category
  /// strings the caller already built) when the tracer is disabled.
  [[nodiscard]] ScopedSpan span(std::string_view name,
                                std::string_view cat = "scan");

  /// Zero-duration marker event.
  void instant(std::string_view name, std::string_view cat = "scan");

  /// Chrome trace_event JSON: {"traceEvents":[...]} of complete events
  /// ("ph":"X") sorted by start time. Loadable in chrome://tracing and
  /// Perfetto; nesting is inferred from containment per thread track.
  [[nodiscard]] std::string to_chrome_json() const;

  /// Drops every recorded event (the enabled flag is unchanged).
  void clear();

  [[nodiscard]] std::size_t event_count() const;

 private:
  friend class ScopedSpan;

  struct Event {
    std::string name;
    std::string cat;
    std::uint64_t ts_us = 0;   // since tracer epoch
    std::uint64_t dur_us = 0;  // 0 for instants
    std::uint32_t tid = 0;
    char ph = 'X';
    std::vector<std::pair<std::string, std::string>> args;
  };
  struct Buffer {
    std::mutex mu;
    std::vector<Event> events;
  };

  [[nodiscard]] std::uint64_t now_us() const;
  void record(Event e);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;
  // Sized like the metrics shards; see obs::internal::kSlots.
  std::vector<std::unique_ptr<Buffer>> buffers_;
};

/// Process-wide tracer, enabled by the CLI's --trace flag. Library code
/// records through this by default so one flag captures every layer.
Tracer& default_tracer();

}  // namespace gb::obs
