#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace gb::obs {

namespace internal {

std::size_t thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kSlots;
  return slot;
}

}  // namespace internal

namespace {

/// Minimal JSON string escape, local so gb_obs stays dependency-free
/// (gb_support links gb_obs, so using support/strings.h here would be a
/// cycle). Metric names are code-controlled; labels may carry tenant ids.
std::string escape_json(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Numbers render as integers when they are one (the common case for
/// counters) and as shortest-ish decimal otherwise.
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

/// Prometheus label block: {k="v",...} or empty when there are no labels.
/// `extra` appends one more pair (used for the histogram `le` label).
std::string prom_labels(const Labels& labels,
                        const std::pair<std::string, std::string>* extra) {
  if (labels.empty() && extra == nullptr) return "";
  std::string out = "{";
  bool first = true;
  auto emit = [&](const std::string& k, const std::string& v) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    for (const char c : v) {
      if (c == '"' || c == '\\') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    out += "\"";
  };
  for (const auto& [k, v] : labels) emit(k, v);
  if (extra != nullptr) emit(extra->first, extra->second);
  out += "}";
  return out;
}

std::string bound_label(double bound) {
  if (std::isinf(bound)) return "+Inf";
  return format_value(bound);
}

}  // namespace

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  const std::size_t n = bounds_.size() + 1;  // + overflow bucket
  for (auto& slot : slots_) {
    slot.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(n);
    for (std::size_t i = 0; i < n; ++i) {
      slot.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket =
      static_cast<std::size_t>(std::distance(bounds_.begin(), it));
  Slot& slot = slots_[internal::thread_slot()];
  slot.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  slot.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const auto& slot : slots_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

double Histogram::sum() const {
  double total = 0;
  for (const auto& slot : slots_) {
    total += slot.sum.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Histogram::count() const {
  std::uint64_t total = 0;
  for (const auto c : bucket_counts()) total += c;
  return total;
}

double Histogram::quantile(double q) const {
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < rank || counts[i] == 0) continue;
    if (i >= bounds_.size()) {
      // Overflow bucket: no finite upper edge to interpolate toward.
      return bounds_.empty() ? 0.0 : bounds_.back();
    }
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double upper = bounds_[i];
    const double into =
        rank - static_cast<double>(cumulative - counts[i]);
    return lower + (upper - lower) * (into / static_cast<double>(counts[i]));
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> exponential_buckets(double start, double factor,
                                        std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

const std::vector<double>& default_latency_buckets() {
  // 10us .. ~100s, one decade per two buckets.
  static const std::vector<double> kBuckets =
      exponential_buckets(1e-5, 10.0, 8);
  return kBuckets;
}

// ---------------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry::Entry& MetricsRegistry::find_or_create(std::string_view name,
                                                        Labels& labels,
                                                        Kind kind) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\0';
    key += k;
    key += '\0';
    key += v;
  }
  // Caller holds mu_: both the index lookup and the lazy payload
  // creation in the accessors below must be one critical section, or
  // two threads minting the same metric race on the payload pointer.
  const auto it = index_.find(key);
  if (it != index_.end()) {
    Entry& e = *entries_[it->second];
    if (e.kind != kind) {
      throw std::logic_error("metric '" + std::string(name) +
                             "' re-registered as a different kind");
    }
    return e;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::move(labels);
  entry->kind = kind;
  index_.emplace(std::move(key), entries_.size());
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name, Labels labels) {
  support::MutexLock lk(mu_);
  Entry& e = find_or_create(name, labels, Kind::kCounter);
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, Labels labels) {
  support::MutexLock lk(mu_);
  Entry& e = find_or_create(name, labels, Kind::kGauge);
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds,
                                      Labels labels) {
  support::MutexLock lk(mu_);
  Entry& e = find_or_create(name, labels, Kind::kHistogram);
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(std::move(upper_bounds));
  } else if (e.histogram->upper_bounds().size() != upper_bounds.size() ||
             !std::equal(upper_bounds.begin(), upper_bounds.end(),
                         e.histogram->upper_bounds().begin())) {
    // Tolerate unsorted re-requests of the same bounds set.
    std::vector<double> sorted = upper_bounds;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    if (sorted != e.histogram->upper_bounds()) {
      throw std::logic_error("histogram '" + std::string(name) +
                             "' re-registered with different buckets");
    }
  }
  return *e.histogram;
}

std::size_t MetricsRegistry::size() const {
  support::MutexLock lk(mu_);
  return entries_.size();
}

void MetricsRegistry::set_help(std::string_view name, std::string_view help) {
  if (help.empty()) return;
  support::MutexLock lk(mu_);
  help_.emplace(std::string(name), std::string(help));  // first text wins
}

std::string MetricsRegistry::to_prometheus_text() const {
  support::MutexLock lk(mu_);
  // The exposition format wants every series of a family under one
  // # TYPE line, but labelled series are created interleaved with other
  // metrics — so group by name (stable: creation order within a family).
  std::vector<const Entry*> ordered;
  ordered.reserve(entries_.size());
  for (const auto& ep : entries_) ordered.push_back(ep.get());
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const Entry* a, const Entry* b) {
                     return a->name < b->name;
                   });
  std::ostringstream os;
  std::string last_family;
  for (const Entry* ep : ordered) {
    const Entry& e = *ep;
    if (e.name != last_family) {
      if (const auto help = help_.find(e.name); help != help_.end()) {
        // HELP escaping per the exposition format: backslash and
        // newline only.
        os << "# HELP " << e.name << ' ';
        for (const char c : help->second) {
          if (c == '\\') os << "\\\\";
          else if (c == '\n') os << "\\n";
          else os << c;
        }
        os << '\n';
      }
      const char* type = e.kind == Kind::kCounter   ? "counter"
                         : e.kind == Kind::kGauge   ? "gauge"
                                                    : "histogram";
      os << "# TYPE " << e.name << ' ' << type << '\n';
      last_family = e.name;
    }
    switch (e.kind) {
      case Kind::kCounter:
        os << e.name << prom_labels(e.labels, nullptr) << ' '
           << format_value(e.counter->value()) << '\n';
        break;
      case Kind::kGauge:
        os << e.name << prom_labels(e.labels, nullptr) << ' '
           << format_value(e.gauge->value()) << '\n';
        break;
      case Kind::kHistogram: {
        const auto& bounds = e.histogram->upper_bounds();
        const auto counts = e.histogram->bucket_counts();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i <= bounds.size(); ++i) {
          cumulative += counts[i];
          const double bound = i < bounds.size()
                                   ? bounds[i]
                                   : std::numeric_limits<double>::infinity();
          const std::pair<std::string, std::string> le{"le",
                                                       bound_label(bound)};
          os << e.name << "_bucket" << prom_labels(e.labels, &le) << ' '
             << cumulative << '\n';
        }
        os << e.name << "_sum" << prom_labels(e.labels, nullptr) << ' '
           << format_value(e.histogram->sum()) << '\n';
        os << e.name << "_count" << prom_labels(e.labels, nullptr) << ' '
           << cumulative << '\n';
        break;
      }
    }
  }
  return os.str();
}

std::string MetricsRegistry::to_json() const {
  support::MutexLock lk(mu_);
  std::ostringstream os;
  os << '[';
  bool first = true;
  for (const auto& ep : entries_) {
    const Entry& e = *ep;
    if (!first) os << ',';
    first = false;
    os << "{\"name\":" << escape_json(e.name) << ",\"kind\":\""
       << (e.kind == Kind::kCounter   ? "counter"
           : e.kind == Kind::kGauge   ? "gauge"
                                      : "histogram")
       << "\",\"labels\":{";
    bool first_label = true;
    for (const auto& [k, v] : e.labels) {
      if (!first_label) os << ',';
      first_label = false;
      os << escape_json(k) << ':' << escape_json(v);
    }
    os << '}';
    switch (e.kind) {
      case Kind::kCounter:
        os << ",\"value\":" << format_value(e.counter->value());
        break;
      case Kind::kGauge:
        os << ",\"value\":" << format_value(e.gauge->value());
        break;
      case Kind::kHistogram: {
        os << ",\"bounds\":[";
        bool fb = true;
        for (const double b : e.histogram->upper_bounds()) {
          if (!fb) os << ',';
          fb = false;
          os << format_value(b);
        }
        os << "],\"counts\":[";
        fb = true;
        for (const auto c : e.histogram->bucket_counts()) {
          if (!fb) os << ',';
          fb = false;
          os << c;
        }
        os << "],\"sum\":" << format_value(e.histogram->sum())
           << ",\"count\":" << e.histogram->count();
        break;
      }
    }
    os << '}';
  }
  os << ']';
  return os.str();
}

MetricsRegistry& default_registry() {
  // Leaked on purpose: counters outlive every static destructor that
  // might still tick them at exit.  gb-lint: allow(naked-new)
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace gb::obs
