// GhostBuster: the original single-threaded entry points.
//
// DEPRECATED — thin shims over core::ScanEngine (core/scan_engine.h),
// kept so existing callers compile unchanged. Each call builds a
// single-executor engine (parallelism = 1, no threads spawned), so the
// behaviour — including the simulated timing and the report contents —
// is exactly the historical serial path. New code should construct a
// ScanEngine with a ScanConfig instead: it reuses one worker pool across
// scans and exposes the typed ResourceMask/policy configuration.
#pragma once

#include "core/scan_engine.h"

namespace gb::core {

/// DEPRECATED: use ScanConfig. The four bools map to ResourceMask bits,
/// advanced_mode to ProcessPolicy::scheduler_view.
struct Options {
  bool scan_files = true;
  bool scan_registry = true;
  bool scan_processes = true;
  bool scan_modules = true;
  /// Use the scheduler thread table instead of the Active Process List as
  /// the low-level process truth (finds FU's DKOM hiding).
  bool advanced_mode = false;
  /// Image whose process context runs the high-level scans. Spawned from
  /// C:\windows\system32\ if not already running.
  std::string scanner_image = "ghostbuster.exe";
  /// Boot mechanism for outside_scan().
  OutsideBoot outside_boot = OutsideBoot::kWinPeCd;

  /// The equivalent ScanConfig (always single-executor).
  [[nodiscard]] ScanConfig to_config() const;
};

/// DEPRECATED: use ScanEngine.
class GhostBuster {
 public:
  explicit GhostBuster(machine::Machine& m) : machine_(m) {}

  /// Inside-the-box cross-view diff of all enabled resource types.
  /// Advances the machine's virtual clock by the simulated scan time.
  Report inside_scan(const Options& opts = {});

  /// DLL-injection mode: runs the high-level scans from within *every*
  /// running process and unions the findings.
  Report injected_scan(const Options& opts = {});

  using InsideCapture = core::InsideCapture;
  /// Phase 1 of the outside-the-box workflow.
  InsideCapture capture_inside_high(const Options& opts = {});

  /// Phase 2: diffs the capture against the clean views. The machine
  /// must not be running.
  Report outside_diff(const InsideCapture& capture, const Options& opts = {});

  /// Convenience: full outside-the-box run. Leaves the machine off.
  Report outside_scan(const Options& opts = {});

 private:
  machine::Machine& machine_;
};

}  // namespace gb::core
