// GhostBuster: the detection tool.
//
// Orchestrates the scanners and the cross-view differ into the paper's
// workflows:
//   inside_scan     — Section 2/3/4 inside-the-box detection (files,
//                     ASEP hooks, processes, modules), optional advanced
//                     mode for DKOM-hidden processes;
//   injected_scan   — Section 5's DLL-injection extension: every process
//                     becomes a GhostBuster, defeating ghostware that
//                     targets specific utilities or GhostBuster itself;
//   outside-the-box — capture_inside_high() on the infected machine,
//                     blue-screen for the dump, power off, then
//                     outside_diff() against the clean disk views.
#pragma once

#include <optional>

#include "core/differ.h"
#include "core/file_scans.h"
#include "core/process_scans.h"
#include "core/registry_scans.h"
#include "machine/machine.h"

namespace gb::core {

/// How the outside-the-box clean environment is entered (Section 5's
/// automation extensions: enterprise RIS network boot avoids the CD).
enum class OutsideBoot {
  kWinPeCd,       // 1.5-3 minutes of CD boot
  kRisNetworkBoot // enterprise Remote Installation Service: faster, no media
};

struct Options {
  bool scan_files = true;
  bool scan_registry = true;
  bool scan_processes = true;
  bool scan_modules = true;
  /// Use the scheduler thread table instead of the Active Process List as
  /// the low-level process truth (finds FU's DKOM hiding).
  bool advanced_mode = false;
  /// Image whose process context runs the high-level scans. Spawned from
  /// C:\windows\system32\ if not already running.
  std::string scanner_image = "ghostbuster.exe";
  /// Boot mechanism for outside_scan().
  OutsideBoot outside_boot = OutsideBoot::kWinPeCd;
};

struct Report {
  std::vector<DiffReport> diffs;
  double total_simulated_seconds = 0;

  bool infection_detected() const;
  std::size_t hidden_count(ResourceType type) const;
  std::vector<Finding> all_hidden() const;
  const DiffReport* diff_for(ResourceType type) const;
  /// Human-readable report (what the tool prints for the user).
  std::string to_string() const;
  /// Machine-readable report (for SIEM/automation pipelines). Strings are
  /// JSON-escaped; embedded NULs and control bytes appear as \u00XX.
  std::string to_json() const;
};

class GhostBuster {
 public:
  explicit GhostBuster(machine::Machine& m) : machine_(m) {}

  /// Inside-the-box cross-view diff of all enabled resource types.
  /// Advances the machine's virtual clock by the simulated scan time.
  Report inside_scan(const Options& opts = {});

  /// DLL-injection mode: runs the high-level scans from within *every*
  /// running process and unions the findings. A ghostware program that
  /// hides from any process at all is caught.
  Report injected_scan(const Options& opts = {});

  /// Phase 1 of the outside-the-box workflow: high-level (API) snapshots
  /// taken on the live, infected machine, plus the blue-screen kernel
  /// dump when process/module scanning is enabled. Leaves the machine
  /// halted (dump) or running (no dump) — callers shut it down next.
  struct InsideCapture {
    std::optional<ScanResult> files;
    std::optional<ScanResult> aseps;
    std::optional<ScanResult> processes;
    std::optional<ScanResult> modules;
    std::optional<kernel::KernelDump> dump;
  };
  InsideCapture capture_inside_high(const Options& opts = {});

  /// Phase 2: diffs the capture against the clean views of the powered-
  /// off disk (WinPE) and the parsed dump. The machine must not be
  /// running.
  Report outside_diff(const InsideCapture& capture, const Options& opts = {});

  /// Convenience: full outside-the-box run (capture, blue-screen,
  /// shutdown, diff). The machine is left powered off.
  Report outside_scan(const Options& opts = {});

 private:
  winapi::Ctx scanner_context(const Options& opts);
  void finalize(Report& report);

  machine::Machine& machine_;
};

}  // namespace gb::core
