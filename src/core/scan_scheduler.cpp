#include "core/scan_scheduler.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <sstream>

#include "machine/machine.h"
#include "obs/trace.h"
#include "support/strings.h"
#include "support/thread_annotations.h"

namespace gb::core {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

}  // namespace

const char* job_phase_name(JobPhase phase) {
  switch (phase) {
    case JobPhase::kQueued: return "queued";
    case JobPhase::kRunning: return "running";
    case JobPhase::kDone: return "done";
  }
  return "?";
}

namespace internal {

struct JobState;

/// Shared scheduler state. Held by shared_ptr from the scheduler and
/// from every JobState, so a ScanJob handle that outlives its scheduler
/// can still lock the mutex and read its (by then completed) result.
/// Defined before JobState so the latter's GB_GUARDED_BY(core->mu)
/// annotation sees a complete type.
struct SchedulerCore {
  struct Tenant {
    std::uint32_t weight = 1;
    std::uint32_t deficit = 0;  // DRR credit left in the current round
    /// Higher priority first; each deque is submission order. Entries
    /// cancelled while queued complete immediately and are dropped
    /// lazily at pop time.
    std::map<int, std::deque<std::shared_ptr<JobState>>, std::greater<int>>
        queues;
    std::size_t queued = 0;  // live (not-yet-cancelled) queued jobs
    bool in_ring = false;
    /// Registry-backed lifecycle counters (labels: tenant=<id>), created
    /// on first touch. SchedulerStats reads these back rather than
    /// keeping a parallel set of integers.
    obs::Counter* submitted = nullptr;
    obs::Counter* served = nullptr;
    obs::Counter* cancelled = nullptr;
    obs::Gauge* deficit_gauge = nullptr;
  };

  mutable support::Mutex mu;
  std::condition_variable idle_cv;
  bool paused GB_GUARDED_BY(mu) = false;
  bool shutdown GB_GUARDED_BY(mu) = false;
  std::uint64_t next_id GB_GUARDED_BY(mu) = 1;
  std::size_t max_dispatchers = 1;  // set once at construction
  std::size_t dispatchers GB_GUARDED_BY(mu) = 0;  // drain tasks alive
  std::size_t running GB_GUARDED_BY(mu) = 0;  // jobs currently on a worker
  std::size_t queued_total GB_GUARDED_BY(mu) = 0;

  std::map<std::string, Tenant> tenants GB_GUARDED_BY(mu);
  /// Round-robin ring of tenant ids with queued work; cursor_ points at
  /// the tenant currently spending its deficit.
  std::vector<std::string> ring GB_GUARDED_BY(mu);
  std::size_t cursor GB_GUARDED_BY(mu) = 0;

  /// Jobs not yet complete, so shutdown can cancel them. Keyed by id.
  std::map<std::uint64_t, std::shared_ptr<JobState>> live GB_GUARDED_BY(mu);

  /// Sessions with a job queued or running. ScanSession is not
  /// thread-safe, so submit() rejects a second job for a session already
  /// here — two dispatchers must never drive the same snapshot store
  /// concurrently. Entries leave when their job completes (served,
  /// cancelled, or shutdown).
  std::set<ScanSession*> sessions_inflight GB_GUARDED_BY(mu);

  /// Telemetry sink (see ScanScheduler::Options::metrics). `owned` is
  /// set when the options left metrics null; `metrics` always points at
  /// the registry in use. Handles below are created once at
  /// construction; all updates happen under `mu`.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics;
  obs::MetricsRegistry* metrics = nullptr;
  obs::Histogram* queue_wait = nullptr;
  obs::Histogram* run_seconds = nullptr;
  obs::Counter* queue_seconds_total = nullptr;
  obs::Counter* run_seconds_total = nullptr;
  obs::Counter* dispatched = nullptr;
  obs::Gauge* max_latency = nullptr;
  obs::Gauge* queue_depth = nullptr;
  obs::Gauge* running_gauge = nullptr;
};

/// Everything one submitted job carries through its life. Result, phase
/// transitions and the queue bookkeeping are guarded by the owning
/// SchedulerCore's mutex (lock order: core mutex only — JobState has no
/// lock of its own); `phase` is additionally atomic so progress() can
/// snapshot it without contending with dispatch.
struct JobState {
  std::uint64_t id = 0;
  std::string tenant;
  int priority = 0;
  JobSpec spec;
  support::CancelToken token;
  support::TaskCounter counter;
  SteadyClock::time_point submit_time{};
  double queue_seconds = 0;  // set at dispatch

  std::shared_ptr<SchedulerCore> core;
  std::condition_variable cv;  // waits on core->mu
  std::atomic<JobPhase> phase{JobPhase::kQueued};
  support::StatusOr<Report> result GB_GUARDED_BY(core->mu);
};

/// Reads a completed job's result without the core lock. Safe only once
/// phase == kDone: the result is write-once and the phase store releases
/// it; Clang cannot see that protocol, so the accessor opts out.
inline support::StatusOr<Report>& done_result(JobState& st)
    GB_NO_THREAD_SAFETY_ANALYSIS {
  return st.result;
}

namespace {

using Tenant = SchedulerCore::Tenant;

/// Looks up (creating if absent) a tenant and lazily mints its registry
/// handles, so every Tenant in the map has non-null counters. Requires
/// core.mu held.
Tenant& tenant_locked(SchedulerCore& core, const std::string& name)
    GB_REQUIRES(core.mu) {
  Tenant& t = core.tenants[name];
  if (t.submitted == nullptr) {
    const obs::Labels labels{{"tenant", name}};
    t.submitted = &core.metrics->counter("gb_sched_submitted_total", labels);
    t.served = &core.metrics->counter("gb_sched_served_total", labels);
    t.cancelled = &core.metrics->counter("gb_sched_cancelled_total", labels);
    t.deficit_gauge = &core.metrics->gauge("gb_sched_tenant_deficit", labels);
  }
  return t;
}

void enter_ring_locked(SchedulerCore& core, const std::string& tenant)
    GB_REQUIRES(core.mu) {
  Tenant& t = tenant_locked(core, tenant);
  if (!t.in_ring) {
    t.in_ring = true;
    core.ring.push_back(tenant);
  }
}

/// Completes `st` as kCancelled without it ever reaching a worker.
/// Requires core.mu held and st.phase == kQueued; the queue entry stays
/// behind and is skipped when dispatch reaches it.
void complete_cancelled_locked(SchedulerCore& core, JobState& st,
                               const char* why) GB_REQUIRES(core.mu) {
  st.token.cancel();
  st.result = support::Status::cancelled(why);
  st.phase.store(JobPhase::kDone, std::memory_order_release);
  Tenant& t = tenant_locked(core, st.tenant);
  t.cancelled->inc();
  if (t.queued > 0) --t.queued;
  if (core.queued_total > 0) --core.queued_total;
  core.queue_depth->set(static_cast<double>(core.queued_total));
  if (st.spec.session != nullptr) core.sessions_inflight.erase(st.spec.session);
  core.live.erase(st.id);
  st.cv.notify_all();
  core.idle_cv.notify_all();
}

/// Deficit-round-robin pop: serves the tenant under the cursor while it
/// has credit and work, then moves on. One call pops one job (already
/// transitioned to kRunning, with queue latency stamped) or returns
/// nullptr when nothing is dispatchable. Requires core.mu held.
std::shared_ptr<JobState> pop_locked(SchedulerCore& core)
    GB_REQUIRES(core.mu) {
  while (!core.ring.empty()) {
    if (core.cursor >= core.ring.size()) core.cursor = 0;
    Tenant& t = tenant_locked(core, core.ring[core.cursor]);
    if (t.queued == 0) {
      // Only lazily-dropped cancelled entries left: retire the tenant
      // from the ring (erasing shifts the next tenant under the cursor).
      t.queues.clear();
      t.deficit = 0;
      t.in_ring = false;
      core.ring.erase(core.ring.begin() +
                      static_cast<std::ptrdiff_t>(core.cursor));
      continue;
    }
    if (t.deficit == 0) t.deficit = std::max<std::uint32_t>(1, t.weight);

    std::shared_ptr<JobState> job;
    while (!t.queues.empty()) {
      auto it = t.queues.begin();  // highest priority
      job = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) t.queues.erase(it);
      if (job->phase.load(std::memory_order_acquire) == JobPhase::kQueued) {
        break;  // live job; cancelled-while-queued entries are skipped
      }
      job = nullptr;
    }
    if (!job) {
      // Defensive: the counter said live jobs existed but the queues
      // drained dry. Resynchronize instead of spinning; the tenant is
      // retired on the next visit.
      core.queued_total -= std::min(core.queued_total, t.queued);
      t.queued = 0;
      continue;
    }

    --t.deficit;
    --t.queued;
    --core.queued_total;
    t.deficit_gauge->set(static_cast<double>(t.deficit));
    if (t.deficit == 0 || t.queued == 0) {
      // Credit spent (or queue drained): advance to the next tenant.
      // An emptied tenant is retired on the next visit.
      ++core.cursor;
    }
    job->phase.store(JobPhase::kRunning, std::memory_order_release);
    // Steady clock is monotonic so the wait can't be negative; clamp
    // anyway so a queue_seconds consumer never sees -0.0 from rounding.
    job->queue_seconds =
        std::max(0.0, seconds_since(job->submit_time));
    core.queue_wait->observe(job->queue_seconds);
    core.dispatched->inc();
    ++core.running;
    core.queue_depth->set(static_cast<double>(core.queued_total));
    core.running_gauge->set(static_cast<double>(core.running));
    return job;
  }
  return nullptr;
}

/// Runs one dispatched job to completion on the calling worker. The
/// engine is built fresh per job with parallelism forced to 1 — the
/// fleet fan-out is the parallelism; a per-job pool would oversubscribe
/// the shared workers.
void run_job(SchedulerCore& core, JobState& st) {
  const auto run_start = SteadyClock::now();
  // Join the job's trace on this worker thread: the queue wait has no
  // live scope (the job just sat in a deque), so it is synthesized from
  // the submit/dispatch stamps; every span below — sched.job, the
  // engine and provider spans it runs inline — parents under the job's
  // context installed here.
  obs::TraceContextScope trace_scope(st.spec.trace);
  obs::default_tracer().record_span("sched.queue_wait", "sched",
                                    st.spec.trace, st.submit_time,
                                    run_start);
  support::StatusOr<Report> result =
      support::Status::internal("scan job never produced a result");
  {
    auto span = obs::default_tracer().span("sched.job", "sched");
    span.arg("tenant", st.tenant);
    span.arg("job", std::to_string(st.id));
    try {
      if (st.spec.session != nullptr) {
        // Scheduled incremental re-scan: drive the caller's session so
        // the snapshot store and journal cursor carry across jobs. The
        // session's engine already owns machine and config.
        result = st.spec.session->rescan(&st.token, &st.counter);
      } else {
        ScanConfig cfg = st.spec.config;
        cfg.parallelism = 1;
        // Job engines report into the scheduler's registry unless the
        // submitter routed theirs elsewhere.
        if (cfg.metrics == nullptr) cfg.metrics = core.metrics;
        ScanEngine engine(*st.spec.machine, cfg);
        if (st.spec.configure_engine) st.spec.configure_engine(engine);
        JobSpec run_spec;
        run_spec.kind = st.spec.kind;
        run_spec.cancel = &st.token;
        run_spec.progress = &st.counter;
        result = engine.run(run_spec);
      }
    } catch (const std::exception& e) {
      // A scan that throws (misconfigured machine, logic error in a
      // custom provider) fails its own job, not the dispatcher.
      result = support::Status::internal(std::string("scan job threw: ") +
                                         e.what());
    }
  }
  const double run_seconds = seconds_since(run_start);

  // Scheduler provenance + the completion hook run BEFORE the result is
  // published: st's identity fields are immutable after dispatch, and a
  // serving layer must be able to journal the completion durably before
  // any waiter can observe the job as done.
  if (result.ok()) {
    result.value().scheduler = Report::SchedulerTag{
        st.tenant, st.id, st.priority, st.queue_seconds};
  }
  if (st.spec.on_complete) st.spec.on_complete(st.id, result);

  support::MutexLock lk(core.mu);
  Tenant& t = tenant_locked(core, st.tenant);
  if (!result.ok() &&
      result.status().code() == support::StatusCode::kCancelled) {
    t.cancelled->inc();
  } else {
    t.served->inc();
  }
  core.queue_seconds_total->add(st.queue_seconds);
  core.run_seconds_total->add(run_seconds);
  core.run_seconds->observe(run_seconds);
  core.max_latency->max_of(st.queue_seconds + run_seconds);
  st.result = std::move(result);
  st.phase.store(JobPhase::kDone, std::memory_order_release);
  if (st.spec.session != nullptr) {
    core.sessions_inflight.erase(st.spec.session);
  }
  core.live.erase(st.id);
  --core.running;
  core.running_gauge->set(static_cast<double>(core.running));
  st.cv.notify_all();
  core.idle_cv.notify_all();
}

/// Dispatcher loop, run as a pool task: pop-and-run until the queue is
/// empty (or dispatch pauses / shuts down), then retire. submit() and
/// resume() spawn replacements as work and capacity allow.
void drain(const std::shared_ptr<SchedulerCore>& core) {
  for (;;) {
    std::shared_ptr<JobState> job;
    {
      support::MutexLock lk(core->mu);
      if (!core->paused && !core->shutdown) job = pop_locked(*core);
      if (!job) {
        --core->dispatchers;
        core->idle_cv.notify_all();
        return;
      }
    }
    run_job(*core, *job);
  }
}

}  // namespace

}  // namespace internal

// ---------------------------------------------------------------------------
// ScanJob

std::uint64_t ScanJob::id() const { return state_->id; }

const std::string& ScanJob::tenant() const { return state_->tenant; }

support::StatusOr<Report>& ScanJob::wait() {
  internal::JobState& st = *state_;
  support::CondLock lk(st.core->mu);
  st.cv.wait(lk.native(), [&] {
    return st.phase.load(std::memory_order_acquire) == JobPhase::kDone;
  });
  return st.result;
}

support::StatusOr<Report>* ScanJob::try_result() {
  internal::JobState& st = *state_;
  support::MutexLock lk(st.core->mu);
  return st.phase.load(std::memory_order_acquire) == JobPhase::kDone
             ? &st.result
             : nullptr;
}

bool ScanJob::cancel() {
  if (!state_) return false;
  internal::JobState& st = *state_;
  bool completed_here = false;
  {
    support::MutexLock lk(st.core->mu);
    const JobPhase phase = st.phase.load(std::memory_order_acquire);
    if (phase == JobPhase::kDone || st.token.cancelled()) return false;
    if (phase == JobPhase::kQueued) {
      internal::complete_cancelled_locked(*st.core, st,
                                          "job cancelled while queued");
      completed_here = true;
    } else {
      st.token.cancel();  // the running engine sees it at the next boundary
    }
  }
  // The completion hook runs outside the scheduler lock (it may take the
  // caller's own locks). The result is stable: a cancelled-while-queued
  // job is done and will never be dispatched again.
  if (completed_here && st.spec.on_complete) {
    st.spec.on_complete(st.id, internal::done_result(st));
  }
  return true;
}

JobProgress ScanJob::progress() const {
  JobProgress p;
  if (!state_) return p;
  // Phase and counters are separate atomics, so a raw read pair can be
  // torn: a job completing (or being cancelled) between the two loads
  // used to pair kDone with counters from mid-flight — a phase past the
  // work that actually finished. Snapshot until the phase is stable
  // around the counter reads, then clamp done to total so the pair is
  // always internally consistent.
  for (;;) {
    const JobPhase before = state_->phase.load(std::memory_order_acquire);
    p.tasks_done = state_->counter.done.load(std::memory_order_acquire);
    p.tasks_total = state_->counter.total.load(std::memory_order_acquire);
    const JobPhase after = state_->phase.load(std::memory_order_acquire);
    if (before == after) {
      p.phase = before;
      break;
    }
  }
  if (p.tasks_done > p.tasks_total) p.tasks_done = p.tasks_total;
  return p;
}

// ---------------------------------------------------------------------------
// SchedulerStats

std::string SchedulerStats::to_string() const {
  std::ostringstream os;
  os << "scheduler: " << queue_depth << " queued, " << running
     << " running; " << submitted << " submitted / " << served
     << " served / " << cancelled << " cancelled\n";
  for (const auto& t : tenants) {
    os << "  tenant " << t.id << " (w=" << t.weight << "): " << t.submitted
       << " submitted, " << t.served << " served, " << t.cancelled
       << " cancelled, " << t.queued << " queued\n";
  }
  if (served > 0) {
    os << "  mean queue wait " << total_queue_seconds / double(served)
       << "s, mean run " << total_run_seconds / double(served)
       << "s, max latency " << max_latency_seconds << "s\n";
  }
  return os.str();
}

std::string SchedulerStats::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":\"2.5\""
     << ",\"queue_depth\":" << queue_depth << ",\"running\":" << running
     << ",\"submitted\":" << submitted << ",\"served\":" << served
     << ",\"cancelled\":" << cancelled
     << ",\"total_queue_seconds\":" << total_queue_seconds
     << ",\"total_run_seconds\":" << total_run_seconds
     << ",\"max_latency_seconds\":" << max_latency_seconds
     << ",\"tenants\":[";
  bool first = true;
  for (const auto& t : tenants) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":" << json_quote(t.id)
       << ",\"weight\":" << t.weight << ",\"submitted\":" << t.submitted
       << ",\"served\":" << t.served << ",\"cancelled\":" << t.cancelled
       << ",\"queued\":" << t.queued << "}";
  }
  os << "]}";
  return os.str();
}

// ---------------------------------------------------------------------------
// ScanScheduler

ScanScheduler::ScanScheduler() : ScanScheduler(Options{}) {}

ScanScheduler::ScanScheduler(Options opts)
    : core_(std::make_shared<internal::SchedulerCore>()),
      pool_(opts.workers) {
  {
    // No concurrency yet, but `paused` is guarded state and the lock is
    // uncontended — cheaper than an analysis escape hatch.
    support::MutexLock lk(core_->mu);
    core_->paused = opts.start_paused;
  }
  core_->max_dispatchers = std::max<std::size_t>(1, pool_.size());
  if (opts.metrics != nullptr) {
    core_->metrics = opts.metrics;
  } else {
    core_->owned_metrics = std::make_unique<obs::MetricsRegistry>();
    core_->metrics = core_->owned_metrics.get();
  }
  obs::MetricsRegistry& reg = *core_->metrics;
  core_->queue_wait = &reg.histogram("gb_sched_queue_wait_seconds",
                                     obs::default_latency_buckets());
  core_->run_seconds = &reg.histogram("gb_sched_run_seconds",
                                      obs::default_latency_buckets());
  core_->queue_seconds_total = &reg.counter("gb_sched_queue_seconds_total");
  core_->run_seconds_total = &reg.counter("gb_sched_run_seconds_total");
  core_->dispatched = &reg.counter("gb_sched_dispatched_total");
  core_->max_latency = &reg.gauge("gb_sched_max_latency_seconds");
  core_->queue_depth = &reg.gauge("gb_sched_queue_depth");
  core_->running_gauge = &reg.gauge("gb_sched_running_jobs");
  reg.set_help("gb_sched_queue_wait_seconds",
               "Queue wait from submit to dispatch");
  reg.set_help("gb_sched_run_seconds", "Job run time on a worker");
  reg.set_help("gb_sched_dispatched_total", "Jobs dispatched to the pool");
  reg.set_help("gb_sched_queue_depth", "Jobs waiting in tenant queues");
  reg.set_help("gb_sched_running_jobs", "Jobs currently on a worker");
  pool_.instrument(reg);
}

ScanScheduler::~ScanScheduler() {
  // Shared_ptr copies, not raw pointers: complete_cancelled_locked
  // erases each job from `live`, and an abandoned handle would otherwise
  // leave these JobStates destroyed before the hook loop below.
  std::vector<std::shared_ptr<internal::JobState>> queued;
  {
    support::MutexLock lk(core_->mu);
    core_->shutdown = true;
    // Complete everything still queued as cancelled (it never ran) and
    // raise the token of everything running so it bails out at the next
    // provider-task boundary.
    for (auto& [id, job] : core_->live) {
      if (job->phase.load(std::memory_order_acquire) == JobPhase::kQueued) {
        queued.push_back(job);
      } else {
        job->token.cancel();
      }
    }
    for (const auto& st : queued) {
      internal::complete_cancelled_locked(*core_, *st,
                                          "scheduler shut down");
    }
    core_->ring.clear();
    for (auto& [name, t] : core_->tenants) {
      t.queues.clear();
      t.in_ring = false;
    }
  }
  // Completion hooks for shutdown-cancelled jobs fire outside the lock.
  for (const auto& st : queued) {
    if (st->spec.on_complete) {
      st->spec.on_complete(st->id, internal::done_result(*st));
    }
  }
  wait_idle();
  // pool_ (declared after core_) is destroyed first, joining any worker
  // still unwinding its drain task.
}

void ScanScheduler::set_tenant_weight(const std::string& tenant,
                                      std::uint32_t weight) {
  support::MutexLock lk(core_->mu);
  internal::tenant_locked(*core_, tenant).weight =
      std::max<std::uint32_t>(1, weight);
}

support::StatusOr<ScanJob> ScanScheduler::submit(JobSpec spec) {
  if (spec.session != nullptr) {
    // Session jobs bring their own engine (and machine) and only the
    // inside scan has an incremental form.
    if (spec.kind != ScanKind::kInside) {
      return support::Status::failed_precondition(
          "JobSpec.session requires kind == kInside");
    }
  } else if (spec.machine == nullptr) {
    return support::Status::failed_precondition(
        "JobSpec.machine is required by ScanScheduler::submit");
  }
  auto st = std::make_shared<internal::JobState>();
  st->tenant = spec.tenant;
  st->priority = spec.priority;
  st->spec = std::move(spec);
  st->core = core_;
  st->submit_time = SteadyClock::now();
  {
    support::MutexLock lk(core_->mu);
    if (core_->shutdown) {
      return support::Status::unavailable("scheduler is shutting down");
    }
    if (st->spec.session != nullptr) {
      // A session is single-threaded state (snapshot store + cursor):
      // admitting a second job while one is queued or running would let
      // two dispatchers race on it. Callers resubmit after the first
      // job's handle reports completion.
      if (!core_->sessions_inflight.insert(st->spec.session).second) {
        return support::Status::failed_precondition(
            "a job for this ScanSession is already queued or running; at "
            "most one job per session may be outstanding");
      }
    }
    st->id = core_->next_id++;
    if (!st->spec.trace.valid()) {
      // No caller-supplied trace: derive one from the job id so any
      // party that knows the id (a remote client, the daemon shard)
      // reconstructs the same trace_id/root span without coordination.
      st->spec.trace = obs::TraceContext::for_job(st->id);
    }
    internal::SchedulerCore::Tenant& t =
        internal::tenant_locked(*core_, st->tenant);
    t.submitted->inc();
    t.queues[st->priority].push_back(st);
    ++t.queued;
    ++core_->queued_total;
    core_->queue_depth->set(static_cast<double>(core_->queued_total));
    internal::enter_ring_locked(*core_, st->tenant);
    core_->live.emplace(st->id, st);
  }
  maybe_spawn_dispatchers();
  return ScanJob(st);
}

void ScanScheduler::resume() {
  {
    support::MutexLock lk(core_->mu);
    core_->paused = false;
  }
  maybe_spawn_dispatchers();
}

void ScanScheduler::maybe_spawn_dispatchers() {
  std::size_t to_spawn = 0;
  {
    support::MutexLock lk(core_->mu);
    if (core_->paused || core_->shutdown) return;
    // Each running job pins its dispatcher, so the demand is running +
    // queued — a submit arriving while every dispatcher is mid-job must
    // still be able to claim an idle pool slot.
    const std::size_t want = std::min(
        core_->max_dispatchers, core_->running + core_->queued_total);
    if (want > core_->dispatchers) to_spawn = want - core_->dispatchers;
    core_->dispatchers += to_spawn;
  }
  // Submitted OUTSIDE the lock: on a 0-worker pool submit() runs the
  // drain inline, and drain locks the same mutex. Callers (the daemon)
  // may hold their own lock across ScanScheduler::submit; that is safe
  // because drain only ever takes core->mu and completion callbacks are
  // invoked from pool workers, never inline under a caller's lock when
  // the pool has dedicated workers — the documented deployment shape.
  for (std::size_t i = 0; i < to_spawn; ++i) {
    auto core = core_;
    // gb-lint: allow(blocking-under-lock)
    pool_.submit([core] { internal::drain(core); });
  }
}

void ScanScheduler::wait_idle() {
  support::CondLock lk(core_->mu);
  core_->idle_cv.wait(lk.native(), [&] {
    return core_->queued_total == 0 && core_->running == 0 &&
           core_->dispatchers == 0;
  });
}

SchedulerStats ScanScheduler::stats() const {
  // Counts are whole numbers accumulated one inc() at a time, so the
  // double->uint64 cast below is exact (doubles hold integers to 2^53).
  const auto count = [](const obs::Counter* c) {
    return static_cast<std::uint64_t>(c->value());
  };
  SchedulerStats s;
  support::MutexLock lk(core_->mu);
  s.queue_depth = core_->queued_total;
  s.running = core_->running;
  s.total_queue_seconds = core_->queue_seconds_total->value();
  s.total_run_seconds = core_->run_seconds_total->value();
  s.max_latency_seconds = core_->max_latency->value();
  for (const auto& [name, t] : core_->tenants) {  // map: sorted by id
    SchedulerStats::Tenant out;
    out.id = name;
    out.weight = t.weight;
    out.submitted = count(t.submitted);
    out.served = count(t.served);
    out.cancelled = count(t.cancelled);
    out.queued = t.queued;
    s.submitted += out.submitted;
    s.served += out.served;
    s.cancelled += out.cancelled;
    s.tenants.push_back(std::move(out));
  }
  return s;
}

namespace {

LatencyQuantiles quantiles_of(const obs::Histogram& h) {
  LatencyQuantiles q;
  q.p50 = h.quantile(0.50);
  q.p95 = h.quantile(0.95);
  q.p99 = h.quantile(0.99);
  return q;
}

}  // namespace

LatencyQuantiles ScanScheduler::queue_wait_quantiles() const {
  return quantiles_of(*core_->queue_wait);
}

LatencyQuantiles ScanScheduler::run_quantiles() const {
  return quantiles_of(*core_->run_seconds);
}

}  // namespace gb::core
