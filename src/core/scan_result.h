// Scan snapshots and resource identity — the vocabulary of Figure 1.
//
// A scan is a snapshot of one resource type taken from one point of view.
// Views carry a TrustLevel matching the paper's terminology: the
// high-level API view may contain "the lie"; inside-the-box low-level
// scans are "truth approximations" (a sufficiently privileged ghostware
// could interfere); the outside-the-box clean-boot scan is "the truth".
#pragma once

#include <string>
#include <vector>

#include "machine/profile.h"

namespace gb::core {

enum class TrustLevel {
  kApiView,             // through the (possibly intercepted) API stack
  kTruthApproximation,  // raw structures read from inside the box
  kTruth,               // read from a clean boot, ghostware not running
};

const char* trust_level_name(TrustLevel t);

enum class ResourceType { kFile, kAsepHook, kProcess, kModule };

const char* resource_type_name(ResourceType t);

/// One enumerable resource with a canonical identity.
///
/// Canonical keys (case-folded):
///   file:    full path                      "c:\windows\vanquish.exe"
///   asep:    key|value|data-item            "...\windows|appinit_dlls|msvsres.dll"
///   process: pid|image                      "136|hxdef100.exe"
///   module:  pid|module-path                "136|c:\windows\vanquish.dll"
struct Resource {
  std::string key;      // canonical (see above)
  std::string display;  // human-readable, NULs/control bytes escaped

  bool operator<(const Resource& o) const { return key < o.key; }
  bool operator==(const Resource& o) const { return key == o.key; }
};

/// A snapshot of one resource type from one view.
struct ScanResult {
  std::string view_name;  // e.g. "Win32 API scan (ghostbuster.exe)"
  ResourceType type = ResourceType::kFile;
  TrustLevel trust = TrustLevel::kApiView;
  std::vector<Resource> resources;  // sorted by key, unique
  machine::ScanWork work;           // feeds the timing model

  /// Sorts and dedupes; call after assembling resources.
  void normalize();
  bool contains(std::string_view key) const;
};

/// Canonical-key builders (shared by every scanner so that the same
/// entity always produces the same key across views).
std::string file_key(std::string_view full_path);
std::string asep_key(std::string_view key_path, std::string_view value_name,
                     std::string_view data_item);
std::string process_key(std::uint32_t pid, std::string_view image_name);
std::string module_key(std::uint32_t pid, std::string_view module_path);

}  // namespace gb::core
