// ResourceScanner: the uniform provider interface behind ScanEngine.
//
// Each scan family (files, ASEP hooks, processes, modules) supplies the
// same three views — the untrusted API view, the trusted low-level view
// of the live machine, and the clean-environment truth view — plus its
// diff policy. The engine is then one generic task graph over registered
// providers: it knows nothing about resource types beyond this
// interface, so future passes (deleted-MFT sweep, ADS sweep, a second
// dump traversal) plug in by registering a provider rather than by
// growing per-type switches.
//
// Every view returns StatusOr<ScanResult>: a failed scan degrades that
// provider's diff (DiffReport::status) instead of aborting the session.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/differ.h"
#include "core/scan_result.h"
#include "disk/disk.h"
#include "kernel/dump.h"
#include "machine/machine.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::core {

struct ScanConfig;                            // scan_engine.h
enum class ResourceMask : std::uint32_t;      // scan_engine.h
namespace internal {
struct SessionState;                          // core/scan_session.h
}

/// Everything a provider needs to run one view: the machine under scan,
/// the pool for internal fan-out (null = run serially), the session
/// configuration with the per-resource policies, and — on an incremental
/// rescan — the session's snapshot store, which the file and ASEP low
/// scans splice from instead of re-parsing the volume.
struct ScanTaskContext {
  machine::Machine& machine;
  support::ThreadPool* pool = nullptr;
  const ScanConfig& config;
  internal::SessionState* session = nullptr;
};

/// Inputs available to the outside-the-box (clean environment) scan:
/// the powered-off disk, and the parsed blue-screen dump when the
/// capture produced one.
struct OutsideSources {
  disk::SectorDevice& disk;
  const kernel::KernelDump* dump = nullptr;
};

class ResourceScanner {
 public:
  virtual ~ResourceScanner() = default;

  [[nodiscard]] virtual ResourceType type() const = 0;

  /// The untrusted API view, taken from `ctx`'s process.
  [[nodiscard]] virtual support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const = 0;

  /// The trusted low-level view of the live machine.
  [[nodiscard]] virtual support::StatusOr<ScanResult> low_scan(
      const ScanTaskContext& t) const = 0;

  /// The clean-environment truth view. Providers whose truth lives in
  /// the dump return kUnavailable when `src.dump` is null.
  [[nodiscard]] virtual support::StatusOr<ScanResult> outside_scan(
      const ScanTaskContext& t, const OutsideSources& src) const = 0;

  /// Whether the outside view needs the blue-screen kernel dump (the
  /// engine only induces the crash when some provider does).
  [[nodiscard]] virtual bool needs_dump() const { return false; }

  /// Diff policy: how this provider's two views compare. The default is
  /// the hash-sharded cross-view diff under the ShardPlan cost model.
  [[nodiscard]] virtual DiffReport diff(const ScanTaskContext& t,
                                        const ScanResult& high,
                                        const ScanResult& low) const;
};

/// The four built-in scan families, in fixed report order (files, ASEPs,
/// processes, modules), filtered by `mask`.
std::vector<std::unique_ptr<ResourceScanner>> default_scanners(
    ResourceMask mask);

}  // namespace gb::core
