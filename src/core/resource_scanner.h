// ResourceScanner: the uniform provider interface behind ScanEngine.
//
// Each scan family (files, ASEP hooks, processes, modules) supplies the
// untrusted API view plus an *ordered list* of trusted views — per scan
// phase — and its diff policy. The engine is then one generic task graph
// over registered providers and their registered views: it knows nothing
// about resource types beyond this interface, so future views (deleted-
// MFT sweep, ADS sweep, a second dump traversal) plug in by registering
// a ViewDef rather than by growing per-type switches.
//
// Registered trusted views per family:
//
//   files     live:    index (directory-index walk), mft (raw MFT scan)
//             outside: disk  (WinPE clean-boot enumeration)
//   aseps     live:    hive  (low-level hive parse)
//             outside: hive  (hive files on the powered-off disk)
//   processes live:    active-list [, threads] [, carve]
//             outside: threads (dump traversal), carve (signature sweep
//                      of the raw dump bytes — works even when the dump
//                      no longer parses)
//   modules   live:    kernel (module-truth walk)
//             outside: dump   (module lists from the parsed dump)
//
// Every view returns StatusOr<ScanResult>: a failed view degrades that
// provider's diff (DiffReport::status) per-view instead of aborting the
// session — the surviving views still produce findings.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/differ.h"
#include "core/scan_result.h"
#include "disk/disk.h"
#include "kernel/dump.h"
#include "machine/machine.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::core {

struct ScanConfig;                            // scan_engine.h
enum class ResourceMask : std::uint32_t;      // scan_engine.h
namespace internal {
struct SessionState;                          // core/scan_session.h
}

/// Everything a provider needs to run one view: the machine under scan,
/// the pool for internal fan-out (null = run serially), the session
/// configuration with the per-resource policies, and — on an incremental
/// rescan — the session's snapshot store, which the file and ASEP low
/// scans splice from instead of re-parsing the volume.
struct ScanTaskContext {
  machine::Machine& machine;
  support::ThreadPool* pool = nullptr;
  const ScanConfig& config;
  internal::SessionState* session = nullptr;
};

/// Inputs available to the outside-the-box (clean environment) views:
/// the powered-off disk, the parsed blue-screen dump when the capture
/// produced one, and the dump's *raw bytes* — kept even when parsing
/// failed, so the signature carve can still sweep a scrubbed image.
struct OutsideSources {
  disk::SectorDevice& disk;
  const kernel::KernelDump* dump = nullptr;
  std::span<const std::byte> dump_bytes;
  /// Why `dump` is absent/unparsed when the capture wanted one; OK when
  /// the dump parsed or no view needed it.
  support::Status dump_status;
};

/// Which task graph a view list is being assembled for: views of the
/// live machine (inside/injected scans) or of the captured evidence
/// (outside-the-box diff).
enum class ScanPhase { kLive, kOutside };

class ResourceScanner {
 public:
  /// One registered trusted view. `id` is the short stable identifier
  /// findings reference in found_in/missing_from (the API view is always
  /// "api"); views run in registration order for report purposes but
  /// execute concurrently.
  struct ViewDef {
    std::string id;
    TrustLevel trust = TrustLevel::kTruthApproximation;
    /// Outside views only: the engine induces the blue-screen dump when
    /// any registered outside view asks for it.
    bool needs_dump = false;
    /// Runs the view. `src` is null in the live phase. Views that need
    /// capture evidence handle its absence themselves (returning the
    /// capture's dump_status, or kUnavailable when nothing was captured).
    std::function<support::StatusOr<ScanResult>(const ScanTaskContext&,
                                                const OutsideSources* src)>
        run;
  };

  virtual ~ResourceScanner() = default;

  [[nodiscard]] virtual ResourceType type() const = 0;

  /// The untrusted API view, taken from `ctx`'s process.
  [[nodiscard]] virtual support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const = 0;

  /// The ordered trusted views for `phase` under `cfg`'s policies. The
  /// engine runs every returned view as its own task and feeds all
  /// outcomes — completed or failed — to diff().
  [[nodiscard]] virtual std::vector<ViewDef> trusted_views(
      ScanPhase phase, const ScanConfig& cfg) const = 0;

  /// Diff policy over the assembled view matrix (views[0] is the API
  /// view). The default is the hash-sharded N-view matrix diff under the
  /// ShardPlan cost model.
  [[nodiscard]] virtual DiffReport diff(
      const ScanTaskContext& t, const std::vector<ViewInput>& views) const;
};

/// The four built-in scan families, in fixed report order (files, ASEPs,
/// processes, modules), filtered by `mask`.
std::vector<std::unique_ptr<ResourceScanner>> default_scanners(
    ResourceMask mask);

/// The view id the engine assigns the untrusted API view in every
/// matrix diff.
inline constexpr const char* kApiViewId = "api";

}  // namespace gb::core
