#include "core/scan_session.h"

#include <fstream>
#include <new>
#include <stdexcept>
#include <utility>
#include <vector>

#include "disk/change_journal.h"

namespace gb::core {

namespace {

constexpr std::uint32_t kStoreMagic = 0x53534247;  // "GBSS"
constexpr std::uint16_t kStoreVersion = 1;

}  // namespace

void VolumeSnapshotStore::serialize(ByteWriter& w) const {
  w.u32(kStoreMagic);
  w.u16(kStoreVersion);
  w.u64(journal_id);
  w.u64(cursor);
  w.u8(primed ? 1 : 0);
  mft.serialize(w);
  w.u32(static_cast<std::uint32_t>(hives.size()));
  for (const auto& [digest, parse] : hives) {
    w.u64(digest);
    w.u16(static_cast<std::uint16_t>(parse.name.size()));
    w.str(parse.name);
    // The tree round-trips through its own on-disk format: what we store
    // is exactly what the digest was computed over (a re-serialization of
    // the parse, which hive serialization keeps deterministic).
    const auto bytes = hive::serialize_hive(parse.tree, parse.name);
    w.u32(static_cast<std::uint32_t>(bytes.size()));
    w.bytes(bytes);
  }
}

support::StatusOr<VolumeSnapshotStore> VolumeSnapshotStore::deserialize(
    ByteReader& r) {
  try {
    if (r.u32() != kStoreMagic) {
      return support::Status::corrupt("not a snapshot store (bad magic)");
    }
    if (const auto v = r.u16(); v != kStoreVersion) {
      return support::Status::corrupt("unsupported snapshot store version " +
                                      std::to_string(v));
    }
    VolumeSnapshotStore store;
    store.journal_id = r.u64();
    store.cursor = r.u64();
    store.primed = r.u8() != 0;
    auto mft = ntfs::MftSnapshot::deserialize(r);
    if (!mft.ok()) return mft.status();
    store.mft = std::move(mft.value());
    const std::uint32_t hive_count = r.u32();
    for (std::uint32_t i = 0; i < hive_count; ++i) {
      const std::uint64_t digest = r.u64();
      CachedHiveParse parse;
      parse.name = r.str(r.u16());
      const auto bytes = r.bytes(r.u32());
      auto tree = hive::parse_hive_or(bytes);
      if (!tree.ok()) return tree.status();
      parse.tree = std::move(tree.value());
      store.hives.insert_or_assign(digest, std::move(parse));
    }
    return store;
  } catch (const ParseError& e) {
    return support::Status::corrupt(std::string("truncated snapshot store: ") +
                                    e.what());
  } catch (const std::bad_alloc&) {
    return support::Status::corrupt("snapshot store too large for memory");
  } catch (const std::length_error&) {
    return support::Status::corrupt("snapshot store length field out of range");
  }
}

support::Status VolumeSnapshotStore::save(const std::string& path) const {
  ByteWriter w;
  serialize(w);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) return support::Status::unavailable("cannot open " + path);
  const auto view = w.view();
  os.write(reinterpret_cast<const char*>(view.data()),
           static_cast<std::streamsize>(view.size()));
  if (!os) return support::Status::unavailable("short write to " + path);
  return support::Status{};
}

support::StatusOr<VolumeSnapshotStore> VolumeSnapshotStore::load(
    const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return support::Status::unavailable("cannot open " + path);
  std::vector<char> raw((std::istreambuf_iterator<char>(is)),
                        std::istreambuf_iterator<char>());
  ByteReader r(std::span<const std::byte>(
      reinterpret_cast<const std::byte*>(raw.data()), raw.size()));
  return deserialize(r);
}

void sync_session(machine::Machine& m, internal::SessionState& s) {
  const disk::ChangeJournal& journal = m.volume().journal();
  IncrementalStats stats;
  stats.journal_id = journal.journal_id();

  std::string fallback;
  if (!s.store.primed) {
    fallback = "cold start";
  } else if (s.store.journal_id != journal.journal_id()) {
    // The volume was remounted (or the journal otherwise restarted): the
    // cursor belongs to a dead incarnation and vouches for nothing.
    fallback = "journal reset";
  } else {
    auto read = journal.read_since(s.store.cursor);
    if (!read.ok()) {
      fallback = read.status().code() == support::StatusCode::kNotFound
                     ? "journal wrapped"
                     : "stale journal cursor";
    } else {
      stats.journal_records = read->size();
      std::vector<std::uint64_t> dirty;
      dirty.reserve(read->size());
      for (const auto& rec : *read) dirty.push_back(rec.record);
      ntfs::MftSnapshot::RefreshStats rs;
      s.store.mft.refresh(m.disk(), dirty, &rs);
      if (s.spec.verify_spliced && !s.store.mft.verify(m.disk()).empty()) {
        // An out-of-band write the journal never saw: distrust the whole
        // snapshot rather than guess which spliced entries are stale.
        fallback = "digest mismatch";
      } else {
        stats.incremental = true;
        stats.records_reparsed = rs.reparsed;
        stats.records_spliced =
            s.store.mft.record_capacity() - rs.reparsed;
      }
    }
  }

  if (!stats.incremental) {
    stats.fallback_reason = fallback;
    auto captured = ntfs::MftSnapshot::capture(m.disk());
    if (captured.ok()) {
      s.store.mft = std::move(captured.value());
      s.store.primed = true;
      stats.records_reparsed = s.store.mft.record_capacity();
      stats.records_spliced = 0;
    } else {
      // Volume no longer parses. Un-prime the store so the low scans run
      // their cold paths and report the corruption exactly as a
      // session-less engine would.
      s.store.primed = false;
      stats.fallback_reason +=
          " (capture failed: " + captured.status().message() + ")";
    }
  }

  s.store.journal_id = journal.journal_id();
  s.store.cursor = journal.next_usn();
  stats.cursor = journal.next_usn();
  s.last = stats;
}

ScanSession::ScanSession(ScanEngine& engine, SessionSpec spec)
    : engine_(&engine),
      state_(std::make_unique<internal::SessionState>()) {
  state_->spec = spec;
}

ScanSession::~ScanSession() = default;
ScanSession::ScanSession(ScanSession&&) noexcept = default;
ScanSession& ScanSession::operator=(ScanSession&&) noexcept = default;

Report ScanSession::rescan() {
  return std::move(rescan(nullptr, nullptr)).value();
}

support::StatusOr<Report> ScanSession::rescan(
    const support::CancelToken* cancel, support::TaskCounter* progress) {
  return engine_->inside_scan_impl(ScanEngine::RunCtl{cancel, progress},
                                   state_.get());
}

const IncrementalStats& ScanSession::last_sync() const { return state_->last; }

support::Status ScanSession::save(const std::string& path) const {
  return state_->store.save(path);
}

support::Status ScanSession::restore(const std::string& path) {
  auto loaded = VolumeSnapshotStore::load(path);
  if (!loaded.ok()) return loaded.status();
  // Reject a snapshot of some other volume: the record count is the
  // cheapest shape check, and a mismatched store could splice a foreign
  // listing into the report if its journal cursor happened to be
  // serveable here (test volumes share the default boot serial).
  if (loaded->primed && loaded->mft.record_capacity() !=
                            machine().volume().mft_record_capacity()) {
    return support::Status::corrupt("snapshot store is for another volume");
  }
  state_->store = std::move(loaded.value());
  return support::Status{};
}

machine::Machine& ScanSession::machine() const { return engine_->machine(); }

}  // namespace gb::core
