#include "core/ghostbuster.h"

namespace gb::core {

ScanConfig Options::to_config() const {
  ScanConfig cfg;
  cfg.resources = ResourceMask::kNone;
  if (scan_files) cfg.resources = cfg.resources | ResourceMask::kFiles;
  if (scan_registry) cfg.resources = cfg.resources | ResourceMask::kAseps;
  if (scan_processes) cfg.resources = cfg.resources | ResourceMask::kProcesses;
  if (scan_modules) cfg.resources = cfg.resources | ResourceMask::kModules;
  cfg.parallelism = 1;  // the historical serial path, exactly
  cfg.processes.scheduler_view = advanced_mode;
  cfg.scanner_image = scanner_image;
  cfg.outside_boot = outside_boot;
  return cfg;
}

Report GhostBuster::inside_scan(const Options& opts) {
  return ScanEngine(machine_, opts.to_config()).inside_scan();
}

Report GhostBuster::injected_scan(const Options& opts) {
  return ScanEngine(machine_, opts.to_config()).injected_scan();
}

GhostBuster::InsideCapture GhostBuster::capture_inside_high(
    const Options& opts) {
  return ScanEngine(machine_, opts.to_config()).capture_inside_high();
}

Report GhostBuster::outside_diff(const InsideCapture& cap,
                                 const Options& opts) {
  return ScanEngine(machine_, opts.to_config()).outside_diff(cap);
}

Report GhostBuster::outside_scan(const Options& opts) {
  return ScanEngine(machine_, opts.to_config()).outside_scan();
}

}  // namespace gb::core
