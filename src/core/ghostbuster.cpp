#include "core/ghostbuster.h"

#include <map>
#include <sstream>

#include "support/strings.h"

namespace gb::core {

bool Report::infection_detected() const {
  for (const auto& d : diffs) {
    if (!d.hidden.empty()) return true;
  }
  return false;
}

std::size_t Report::hidden_count(ResourceType type) const {
  std::size_t n = 0;
  for (const auto& d : diffs) {
    if (d.type == type) n += d.hidden.size();
  }
  return n;
}

std::vector<Finding> Report::all_hidden() const {
  std::vector<Finding> out;
  for (const auto& d : diffs) {
    out.insert(out.end(), d.hidden.begin(), d.hidden.end());
  }
  return out;
}

const DiffReport* Report::diff_for(ResourceType type) const {
  for (const auto& d : diffs) {
    if (d.type == type) return &d;
  }
  return nullptr;
}

std::string Report::to_string() const {
  std::ostringstream os;
  os << "=== Strider GhostBuster report ===\n";
  for (const auto& d : diffs) {
    os << "[" << resource_type_name(d.type) << "] " << d.high_view << " ("
       << d.high_count << ") vs " << d.low_view << " (" << d.low_count
       << ", " << trust_level_name(d.low_trust) << ")\n";
    for (const auto& f : d.hidden) {
      os << "  HIDDEN: " << f.resource.display << "\n";
    }
    for (const auto& f : d.extra) {
      os << "  extra-in-api-view: " << f.resource.display << "\n";
    }
    if (d.clean()) os << "  (no discrepancies)\n";
  }
  os << (infection_detected() ? ">>> hidden resources detected"
                              : ">>> machine appears clean")
     << "\n";
  return os.str();
}

namespace {

void json_escape(std::ostringstream& os, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  os << '"';
  for (const char c : s) {
    const auto uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      default:
        if (uc < 0x20) {
          os << "\\u00" << kHex[uc >> 4] << kHex[uc & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\"infected\":" << (infection_detected() ? "true" : "false")
     << ",\"simulated_seconds\":" << total_simulated_seconds
     << ",\"diffs\":[";
  bool first_diff = true;
  for (const auto& d : diffs) {
    if (!first_diff) os << ',';
    first_diff = false;
    os << "{\"type\":";
    json_escape(os, resource_type_name(d.type));
    os << ",\"high_view\":";
    json_escape(os, d.high_view);
    os << ",\"low_view\":";
    json_escape(os, d.low_view);
    os << ",\"trust\":";
    json_escape(os, trust_level_name(d.low_trust));
    os << ",\"high_count\":" << d.high_count
       << ",\"low_count\":" << d.low_count << ",\"hidden\":[";
    bool first = true;
    for (const auto& f : d.hidden) {
      if (!first) os << ',';
      first = false;
      os << "{\"key\":";
      json_escape(os, f.resource.key);
      os << ",\"display\":";
      json_escape(os, f.resource.display);
      os << '}';
    }
    os << "],\"extra_count\":" << d.extra.size() << '}';
  }
  os << "]}";
  return os.str();
}

winapi::Ctx GhostBuster::scanner_context(const Options& opts) {
  const std::string image_path =
      "C:\\windows\\system32\\" + opts.scanner_image;
  const kernel::Pid pid = machine_.ensure_process(image_path);
  return machine_.context_for(pid);
}

void GhostBuster::finalize(Report& report) {
  const auto& profile = machine_.config().profile;
  for (auto& d : report.diffs) {
    report.total_simulated_seconds += d.simulated_seconds;
  }
  (void)profile;
  machine_.clock().advance(
      VirtualClock::seconds(report.total_simulated_seconds));
}

Report GhostBuster::inside_scan(const Options& opts) {
  Report report;
  const auto ctx = scanner_context(opts);
  const auto& profile = machine_.config().profile;

  auto add = [&](const ScanResult& high, const ScanResult& low) {
    DiffReport d = cross_view_diff(high, low);
    machine::ScanWork work = high.work;
    work += low.work;
    d.simulated_seconds = estimate_seconds(profile, work);
    report.diffs.push_back(std::move(d));
  };

  if (opts.scan_files) {
    add(high_level_file_scan(machine_, ctx), low_level_file_scan(machine_));
  }
  if (opts.scan_registry) {
    add(high_level_registry_scan(machine_, ctx),
        low_level_registry_scan(machine_));
  }
  if (opts.scan_processes) {
    add(high_level_process_scan(machine_, ctx),
        opts.advanced_mode ? advanced_process_scan(machine_)
                           : core::low_level_process_scan(machine_));
  }
  if (opts.scan_modules) {
    add(high_level_module_scan(machine_, ctx),
        low_level_module_scan(machine_));
  }
  finalize(report);
  return report;
}

Report GhostBuster::injected_scan(const Options& opts) {
  // Low-level (trusted) snapshots once; high-level snapshots from inside
  // every process. Union the hidden findings: a resource is reported if
  // *any* process's view hides it.
  Report report;
  const auto& profile = machine_.config().profile;

  struct Slot {
    std::optional<ScanResult> low;
    std::map<std::string, Finding> hidden;  // keyed for dedup
    std::size_t high_count_max = 0;
    machine::ScanWork work;
    std::string high_views = "injected scans (all processes)";
  };
  Slot files, aseps, procs, mods;
  if (opts.scan_files) files.low = low_level_file_scan(machine_);
  if (opts.scan_registry) aseps.low = low_level_registry_scan(machine_);
  if (opts.scan_processes) {
    procs.low = opts.advanced_mode ? advanced_process_scan(machine_)
                                   : core::low_level_process_scan(machine_);
  }
  if (opts.scan_modules) mods.low = low_level_module_scan(machine_);

  std::vector<kernel::Pid> pids;
  for (const auto& [pid, env] : machine_.win32().envs()) pids.push_back(pid);

  for (const kernel::Pid pid : pids) {
    const auto ctx = machine_.context_for(pid);
    if (ctx.image_name.empty() || ctx.image_name == "System") continue;
    auto accumulate = [&](Slot& slot, ScanResult high) {
      DiffReport d = cross_view_diff(high, *slot.low);
      for (auto& f : d.hidden) slot.hidden.emplace(f.resource.key, f);
      slot.high_count_max = std::max(slot.high_count_max, high.resources.size());
      slot.work += high.work;
    };
    if (files.low) accumulate(files, high_level_file_scan(machine_, ctx));
    if (aseps.low) accumulate(aseps, high_level_registry_scan(machine_, ctx));
    if (procs.low) accumulate(procs, high_level_process_scan(machine_, ctx));
    if (mods.low) accumulate(mods, high_level_module_scan(machine_, ctx));
  }

  auto emit = [&](Slot& slot, ResourceType type) {
    if (!slot.low) return;
    DiffReport d;
    d.type = type;
    d.high_view = slot.high_views;
    d.low_view = slot.low->view_name;
    d.low_trust = slot.low->trust;
    d.high_count = slot.high_count_max;
    d.low_count = slot.low->resources.size();
    for (auto& [key, f] : slot.hidden) d.hidden.push_back(f);
    machine::ScanWork work = slot.work;
    work += slot.low->work;
    d.simulated_seconds = estimate_seconds(profile, work);
    report.diffs.push_back(std::move(d));
  };
  emit(files, ResourceType::kFile);
  emit(aseps, ResourceType::kAsepHook);
  emit(procs, ResourceType::kProcess);
  emit(mods, ResourceType::kModule);
  finalize(report);
  return report;
}

GhostBuster::InsideCapture GhostBuster::capture_inside_high(
    const Options& opts) {
  InsideCapture cap;
  const auto ctx = scanner_context(opts);
  if (opts.scan_files) cap.files = high_level_file_scan(machine_, ctx);
  if (opts.scan_registry) cap.aseps = high_level_registry_scan(machine_, ctx);
  if (opts.scan_processes) {
    cap.processes = high_level_process_scan(machine_, ctx);
  }
  if (opts.scan_modules) cap.modules = high_level_module_scan(machine_, ctx);
  if (opts.scan_processes || opts.scan_modules) {
    cap.dump = kernel::parse_dump(machine_.bluescreen());
  }
  return cap;
}

Report GhostBuster::outside_diff(const InsideCapture& cap,
                                 const Options& /*opts*/) {
  if (machine_.running()) {
    throw std::logic_error(
        "outside_diff requires the machine to be powered off");
  }
  Report report;
  const auto& profile = machine_.config().profile;

  auto add = [&](const ScanResult& high, const ScanResult& low) {
    DiffReport d = cross_view_diff(high, low);
    machine::ScanWork work = high.work;
    work += low.work;
    d.simulated_seconds = estimate_seconds(profile, work);
    report.diffs.push_back(std::move(d));
  };

  if (cap.files) add(*cap.files, outside_file_scan(machine_.disk()));
  if (cap.aseps) add(*cap.aseps, outside_registry_scan(machine_.disk()));
  if (cap.processes && cap.dump) {
    add(*cap.processes, dump_process_scan(*cap.dump));
  }
  if (cap.modules && cap.dump) add(*cap.modules, dump_module_scan(*cap.dump));
  finalize(report);
  return report;
}

Report GhostBuster::outside_scan(const Options& opts) {
  InsideCapture cap = capture_inside_high(opts);
  if (machine_.running()) machine_.shutdown();
  // WinPE CD boot adds 1.5-3 minutes (Section 2); the RIS network boot of
  // Section 5's enterprise automation is quicker and needs no media.
  machine_.clock().advance(VirtualClock::seconds(
      opts.outside_boot == OutsideBoot::kWinPeCd ? 120.0 : 45.0));
  return outside_diff(cap, opts);
}

}  // namespace gb::core
