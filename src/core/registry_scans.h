// Registry (ASEP hook) scanners: Section 3's three views.
//
//   high   — Win32 RegEnumKey/RegEnumValue walk of the ASEP catalogue
//            from a chosen process context (RegEdit equivalent)
//   low    — flush + raw parse of the hive backing files, read straight
//            from the MFT below every API layer — truth approximation
//   outside — hive files parsed from the powered-off disk (the paper
//            mounts them under the WinPE registry) — truth
#pragma once

#include "core/scan_result.h"
#include "disk/disk.h"
#include "machine/machine.h"

namespace gb::core {

ScanResult high_level_registry_scan(machine::Machine& m,
                                    const winapi::Ctx& ctx);

ScanResult low_level_registry_scan(machine::Machine& m);

ScanResult outside_registry_scan(disk::SectorDevice& dev);

}  // namespace gb::core
