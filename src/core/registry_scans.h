// Registry (ASEP hook) scanners: Section 3's three views.
//
//   high   — Win32 RegEnumKey/RegEnumValue walk of the ASEP catalogue
//            from a chosen process context (RegEdit equivalent)
//   low    — flush + raw parse of the hive backing files, read straight
//            from the MFT below every API layer — truth approximation
//   outside — hive files parsed from the powered-off disk (the paper
//            mounts them under the WinPE registry) — truth
//
// All scans return StatusOr: a torn or scrubbed hive is kCorrupt and
// degrades the registry diff instead of aborting the session.
#pragma once

#include "core/scan_result.h"
#include "disk/disk.h"
#include "machine/machine.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::core {

namespace internal {
struct SessionState;  // core/scan_session.h
}

[[nodiscard]] support::StatusOr<ScanResult> high_level_registry_scan(
    machine::Machine& m, const winapi::Ctx& ctx);

/// Low-level scan of the live disk. `flush_hives` writes the in-memory
/// hives to their backing files first (the default, and what a standalone
/// caller wants); the ScanEngine passes false because it performs the
/// flush itself, serially, before any concurrent task touches the disk.
/// With a pool the backing-file lookup scan parses the MFT in chunked
/// batches and the hive payload reads run one task per mount, each
/// through its own CountingDevice — accounting merges in mount order, so
/// the report is byte-identical at any worker count.
[[nodiscard]] support::StatusOr<ScanResult> low_level_registry_scan(
    machine::Machine& m, support::ThreadPool* pool = nullptr,
    bool flush_hives = true);

/// Incremental variant for session rescans: the backing-file lookup walk
/// is spliced from the session's MFT snapshot (resources + simulated
/// walk I/O) and each hive's *parse* is served from the content-addressed
/// cache when the payload bytes are unchanged — but the payload reads
/// themselves still go through the device, so a hive that did change is
/// parsed fresh and the work accounting matches the cold scan exactly.
/// Hives are never flushed here (the engine already did, serially).
[[nodiscard]] support::StatusOr<ScanResult> spliced_low_level_registry_scan(
    machine::Machine& m, internal::SessionState& s,
    support::ThreadPool* pool = nullptr);

[[nodiscard]] support::StatusOr<ScanResult> outside_registry_scan(
    disk::SectorDevice& dev, support::ThreadPool* pool = nullptr);

}  // namespace gb::core
