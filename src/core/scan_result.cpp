#include "core/scan_result.h"

#include <algorithm>

#include "support/strings.h"

namespace gb::core {

const char* trust_level_name(TrustLevel t) {
  switch (t) {
    case TrustLevel::kApiView: return "API view";
    case TrustLevel::kTruthApproximation: return "truth approximation";
    case TrustLevel::kTruth: return "truth";
  }
  return "unknown";
}

const char* resource_type_name(ResourceType t) {
  switch (t) {
    case ResourceType::kFile: return "file";
    case ResourceType::kAsepHook: return "ASEP hook";
    case ResourceType::kProcess: return "process";
    case ResourceType::kModule: return "module";
  }
  return "unknown";
}

void ScanResult::normalize() {
  std::sort(resources.begin(), resources.end());
  resources.erase(std::unique(resources.begin(), resources.end()),
                  resources.end());
}

bool ScanResult::contains(std::string_view key) const {
  const auto it = std::lower_bound(
      resources.begin(), resources.end(), key,
      [](const Resource& r, std::string_view k) {
        return std::string_view(r.key) < k;
      });
  return it != resources.end() && it->key == key;
}

std::string file_key(std::string_view full_path) {
  return fold_case(full_path);
}

std::string asep_key(std::string_view key_path, std::string_view value_name,
                     std::string_view data_item) {
  return fold_case(key_path) + "|" + fold_case(value_name) + "|" +
         fold_case(data_item);
}

std::string process_key(std::uint32_t pid, std::string_view image_name) {
  return std::to_string(pid) + "|" + fold_case(image_name);
}

std::string module_key(std::uint32_t pid, std::string_view module_path) {
  return std::to_string(pid) + "|" + fold_case(module_path);
}

}  // namespace gb::core
