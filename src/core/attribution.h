// Technique attribution: connect *what* is hidden to *how*.
//
// The cross-view diff proves something is hidden without knowing the
// mechanism; the hook inventory knows the mechanisms without knowing
// what they hide. Joining the two gives the analyst a useful report:
// each finding is annotated with the interception points whose owner
// name relates to the hidden artifact, plus the full list of suspicious
// interceptions present on the machine. DKOM-style data-only hiding
// correctly yields "no interception found — data-structure manipulation
// or clean-view-only artifact".
#pragma once

#include "core/scan_engine.h"
#include "core/hook_detector.h"

namespace gb::core {

struct AttributedFinding {
  Finding finding;
  /// Hook owners whose installed interceptions could produce this
  /// finding (matched on the API family for the resource type).
  std::vector<std::string> suspected_owners;
  /// Interception styles seen among the suspects (IAT, detour, SSDT...).
  std::vector<HookType> techniques;
};

struct AttributionReport {
  std::vector<AttributedFinding> findings;
  /// All suspicious interceptions (input to the analysis).
  std::vector<DetectedHook> interceptions;
  std::string to_string() const;
};

/// Joins a GhostBuster report with the machine's interception inventory.
/// `allowlist` names known-legitimate hook owners to ignore.
AttributionReport attribute_findings(
    machine::Machine& m, const Report& report,
    const std::vector<std::string>& allowlist = {});

}  // namespace gb::core
