#include "core/resource_scanner.h"

#include "core/file_scans.h"
#include "core/process_scans.h"
#include "core/registry_scans.h"
#include "core/scan_engine.h"

namespace gb::core {

namespace {

class FileScanner final : public ResourceScanner {
 public:
  ResourceType type() const override { return ResourceType::kFile; }

  support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const override {
    return high_level_file_scan(t.machine, ctx, t.pool);
  }

  support::StatusOr<ScanResult> low_scan(
      const ScanTaskContext& t) const override {
    if (t.session) {
      return spliced_low_level_file_scan(t.machine, *t.session,
                                         t.config.files.mft_batch_records);
    }
    return low_level_file_scan(t.machine, t.pool,
                               t.config.files.mft_batch_records);
  }

  support::StatusOr<ScanResult> outside_scan(
      const ScanTaskContext&, const OutsideSources& src) const override {
    return outside_file_scan(src.disk);
  }
};

class AsepScanner final : public ResourceScanner {
 public:
  ResourceType type() const override { return ResourceType::kAsepHook; }

  support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const override {
    return high_level_registry_scan(t.machine, ctx);
  }

  support::StatusOr<ScanResult> low_scan(
      const ScanTaskContext& t) const override {
    // The engine flushed the hives (or was told not to) before any task
    // started; never flush from inside a concurrent task.
    if (t.session) {
      return spliced_low_level_registry_scan(t.machine, *t.session, t.pool);
    }
    return low_level_registry_scan(t.machine, t.pool, /*flush_hives=*/false);
  }

  support::StatusOr<ScanResult> outside_scan(
      const ScanTaskContext& t, const OutsideSources& src) const override {
    return outside_registry_scan(src.disk, t.pool);
  }
};

class ProcessScanner final : public ResourceScanner {
 public:
  ResourceType type() const override { return ResourceType::kProcess; }

  support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const override {
    return high_level_process_scan(t.machine, ctx);
  }

  support::StatusOr<ScanResult> low_scan(
      const ScanTaskContext& t) const override {
    return t.config.processes.scheduler_view
               ? advanced_process_scan(t.machine)
               : low_level_process_scan(t.machine);
  }

  support::StatusOr<ScanResult> outside_scan(
      const ScanTaskContext&, const OutsideSources& src) const override {
    if (!src.dump) {
      return support::Status::unavailable(
          "no kernel dump in capture: process truth unavailable");
    }
    return dump_process_scan(*src.dump);
  }

  bool needs_dump() const override { return true; }
};

class ModuleScanner final : public ResourceScanner {
 public:
  ResourceType type() const override { return ResourceType::kModule; }

  support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const override {
    return high_level_module_scan(t.machine, ctx);
  }

  support::StatusOr<ScanResult> low_scan(
      const ScanTaskContext& t) const override {
    return low_level_module_scan(t.machine);
  }

  support::StatusOr<ScanResult> outside_scan(
      const ScanTaskContext&, const OutsideSources& src) const override {
    if (!src.dump) {
      return support::Status::unavailable(
          "no kernel dump in capture: module truth unavailable");
    }
    return dump_module_scan(*src.dump);
  }

  bool needs_dump() const override { return true; }
};

}  // namespace

DiffReport ResourceScanner::diff(const ScanTaskContext& t,
                                 const ScanResult& high,
                                 const ScanResult& low) const {
  return cross_view_diff(high, low, t.pool);
}

std::vector<std::unique_ptr<ResourceScanner>> default_scanners(
    ResourceMask mask) {
  std::vector<std::unique_ptr<ResourceScanner>> out;
  if (has(mask, ResourceMask::kFiles)) {
    out.push_back(std::make_unique<FileScanner>());
  }
  if (has(mask, ResourceMask::kAseps)) {
    out.push_back(std::make_unique<AsepScanner>());
  }
  if (has(mask, ResourceMask::kProcesses)) {
    out.push_back(std::make_unique<ProcessScanner>());
  }
  if (has(mask, ResourceMask::kModules)) {
    out.push_back(std::make_unique<ModuleScanner>());
  }
  return out;
}

}  // namespace gb::core
