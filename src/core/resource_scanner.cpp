#include "core/resource_scanner.h"

#include "core/file_scans.h"
#include "core/process_scans.h"
#include "core/registry_scans.h"
#include "core/scan_engine.h"
#include "obs/metrics.h"

namespace gb::core {

namespace {

/// Registry the carve view records its gb_carve_* counters in — the same
/// resolution the engine uses for its own telemetry (null = collection
/// off; counters never feed back into report bytes).
obs::MetricsRegistry* carve_registry(const ScanConfig& cfg) {
  if (!cfg.collect_metrics) return nullptr;
  return cfg.metrics != nullptr ? cfg.metrics : &obs::default_registry();
}

/// Shared absence handling for views that read captured evidence: a
/// failed dump capture surfaces its own cause; a capture that never took
/// a dump is an unavailability.
support::Status missing_dump(const OutsideSources& src,
                             const char* what_unavailable) {
  if (!src.dump_status.ok()) return src.dump_status;
  return support::Status::unavailable(std::string("no kernel dump in capture: ") +
                                      what_unavailable);
}

class FileScanner final : public ResourceScanner {
 public:
  ResourceType type() const override { return ResourceType::kFile; }

  support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const override {
    return high_level_file_scan(t.machine, ctx, t.pool);
  }

  std::vector<ViewDef> trusted_views(ScanPhase phase,
                                     const ScanConfig& cfg) const override {
    if (phase == ScanPhase::kOutside) {
      // The clean-boot view stays enumeration-based on purpose: it
      // models what a WinPE boot can see, so index-unlinked files stay
      // invisible to it and only the raw views expose them.
      return {ViewDef{"disk", TrustLevel::kTruth, false,
                      [](const ScanTaskContext&, const OutsideSources* src) {
                        return outside_file_scan(src->disk);
                      }}};
    }
    const std::uint32_t batch = cfg.files.mft_batch_records;
    std::vector<ViewDef> views;
    views.push_back(
        ViewDef{"index", TrustLevel::kTruthApproximation, false,
                [batch](const ScanTaskContext& t, const OutsideSources*) {
                  return index_file_scan(t.machine, t.pool, batch);
                }});
    views.push_back(
        ViewDef{"mft", TrustLevel::kTruthApproximation, false,
                [batch](const ScanTaskContext& t, const OutsideSources*) {
                  if (t.session != nullptr) {
                    return spliced_low_level_file_scan(t.machine, *t.session,
                                                       batch);
                  }
                  return low_level_file_scan(t.machine, t.pool, batch);
                }});
    return views;
  }
};

class AsepScanner final : public ResourceScanner {
 public:
  ResourceType type() const override { return ResourceType::kAsepHook; }

  support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const override {
    return high_level_registry_scan(t.machine, ctx);
  }

  std::vector<ViewDef> trusted_views(ScanPhase phase,
                                     const ScanConfig&) const override {
    if (phase == ScanPhase::kOutside) {
      return {ViewDef{"hive", TrustLevel::kTruth, false,
                      [](const ScanTaskContext& t, const OutsideSources* src) {
                        return outside_registry_scan(src->disk, t.pool);
                      }}};
    }
    // The engine flushed the hives (or was told not to) before any task
    // started; never flush from inside a concurrent task.
    return {ViewDef{"hive", TrustLevel::kTruthApproximation, false,
                    [](const ScanTaskContext& t, const OutsideSources*) {
                      if (t.session != nullptr) {
                        return spliced_low_level_registry_scan(
                            t.machine, *t.session, t.pool);
                      }
                      return low_level_registry_scan(t.machine, t.pool,
                                                     /*flush_hives=*/false);
                    }}};
  }
};

class ProcessScanner final : public ResourceScanner {
 public:
  ResourceType type() const override { return ResourceType::kProcess; }

  support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const override {
    return high_level_process_scan(t.machine, ctx);
  }

  std::vector<ViewDef> trusted_views(ScanPhase phase,
                                     const ScanConfig& cfg) const override {
    const std::uint32_t chunk = cfg.processes.carve_chunk_bytes;
    std::vector<ViewDef> views;
    if (phase == ScanPhase::kOutside) {
      views.push_back(
          ViewDef{"threads", TrustLevel::kTruth, true,
                  [](const ScanTaskContext&, const OutsideSources* src) {
                    if (src->dump == nullptr) {
                      return support::StatusOr<ScanResult>(
                          missing_dump(*src, "process truth unavailable"));
                    }
                    return dump_process_scan(*src->dump);
                  }});
      if (cfg.processes.carve != CarveMode::kOff) {
        // Runs on the raw bytes, not the parsed dump: a scrub that
        // breaks the parse (or merely unlinks records) does not reach
        // the bytes this sweep reads.
        views.push_back(ViewDef{
            "carve", TrustLevel::kTruth, true,
            [chunk](const ScanTaskContext& t, const OutsideSources* src) {
              if (src->dump_bytes.empty()) {
                return support::StatusOr<ScanResult>(
                    missing_dump(*src, "nothing to carve"));
              }
              return carve_process_scan(src->dump_bytes, /*live=*/false,
                                        t.pool, chunk,
                                        carve_registry(t.config));
            }});
      }
      return views;
    }
    views.push_back(
        ViewDef{"active-list", TrustLevel::kTruthApproximation, false,
                [](const ScanTaskContext& t, const OutsideSources*) {
                  return low_level_process_scan(t.machine);
                }});
    if (cfg.processes.scheduler_view) {
      views.push_back(
          ViewDef{"threads", TrustLevel::kTruthApproximation, false,
                  [](const ScanTaskContext& t, const OutsideSources*) {
                    return advanced_process_scan(t.machine);
                  }});
    }
    if (cfg.processes.carve == CarveMode::kOn) {
      views.push_back(ViewDef{
          "carve", TrustLevel::kTruthApproximation, false,
          [chunk](const ScanTaskContext& t, const OutsideSources*) {
            // Live-memory sweep: serialize the kernel's memory image
            // directly (no blue screen, no scrubber hooks run).
            const auto image = kernel::write_dump(t.machine.kernel());
            return carve_process_scan(image, /*live=*/true, t.pool, chunk,
                                      carve_registry(t.config));
          }});
    }
    return views;
  }
};

class ModuleScanner final : public ResourceScanner {
 public:
  ResourceType type() const override { return ResourceType::kModule; }

  support::StatusOr<ScanResult> high_scan(
      const ScanTaskContext& t, const winapi::Ctx& ctx) const override {
    return high_level_module_scan(t.machine, ctx);
  }

  std::vector<ViewDef> trusted_views(ScanPhase phase,
                                     const ScanConfig&) const override {
    if (phase == ScanPhase::kOutside) {
      return {ViewDef{"dump", TrustLevel::kTruth, true,
                      [](const ScanTaskContext&, const OutsideSources* src) {
                        if (src->dump == nullptr) {
                          return support::StatusOr<ScanResult>(
                              missing_dump(*src, "module truth unavailable"));
                        }
                        return dump_module_scan(*src->dump);
                      }}};
    }
    return {ViewDef{"kernel", TrustLevel::kTruthApproximation, false,
                    [](const ScanTaskContext& t, const OutsideSources*) {
                      return low_level_module_scan(t.machine);
                    }}};
  }
};

}  // namespace

DiffReport ResourceScanner::diff(const ScanTaskContext& t,
                                 const std::vector<ViewInput>& views) const {
  return cross_view_matrix_diff(type(), views, t.pool);
}

std::vector<std::unique_ptr<ResourceScanner>> default_scanners(
    ResourceMask mask) {
  std::vector<std::unique_ptr<ResourceScanner>> out;
  if (has(mask, ResourceMask::kFiles)) {
    out.push_back(std::make_unique<FileScanner>());
  }
  if (has(mask, ResourceMask::kAseps)) {
    out.push_back(std::make_unique<AsepScanner>());
  }
  if (has(mask, ResourceMask::kProcesses)) {
    out.push_back(std::make_unique<ProcessScanner>());
  }
  if (has(mask, ResourceMask::kModules)) {
    out.push_back(std::make_unique<ModuleScanner>());
  }
  return out;
}

}  // namespace gb::core
