// Cross-time diff — the Tripwire [KS94] / Strider Troubleshooter
// [WVS03, WVD+03] baseline the paper contrasts with.
//
// A cross-time diff compares persistent-state snapshots from two points
// in time: it catches a broader class of malware (hiding or not) but
// "typically includes a significant number of false positives stemming
// from legitimate changes and thus requires additional noise filtering".
// This module implements that baseline faithfully — checkpoint capture,
// content hashing, change classification and the noise filter — so the
// ablation bench can quantify the paper's usability argument instead of
// asserting it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "machine/machine.h"
#include "support/thread_pool.h"

namespace gb::core {

/// A persistent-state checkpoint: file metadata/content hashes plus
/// registry value hashes (what Tripwire's database holds).
struct Checkpoint {
  struct FileEntry {
    std::uint64_t size = 0;
    std::uint64_t content_hash = 0;
    bool is_directory = false;

    bool operator==(const FileEntry&) const = default;
  };
  std::map<std::string, FileEntry> files;          // folded path -> entry
  std::map<std::string, std::uint64_t> registry;   // folded key|value -> hash
  VirtualClock::Micros taken_at = 0;

  std::size_t size() const { return files.size() + registry.size(); }
};

/// Captures a checkpoint through the *trusted* low-level views (Tripwire
/// runs with the file system's cooperation; interception still applies
/// if taken through APIs — we use raw structures to isolate the
/// cross-time-vs-cross-view comparison from the hiding question).
Checkpoint take_checkpoint(machine::Machine& m);

enum class ChangeKind { kAdded, kRemoved, kModified };

struct Change {
  ChangeKind kind = ChangeKind::kAdded;
  std::string what;  // path or registry identity
  bool is_registry = false;
};

struct CrossTimeDiff {
  std::vector<Change> changes;
  std::size_t added() const;
  std::size_t removed() const;
  std::size_t modified() const;
};

/// Tripwire-style comparison of two checkpoints.
CrossTimeDiff cross_time_diff(const Checkpoint& before,
                              const Checkpoint& after);

/// Sharded variant: splits each of the four comparison passes (file
/// adds/mods, file removes, registry adds/mods, registry removes) into
/// contiguous key ranges on the pool. Shard outputs concatenate in range
/// order within each pass, so the change list is byte-identical to the
/// serial diff at any worker or shard count. Shard count and the
/// small-input serial cutoff follow the ShardPlan cost model in
/// core/differ.h (`shards` 0 = one per executor).
CrossTimeDiff cross_time_diff(const Checkpoint& before,
                              const Checkpoint& after,
                              support::ThreadPool* pool,
                              std::size_t shards = 0);

/// The noise filter cross-time tools must carry: path patterns for
/// locations that change legitimately all the time (logs, temp, caches,
/// prefetch). Returns the changes that survive filtering.
std::vector<Change> filter_noise(const std::vector<Change>& changes,
                                 const std::vector<std::string>& patterns);

/// The default noise rules a 2004-era deployment would ship.
const std::vector<std::string>& default_noise_patterns();

}  // namespace gb::core
