// Process and module scanners: Section 4's views.
//
// Processes:
//   high      — NtQuerySystemInformation from a process context
//   low       — driver walking the Active Process List (defeated by DKOM)
//   advanced  — driver walking the scheduler thread table (finds FU)
//   outside   — traversal of a blue-screen kernel dump
//
// Modules:
//   high      — Process32/Module32 toolhelp walk (reads each target's PEB
//               loader list; Vanquish blanks paths there)
//   low       — kernel-side per-process module truth
//   outside   — module lists from the kernel dump
#pragma once

#include "core/scan_result.h"
#include "kernel/dump.h"
#include "machine/machine.h"

namespace gb::core {

ScanResult high_level_process_scan(machine::Machine& m,
                                   const winapi::Ctx& ctx);
ScanResult low_level_process_scan(machine::Machine& m);
ScanResult advanced_process_scan(machine::Machine& m);
ScanResult dump_process_scan(const kernel::KernelDump& dump);

ScanResult high_level_module_scan(machine::Machine& m, const winapi::Ctx& ctx);
ScanResult low_level_module_scan(machine::Machine& m);
ScanResult dump_module_scan(const kernel::KernelDump& dump);

}  // namespace gb::core
