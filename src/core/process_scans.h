// Process and module scanners: Section 4's views.
//
// Processes:
//   high      — NtQuerySystemInformation from a process context
//   low       — driver walking the Active Process List (defeated by DKOM)
//   advanced  — driver walking the scheduler thread table (finds FU)
//   outside   — traversal of a blue-screen kernel dump
//
// Modules:
//   high      — Process32/Module32 toolhelp walk (reads each target's PEB
//               loader list; Vanquish blanks paths there)
//   low       — kernel-side per-process module truth
//   outside   — module lists from the kernel dump
#pragma once

#include "core/scan_result.h"
#include "kernel/dump.h"
#include "machine/machine.h"
#include "support/status.h"

namespace gb::core {

[[nodiscard]] support::StatusOr<ScanResult> high_level_process_scan(
    machine::Machine& m, const winapi::Ctx& ctx);
[[nodiscard]] support::StatusOr<ScanResult> low_level_process_scan(machine::Machine& m);
[[nodiscard]] support::StatusOr<ScanResult> advanced_process_scan(machine::Machine& m);
[[nodiscard]] support::StatusOr<ScanResult> dump_process_scan(
    const kernel::KernelDump& dump);

[[nodiscard]] support::StatusOr<ScanResult> high_level_module_scan(
    machine::Machine& m, const winapi::Ctx& ctx);
[[nodiscard]] support::StatusOr<ScanResult> low_level_module_scan(machine::Machine& m);
[[nodiscard]] support::StatusOr<ScanResult> dump_module_scan(
    const kernel::KernelDump& dump);

}  // namespace gb::core
