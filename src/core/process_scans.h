// Process and module scanners: Section 4's views.
//
// Processes:
//   high      — NtQuerySystemInformation from a process context
//   low       — driver walking the Active Process List (defeated by DKOM)
//   advanced  — driver walking the scheduler thread table (finds FU)
//   outside   — traversal of a blue-screen kernel dump
//
//   carve     — signature sweep of raw dump bytes (kernel/carve.h): the
//               fourth view, immune to linkage scrubbing because it never
//               follows a pointer
//
// Modules:
//   high      — Process32/Module32 toolhelp walk (reads each target's PEB
//               loader list; Vanquish blanks paths there)
//   low       — kernel-side per-process module truth
//   outside   — module lists from the kernel dump
#pragma once

#include <span>

#include "core/scan_result.h"
#include "kernel/dump.h"
#include "machine/machine.h"
#include "obs/metrics.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::core {

[[nodiscard]] support::StatusOr<ScanResult> high_level_process_scan(
    machine::Machine& m, const winapi::Ctx& ctx);
[[nodiscard]] support::StatusOr<ScanResult> low_level_process_scan(machine::Machine& m);
[[nodiscard]] support::StatusOr<ScanResult> advanced_process_scan(machine::Machine& m);
[[nodiscard]] support::StatusOr<ScanResult> dump_process_scan(
    const kernel::KernelDump& dump);

/// The carve view: a chunked signature sweep of `dump_bytes` recovering
/// process records by shape rather than by traversal, so records a
/// scrubber unlinked from every list — but could not wipe — still
/// surface. `live` selects the live-memory flavor (inside scans carve a
/// serialization of current kernel memory, a truth approximation) vs.
/// the crash-dump flavor (outside scans carve the captured image — the
/// truth view). An image too damaged to sweep is a kCorrupt Status.
/// When `metrics` is non-null, gb_carve_* counters record the sweep;
/// the registry never feeds back into report bytes.
[[nodiscard]] support::StatusOr<ScanResult> carve_process_scan(
    std::span<const std::byte> dump_bytes, bool live,
    support::ThreadPool* pool = nullptr, std::uint32_t chunk_bytes = 0,
    obs::MetricsRegistry* metrics = nullptr);

[[nodiscard]] support::StatusOr<ScanResult> high_level_module_scan(
    machine::Machine& m, const winapi::Ctx& ctx);
[[nodiscard]] support::StatusOr<ScanResult> low_level_module_scan(machine::Machine& m);
[[nodiscard]] support::StatusOr<ScanResult> dump_module_scan(
    const kernel::KernelDump& dump);

}  // namespace gb::core
