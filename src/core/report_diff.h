// Cross-run report drift: diffs the hidden-resource findings of two
// serialized scan reports.
//
// A fleet keeps yesterday's --json reports; comparing them against
// today's answers the operational question "did anything newly hidden
// appear on this box?" without re-running the expensive scan pipeline.
// The comparison key is (resource type, canonical key) — the same
// identity the cross-view differ sorts by — so the delta is stable
// across worker counts and schema-compatible report versions.
#pragma once

#include <string>
#include <vector>

#include "support/status.h"

namespace gb::core {

/// Drift between the hidden findings of report A (before) and report B
/// (after).
struct ReportDelta {
  struct Entry {
    std::string type;     // resource type name ("file", "ASEP hook", ...)
    std::string key;      // canonical resource key
    std::string display;  // human-readable form (B's side for changed)
    std::string detail;   // provenance: views, or the old display
  };

  std::string version_a;
  std::string version_b;
  std::vector<Entry> added;    // hidden in B, absent from A
  std::vector<Entry> removed;  // hidden in A, absent from B
  std::vector<Entry> changed;  // same identity, display text differs

  [[nodiscard]] bool drift() const {
    return !added.empty() || !removed.empty() || !changed.empty();
  }
  [[nodiscard]] std::string to_string() const;
};

/// Parses two schema-v2.x single-report JSON documents (the bytes
/// Report::to_json / `ghostbuster_cli --json` emit) and diffs their
/// hidden findings. Returns kCorrupt when either document is not valid
/// JSON or lacks the report shape (no "diffs" array).
[[nodiscard]] support::StatusOr<ReportDelta> diff_reports_json(
    const std::string& a_json, const std::string& b_json);

}  // namespace gb::core
