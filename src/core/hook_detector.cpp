#include "core/hook_detector.h"

#include "support/strings.h"

namespace gb::core {

std::vector<DetectedHook> detect_hooks(machine::Machine& m) {
  std::vector<DetectedHook> out;
  // Per-process API environments.
  for (const auto& [pid, env] : m.win32().envs()) {
    const auto ctx = m.context_for(pid);
    for (const auto& info : env->all_hooks()) {
      out.push_back(DetectedHook{pid, ctx.image_name, info});
    }
  }
  // Kernel-global surfaces.
  for (const auto& info : m.kernel().ssdt().all_hooks()) {
    out.push_back(DetectedHook{0, "", info});
  }
  for (const auto& name : m.kernel().filter_chain().names()) {
    out.push_back(DetectedHook{
        0, "", HookInfo{name, HookType::kFilterDriver, "IRP_MJ_DIRECTORY_CONTROL"}});
  }
  return out;
}

std::vector<DetectedHook> suspicious_hooks(
    machine::Machine& m, const std::vector<std::string>& allowlist) {
  auto hooks = detect_hooks(m);
  std::erase_if(hooks, [&](const DetectedHook& h) {
    for (const auto& ok : allowlist) {
      if (iequals(h.info.owner, ok)) return true;
    }
    return false;
  });
  return hooks;
}

}  // namespace gb::core
