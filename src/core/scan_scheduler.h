// Fleet-scale scan scheduling — Section 5's enterprise automation as a
// service, not a shell loop.
//
// The paper's enterprise story scans tens of thousands of desktops from
// one management console. A thread per machine does not survive that
// scale; a fixed worker pool serving a fleet-wide queue does. This layer
// multiplexes many machines' scan jobs over one shared
// support::ThreadPool:
//
//   * ScanScheduler::submit(JobSpec) -> ScanJob. The JobSpec names the
//     machine, the tenant, a priority, the scan kind, and the resource
//     mask; the returned ScanJob is a future-like session handle —
//     wait(), try_result(), cancel(), progress().
//   * Tenant fairness is deficit round-robin: each tenant's queue earns
//     `weight` units of service per round and one unit buys one job, so
//     a tenant flooding 10,000 submissions still only gets its weighted
//     share of dispatch slots and cannot starve the other tenants.
//   * Within a tenant, higher priority dispatches first; ties dispatch
//     in submission order.
//   * Cancellation is cooperative (see support/cancel.h): cancel() on a
//     queued job completes it immediately with kCancelled; on a running
//     job it raises the token the engine polls at provider-task
//     boundaries. Either way the result is a clean kCancelled status,
//     never a torn report.
//   * Each dispatched job runs on ONE worker with engine parallelism
//     forced to 1: the fleet fan-out is the parallelism. Per-job reports
//     are therefore byte-identical (timing fields aside) no matter how
//     many scheduler workers serve the fleet.
//
// The scheduler assumes at most one in-flight job per Machine at a time
// touches that machine concurrently with nothing else — Machines are not
// internally synchronized. Submitting several jobs for the same machine
// is fine (they serialize through the queue only under workers=1); with
// more workers, callers should submit one job per machine per wave.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/scan_engine.h"
#include "obs/metrics.h"
#include "support/cancel.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::core {

namespace internal {
struct JobState;
struct SchedulerCore;
}  // namespace internal

/// Where a job is in its lifecycle. Queued -> Running -> Done is the
/// normal path; Queued -> Done happens when a queued job is cancelled.
enum class JobPhase : int { kQueued = 0, kRunning = 1, kDone = 2 };

const char* job_phase_name(JobPhase phase);

/// Progress snapshot of one job: provider tasks retired vs discovered.
struct JobProgress {
  JobPhase phase = JobPhase::kQueued;
  std::uint32_t tasks_done = 0;
  std::uint32_t tasks_total = 0;  // grows as the scan discovers work
};

/// Future-like handle to one submitted scan job. Cheap to move, safe to
/// destroy before the job finishes (the scheduler keeps the underlying
/// state alive; an abandoned handle just loses the ability to observe
/// the result). All methods may be called from any thread.
class ScanJob {
 public:
  ScanJob() = default;
  ScanJob(ScanJob&&) = default;
  ScanJob& operator=(ScanJob&&) = default;
  ScanJob(const ScanJob&) = delete;
  ScanJob& operator=(const ScanJob&) = delete;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  /// Scheduler-assigned id, unique per scheduler, in submission order.
  [[nodiscard]] std::uint64_t id() const;
  [[nodiscard]] const std::string& tenant() const;

  /// Blocks until the job completes (successfully, with an error, or
  /// cancelled) and returns the result. The report of a completed job
  /// carries Report::scheduler provenance; a cancelled job yields
  /// Status kCancelled.
  support::StatusOr<Report>& wait();

  /// Non-blocking: the result if the job already completed, nullptr
  /// otherwise.
  support::StatusOr<Report>* try_result();

  /// Requests cancellation. A still-queued job completes immediately
  /// with kCancelled and never touches its machine; a running job's
  /// engine observes the token at the next provider-task boundary and
  /// bails out whole. Idempotent; returns true if this call initiated a
  /// cancellation (false when the job already finished or a cancel was
  /// already requested).
  bool cancel();

  [[nodiscard]] JobProgress progress() const;

 private:
  friend class ScanScheduler;
  explicit ScanJob(std::shared_ptr<internal::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<internal::JobState> state_;
};

/// Point-in-time scheduler counters, for ops dashboards. All counts are
/// cumulative since construction except queue_depth/running (current).
struct SchedulerStats {
  struct Tenant {
    std::string id;
    std::uint32_t weight = 1;
    std::uint64_t submitted = 0;
    std::uint64_t served = 0;     // completed (ok or error), not cancelled
    std::uint64_t cancelled = 0;  // cancelled before or during dispatch
    std::size_t queued = 0;       // currently waiting
  };

  std::size_t queue_depth = 0;  // jobs waiting across all tenants
  std::size_t running = 0;      // jobs currently on a worker
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t cancelled = 0;
  /// Summed submit->dispatch and dispatch->done wall times across served
  /// jobs (divide by `served` for means).
  double total_queue_seconds = 0;
  double total_run_seconds = 0;
  /// Largest submit->done latency seen so far.
  double max_latency_seconds = 0;
  std::vector<Tenant> tenants;  // sorted by tenant id

  [[nodiscard]] std::string to_string() const;
  /// Machine-readable counters (schema_version 2.3).
  [[nodiscard]] std::string to_json() const;
};

/// Rolling latency quantiles read back from one scheduler's histograms
/// (estimates via obs::Histogram::quantile — linear interpolation
/// within the containing bucket). Zeros when nothing was observed.
struct LatencyQuantiles {
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
};

/// Multiplexes scan jobs for many machines over one shared worker pool.
/// Thread-safe: submit/cancel/stats may race freely. Destruction cancels
/// everything still queued or running and waits for in-flight jobs to
/// drain, so ScanJob handles outlive their scheduler safely (results of
/// jobs cancelled by shutdown read kCancelled).
class ScanScheduler {
 public:
  struct Options {
    /// Shared pool width — how many scans run concurrently. 0 means one
    /// dispatcher running jobs inline on the submitting/waiting thread
    /// context via the pool's serial mode (still fully ordered).
    std::size_t workers = 2;
    /// Start with dispatch paused: jobs queue but nothing runs until
    /// resume(). Lets tests (and staged rollouts) build a backlog and
    /// then observe the exact dispatch order.
    bool start_paused = false;
    /// Registry receiving scheduler telemetry (per-tenant submit/serve/
    /// cancel counters, the gb_sched_queue_wait_seconds histogram,
    /// queue-depth and deficit gauges) and each dispatched job's engine
    /// metrics. SchedulerStats is built by reading it back. Null gives
    /// the scheduler a private registry, so stats from concurrent
    /// schedulers never mix; the CLI passes obs::default_registry() so
    /// one --metrics dump covers the whole process.
    obs::MetricsRegistry* metrics = nullptr;
  };

  ScanScheduler();  // default Options
  explicit ScanScheduler(Options opts);
  ~ScanScheduler();
  ScanScheduler(const ScanScheduler&) = delete;
  ScanScheduler& operator=(const ScanScheduler&) = delete;

  /// Declares a tenant's fair-share weight (default 1). A tenant with
  /// weight w gets w dispatch slots per round-robin round while it has
  /// queued work. Implicitly creates the tenant; may be called before or
  /// after its first submit, taking effect at the next round.
  void set_tenant_weight(const std::string& tenant, std::uint32_t weight);

  /// Enqueues a job. spec.machine must be non-null (kFailedPrecondition
  /// otherwise — checked here, not at dispatch). The spec's cancel and
  /// progress pointers are scheduler-owned on this path; caller-supplied
  /// values are ignored in favor of the handle's own token and counter.
  [[nodiscard]] support::StatusOr<ScanJob> submit(JobSpec spec);

  /// Begins (or resumes) dispatch after Options::start_paused.
  void resume();

  /// Blocks until no job is queued or running. New submissions during
  /// the wait extend it; with dispatch paused this returns only once the
  /// queue is empty (i.e. immediately unless jobs got cancelled).
  void wait_idle();

  [[nodiscard]] SchedulerStats stats() const;

  /// Submit->dispatch wait quantiles (gb_sched_queue_wait_seconds).
  [[nodiscard]] LatencyQuantiles queue_wait_quantiles() const;
  /// Dispatch->done run-time quantiles (gb_sched_run_seconds).
  [[nodiscard]] LatencyQuantiles run_quantiles() const;

 private:
  void maybe_spawn_dispatchers();

  /// Shared with every JobState so ScanJob handles stay usable after the
  /// scheduler is gone (their jobs are all complete by then).
  std::shared_ptr<internal::SchedulerCore> core_;
  /// Declared last: destroyed first, so pool teardown joins dispatcher
  /// tasks while core_ is still alive for them to touch.
  support::ThreadPool pool_;
};

}  // namespace gb::core
