// Mechanism-based hook detector (the paper's contrasted first approach).
//
// Tools like VICE and ApiHookCheck detect the *mechanism* — API
// interceptions — rather than the *behaviour*. The paper points out two
// weaknesses, both reproducible here: (1) ghostware that manipulates data
// instead of code (FU's DKOM, Vanquish's PEB blanking, native-only file
// names, embedded-NUL registry names) installs no hook and is missed;
// (2) legitimate interception users (AV filter drivers, in-memory
// patchers, fault-tolerance wrappers) are flagged as false positives.
// bench_ablation compares this detector against the cross-view diff.
#pragma once

#include <string>
#include <vector>

#include "machine/machine.h"
#include "support/hookable.h"

namespace gb::core {

struct DetectedHook {
  kernel::Pid pid = 0;          // 0 for kernel-global hooks
  std::string process_image;    // empty for kernel-global hooks
  HookInfo info;
};

/// Enumerates every interception installed anywhere: per-process IAT /
/// inline / detour hooks, SSDT entries, filter drivers, registry
/// callbacks.
std::vector<DetectedHook> detect_hooks(machine::Machine& m);

/// Hook owners considered suspicious (everything except an allowlist of
/// known-legitimate intercepting software).
std::vector<DetectedHook> suspicious_hooks(
    machine::Machine& m, const std::vector<std::string>& allowlist);

}  // namespace gb::core
