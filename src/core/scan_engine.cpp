#include "core/scan_engine.h"

#include <chrono>
#include <map>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/file_scans.h"
#include "core/process_scans.h"
#include "core/registry_scans.h"
#include "support/strings.h"

namespace gb::core {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

std::size_t pool_workers(std::size_t parallelism) {
  if (parallelism == 0) {
    parallelism =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return parallelism - 1;  // the calling thread is the other executor
}

/// Diff emission order — fixed, independent of configuration.
constexpr ResourceType kDiffOrder[] = {
    ResourceType::kFile, ResourceType::kAsepHook, ResourceType::kProcess,
    ResourceType::kModule};

std::vector<ResourceType> enabled_types(ResourceMask mask) {
  std::vector<ResourceType> out;
  for (const ResourceType t : kDiffOrder) {
    if (has(mask, mask_for(t))) out.push_back(t);
  }
  return out;
}

void json_escape(std::ostringstream& os, std::string_view s) {
  static constexpr char kHex[] = "0123456789abcdef";
  os << '"';
  for (const char c : s) {
    const auto uc = static_cast<unsigned char>(c);
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      default:
        if (uc < 0x20) {
          os << "\\u00" << kHex[uc >> 4] << kHex[uc & 0xf];
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

}  // namespace

bool Report::infection_detected() const {
  for (const auto& d : diffs) {
    if (!d.hidden.empty()) return true;
  }
  return false;
}

std::size_t Report::hidden_count(ResourceType type) const {
  std::size_t n = 0;
  for (const auto& d : diffs) {
    if (d.type == type) n += d.hidden.size();
  }
  return n;
}

std::vector<Finding> Report::all_hidden() const {
  std::vector<Finding> out;
  for (const auto& d : diffs) {
    out.insert(out.end(), d.hidden.begin(), d.hidden.end());
  }
  return out;
}

const DiffReport* Report::diff_for(ResourceType type) const {
  for (const auto& d : diffs) {
    if (d.type == type) return &d;
  }
  return nullptr;
}

std::string Report::to_string() const {
  std::ostringstream os;
  os << "=== Strider GhostBuster report ===\n";
  for (const auto& d : diffs) {
    os << "[" << resource_type_name(d.type) << "] " << d.high_view << " ("
       << d.high_count << ") vs " << d.low_view << " (" << d.low_count
       << ", " << trust_level_name(d.low_trust) << ")\n";
    for (const auto& f : d.hidden) {
      os << "  HIDDEN: " << f.resource.display << "\n";
    }
    for (const auto& f : d.extra) {
      os << "  extra-in-api-view: " << f.resource.display << "\n";
    }
    if (d.clean()) os << "  (no discrepancies)\n";
  }
  os << (infection_detected() ? ">>> hidden resources detected"
                              : ">>> machine appears clean")
     << "\n";
  return os.str();
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":2"
     << ",\"infected\":" << (infection_detected() ? "true" : "false")
     << ",\"simulated_seconds\":" << total_simulated_seconds
     << ",\"wall_seconds\":" << total_wall_seconds
     << ",\"worker_threads\":" << worker_threads << ",\"diffs\":[";
  bool first_diff = true;
  for (const auto& d : diffs) {
    if (!first_diff) os << ',';
    first_diff = false;
    os << "{\"type\":";
    json_escape(os, resource_type_name(d.type));
    os << ",\"high_view\":";
    json_escape(os, d.high_view);
    os << ",\"low_view\":";
    json_escape(os, d.low_view);
    os << ",\"trust\":";
    json_escape(os, trust_level_name(d.low_trust));
    os << ",\"high_count\":" << d.high_count
       << ",\"low_count\":" << d.low_count
       << ",\"simulated_seconds\":" << d.simulated_seconds
       << ",\"wall_seconds\":" << d.wall_seconds << ",\"hidden\":[";
    bool first = true;
    for (const auto& f : d.hidden) {
      if (!first) os << ',';
      first = false;
      os << "{\"key\":";
      json_escape(os, f.resource.key);
      os << ",\"display\":";
      json_escape(os, f.resource.display);
      os << '}';
    }
    os << "],\"extra_count\":" << d.extra.size() << '}';
  }
  os << "]}";
  return os.str();
}

ScanEngine::ScanEngine(machine::Machine& m, ScanConfig cfg)
    : machine_(m),
      cfg_(std::move(cfg)),
      pool_(pool_workers(cfg_.parallelism)) {}

winapi::Ctx ScanEngine::scanner_context() {
  const std::string image_path =
      "C:\\windows\\system32\\" + cfg_.scanner_image;
  const kernel::Pid pid = machine_.ensure_process(image_path);
  return machine_.context_for(pid);
}

void ScanEngine::finalize(Report& report, double wall_seconds) {
  for (auto& d : report.diffs) {
    report.total_simulated_seconds += d.simulated_seconds;
  }
  report.total_wall_seconds = wall_seconds;
  report.worker_threads = worker_count();
  machine_.clock().advance(
      VirtualClock::seconds(report.total_simulated_seconds));
}

ScanResult ScanEngine::low_scan(ResourceType type) {
  switch (type) {
    case ResourceType::kFile:
      return low_level_file_scan(machine_, &pool_,
                                 cfg_.files.mft_batch_records);
    case ResourceType::kAsepHook:
      // The engine flushed the hives (or was told not to) before any
      // task started; never flush from inside a concurrent task.
      return low_level_registry_scan(machine_, &pool_,
                                     /*flush_hives=*/false);
    case ResourceType::kProcess:
      return cfg_.processes.scheduler_view ? advanced_process_scan(machine_)
                                           : low_level_process_scan(machine_);
    case ResourceType::kModule:
      return low_level_module_scan(machine_);
  }
  throw std::logic_error("low_scan: unknown resource type");
}

ScanResult ScanEngine::high_scan(ResourceType type, const winapi::Ctx& ctx) {
  switch (type) {
    case ResourceType::kFile:
      return high_level_file_scan(machine_, ctx, &pool_);
    case ResourceType::kAsepHook:
      return high_level_registry_scan(machine_, ctx);
    case ResourceType::kProcess:
      return high_level_process_scan(machine_, ctx);
    case ResourceType::kModule:
      return high_level_module_scan(machine_, ctx);
  }
  throw std::logic_error("high_scan: unknown resource type");
}

Report ScanEngine::inside_scan() {
  const auto t0 = SteadyClock::now();
  Report report;
  const auto types = enabled_types(cfg_.resources);
  const auto ctx = scanner_context();
  if (has(cfg_.resources, ResourceMask::kAseps) &&
      cfg_.registry.flush_hives_first) {
    machine_.flush_registry();  // serial pre-phase: no writes mid-scan
  }

  // Two tasks per resource type — the API view and the trusted view run
  // independently; the file scans fan out further internally.
  struct Pair {
    ScanResult high;
    ScanResult low;
    double high_wall = 0;
    double low_wall = 0;
  };
  std::vector<Pair> pairs(types.size());
  pool_.parallel_for(types.size() * 2, [&](std::size_t i) {
    const std::size_t slot = i / 2;
    const auto start = SteadyClock::now();
    if (i % 2 == 0) {
      pairs[slot].high = high_scan(types[slot], ctx);
      pairs[slot].high_wall = seconds_since(start);
    } else {
      pairs[slot].low = low_scan(types[slot]);
      pairs[slot].low_wall = seconds_since(start);
    }
  });

  const auto& profile = machine_.config().profile;
  for (std::size_t s = 0; s < types.size(); ++s) {
    const auto start = SteadyClock::now();
    DiffReport d =
        cross_view_diff(pairs[s].high, pairs[s].low, &pool_, cfg_.diff.shards);
    machine::ScanWork work = pairs[s].high.work;
    work += pairs[s].low.work;
    d.simulated_seconds = estimate_seconds(profile, work);
    d.wall_seconds =
        pairs[s].high_wall + pairs[s].low_wall + seconds_since(start);
    report.diffs.push_back(std::move(d));
  }
  finalize(report, seconds_since(t0));
  return report;
}

Report ScanEngine::injected_scan() {
  const auto t0 = SteadyClock::now();
  Report report;
  const auto types = enabled_types(cfg_.resources);
  if (has(cfg_.resources, ResourceMask::kAseps) &&
      cfg_.registry.flush_hives_first) {
    machine_.flush_registry();
  }

  // Trusted snapshots, one per enabled type, taken concurrently.
  std::vector<ScanResult> lows(types.size());
  std::vector<double> low_walls(types.size(), 0);
  pool_.parallel_for(types.size(), [&](std::size_t s) {
    const auto start = SteadyClock::now();
    lows[s] = low_scan(types[s]);
    low_walls[s] = seconds_since(start);
  });

  // Scan contexts in pid order (envs() is a sorted map) — the order the
  // deterministic reduction below walks.
  std::vector<winapi::Ctx> ctxs;
  for (const auto& [pid, env] : machine_.win32().envs()) {
    auto ctx = machine_.context_for(pid);
    if (ctx.image_name.empty() || ctx.image_name == "System") continue;
    ctxs.push_back(std::move(ctx));
  }

  // One job per (process, resource type): high-level scan from inside
  // that process, diffed against the trusted snapshot. Jobs run in any
  // order; each is internally serial (the fan-out is already one task
  // per job).
  struct Job {
    DiffReport diff;
    std::size_t high_count = 0;
    machine::ScanWork work;
    double wall = 0;
  };
  std::vector<Job> jobs(ctxs.size() * types.size());
  pool_.parallel_for(jobs.size(), [&](std::size_t i) {
    const winapi::Ctx& ctx = ctxs[i / types.size()];
    const std::size_t s = i % types.size();
    const auto start = SteadyClock::now();
    ScanResult high;
    switch (types[s]) {
      case ResourceType::kFile:
        high = high_level_file_scan(machine_, ctx);
        break;
      case ResourceType::kAsepHook:
        high = high_level_registry_scan(machine_, ctx);
        break;
      case ResourceType::kProcess:
        high = high_level_process_scan(machine_, ctx);
        break;
      case ResourceType::kModule:
        high = high_level_module_scan(machine_, ctx);
        break;
    }
    Job& job = jobs[i];
    job.diff = cross_view_diff(high, lows[s]);
    job.high_count = high.resources.size();
    job.work = high.work;
    job.wall = seconds_since(start);
  });

  // Deterministic reduction: pid-major, first finding per key wins —
  // identical to the serial per-process loop regardless of which worker
  // ran which job.
  const auto& profile = machine_.config().profile;
  for (std::size_t s = 0; s < types.size(); ++s) {
    std::map<std::string, Finding> hidden;
    std::size_t high_count_max = 0;
    machine::ScanWork work;
    double wall = low_walls[s];
    for (std::size_t c = 0; c < ctxs.size(); ++c) {
      Job& job = jobs[c * types.size() + s];
      for (auto& f : job.diff.hidden) hidden.emplace(f.resource.key, f);
      high_count_max = std::max(high_count_max, job.high_count);
      work += job.work;
      wall += job.wall;
    }
    DiffReport d;
    d.type = types[s];
    d.high_view = "injected scans (all processes)";
    d.low_view = lows[s].view_name;
    d.low_trust = lows[s].trust;
    d.high_count = high_count_max;
    d.low_count = lows[s].resources.size();
    for (auto& [key, f] : hidden) d.hidden.push_back(f);
    work += lows[s].work;
    d.simulated_seconds = estimate_seconds(profile, work);
    d.wall_seconds = wall;
    report.diffs.push_back(std::move(d));
  }
  finalize(report, seconds_since(t0));
  return report;
}

InsideCapture ScanEngine::capture_inside_high() {
  InsideCapture cap;
  const auto ctx = scanner_context();
  const auto types = enabled_types(cfg_.resources);
  std::vector<ScanResult> highs(types.size());
  pool_.parallel_for(types.size(), [&](std::size_t s) {
    highs[s] = high_scan(types[s], ctx);
  });
  for (std::size_t s = 0; s < types.size(); ++s) {
    switch (types[s]) {
      case ResourceType::kFile: cap.files = std::move(highs[s]); break;
      case ResourceType::kAsepHook: cap.aseps = std::move(highs[s]); break;
      case ResourceType::kProcess: cap.processes = std::move(highs[s]); break;
      case ResourceType::kModule: cap.modules = std::move(highs[s]); break;
    }
  }
  if (has(cfg_.resources, ResourceMask::kProcesses) ||
      has(cfg_.resources, ResourceMask::kModules)) {
    cap.dump = kernel::parse_dump(machine_.bluescreen());
  }
  return cap;
}

Report ScanEngine::outside_diff(const InsideCapture& cap) {
  if (machine_.running()) {
    throw std::logic_error(
        "outside_diff requires the machine to be powered off");
  }
  const auto t0 = SteadyClock::now();
  Report report;

  std::vector<std::pair<ResourceType, const ScanResult*>> wanted;
  if (cap.files) wanted.emplace_back(ResourceType::kFile, &*cap.files);
  if (cap.aseps) wanted.emplace_back(ResourceType::kAsepHook, &*cap.aseps);
  if (cap.processes && cap.dump) {
    wanted.emplace_back(ResourceType::kProcess, &*cap.processes);
  }
  if (cap.modules && cap.dump) {
    wanted.emplace_back(ResourceType::kModule, &*cap.modules);
  }

  // Clean-environment scans of the powered-off disk and the dump.
  std::vector<ScanResult> lows(wanted.size());
  std::vector<double> low_walls(wanted.size(), 0);
  pool_.parallel_for(wanted.size(), [&](std::size_t i) {
    const auto start = SteadyClock::now();
    switch (wanted[i].first) {
      case ResourceType::kFile:
        lows[i] = outside_file_scan(machine_.disk());
        break;
      case ResourceType::kAsepHook:
        lows[i] = outside_registry_scan(machine_.disk(), &pool_);
        break;
      case ResourceType::kProcess:
        lows[i] = dump_process_scan(*cap.dump);
        break;
      case ResourceType::kModule:
        lows[i] = dump_module_scan(*cap.dump);
        break;
    }
    low_walls[i] = seconds_since(start);
  });

  const auto& profile = machine_.config().profile;
  for (std::size_t i = 0; i < wanted.size(); ++i) {
    const auto start = SteadyClock::now();
    DiffReport d =
        cross_view_diff(*wanted[i].second, lows[i], &pool_, cfg_.diff.shards);
    machine::ScanWork work = wanted[i].second->work;
    work += lows[i].work;
    d.simulated_seconds = estimate_seconds(profile, work);
    d.wall_seconds = low_walls[i] + seconds_since(start);
    report.diffs.push_back(std::move(d));
  }
  finalize(report, seconds_since(t0));
  return report;
}

Report ScanEngine::outside_scan() {
  InsideCapture cap = capture_inside_high();
  if (machine_.running()) machine_.shutdown();
  // WinPE CD boot adds 1.5-3 minutes (Section 2); the RIS network boot of
  // Section 5's enterprise automation is quicker and needs no media.
  machine_.clock().advance(VirtualClock::seconds(
      cfg_.outside_boot == OutsideBoot::kWinPeCd ? 120.0 : 45.0));
  return outside_diff(cap);
}

}  // namespace gb::core
