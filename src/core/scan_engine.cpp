#include "core/scan_engine.h"

#include <chrono>
#include <map>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/scan_session.h"
#include "obs/trace.h"
#include "support/strings.h"

namespace gb::core {

namespace {

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point start) {
  return std::chrono::duration<double>(SteadyClock::now() - start).count();
}

std::size_t pool_workers(std::size_t parallelism) {
  if (parallelism == 0) {
    parallelism =
        std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  return parallelism - 1;  // the calling thread is the other executor
}

void json_escape(std::ostringstream& os, std::string_view s) {
  os << json_quote(s);
}

void json_id_array(std::ostringstream& os,
                   const std::vector<std::string>& ids) {
  os << '[';
  bool first = true;
  for (const auto& id : ids) {
    if (!first) os << ',';
    first = false;
    json_escape(os, id);
  }
  os << ']';
}

/// Runs one provider view, converting any stray exception into an
/// internal-error Status: a buggy provider degrades its own diff, it
/// does not take down the worker or the session.
template <typename F>
support::StatusOr<ScanResult> guarded_scan(F&& f) {
  try {
    return f();
  } catch (const std::exception& e) {
    return support::Status::internal(e.what());
  }
}

/// One executed view in an engine task graph: its identity plus the
/// outcome and the wall time the task took.
struct ViewOutcome {
  std::string id;
  TrustLevel trust = TrustLevel::kTruthApproximation;
  support::StatusOr<ScanResult> result;
  double wall = 0;
};

/// A (non-owning) view handed to the provider's diff policy.
struct ViewRef {
  std::string id;
  TrustLevel trust = TrustLevel::kTruthApproximation;
  const support::StatusOr<ScanResult>* result = nullptr;
};

/// Builds one provider's diff from all its view outcomes (refs[0] is
/// the API view). Failed views pass through as failed ViewInputs — the
/// matrix differ degrades per-view, so the surviving views still yield
/// findings. Simulated time charges the work of every completed view.
DiffReport diff_views(const ResourceScanner& scanner,
                      const ScanTaskContext& t,
                      const std::vector<ViewRef>& refs,
                      const machine::MachineProfile& profile) {
  machine::ScanWork work;
  std::vector<ViewInput> inputs(refs.size());
  for (std::size_t i = 0; i < refs.size(); ++i) {
    inputs[i].id = refs[i].id;
    inputs[i].trust = refs[i].trust;
    if (refs[i].result->ok()) {
      inputs[i].result = &**refs[i].result;
      work += (*refs[i].result)->work;
    } else {
      inputs[i].status = refs[i].result->status();
    }
  }
  DiffReport d = scanner.diff(t, inputs);
  d.simulated_seconds = estimate_seconds(profile, work);
  return d;
}

}  // namespace

const char* scan_kind_name(ScanKind kind) {
  switch (kind) {
    case ScanKind::kInside: return "inside";
    case ScanKind::kInjected: return "injected";
    case ScanKind::kOutside: return "outside";
  }
  return "unknown";
}

bool Report::infection_detected() const {
  for (const auto& d : diffs) {
    if (!d.hidden.empty()) return true;
  }
  return false;
}

bool Report::degraded() const {
  for (const auto& d : diffs) {
    if (d.degraded()) return true;
  }
  return false;
}

std::size_t Report::hidden_count(ResourceType type) const {
  std::size_t n = 0;
  for (const auto& d : diffs) {
    if (d.type == type) n += d.hidden.size();
  }
  return n;
}

std::vector<Finding> Report::all_hidden() const {
  std::vector<Finding> out;
  for (const auto& d : diffs) {
    out.insert(out.end(), d.hidden.begin(), d.hidden.end());
  }
  return out;
}

const DiffReport* Report::diff_for(ResourceType type) const {
  for (const auto& d : diffs) {
    if (d.type == type) return &d;
  }
  return nullptr;
}

std::string Report::to_string() const {
  std::ostringstream os;
  os << "=== Strider GhostBuster report ===\n";
  for (const auto& d : diffs) {
    os << "[" << resource_type_name(d.type) << "] " << d.high_view << " ("
       << d.high_count << ") vs " << d.low_view << " (" << d.low_count
       << ", " << trust_level_name(d.low_trust) << ")\n";
    // The N-view matrix behind the pairwise line above, when there is
    // more to it than that pair.
    if (d.views.size() > 2) {
      for (const auto& v : d.views) {
        os << "  view " << v.id << ": " << v.name << " (" << v.count << ")";
        if (v.degraded()) os << " DEGRADED: " << v.status.to_string();
        os << "\n";
      }
    }
    if (d.degraded()) {
      os << "  DEGRADED: " << d.status.to_string() << "\n";
      if (d.hidden.empty() && d.extra.empty()) continue;
    }
    for (const auto& f : d.hidden) {
      os << "  HIDDEN: " << f.resource.display;
      if (!f.found_in.empty()) {
        os << " [in:";
        for (const auto& id : f.found_in) os << ' ' << id;
        os << "]";
      }
      os << "\n";
    }
    for (const auto& f : d.extra) {
      os << "  extra-in-api-view: " << f.resource.display << "\n";
    }
    if (!d.degraded() && d.clean()) os << "  (no discrepancies)\n";
  }
  os << (infection_detected() ? ">>> hidden resources detected"
                              : ">>> machine appears clean");
  if (degraded()) os << " (PARTIAL: some resource types degraded)";
  os << "\n";
  return os.str();
}

std::string Report::to_json() const {
  std::ostringstream os;
  os << "{\"schema_version\":\"2.5\""
     << ",\"infected\":" << (infection_detected() ? "true" : "false")
     << ",\"degraded\":" << (degraded() ? "true" : "false")
     << ",\"simulated_seconds\":" << total_simulated_seconds
     << ",\"wall_seconds\":" << total_wall_seconds
     << ",\"worker_threads\":" << worker_threads << ",\"scheduler\":";
  if (scheduler) {
    os << "{\"tenant\":";
    json_escape(os, scheduler->tenant);
    os << ",\"job_id\":" << scheduler->job_id
       << ",\"priority\":" << scheduler->priority
       << ",\"queue_seconds\":" << scheduler->queue_seconds << '}';
  } else {
    os << "null";
  }
  os << ",\"metrics\":";
  if (metrics) {
    os << "{\"provider_scans\":" << metrics->provider_scans
       << ",\"scan_failures\":" << metrics->scan_failures
       << ",\"degraded_diffs\":" << metrics->degraded_diffs
       << ",\"hidden_resources\":" << metrics->hidden_resources
       << ",\"extra_resources\":" << metrics->extra_resources << '}';
  } else {
    os << "null";
  }
  os << ",\"incremental\":";
  if (incremental) {
    os << "{\"incremental\":" << (incremental->incremental ? "true" : "false")
       << ",\"fallback_reason\":";
    json_escape(os, incremental->fallback_reason);
    os << ",\"journal_id\":" << incremental->journal_id
       << ",\"cursor\":" << incremental->cursor
       << ",\"journal_records\":" << incremental->journal_records
       << ",\"records_reparsed\":" << incremental->records_reparsed
       << ",\"records_spliced\":" << incremental->records_spliced << '}';
  } else {
    os << "null";
  }
  os << ",\"diffs\":[";
  bool first_diff = true;
  for (const auto& d : diffs) {
    if (!first_diff) os << ',';
    first_diff = false;
    os << "{\"type\":";
    json_escape(os, resource_type_name(d.type));
    os << ",\"status\":" << (d.degraded() ? "\"degraded\"" : "\"ok\"")
       << ",\"degraded\":" << (d.degraded() ? "true" : "false")
       << ",\"error\":";
    json_escape(os, d.degraded() ? d.status.to_string() : "");
    os << ",\"views\":[";
    bool first_view = true;
    for (const auto& v : d.views) {
      if (!first_view) os << ',';
      first_view = false;
      os << "{\"id\":";
      json_escape(os, v.id);
      os << ",\"name\":";
      json_escape(os, v.name);
      os << ",\"trust\":";
      json_escape(os, trust_level_name(v.trust));
      os << ",\"count\":" << v.count
         << ",\"status\":" << (v.degraded() ? "\"degraded\"" : "\"ok\"")
         << ",\"degraded\":" << (v.degraded() ? "true" : "false")
         << ",\"error\":";
      json_escape(os, v.degraded() ? v.status.to_string() : "");
      os << '}';
    }
    os << "],\"high_view\":";
    json_escape(os, d.high_view);
    os << ",\"low_view\":";
    json_escape(os, d.low_view);
    os << ",\"trust\":";
    json_escape(os, trust_level_name(d.low_trust));
    os << ",\"high_count\":" << d.high_count
       << ",\"low_count\":" << d.low_count
       << ",\"simulated_seconds\":" << d.simulated_seconds
       << ",\"wall_seconds\":" << d.wall_seconds << ",\"hidden\":[";
    bool first = true;
    for (const auto& f : d.hidden) {
      if (!first) os << ',';
      first = false;
      os << "{\"key\":";
      json_escape(os, f.resource.key);
      os << ",\"display\":";
      json_escape(os, f.resource.display);
      os << ",\"found_in\":";
      json_id_array(os, f.found_in);
      os << ",\"missing_from\":";
      json_id_array(os, f.missing_from);
      os << '}';
    }
    os << "],\"extra_count\":" << d.extra.size() << '}';
  }
  os << "]}";
  return os.str();
}

ScanEngine::ScanEngine(machine::Machine& m, ScanConfig cfg)
    : machine_(m),
      cfg_(std::move(cfg)),
      pool_(pool_workers(cfg_.parallelism)),
      scanners_(default_scanners(cfg_.resources)) {
  if (cfg_.collect_metrics) {
    registry_ = cfg_.metrics != nullptr ? cfg_.metrics
                                        : &obs::default_registry();
    pool_.instrument(*registry_);
  }
}

void ScanEngine::register_scanner(std::unique_ptr<ResourceScanner> scanner) {
  scanners_.push_back(std::move(scanner));
}

winapi::Ctx ScanEngine::scanner_context() {
  const std::string image_path =
      "C:\\windows\\system32\\" + cfg_.scanner_image;
  const kernel::Pid pid = machine_.ensure_process(image_path);
  return machine_.context_for(pid);
}

void ScanEngine::finalize(Report& report, double wall_seconds,
                          const char* kind, const ScanTally& tally) {
  for (auto& d : report.diffs) {
    report.total_simulated_seconds += d.simulated_seconds;
  }
  report.total_wall_seconds = wall_seconds;
  report.worker_threads = worker_count();
  machine_.clock().advance(
      VirtualClock::seconds(report.total_simulated_seconds));

  if (registry_ == nullptr) return;
  // The report block holds only deterministic quantities (counts and
  // simulated time); wall-clock observations go to the registry, which
  // never feeds back into report bytes.
  Report::Metrics m;
  m.provider_scans = tally.provider_scans;
  m.scan_failures = tally.scan_failures;
  for (const auto& d : report.diffs) {
    if (d.degraded()) ++m.degraded_diffs;
    m.hidden_resources += d.hidden.size();
    m.extra_resources += d.extra.size();
  }
  report.metrics = m;

  obs::MetricsRegistry& reg = *registry_;
  reg.set_help("gb_engine_runs_total", "Engine runs by scan kind");
  reg.set_help("gb_engine_hidden_resources_total",
               "Hidden resources detected across runs");
  reg.set_help("gb_engine_run_seconds", "Wall-clock time of one engine run");
  reg.counter("gb_engine_runs_total", {{"kind", kind}}).inc();
  reg.counter("gb_engine_provider_scans_total")
      .add(static_cast<double>(m.provider_scans));
  reg.counter("gb_engine_scan_failures_total")
      .add(static_cast<double>(m.scan_failures));
  reg.counter("gb_engine_degraded_diffs_total")
      .add(static_cast<double>(m.degraded_diffs));
  reg.counter("gb_engine_hidden_resources_total")
      .add(static_cast<double>(m.hidden_resources));
  reg.counter("gb_engine_simulated_seconds_total")
      .add(report.total_simulated_seconds);
  reg.histogram("gb_engine_run_seconds", obs::default_latency_buckets())
      .observe(wall_seconds);
}

ScanTaskContext ScanEngine::task_context() {
  return ScanTaskContext{machine_, &pool_, cfg_};
}

void ScanEngine::flush_hives_if_needed() {
  if (!cfg_.registry.flush_hives_first) return;
  for (const auto& s : scanners_) {
    if (s->type() == ResourceType::kAsepHook) {
      machine_.flush_registry();  // serial pre-phase: no writes mid-scan
      return;
    }
  }
}

support::StatusOr<Report> ScanEngine::run(const JobSpec& spec) {
  // Direct engine use joins the caller's trace here. The scheduler path
  // leaves spec.trace invalid on the inner run spec — its dispatcher
  // already installed the job context, and re-installing the root here
  // would detach the engine spans from their sched.job parent.
  std::optional<obs::TraceContextScope> trace_scope;
  if (spec.trace.valid()) trace_scope.emplace(spec.trace);
  const RunCtl ctl{spec.cancel, spec.progress};
  if (spec.session != nullptr) {
    // Incremental re-scan: the session's own engine (and snapshot store)
    // does the work; this engine's machine/config are not involved. Same
    // contract as ScanScheduler::submit — only the inside scan has an
    // incremental form, so any other kind is a caller error rather than
    // a silently ignored field.
    if (spec.kind != ScanKind::kInside) {
      return support::Status::failed_precondition(
          "JobSpec.session requires kind == kInside");
    }
    return spec.session->rescan(spec.cancel, spec.progress);
  }
  switch (spec.kind) {
    case ScanKind::kInside: return inside_scan_impl(ctl);
    case ScanKind::kInjected: return injected_scan_impl(ctl);
    case ScanKind::kOutside: return outside_scan_impl(ctl);
  }
  return support::Status::internal("unknown scan kind");
}

ScanSession ScanEngine::open_session(SessionSpec spec) {
  return ScanSession(*this, spec);
}

Report ScanEngine::inside_scan() {
  return std::move(inside_scan_impl(RunCtl{})).value();
}

Report ScanEngine::injected_scan() {
  return std::move(injected_scan_impl(RunCtl{})).value();
}

InsideCapture ScanEngine::capture_inside_high() {
  return capture_inside_high_impl(RunCtl{});
}

Report ScanEngine::outside_diff(const InsideCapture& capture) {
  return std::move(outside_diff_impl(capture, RunCtl{})).value();
}

Report ScanEngine::outside_scan() {
  return std::move(outside_scan_impl(RunCtl{})).value();
}

support::StatusOr<Report> ScanEngine::inside_scan_impl(
    const RunCtl& ctl, internal::SessionState* session) {
  if (ctl.cancelled()) {
    return support::Status::cancelled("inside scan cancelled before start");
  }
  const auto t0 = SteadyClock::now();
  auto run_span = obs::default_tracer().span("engine.inside", "engine");
  Report report;
  const auto ctx = scanner_context();
  flush_hives_if_needed();
  // Serial, after the flush (so journal entries from the flush are
  // replayed into the snapshot) and before any task (so the snapshot
  // never changes mid-scan).
  if (session != nullptr) sync_session(machine_, *session);
  ScanTaskContext tctx = task_context();
  tctx.session = session;

  // One task per registered view — the API view plus every trusted view
  // run independently; the file scans fan out further internally.
  struct Provider {
    std::vector<ResourceScanner::ViewDef> defs;  // trusted views
    std::vector<ViewOutcome> outcomes;           // [0] = API, then defs
  };
  std::vector<Provider> providers(scanners_.size());
  struct TaskRef {
    std::size_t slot = 0;
    std::size_t view = 0;
  };
  std::vector<TaskRef> tasks;
  for (std::size_t s = 0; s < scanners_.size(); ++s) {
    Provider& p = providers[s];
    p.defs = scanners_[s]->trusted_views(ScanPhase::kLive, cfg_);
    p.outcomes.resize(1 + p.defs.size());
    p.outcomes[0].id = kApiViewId;
    p.outcomes[0].trust = TrustLevel::kApiView;
    for (std::size_t v = 0; v < p.defs.size(); ++v) {
      p.outcomes[v + 1].id = p.defs[v].id;
      p.outcomes[v + 1].trust = p.defs[v].trust;
    }
    for (std::size_t v = 0; v < p.outcomes.size(); ++v) {
      tasks.push_back(TaskRef{s, v});
    }
  }
  ctl.add_total(static_cast<std::uint32_t>(tasks.size()));
  pool_.parallel_for(
      tasks.size(),
      [&](std::size_t i) {
        const TaskRef task = tasks[i];
        const ResourceScanner& scanner = *scanners_[task.slot];
        Provider& p = providers[task.slot];
        ViewOutcome& out = p.outcomes[task.view];
        auto span = obs::default_tracer().span(
            std::string("scan.") + resource_type_name(scanner.type()) + "." +
                (task.view == 0 ? "high" : out.id),
            "provider");
        const auto start = SteadyClock::now();
        if (task.view == 0) {
          out.result =
              guarded_scan([&] { return scanner.high_scan(tctx, ctx); });
        } else {
          const auto& def = p.defs[task.view - 1];
          out.result = guarded_scan([&] { return def.run(tctx, nullptr); });
        }
        out.wall = seconds_since(start);
        ctl.add_done();
      },
      ctl.cancel);
  if (ctl.cancelled()) {
    // Some views may be missing or half-collected: discard the lot
    // rather than emit a report that looks degraded but is really torn.
    return support::Status::cancelled("inside scan cancelled");
  }

  ScanTally tally;
  const auto& profile = machine_.config().profile;
  for (std::size_t s = 0; s < scanners_.size(); ++s) {
    if (ctl.cancelled()) {
      return support::Status::cancelled("inside scan cancelled during diff");
    }
    Provider& p = providers[s];
    tally.provider_scans += p.outcomes.size();
    double wall = 0;
    std::vector<ViewRef> refs(p.outcomes.size());
    for (std::size_t v = 0; v < p.outcomes.size(); ++v) {
      if (!p.outcomes[v].result.ok()) ++tally.scan_failures;
      wall += p.outcomes[v].wall;
      refs[v] = ViewRef{p.outcomes[v].id, p.outcomes[v].trust,
                        &p.outcomes[v].result};
    }
    auto span = obs::default_tracer().span(
        std::string("diff.") + resource_type_name(scanners_[s]->type()),
        "diff");
    const auto start = SteadyClock::now();
    DiffReport d = diff_views(*scanners_[s], tctx, refs, profile);
    d.wall_seconds = wall + seconds_since(start);
    report.diffs.push_back(std::move(d));
  }
  if (session != nullptr) report.incremental = session->last;
  finalize(report, seconds_since(t0), "inside", tally);
  if (session != nullptr && registry_ != nullptr) {
    obs::MetricsRegistry& reg = *registry_;
    const IncrementalStats& inc = session->last;
    reg.counter("gb_session_rescans_total",
                {{"mode", inc.incremental ? "incremental" : "full"}})
        .inc();
    reg.counter("gb_session_records_spliced_total")
        .add(static_cast<double>(inc.records_spliced));
    reg.counter("gb_session_records_reparsed_total")
        .add(static_cast<double>(inc.records_reparsed));
    if (!inc.incremental) reg.counter("gb_session_fallbacks_total").inc();
  }
  return report;
}

support::StatusOr<Report> ScanEngine::injected_scan_impl(const RunCtl& ctl) {
  if (ctl.cancelled()) {
    return support::Status::cancelled("injected scan cancelled before start");
  }
  const auto t0 = SteadyClock::now();
  auto run_span = obs::default_tracer().span("engine.injected", "engine");
  Report report;
  flush_hives_if_needed();
  const ScanTaskContext tctx = task_context();
  // Per-job scans stay internally serial — the fan-out is already one
  // task per (process, provider) job.
  const ScanTaskContext serial_ctx{machine_, nullptr, cfg_};

  // Trusted snapshots — every registered live view of every provider —
  // taken concurrently.
  struct Provider {
    std::vector<ResourceScanner::ViewDef> defs;
    std::vector<ViewOutcome> trusted;  // parallel to defs

    [[nodiscard]] bool any_ok() const {
      for (const auto& o : trusted) {
        if (o.result.ok()) return true;
      }
      return false;
    }
  };
  std::vector<Provider> providers(scanners_.size());
  struct TaskRef {
    std::size_t slot = 0;
    std::size_t view = 0;
  };
  std::vector<TaskRef> snapshot_tasks;
  for (std::size_t s = 0; s < scanners_.size(); ++s) {
    Provider& p = providers[s];
    p.defs = scanners_[s]->trusted_views(ScanPhase::kLive, cfg_);
    p.trusted.resize(p.defs.size());
    for (std::size_t v = 0; v < p.defs.size(); ++v) {
      p.trusted[v].id = p.defs[v].id;
      p.trusted[v].trust = p.defs[v].trust;
      snapshot_tasks.push_back(TaskRef{s, v});
    }
  }
  ctl.add_total(static_cast<std::uint32_t>(snapshot_tasks.size()));
  pool_.parallel_for(
      snapshot_tasks.size(),
      [&](std::size_t i) {
        const TaskRef task = snapshot_tasks[i];
        Provider& p = providers[task.slot];
        auto span = obs::default_tracer().span(
            std::string("scan.") +
                resource_type_name(scanners_[task.slot]->type()) + "." +
                p.trusted[task.view].id,
            "provider");
        const auto start = SteadyClock::now();
        p.trusted[task.view].result = guarded_scan(
            [&] { return p.defs[task.view].run(tctx, nullptr); });
        p.trusted[task.view].wall = seconds_since(start);
        ctl.add_done();
      },
      ctl.cancel);
  if (ctl.cancelled()) {
    return support::Status::cancelled("injected scan cancelled");
  }

  // Scan contexts in pid order (envs() is a sorted map) — the order the
  // deterministic reduction below walks.
  std::vector<winapi::Ctx> ctxs;
  for (const auto& [pid, env] : machine_.win32().envs()) {
    auto ctx = machine_.context_for(pid);
    if (ctx.image_name.empty() || ctx.image_name == "System") continue;
    ctxs.push_back(std::move(ctx));
  }

  // One job per (process, provider): high-level scan from inside that
  // process, diffed against the trusted snapshots. Jobs run in any
  // order. Providers with no sound trusted snapshot at all skip their
  // jobs entirely — there is nothing to diff against.
  struct Job {
    DiffReport diff;
    support::Status status;
    std::size_t high_count = 0;
    machine::ScanWork work;
    double wall = 0;
  };
  std::vector<Job> jobs(ctxs.size() * scanners_.size());
  ctl.add_total(static_cast<std::uint32_t>(jobs.size()));
  pool_.parallel_for(
      jobs.size(),
      [&](std::size_t i) {
        const winapi::Ctx& ctx = ctxs[i / scanners_.size()];
        const std::size_t s = i % scanners_.size();
        ctl.add_done();
        const Provider& p = providers[s];
        if (!p.any_ok()) return;
        auto span = obs::default_tracer().span(
            std::string("scan.") + resource_type_name(scanners_[s]->type()) +
                ".injected",
            "provider");
        span.arg("image", ctx.image_name);
        const auto start = SteadyClock::now();
        const auto high = guarded_scan(
            [&] { return scanners_[s]->high_scan(serial_ctx, ctx); });
        Job& job = jobs[i];
        if (!high.ok()) {
          job.status = high.status();
        } else {
          std::vector<ViewInput> inputs(1 + p.trusted.size());
          inputs[0].id = kApiViewId;
          inputs[0].trust = TrustLevel::kApiView;
          inputs[0].result = &*high;
          for (std::size_t v = 0; v < p.trusted.size(); ++v) {
            inputs[v + 1].id = p.trusted[v].id;
            inputs[v + 1].trust = p.trusted[v].trust;
            if (p.trusted[v].result.ok()) {
              inputs[v + 1].result = &*p.trusted[v].result;
            } else {
              inputs[v + 1].status = p.trusted[v].result.status();
            }
          }
          job.diff = cross_view_matrix_diff(scanners_[s]->type(), inputs);
          job.high_count = high->resources.size();
          job.work = high->work;
        }
        job.wall = seconds_since(start);
      },
      ctl.cancel);
  if (ctl.cancelled()) {
    return support::Status::cancelled("injected scan cancelled");
  }

  // Deterministic reduction: pid-major, first finding per key wins —
  // identical to the serial per-process loop regardless of which worker
  // ran which job. A failed per-process scan marks the diff degraded
  // (first failure in pid order) but the successes still merge.
  ScanTally tally;
  const auto& profile = machine_.config().profile;
  for (std::size_t s = 0; s < scanners_.size(); ++s) {
    Provider& p = providers[s];
    DiffReport d;
    d.type = scanners_[s]->type();
    d.high_view = "injected scans (all processes)";

    tally.provider_scans += p.trusted.size();
    support::Status first_trusted_failure;
    double wall = 0;
    for (const auto& o : p.trusted) {
      if (!o.result.ok()) {
        ++tally.scan_failures;
        if (first_trusted_failure.ok()) {
          first_trusted_failure = o.result.status();
        }
      }
      wall += o.wall;
    }

    ViewSummary api;
    api.id = kApiViewId;
    api.name = d.high_view;
    api.trust = TrustLevel::kApiView;
    d.views.push_back(api);
    const ViewOutcome* last_ok = nullptr;
    for (const auto& o : p.trusted) {
      ViewSummary v;
      v.id = o.id;
      v.trust = o.trust;
      if (o.result.ok()) {
        v.name = o.result->view_name;
        v.count = o.result->resources.size();
        last_ok = &o;
      } else {
        v.name = "(scan failed)";
        v.status = o.result.status();
      }
      d.views.push_back(std::move(v));
    }

    if (!p.any_ok()) {
      d.low_view = "(scan failed)";
      d.status = first_trusted_failure;
      d.wall_seconds = wall;
      report.diffs.push_back(std::move(d));
      continue;
    }
    tally.provider_scans += ctxs.size();  // one injected high per process
    std::map<std::string, Finding> hidden;
    std::size_t high_count_max = 0;
    machine::ScanWork work;
    support::Status first_failure;
    for (std::size_t c = 0; c < ctxs.size(); ++c) {
      Job& job = jobs[c * scanners_.size() + s];
      if (!job.status.ok()) {
        ++tally.scan_failures;
        if (first_failure.ok()) first_failure = job.status;
      }
      for (auto& f : job.diff.hidden) hidden.emplace(f.resource.key, f);
      high_count_max = std::max(high_count_max, job.high_count);
      work += job.work;
      wall += job.wall;
    }
    d.views[0].count = high_count_max;
    d.views[0].status = first_failure;
    d.low_view = last_ok->result->view_name;
    d.low_trust = last_ok->trust;
    d.high_count = high_count_max;
    d.low_count = last_ok->result->resources.size();
    d.status = first_trusted_failure.ok() ? first_failure
                                          : first_trusted_failure;
    for (auto& [key, f] : hidden) d.hidden.push_back(f);
    for (const auto& o : p.trusted) {
      if (o.result.ok()) work += o.result->work;
    }
    d.simulated_seconds = estimate_seconds(profile, work);
    d.wall_seconds = wall;
    report.diffs.push_back(std::move(d));
  }
  finalize(report, seconds_since(t0), "injected", tally);
  return report;
}

InsideCapture ScanEngine::capture_inside_high_impl(const RunCtl& ctl) {
  auto run_span = obs::default_tracer().span("engine.capture", "engine");
  InsideCapture cap;
  const auto ctx = scanner_context();
  const ScanTaskContext tctx = task_context();
  cap.entries.resize(scanners_.size());
  for (std::size_t s = 0; s < scanners_.size(); ++s) {
    cap.entries[s].type = scanners_[s]->type();
  }
  ctl.add_total(static_cast<std::uint32_t>(scanners_.size()));
  pool_.parallel_for(
      scanners_.size(),
      [&](std::size_t s) {
        auto span = obs::default_tracer().span(
            std::string("scan.") + resource_type_name(scanners_[s]->type()) +
                ".high",
            "provider");
        cap.entries[s].high =
            guarded_scan([&] { return scanners_[s]->high_scan(tctx, ctx); });
        ctl.add_done();
      },
      ctl.cancel);

  bool want_dump = false;
  for (const auto& s : scanners_) {
    for (const auto& def : s->trusted_views(ScanPhase::kOutside, cfg_)) {
      want_dump = want_dump || def.needs_dump;
    }
  }
  // A cancelled capture never blue-screens the machine: the job is being
  // abandoned, so we leave the box running instead of halting it for a
  // dump nobody will diff.
  if (want_dump && !ctl.cancelled()) {
    // Keep the raw image regardless of whether it parses: the signature
    // carve sweeps bytes, not structures.
    cap.dump_bytes = machine_.bluescreen();
    auto parsed = kernel::parse_dump_or(cap.dump_bytes, &pool_);
    if (parsed.ok()) {
      cap.dump = std::move(parsed.value());
    } else {
      cap.dump_status = parsed.status();
    }
  }
  return cap;
}

support::StatusOr<Report> ScanEngine::outside_diff_impl(
    const InsideCapture& cap, const RunCtl& ctl) {
  if (machine_.running()) {
    throw std::logic_error(
        "outside_diff requires the machine to be powered off");
  }
  if (ctl.cancelled()) {
    return support::Status::cancelled("outside diff cancelled before start");
  }
  const auto t0 = SteadyClock::now();
  auto run_span = obs::default_tracer().span("engine.outside_diff", "engine");
  Report report;
  const ScanTaskContext tctx = task_context();
  const OutsideSources sources{machine_.disk(),
                               cap.dump ? &*cap.dump : nullptr,
                               cap.dump_bytes, cap.dump_status};

  // Match capture entries to providers by type (the capture may come
  // from a different engine whose provider set differs).
  struct Wanted {
    const ResourceScanner* scanner = nullptr;
    const InsideCapture::Entry* entry = nullptr;
    std::vector<ResourceScanner::ViewDef> defs;
    std::vector<ViewOutcome> outcomes;  // parallel to defs
  };
  std::vector<Wanted> wanted;
  for (const auto& entry : cap.entries) {
    for (const auto& s : scanners_) {
      if (s->type() == entry.type) {
        Wanted w;
        w.scanner = s.get();
        w.entry = &entry;
        w.defs = s->trusted_views(ScanPhase::kOutside, cfg_);
        w.outcomes.resize(w.defs.size());
        for (std::size_t v = 0; v < w.defs.size(); ++v) {
          w.outcomes[v].id = w.defs[v].id;
          w.outcomes[v].trust = w.defs[v].trust;
        }
        wanted.push_back(std::move(w));
        break;
      }
    }
  }

  // Clean-environment views of the powered-off disk and the captured
  // dump (parsed and raw), one task per registered view.
  struct TaskRef {
    std::size_t slot = 0;
    std::size_t view = 0;
  };
  std::vector<TaskRef> tasks;
  for (std::size_t i = 0; i < wanted.size(); ++i) {
    for (std::size_t v = 0; v < wanted[i].defs.size(); ++v) {
      tasks.push_back(TaskRef{i, v});
    }
  }
  ctl.add_total(static_cast<std::uint32_t>(tasks.size()));
  pool_.parallel_for(
      tasks.size(),
      [&](std::size_t i) {
        const TaskRef task = tasks[i];
        Wanted& w = wanted[task.slot];
        auto span = obs::default_tracer().span(
            std::string("scan.") + resource_type_name(w.scanner->type()) +
                ".outside." + w.outcomes[task.view].id,
            "provider");
        const auto start = SteadyClock::now();
        w.outcomes[task.view].result = guarded_scan(
            [&] { return w.defs[task.view].run(tctx, &sources); });
        w.outcomes[task.view].wall = seconds_since(start);
        ctl.add_done();
      },
      ctl.cancel);
  if (ctl.cancelled()) {
    return support::Status::cancelled("outside diff cancelled");
  }

  ScanTally tally;
  const auto& profile = machine_.config().profile;
  for (auto& w : wanted) {
    tally.provider_scans += 1 + w.outcomes.size();  // capture + clean views
    if (!w.entry->high.ok()) ++tally.scan_failures;
    double wall = 0;
    std::vector<ViewRef> refs(1 + w.outcomes.size());
    refs[0] = ViewRef{kApiViewId, TrustLevel::kApiView, &w.entry->high};
    for (std::size_t v = 0; v < w.outcomes.size(); ++v) {
      if (!w.outcomes[v].result.ok()) ++tally.scan_failures;
      wall += w.outcomes[v].wall;
      refs[v + 1] = ViewRef{w.outcomes[v].id, w.outcomes[v].trust,
                            &w.outcomes[v].result};
    }
    auto span = obs::default_tracer().span(
        std::string("diff.") + resource_type_name(w.scanner->type()),
        "diff");
    const auto start = SteadyClock::now();
    DiffReport d = diff_views(*w.scanner, tctx, refs, profile);
    d.wall_seconds = wall + seconds_since(start);
    report.diffs.push_back(std::move(d));
  }
  finalize(report, seconds_since(t0), "outside", tally);
  return report;
}

support::StatusOr<Report> ScanEngine::outside_scan_impl(const RunCtl& ctl) {
  if (ctl.cancelled()) {
    return support::Status::cancelled("outside scan cancelled before start");
  }
  InsideCapture cap = capture_inside_high_impl(ctl);
  if (ctl.cancelled()) {
    // The capture saw the token in time to skip the blue-screen, so the
    // machine is still running; a cancelled outside job leaves the box in
    // whatever lifecycle phase it reached (cooperative, not transactional).
    return support::Status::cancelled("outside scan cancelled after capture");
  }
  if (machine_.running()) machine_.shutdown();
  // WinPE CD boot adds 1.5-3 minutes (Section 2); the RIS network boot of
  // Section 5's enterprise automation is quicker and needs no media.
  machine_.clock().advance(VirtualClock::seconds(
      cfg_.outside_boot == OutsideBoot::kWinPeCd ? 120.0 : 45.0));
  return outside_diff_impl(cap, ctl);
}

}  // namespace gb::core
