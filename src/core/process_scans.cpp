#include "core/process_scans.h"

#include "kernel/carve.h"
#include "support/strings.h"

namespace gb::core {

namespace {

Resource process_resource(const kernel::ProcessInfo& p) {
  return Resource{process_key(p.pid, p.image_name),
                  "pid " + std::to_string(p.pid) + " " +
                      printable(p.image_name)};
}

Resource module_resource(kernel::Pid pid, std::string_view path,
                         std::string_view name) {
  return Resource{module_key(pid, path),
                  "pid " + std::to_string(pid) + " " +
                      (path.empty() ? "(blanked pathname: " +
                                          printable(name) + ")"
                                    : printable(path))};
}

void from_infos(const std::vector<kernel::ProcessInfo>& infos,
                ScanResult& out) {
  for (const auto& p : infos) {
    out.resources.push_back(process_resource(p));
    ++out.work.records_visited;
  }
  out.normalize();
}

}  // namespace

support::StatusOr<ScanResult> high_level_process_scan(machine::Machine& m,
                                                      const winapi::Ctx& ctx) {
  ScanResult out;
  out.view_name = "NtQuerySystemInformation (" + ctx.image_name + ")";
  out.type = ResourceType::kProcess;
  out.trust = TrustLevel::kApiView;
  winapi::ApiEnv* env = m.win32().env(ctx.pid);
  if (!env) {
    return support::Status::failed_precondition(
        "no API environment for context pid " + std::to_string(ctx.pid));
  }
  from_infos(env->nt_query_system_information(ctx), out);
  return out;
}

support::StatusOr<ScanResult> low_level_process_scan(machine::Machine& m) {
  ScanResult out;
  out.view_name = "driver: Active Process List walk";
  out.type = ResourceType::kProcess;
  out.trust = TrustLevel::kTruthApproximation;
  from_infos(m.kernel().low_level_process_scan(), out);
  return out;
}

support::StatusOr<ScanResult> advanced_process_scan(machine::Machine& m) {
  ScanResult out;
  out.view_name = "driver: scheduler thread table walk (advanced mode)";
  out.type = ResourceType::kProcess;
  out.trust = TrustLevel::kTruthApproximation;
  from_infos(m.kernel().advanced_process_scan(), out);
  return out;
}

support::StatusOr<ScanResult> dump_process_scan(
    const kernel::KernelDump& dump) {
  ScanResult out;
  out.view_name = "kernel dump: thread-table traversal";
  out.type = ResourceType::kProcess;
  out.trust = TrustLevel::kTruth;
  from_infos(dump.thread_view(), out);
  return out;
}

support::StatusOr<ScanResult> carve_process_scan(
    std::span<const std::byte> dump_bytes, bool live,
    support::ThreadPool* pool, std::uint32_t chunk_bytes,
    obs::MetricsRegistry* metrics) {
  auto carved = kernel::carve_dump(dump_bytes, pool, chunk_bytes);
  if (metrics != nullptr) {
    metrics->counter("gb_carve_runs_total", {{"mode", live ? "live" : "dump"}})
        .inc();
    if (carved.ok()) {
      metrics->counter("gb_carve_bytes_swept_total")
          .add(static_cast<double>(carved->stats.bytes_swept));
      metrics->counter("gb_carve_candidates_total")
          .add(static_cast<double>(carved->stats.candidates));
      metrics->counter("gb_carve_recovered_total")
          .add(static_cast<double>(carved->stats.recovered));
      metrics->counter("gb_carve_rejected_total")
          .add(static_cast<double>(carved->stats.rejected));
      metrics->counter("gb_carve_orphans_total")
          .add(static_cast<double>(carved->orphan_count()));
    } else {
      metrics->counter("gb_carve_failures_total").inc();
    }
  }
  if (!carved.ok()) return carved.status();

  ScanResult out;
  out.view_name = live ? "signature carve of kernel memory"
                       : "signature carve of crash dump";
  out.type = ResourceType::kProcess;
  out.trust = live ? TrustLevel::kTruthApproximation : TrustLevel::kTruth;
  for (const auto& p : carved->processes) {
    out.resources.push_back(
        Resource{process_key(p.image.pid, p.image.image_name),
                 "pid " + std::to_string(p.image.pid) + " " +
                     printable(p.image.image_name)});
  }
  out.work.records_visited = carved->stats.recovered;
  out.work.bytes_read = carved->stats.bytes_swept;
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> high_level_module_scan(machine::Machine& m,
                                                     const winapi::Ctx& ctx) {
  ScanResult out;
  out.view_name = "toolhelp Module32 walk (" + ctx.image_name + ")";
  out.type = ResourceType::kModule;
  out.trust = TrustLevel::kApiView;
  winapi::ApiEnv* env = m.win32().env(ctx.pid);
  if (!env) {
    return support::Status::failed_precondition(
        "no API environment for context pid " + std::to_string(ctx.pid));
  }

  // Module enumeration is per process: only processes visible to the
  // toolhelp view can be asked for their modules at all.
  for (const auto& p : env->toolhelp_processes(ctx)) {
    for (const auto& mod : env->toolhelp_modules(ctx, p.pid)) {
      out.resources.push_back(module_resource(p.pid, mod.path, mod.name));
      ++out.work.records_visited;
    }
  }
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> low_level_module_scan(machine::Machine& m) {
  ScanResult out;
  out.view_name = "driver: kernel module-truth walk";
  out.type = ResourceType::kModule;
  out.trust = TrustLevel::kTruthApproximation;
  for (const auto& [pid, proc] : m.kernel().id_table()) {
    for (const auto& mod : proc->kernel_modules()) {
      out.resources.push_back(module_resource(pid, mod.path, mod.name));
      ++out.work.records_visited;
    }
  }
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> dump_module_scan(const kernel::KernelDump& dump) {
  ScanResult out;
  out.view_name = "kernel dump: module traversal";
  out.type = ResourceType::kModule;
  out.trust = TrustLevel::kTruth;
  for (const auto& p : dump.processes) {
    for (const auto& mod : p.kernel_modules) {
      out.resources.push_back(module_resource(p.pid, mod.path, mod.name));
      ++out.work.records_visited;
    }
  }
  out.normalize();
  return out;
}

}  // namespace gb::core
