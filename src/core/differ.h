// The cross-view differ — the paper's central mechanism.
//
// Given two snapshots of the same state taken at the same time from two
// points of view, anything present in the more-trusted view but absent
// from the less-trusted one is being hidden. (Contrast with Tripwire's
// cross-*time* diff, which compares different points in time and suffers
// legitimate-change false positives; cross-view diffs are nearly FP-free
// because "legitimate programs rarely hide".)
#pragma once

#include "core/scan_result.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::core {

/// One hidden (or anomalous extra) resource.
struct Finding {
  Resource resource;
  ResourceType type = ResourceType::kFile;
  std::string found_in;      // trusted view name
  std::string missing_from;  // untrusted view name
};

/// Result of diffing one resource type across two views.
struct DiffReport {
  ResourceType type = ResourceType::kFile;
  std::string high_view;
  std::string low_view;
  TrustLevel low_trust = TrustLevel::kTruthApproximation;

  /// In the trusted (low/outside) view but not the API view: hidden.
  std::vector<Finding> hidden;
  /// In the API view but not the trusted view. Normally empty; nonempty
  /// means the "truth" source itself was subverted (e.g. FU vs. the basic
  /// low-level scan) or state changed between snapshots.
  std::vector<Finding> extra;

  std::size_t high_count = 0;
  std::size_t low_count = 0;
  double simulated_seconds = 0;  // filled by the orchestrator

  double wall_seconds = 0;       // filled by the orchestrator

  /// OK for a complete diff. Non-OK means one contributing view failed
  /// (torn hive, scrubbed dump, trashed boot sector) and this diff is a
  /// degraded placeholder: hidden/extra are empty, counts cover only the
  /// views that completed, and `status` says what went wrong.
  support::Status status;

  [[nodiscard]] bool degraded() const { return !status.ok(); }
  [[nodiscard]] bool clean() const { return hidden.empty() && extra.empty(); }
};

/// The one shard cost model for every parallel differ (cross-view and
/// cross-time). Replaces the old per-session DiffPolicy knob: tuning
/// shard counts per scan bought nothing measurable, so the policy is now
/// a documented constant.
///
/// Cost model: partitioning costs one hash + pointer push per resource,
/// and the merge-back costs a sort of the findings. The linear serial
/// merge costs ~one comparison per resource. Sharding therefore only
/// pays once the per-resource work is amortized across enough input —
/// below kMinResources the partition overhead alone exceeds the whole
/// serial merge. Above it, one shard per executor plus one keeps every
/// worker busy while the caller participates; past kMaxShards the
/// per-shard fixed costs (task dispatch, span, output vector) dominate
/// any remaining parallelism on machines this project targets.
struct ShardPlan {
  /// Combined resource count below which the serial path is cheaper.
  static constexpr std::size_t kMinResources = 2048;
  /// Hard ceiling on shard fan-out.
  static constexpr std::size_t kMaxShards = 64;

  /// Shard count for a pool with `executors` workers: `requested` when
  /// nonzero, else executors + 1 (workers plus the participating
  /// caller), clamped to kMaxShards.
  [[nodiscard]] static std::size_t shards_for(std::size_t executors,
                                              std::size_t requested = 0);
};

/// Diffs a high (API) snapshot against a low (trusted) snapshot of the
/// same resource type. Both inputs must be normalized.
[[nodiscard]] DiffReport cross_view_diff(const ScanResult& high,
                                         const ScanResult& low);

/// Sharded variant: partitions both snapshots by a stable hash of the
/// resource key, set-intersects the shards on the pool, and merges the
/// shard outputs back into key order — byte-identical to the serial diff
/// at any worker or shard count. `shards` 0 picks one shard per executor.
/// Small inputs fall back to the serial merge (sharding would cost more
/// than it saves).
[[nodiscard]] DiffReport cross_view_diff(const ScanResult& high,
                                         const ScanResult& low,
                                         support::ThreadPool* pool,
                                         std::size_t shards = 0);

}  // namespace gb::core
