// The cross-view differ — the paper's central mechanism, generalized to
// N views.
//
// Given snapshots of the same state taken at the same time from several
// points of view, anything present in a more-trusted view but absent
// from the API view is being hidden. (Contrast with Tripwire's
// cross-*time* diff, which compares different points in time and suffers
// legitimate-change false positives; cross-view diffs are nearly FP-free
// because "legitimate programs rarely hide".)
//
// The differ builds a per-resource *presence matrix* over the view list:
// each finding records exactly which views saw the resource (found_in)
// and which did not (missing_from), so a three-way file check (API walk,
// directory-index walk, raw MFT scan) or a four-way process check
// (API, Active Process List, thread table, signature carve) reports not
// just "hidden" but *which layer the lie lives at*. The classic pairwise
// diff is the N == 2 special case.
#pragma once

#include "core/scan_result.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::core {

/// One hidden (or anomalous extra) resource. The view-id vectors list,
/// in view registration order, which views contained the resource and
/// which completed views did not — the row of the presence matrix that
/// produced the finding.
struct Finding {
  Resource resource;
  ResourceType type = ResourceType::kFile;
  std::vector<std::string> found_in;      // view ids that saw it
  std::vector<std::string> missing_from;  // completed view ids that did not
};

/// One view's contribution to an N-view diff. `result` is null when the
/// view failed (status then says why); views[0] is always the untrusted
/// API view and the rest are trusted views in registration order.
struct ViewInput {
  std::string id;  // short stable id findings reference ("api", "mft")
  TrustLevel trust = TrustLevel::kTruthApproximation;
  const ScanResult* result = nullptr;
  support::Status status;

  [[nodiscard]] bool ok() const { return result != nullptr && status.ok(); }
};

/// Per-view outcome embedded in a DiffReport (the "views" block of
/// schema v2.5).
struct ViewSummary {
  std::string id;
  std::string name;  // full view name; "(scan failed)" when degraded
  TrustLevel trust = TrustLevel::kTruthApproximation;
  std::size_t count = 0;
  support::Status status;

  [[nodiscard]] bool degraded() const { return !status.ok(); }
};

/// Result of diffing one resource type across N views.
struct DiffReport {
  ResourceType type = ResourceType::kFile;
  /// Every contributing view in registration order (API view first).
  std::vector<ViewSummary> views;
  /// Pairwise projection of `views`, kept for the classic two-view
  /// report surface: the API view's name and the *last completed*
  /// trusted view's name/trust (the deepest truth source that ran).
  std::string high_view;
  std::string low_view;
  TrustLevel low_trust = TrustLevel::kTruthApproximation;

  /// In at least one completed trusted view but not the API view: hidden.
  std::vector<Finding> hidden;
  /// In the API view but missing from at least one completed trusted
  /// view. Normally empty; nonempty means a "truth" source itself was
  /// subverted (e.g. FU vs. the basic low-level scan) or state changed
  /// between snapshots.
  std::vector<Finding> extra;

  std::size_t high_count = 0;
  std::size_t low_count = 0;
  double simulated_seconds = 0;  // filled by the orchestrator

  double wall_seconds = 0;       // filled by the orchestrator

  /// OK when every contributing view completed. Non-OK means at least
  /// one view failed (torn hive, scrubbed dump, trashed boot sector) and
  /// this diff is degraded: `status` carries the first failed trusted
  /// view's error (or the API view's, when only it failed). Findings
  /// cover only the views that completed — with no completed trusted
  /// view, or a failed API view, hidden/extra are empty placeholders.
  support::Status status;

  [[nodiscard]] bool degraded() const { return !status.ok(); }
  [[nodiscard]] bool clean() const { return hidden.empty() && extra.empty(); }
};

/// The one shard cost model for every parallel differ (cross-view and
/// cross-time). Replaces the old per-session DiffPolicy knob: tuning
/// shard counts per scan bought nothing measurable, so the policy is now
/// a documented constant.
///
/// Cost model: partitioning costs one hash + pointer push per resource,
/// and the merge-back costs a sort of the findings. The linear serial
/// merge costs ~one comparison per resource. Sharding therefore only
/// pays once the per-resource work is amortized across enough input —
/// below kMinResources the partition overhead alone exceeds the whole
/// serial merge. Above it, one shard per executor plus one keeps every
/// worker busy while the caller participates; past kMaxShards the
/// per-shard fixed costs (task dispatch, span, output vector) dominate
/// any remaining parallelism on machines this project targets.
struct ShardPlan {
  /// Combined resource count below which the serial path is cheaper.
  static constexpr std::size_t kMinResources = 2048;
  /// Hard ceiling on shard fan-out.
  static constexpr std::size_t kMaxShards = 64;

  /// Shard count for a pool with `executors` workers: `requested` when
  /// nonzero, else executors + 1 (workers plus the participating
  /// caller), clamped to kMaxShards.
  [[nodiscard]] static std::size_t shards_for(std::size_t executors,
                                              std::size_t requested = 0);
};

/// Diffs N views of one resource type into a presence matrix.
/// views[0] is the API view; the rest are trusted views in registration
/// order. Completed views' results must be normalized. With a pool and
/// enough combined input (ShardPlan), every view is partitioned by a
/// stable key hash and the shards merge concurrently — byte-identical to
/// the serial merge at any worker or shard count.
[[nodiscard]] DiffReport cross_view_matrix_diff(
    ResourceType type, const std::vector<ViewInput>& views,
    support::ThreadPool* pool = nullptr, std::size_t shards = 0);

/// Classic pairwise diff: the N == 2 matrix with view names as view ids.
/// Both inputs must be normalized.
[[nodiscard]] DiffReport cross_view_diff(const ScanResult& high,
                                         const ScanResult& low);

/// Sharded pairwise variant (see cross_view_matrix_diff).
[[nodiscard]] DiffReport cross_view_diff(const ScanResult& high,
                                         const ScanResult& low,
                                         support::ThreadPool* pool,
                                         std::size_t shards = 0);

}  // namespace gb::core
