#include "core/removal.h"

#include "ntfs/mft_scanner.h"
#include "support/strings.h"

namespace gb::core {

namespace {

/// Splits a canonical ASEP key "key|value|data-item" back into parts.
/// Safe because registry paths cannot contain '|'.
std::vector<std::string> split_asep_key(const std::string& key) {
  return split(key, '|');
}

}  // namespace

RemovalOutcome remove_ghostware(machine::Machine& m, const Report& report,
                                const ScanConfig& cfg) {
  RemovalOutcome outcome;
  auto& reg = m.registry();

  // 1. Delete every hidden ASEP hook. Writes go straight to the live
  // configuration manager: ghostware intercepts queries, not writes.
  for (const auto& f : report.all_hidden()) {
    if (f.type != ResourceType::kAsepHook) continue;
    const auto parts = split_asep_key(f.resource.key);
    if (parts.size() != 3) continue;
    const std::string& key_path = parts[0];
    const std::string& value_name = parts[1];
    const std::string& data_item = parts[2];
    bool removed = false;
    if (value_name.empty()) {
      removed = reg.delete_key(key_path);
    } else if (data_item.empty()) {
      removed = reg.delete_value(key_path, value_name);
    } else {
      // AppInit_DLLs-style: strip the item out of the value data.
      if (const hive::Value* v = reg.get_value(key_path, value_name)) {
        std::string rebuilt;
        for (const auto& tok : split(v->as_string(), ' ')) {
          if (tok.empty() || iequals(tok, data_item)) continue;
          if (!rebuilt.empty()) rebuilt.push_back(' ');
          rebuilt += tok;
        }
        reg.set_value(key_path, hive::Value::string(v->name, rebuilt));
        removed = true;
      }
    }
    if (removed) ++outcome.hooks_removed;
  }

  // 2. Reboot: auto-start guards fail, hooks are gone, files visible.
  m.reboot();
  outcome.rebooted = true;

  // 3. Delete the previously hidden files.
  for (const auto& f : report.all_hidden()) {
    if (f.type != ResourceType::kFile) continue;
    // The finding's display is the printable path; the canonical key is
    // already the folded full path, which the volume accepts directly.
    const std::string& path = f.resource.key;
    if (!m.volume().exists(path)) {
      // Index-orphaned (data-only hiding): the path does not resolve even
      // though the record exists. Locate it in the raw MFT, re-link it
      // into its directory, then delete normally.
      ntfs::MftScanner scanner(m.disk());
      if (const auto rec = scanner.find(path)) {
        m.volume().index_relink(*rec);
      }
    }
    if (!m.volume().exists(path)) continue;
    const auto info = m.volume().stat(path);
    if (info && info->is_directory) {
      m.volume().remove_recursive(path);
    } else {
      m.volume().remove(path);
    }
    ++outcome.files_deleted;
  }

  // 4. Verify.
  JobSpec verify_job;
  verify_job.kind = ScanKind::kInside;
  outcome.verification =
      std::move(ScanEngine(m, cfg).run(std::move(verify_job))).value();
  return outcome;
}

}  // namespace gb::core
