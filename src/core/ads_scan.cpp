#include "core/ads_scan.h"

#include "core/resource_scanner.h"
#include "ntfs/mft_scanner.h"
#include "support/strings.h"

namespace gb::core {

DiffReport ads_scan(disk::SectorDevice& dev,
                    const std::vector<std::string>& allowlist) {
  DiffReport report;
  report.type = ResourceType::kFile;
  report.high_view = "Win32 API (no stream enumeration exists)";
  report.low_view = "raw MFT named-$DATA walk";
  report.low_trust = TrustLevel::kTruthApproximation;
  report.high_count = 0;

  ntfs::MftScanner scanner(dev);
  for (const auto& f : scanner.scan()) {
    if (f.is_system) continue;
    for (const auto& stream : f.stream_names) {
      ++report.low_count;
      const bool allowed = [&] {
        for (const auto& ok : allowlist) {
          if (iequals(stream, ok)) return true;
        }
        return false;
      }();
      if (allowed) continue;
      const std::string full = "C:\\" + f.path + ":" + stream;
      Finding finding;
      finding.resource = Resource{file_key(full), printable(full)};
      finding.type = ResourceType::kFile;
      finding.found_in = {"mft-ads"};
      finding.missing_from = {kApiViewId};
      report.hidden.push_back(std::move(finding));
    }
  }
  ViewSummary api;
  api.id = kApiViewId;
  api.name = report.high_view;
  api.trust = TrustLevel::kApiView;
  ViewSummary low;
  low.id = "mft-ads";
  low.name = report.low_view;
  low.trust = report.low_trust;
  low.count = report.low_count;
  report.views = {std::move(api), std::move(low)};
  return report;
}

DiffReport ads_scan(machine::Machine& m,
                    const std::vector<std::string>& allowlist) {
  return ads_scan(m.disk(), allowlist);
}

}  // namespace gb::core
