#include "core/report_diff.h"

#include <cctype>
#include <map>
#include <sstream>
#include <utility>

#include "support/bytes.h"

namespace gb::core {

namespace {

/// Just enough of a JSON document model to walk a report: objects keep
/// only the fields a diff reads, but parsing is complete so a malformed
/// document is rejected rather than half-read.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> fields;

  [[nodiscard]] const JsonValue* field(const std::string& name) const {
    const auto it = fields.find(name);
    return it == fields.end() ? nullptr : &it->second;
  }
};

/// Recursive-descent parser over the whole document. Reports are
/// machine-emitted, so errors throw ParseError and the caller converts
/// the lot to one kCorrupt status.
class JsonParser {
 public:
  explicit JsonParser(const std::string& s) : s_(s) {}

  JsonValue parse_document() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw ParseError("trailing bytes after JSON value");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    skip_ws();
    if (pos_ >= s_.size()) throw ParseError("unexpected end of JSON");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) {
      throw ParseError(std::string("expected '") + c + "' in JSON");
    }
    ++pos_;
  }
  void literal(const char* word) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) {
        throw ParseError(std::string("bad literal, expected ") + word);
      }
    }
  }
  std::string string_lit() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) throw ParseError("unterminated JSON string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) throw ParseError("dangling escape");
      const char esc = s_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) throw ParseError("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else throw ParseError("bad hex digit in \\u escape");
          }
          // The report serializer only emits \u00XX; encode anything
          // larger as UTF-8 for completeness.
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
          }
          break;
        }
        default: throw ParseError("unknown escape in JSON string");
      }
    }
  }
  JsonValue value() {
    switch (peek()) {
      case '{': {
        ++pos_;
        JsonValue v;
        v.kind = JsonValue::Kind::kObject;
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          std::string name = string_lit();
          expect(':');
          v.fields.insert_or_assign(std::move(name), value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          return v;
        }
      }
      case '[': {
        ++pos_;
        JsonValue v;
        v.kind = JsonValue::Kind::kArray;
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.items.push_back(value());
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          return v;
        }
      }
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = string_lit();
        return v;
      }
      case 't': {
        literal("true");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        literal("false");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        return v;
      }
      case 'n': {
        literal("null");
        return JsonValue{};
      }
      default: {
        skip_ws();
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
                s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
                s_[pos_] == '+' || s_[pos_] == '-')) {
          ++pos_;
        }
        if (pos_ == start) throw ParseError("unexpected character in JSON");
        JsonValue v;
        v.kind = JsonValue::Kind::kNumber;
        v.number = std::stod(s_.substr(start, pos_ - start));
        return v;
      }
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

/// One hidden finding pulled out of a report, with the provenance the
/// delta prints.
struct Hidden {
  std::string type;
  std::string display;
  std::string found_in;      // the trusted view that saw it
  std::string missing_from;  // the API view it hid from
};

std::string field_str(const JsonValue& obj, const std::string& name) {
  const JsonValue* f = obj.field(name);
  return (f != nullptr && f->kind == JsonValue::Kind::kString) ? f->str
                                                               : std::string();
}

/// Joins a "found_in"/"missing_from" view-id array (schema v2.5) into
/// one printable token; empty when the field is absent (older schemas)
/// or not an array.
std::string join_ids(const JsonValue* arr) {
  if (arr == nullptr || arr->kind != JsonValue::Kind::kArray) return {};
  std::string out;
  for (const JsonValue& v : arr->items) {
    if (v.kind != JsonValue::Kind::kString) continue;
    if (!out.empty()) out += "+";
    out += v.str;
  }
  return out;
}

/// (type, key) -> finding. Ordered map: the delta lists entries in the
/// same type-then-key order regardless of input report layout.
using HiddenMap = std::map<std::pair<std::string, std::string>, Hidden>;

support::StatusOr<std::pair<std::string, HiddenMap>> extract_hidden(
    const std::string& json) {
  JsonValue doc;
  try {
    doc = JsonParser(json).parse_document();
  } catch (const ParseError& e) {
    return support::Status::corrupt(std::string("report is not valid JSON: ") +
                                    e.what());
  } catch (const std::exception& e) {
    return support::Status::corrupt(std::string("report is not valid JSON: ") +
                                    e.what());
  }
  if (doc.kind != JsonValue::Kind::kObject) {
    return support::Status::corrupt("report JSON is not an object");
  }
  const JsonValue* diffs = doc.field("diffs");
  if (diffs == nullptr || diffs->kind != JsonValue::Kind::kArray) {
    return support::Status::corrupt("report JSON has no \"diffs\" array");
  }
  HiddenMap out;
  for (const JsonValue& d : diffs->items) {
    if (d.kind != JsonValue::Kind::kObject) continue;
    const std::string type = field_str(d, "type");
    const std::string low_view = field_str(d, "low_view");
    const std::string high_view = field_str(d, "high_view");
    const JsonValue* hidden = d.field("hidden");
    if (hidden == nullptr || hidden->kind != JsonValue::Kind::kArray) continue;
    for (const JsonValue& h : hidden->items) {
      if (h.kind != JsonValue::Kind::kObject) continue;
      Hidden entry{type, field_str(h, "display"), low_view, high_view};
      // Schema v2.5 carries per-finding view-id sets; prefer those over
      // the per-diff pairwise projection (the only provenance v2.4 and
      // earlier reports have).
      const std::string in = join_ids(h.field("found_in"));
      const std::string from = join_ids(h.field("missing_from"));
      if (!in.empty()) entry.found_in = in;
      if (!from.empty()) entry.missing_from = from;
      out.insert_or_assign({type, field_str(h, "key")}, std::move(entry));
    }
  }
  return std::make_pair(field_str(doc, "schema_version"), std::move(out));
}

}  // namespace

std::string ReportDelta::to_string() const {
  std::ostringstream os;
  os << "report drift (A=v" << version_a << ", B=v" << version_b
     << "): " << added.size() << " added, " << removed.size() << " removed, "
     << changed.size() << " changed\n";
  for (const auto& e : added) {
    os << "  + [" << e.type << "] " << e.display << " (" << e.detail << ")\n";
  }
  for (const auto& e : removed) {
    os << "  - [" << e.type << "] " << e.display << " (" << e.detail << ")\n";
  }
  for (const auto& e : changed) {
    os << "  ~ [" << e.type << "] " << e.display << " (" << e.detail << ")\n";
  }
  if (!drift()) os << "  (no drift in hidden findings)\n";
  return os.str();
}

support::StatusOr<ReportDelta> diff_reports_json(const std::string& a_json,
                                                 const std::string& b_json) {
  auto a = extract_hidden(a_json);
  if (!a.ok()) return a.status();
  auto b = extract_hidden(b_json);
  if (!b.ok()) return b.status();

  ReportDelta delta;
  delta.version_a = a->first;
  delta.version_b = b->first;
  for (const auto& [id, entry] : b->second) {
    const auto it = a->second.find(id);
    if (it == a->second.end()) {
      delta.added.push_back({entry.type, id.second, entry.display,
                             "found in " + entry.found_in +
                                 ", missing from " + entry.missing_from});
    } else if (it->second.display != entry.display) {
      delta.changed.push_back(
          {entry.type, id.second, entry.display, "was: " + it->second.display});
    }
  }
  for (const auto& [id, entry] : a->second) {
    if (!b->second.contains(id)) {
      delta.removed.push_back({entry.type, id.second, entry.display,
                               "was found in " + entry.found_in});
    }
  }
  return delta;
}

}  // namespace gb::core
