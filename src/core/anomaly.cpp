#include "core/anomaly.h"

#include <sstream>

namespace gb::core {

AnomalyAssessment assess_anomaly(const std::vector<DiffReport>& diffs,
                                 std::size_t mass_threshold) {
  AnomalyAssessment a;
  for (const auto& d : diffs) {
    switch (d.type) {
      case ResourceType::kFile: a.hidden_files += d.hidden.size(); break;
      case ResourceType::kAsepHook: a.hidden_hooks += d.hidden.size(); break;
      case ResourceType::kProcess:
        a.hidden_processes += d.hidden.size();
        break;
      case ResourceType::kModule: break;
    }
  }
  a.mass_hiding = a.hidden_files >= mass_threshold;
  std::ostringstream os;
  if (a.mass_hiding) {
    os << "SERIOUS ANOMALY: " << a.hidden_files
       << " hidden files — mass hiding cannot make a machine look clean";
  } else if (a.hidden_files + a.hidden_hooks + a.hidden_processes > 0) {
    os << "hidden resources present (files=" << a.hidden_files
       << " hooks=" << a.hidden_hooks << " processes=" << a.hidden_processes
       << ")";
  } else {
    os << "no hiding detected";
  }
  a.summary = os.str();
  return a;
}

}  // namespace gb::core
