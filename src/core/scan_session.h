// Internals of the incremental ScanSession (public API: scan_engine.h).
//
// VolumeSnapshotStore is the persistent state a session carries between
// scans: the content-addressed MFT snapshot, a content-addressed cache
// of parsed hive payloads, and the change-journal cursor vouching for
// them. sync_session() is the serial step at the head of every rescan
// that brings the store up to date (journal replay or full-walk
// fallback); the session-aware low scans in file_scans/registry_scans
// then splice from it instead of re-parsing the volume.
//
// This header is internal to gb_core (the engine, the spliced scans and
// the tests include it); external callers see only ScanSession.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "core/scan_engine.h"
#include "hive/hive.h"
#include "machine/machine.h"
#include "ntfs/snapshot.h"
#include "support/status.h"

namespace gb::core {

/// One parsed hive payload, keyed in VolumeSnapshotStore::hives by the
/// FNV-1a digest of the raw payload bytes. A hive flush that rewrites
/// identical bytes (the common no-change case) re-uses the parse.
struct CachedHiveParse {
  std::string name;  // base-block hive name, kept for serialization
  hive::Key tree;
};

/// Everything a session persists between scans. Content-addressed: MFT
/// slots and hive parses are keyed by digests of the raw bytes they were
/// parsed from, so splicing is valid exactly when the bytes match.
struct VolumeSnapshotStore {
  ntfs::MftSnapshot mft;
  std::map<std::uint64_t, CachedHiveParse> hives;

  /// Journal incarnation + cursor as of the last sync. Valid only while
  /// `primed` — a fresh store scans cold.
  std::uint64_t journal_id = 0;
  std::uint64_t cursor = 0;
  bool primed = false;

  void serialize(ByteWriter& w) const;
  [[nodiscard]] static support::StatusOr<VolumeSnapshotStore> deserialize(
      ByteReader& r);
  [[nodiscard]] support::Status save(const std::string& path) const;
  [[nodiscard]] static support::StatusOr<VolumeSnapshotStore> load(
      const std::string& path);
};

namespace internal {

struct SessionState {
  SessionSpec spec;
  VolumeSnapshotStore store;
  /// Provenance of the most recent sync (what rescan() stamps into the
  /// report's "incremental" block).
  IncrementalStats last;
};

}  // namespace internal

/// Brings `s.store` up to date with the machine's volume, preferring the
/// journal-guided partial refresh and falling back to a full capture when
/// the journal cannot vouch for the snapshot (cold start, journal
/// reset/wrap, digest mismatch under verify_spliced). Fills `s.last`.
/// Runs serially — the engine calls it after the hive flush and before
/// any scan task, so the store never changes mid-scan.
void sync_session(machine::Machine& m, internal::SessionState& s);

}  // namespace gb::core
