#include "core/differ.h"

#include <stdexcept>

namespace gb::core {

DiffReport cross_view_diff(const ScanResult& high, const ScanResult& low) {
  if (high.type != low.type) {
    throw std::invalid_argument("cross_view_diff: resource type mismatch");
  }
  DiffReport report;
  report.type = high.type;
  report.high_view = high.view_name;
  report.low_view = low.view_name;
  report.low_trust = low.trust;
  report.high_count = high.resources.size();
  report.low_count = low.resources.size();

  // Single linear merge over the two sorted snapshots.
  std::size_t i = 0, j = 0;
  while (i < high.resources.size() || j < low.resources.size()) {
    if (j == low.resources.size() ||
        (i < high.resources.size() &&
         high.resources[i].key < low.resources[j].key)) {
      report.extra.push_back(Finding{high.resources[i], high.type,
                                     high.view_name, low.view_name});
      ++i;
    } else if (i == high.resources.size() ||
               low.resources[j].key < high.resources[i].key) {
      report.hidden.push_back(Finding{low.resources[j], low.type,
                                      low.view_name, high.view_name});
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return report;
}

}  // namespace gb::core
