#include "core/differ.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace gb::core {

namespace {

constexpr std::string_view kFailedViewName = "(scan failed)";

/// FNV-1a: stable across runs and platforms, unlike std::hash — the
/// shard assignment is part of the deterministic contract.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// One completed view's contribution to a merge: its short id plus the
/// (sorted) entries it saw. mv[0] is always the API view.
struct MergeView {
  const std::string* id = nullptr;
  std::vector<const Resource*> entries;
};

/// The k-way linear merge at the heart of the matrix differ. Walks all
/// completed views' sorted entry lists in lock-step; for each distinct
/// key it materializes the presence row and classifies:
///   - absent from the API view, present in >= 1 trusted view -> hidden;
///   - present in the API view, absent from >= 1 trusted view -> extra.
/// Emits findings in ascending key order. Only ever called with the API
/// view completed and at least one trusted view completed.
void merge_views(ResourceType type, const std::vector<MergeView>& mv,
                 std::vector<Finding>& hidden, std::vector<Finding>& extra) {
  std::vector<std::size_t> pos(mv.size(), 0);
  for (;;) {
    const std::string* min_key = nullptr;
    for (std::size_t v = 0; v < mv.size(); ++v) {
      if (pos[v] >= mv[v].entries.size()) continue;
      const std::string& k = mv[v].entries[pos[v]]->key;
      if (min_key == nullptr || k < *min_key) min_key = &k;
    }
    if (min_key == nullptr) break;

    bool in_api = false;
    const Resource* api_res = nullptr;
    const Resource* first_trusted_res = nullptr;
    std::vector<std::string> containing;  // trusted ids that saw the key
    std::vector<std::string> missing;     // trusted ids that did not
    for (std::size_t v = 0; v < mv.size(); ++v) {
      const bool has = pos[v] < mv[v].entries.size() &&
                       mv[v].entries[pos[v]]->key == *min_key;
      if (v == 0) {
        in_api = has;
        if (has) api_res = mv[v].entries[pos[v]];
      } else if (has) {
        if (first_trusted_res == nullptr) {
          first_trusted_res = mv[v].entries[pos[v]];
        }
        containing.push_back(*mv[v].id);
      } else {
        missing.push_back(*mv[v].id);
      }
      if (has) ++pos[v];
    }

    if (!in_api && first_trusted_res != nullptr) {
      Finding f;
      f.resource = *first_trusted_res;
      f.type = type;
      f.found_in = std::move(containing);
      f.missing_from.reserve(1 + missing.size());
      f.missing_from.push_back(*mv[0].id);
      f.missing_from.insert(f.missing_from.end(), missing.begin(),
                            missing.end());
      hidden.push_back(std::move(f));
    } else if (in_api && !missing.empty()) {
      Finding f;
      f.resource = *api_res;
      f.type = type;
      f.found_in.reserve(1 + containing.size());
      f.found_in.push_back(*mv[0].id);
      f.found_in.insert(f.found_in.end(), containing.begin(),
                        containing.end());
      f.missing_from = std::move(missing);
      extra.push_back(std::move(f));
    }
  }
}

}  // namespace

std::size_t ShardPlan::shards_for(std::size_t executors,
                                  std::size_t requested) {
  const std::size_t n = requested == 0 ? executors + 1 : requested;
  return std::min(n, kMaxShards);
}

DiffReport cross_view_matrix_diff(ResourceType type,
                                  const std::vector<ViewInput>& views,
                                  support::ThreadPool* pool,
                                  std::size_t shards) {
  if (views.empty()) {
    throw std::invalid_argument(
        "cross_view_matrix_diff: needs at least the API view");
  }
  DiffReport report;
  report.type = type;
  std::size_t total = 0;
  for (const auto& v : views) {
    if (v.ok() && v.result->type != type) {
      throw std::invalid_argument(
          "cross_view_matrix_diff: resource type mismatch");
    }
    ViewSummary s;
    s.id = v.id;
    s.trust = v.trust;
    if (v.ok()) {
      s.name = v.result->view_name;
      s.count = v.result->resources.size();
      s.status = v.status;
      total += s.count;
    } else {
      s.name = std::string(kFailedViewName);
      // A null result with an OK status is a caller bug; never let it
      // masquerade as a completed view.
      s.status = v.status.ok()
                     ? support::Status::internal("view produced no result")
                     : v.status;
    }
    report.views.push_back(std::move(s));
  }

  // Pairwise projection: the API view vs. the *last* completed trusted
  // view — the deepest truth source that ran.
  const ViewInput& api = views[0];
  report.high_view = report.views[0].name;
  report.high_count = report.views[0].count;
  const ViewInput* low = nullptr;
  for (std::size_t v = views.size(); v-- > 1;) {
    if (views[v].ok()) {
      low = &views[v];
      break;
    }
  }
  if (low != nullptr) {
    report.low_view = low->result->view_name;
    report.low_trust = low->trust;
    report.low_count = low->result->resources.size();
  } else {
    report.low_view = std::string(kFailedViewName);
  }

  // Degradation: the first failed trusted view wins (registration
  // order), then a failed API view. Matches the pairwise rule
  // `low.ok() ? high.status() : low.status()`.
  for (std::size_t v = 1; v < views.size(); ++v) {
    if (!views[v].ok()) {
      report.status = report.views[v].status;
      break;
    }
  }
  if (report.status.ok() && !api.ok()) report.status = report.views[0].status;

  // Findings need the API view and at least one trusted view to have
  // completed; the surviving views still produce evidence when another
  // trusted view failed (the diff is degraded *and* has findings).
  if (!api.ok() || low == nullptr) return report;

  std::vector<MergeView> mv;
  mv.reserve(views.size());
  for (const auto& v : views) {
    if (!v.ok()) continue;
    MergeView m;
    m.id = &v.id;
    m.entries.reserve(v.result->resources.size());
    for (const auto& r : v.result->resources) m.entries.push_back(&r);
    mv.push_back(std::move(m));
  }

  const std::size_t want =
      (pool != nullptr && pool->size() > 0 && total >= ShardPlan::kMinResources)
          ? ShardPlan::shards_for(pool->size(), shards)
          : 1;
  if (want <= 1) {
    auto span = obs::default_tracer().span("diff.merge", "diff");
    span.arg("views", std::to_string(mv.size()));
    span.arg("total", std::to_string(total));
    merge_views(type, mv, report.hidden, report.extra);
    return report;
  }

  // Partition every (sorted) view by key hash. Within a shard the
  // subsequences stay sorted, so each shard runs the same k-way merge
  // as the serial path; shard assignment depends only on the key, never
  // on the worker count.
  std::vector<std::vector<MergeView>> shard_views(want);
  for (auto& sv : shard_views) {
    sv.resize(mv.size());
    for (std::size_t v = 0; v < mv.size(); ++v) sv[v].id = mv[v].id;
  }
  for (std::size_t v = 0; v < mv.size(); ++v) {
    for (const Resource* r : mv[v].entries) {
      shard_views[fnv1a(r->key) % want][v].entries.push_back(r);
    }
  }

  struct ShardOut {
    std::vector<Finding> hidden;
    std::vector<Finding> extra;
  };
  std::vector<ShardOut> outs(want);
  pool->parallel_for(want, [&](std::size_t s) {
    auto span = obs::default_tracer().span("diff.shard", "diff");
    span.arg("shard", std::to_string(s));
    merge_views(type, shard_views[s], outs[s].hidden, outs[s].extra);
  });

  for (auto& o : outs) {
    std::move(o.hidden.begin(), o.hidden.end(),
              std::back_inserter(report.hidden));
    std::move(o.extra.begin(), o.extra.end(),
              std::back_inserter(report.extra));
  }
  // Back into key order: exactly the order the serial merge emits
  // (normalized inputs have unique keys, so the order is total).
  auto by_key = [](const Finding& a, const Finding& b) {
    return a.resource.key < b.resource.key;
  };
  std::sort(report.hidden.begin(), report.hidden.end(), by_key);
  std::sort(report.extra.begin(), report.extra.end(), by_key);
  return report;
}

DiffReport cross_view_diff(const ScanResult& high, const ScanResult& low) {
  return cross_view_diff(high, low, nullptr, 0);
}

DiffReport cross_view_diff(const ScanResult& high, const ScanResult& low,
                           support::ThreadPool* pool, std::size_t shards) {
  if (high.type != low.type) {
    throw std::invalid_argument("cross_view_diff: resource type mismatch");
  }
  std::vector<ViewInput> views(2);
  views[0].id = high.view_name;
  views[0].trust = high.trust;
  views[0].result = &high;
  views[1].id = low.view_name;
  views[1].trust = low.trust;
  views[1].result = &low;
  return cross_view_matrix_diff(high.type, views, pool, shards);
}

}  // namespace gb::core
