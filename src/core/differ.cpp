#include "core/differ.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/trace.h"

namespace gb::core {

DiffReport cross_view_diff(const ScanResult& high, const ScanResult& low) {
  if (high.type != low.type) {
    throw std::invalid_argument("cross_view_diff: resource type mismatch");
  }
  auto span = obs::default_tracer().span("diff.merge", "diff");
  span.arg("high", std::to_string(high.resources.size()));
  span.arg("low", std::to_string(low.resources.size()));
  DiffReport report;
  report.type = high.type;
  report.high_view = high.view_name;
  report.low_view = low.view_name;
  report.low_trust = low.trust;
  report.high_count = high.resources.size();
  report.low_count = low.resources.size();

  // Single linear merge over the two sorted snapshots.
  std::size_t i = 0, j = 0;
  while (i < high.resources.size() || j < low.resources.size()) {
    if (j == low.resources.size() ||
        (i < high.resources.size() &&
         high.resources[i].key < low.resources[j].key)) {
      report.extra.push_back(Finding{high.resources[i], high.type,
                                     high.view_name, low.view_name});
      ++i;
    } else if (i == high.resources.size() ||
               low.resources[j].key < high.resources[i].key) {
      report.hidden.push_back(Finding{low.resources[j], low.type,
                                      low.view_name, high.view_name});
      ++j;
    } else {
      ++i;
      ++j;
    }
  }
  return report;
}

namespace {

/// FNV-1a: stable across runs and platforms, unlike std::hash — the
/// shard assignment is part of the deterministic contract.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::size_t ShardPlan::shards_for(std::size_t executors,
                                  std::size_t requested) {
  const std::size_t n = requested == 0 ? executors + 1 : requested;
  return std::min(n, kMaxShards);
}

DiffReport cross_view_diff(const ScanResult& high, const ScanResult& low,
                           support::ThreadPool* pool, std::size_t shards) {
  const std::size_t total = high.resources.size() + low.resources.size();
  if (!pool || pool->size() == 0 || total < ShardPlan::kMinResources) {
    return cross_view_diff(high, low);
  }
  if (high.type != low.type) {
    throw std::invalid_argument("cross_view_diff: resource type mismatch");
  }
  shards = ShardPlan::shards_for(pool->size(), shards);
  if (shards <= 1) return cross_view_diff(high, low);

  // Partition each (sorted) snapshot by key hash. Within a shard the
  // subsequences stay sorted, so each shard runs the same linear merge
  // as the serial path.
  std::vector<std::vector<const Resource*>> high_parts(shards);
  std::vector<std::vector<const Resource*>> low_parts(shards);
  for (const auto& r : high.resources) {
    high_parts[fnv1a(r.key) % shards].push_back(&r);
  }
  for (const auto& r : low.resources) {
    low_parts[fnv1a(r.key) % shards].push_back(&r);
  }

  struct ShardOut {
    std::vector<Finding> hidden;
    std::vector<Finding> extra;
  };
  std::vector<ShardOut> outs(shards);
  pool->parallel_for(shards, [&](std::size_t s) {
    auto span = obs::default_tracer().span("diff.shard", "diff");
    span.arg("shard", std::to_string(s));
    const auto& hs = high_parts[s];
    const auto& ls = low_parts[s];
    ShardOut& out = outs[s];
    std::size_t i = 0, j = 0;
    while (i < hs.size() || j < ls.size()) {
      if (j == ls.size() ||
          (i < hs.size() && hs[i]->key < ls[j]->key)) {
        out.extra.push_back(
            Finding{*hs[i], high.type, high.view_name, low.view_name});
        ++i;
      } else if (i == hs.size() || ls[j]->key < hs[i]->key) {
        out.hidden.push_back(
            Finding{*ls[j], low.type, low.view_name, high.view_name});
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
  });

  DiffReport report;
  report.type = high.type;
  report.high_view = high.view_name;
  report.low_view = low.view_name;
  report.low_trust = low.trust;
  report.high_count = high.resources.size();
  report.low_count = low.resources.size();
  for (auto& o : outs) {
    std::move(o.hidden.begin(), o.hidden.end(),
              std::back_inserter(report.hidden));
    std::move(o.extra.begin(), o.extra.end(),
              std::back_inserter(report.extra));
  }
  // Back into key order: exactly the order the serial merge emits
  // (normalized inputs have unique keys, so the order is total).
  auto by_key = [](const Finding& a, const Finding& b) {
    return a.resource.key < b.resource.key;
  };
  std::sort(report.hidden.begin(), report.hidden.end(), by_key);
  std::sort(report.extra.begin(), report.extra.end(), by_key);
  return report;
}

}  // namespace gb::core
