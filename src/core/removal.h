// Ghostware removal workflow (Section 3 / Section 6).
//
// "Detection of hidden ASEP hooks is particularly useful for ghostware
// removal: it locates the Registry keys that can be deleted to disable
// the ghostware after a reboot ... the user can locate and remove those
// files once the machine is rebooted and those files are no longer
// hidden." The Hacker Defender walkthrough in Section 6 is exactly:
// detect (seconds) -> delete hooks -> reboot -> delete now-visible files.
#pragma once

#include "core/scan_engine.h"

namespace gb::core {

struct RemovalOutcome {
  std::size_t hooks_removed = 0;
  std::size_t files_deleted = 0;
  bool rebooted = false;
  /// Post-removal verification scan.
  Report verification;
  bool clean() const { return !verification.infection_detected(); }
};

/// Deletes the hidden ASEP hooks named in `report`, reboots (disabling
/// the ghostware, whose auto-start guard no longer holds), deletes the
/// previously hidden files (now visible), and re-runs an inside scan to
/// verify. `cfg` controls the verification scan.
RemovalOutcome remove_ghostware(machine::Machine& m, const Report& report,
                                const ScanConfig& cfg = {});

}  // namespace gb::core
