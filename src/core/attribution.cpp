#include "core/attribution.h"

#include <algorithm>
#include <sstream>

#include "support/strings.h"
#include "winapi/api_env.h"

namespace gb::core {

namespace {

/// Does an interception at `api` sit on the query path for `type`?
bool api_matches_type(const std::string& api, ResourceType type) {
  switch (type) {
    case ResourceType::kFile:
      return icontains(api, "FindFirst") || icontains(api, "DirectoryFile") ||
             icontains(api, "IRP_MJ_DIRECTORY");
    case ResourceType::kAsepHook:
      return icontains(api, "RegEnum") || icontains(api, "EnumerateKey") ||
             icontains(api, "EnumerateValue");
    case ResourceType::kProcess:
      return icontains(api, "QuerySystemInformation") ||
             icontains(api, "Process32");
    case ResourceType::kModule:
      return icontains(api, "QueryInformationProcess") ||
             icontains(api, "Module32");
  }
  return false;
}

void push_unique(std::vector<std::string>& v, const std::string& s) {
  if (std::find(v.begin(), v.end(), s) == v.end()) v.push_back(s);
}

void push_unique(std::vector<HookType>& v, HookType t) {
  if (std::find(v.begin(), v.end(), t) == v.end()) v.push_back(t);
}

}  // namespace

AttributionReport attribute_findings(
    machine::Machine& m, const Report& report,
    const std::vector<std::string>& allowlist) {
  AttributionReport out;
  out.interceptions = suspicious_hooks(m, allowlist);

  for (const auto& f : report.all_hidden()) {
    AttributedFinding af;
    af.finding = f;
    for (const auto& hook : out.interceptions) {
      if (!api_matches_type(hook.info.api, f.type)) continue;
      push_unique(af.suspected_owners, hook.info.owner);
      push_unique(af.techniques, hook.info.type);
    }
    out.findings.push_back(std::move(af));
  }
  return out;
}

std::string AttributionReport::to_string() const {
  std::ostringstream os;
  os << "=== attribution ===\n";
  for (const auto& af : findings) {
    os << resource_type_name(af.finding.type) << " "
       << af.finding.resource.display << "\n";
    if (af.suspected_owners.empty()) {
      os << "    no interception on this query path — data-structure "
            "manipulation (DKOM/PEB) or artifact visible only to the "
            "trusted view\n";
      continue;
    }
    os << "    suspects:";
    for (const auto& owner : af.suspected_owners) os << " " << owner;
    os << "  via";
    for (const auto t : af.techniques) os << " " << hook_type_name(t);
    os << "\n";
  }
  return os.str();
}

}  // namespace gb::core
