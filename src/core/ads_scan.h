// Alternate Data Stream hunting — the paper's named future-work item.
//
// "Stealth software may hide their persistent state in a form for which
// current OS does not provide query/enumeration APIs ... Alternate Data
// Streams (ADS)." There is no high-level view to diff against: the Win32
// surface simply cannot enumerate streams. The cross-view framework
// still applies — the "API view" of the stream namespace is the empty
// set, so every stream the raw MFT shows is a finding (minus a small
// allowlist of streams legitimate software writes, like the IE
// Zone.Identifier tag).
#pragma once

#include "core/differ.h"
#include "disk/disk.h"
#include "machine/machine.h"

namespace gb::core {

/// Scans the raw MFT for alternate data streams. Works on a live machine
/// or (overload) a powered-off disk, exactly like the low-level file
/// scan.
DiffReport ads_scan(machine::Machine& m,
                    const std::vector<std::string>& allowlist = {
                        "Zone.Identifier"});
DiffReport ads_scan(disk::SectorDevice& dev,
                    const std::vector<std::string>& allowlist = {
                        "Zone.Identifier"});

}  // namespace gb::core
