#include "core/cross_time.h"

#include <optional>

#include "core/differ.h"
#include "hive/hive.h"
#include "ntfs/mft_scanner.h"
#include "registry/aseps.h"
#include "support/strings.h"

namespace gb::core {

namespace {

/// FNV-1a over bytes — a stand-in for Tripwire's cryptographic digests
/// (collision resistance is irrelevant to the noise comparison).
std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

void hash_registry_tree(const hive::Key& key, const std::string& prefix,
                        std::map<std::string, std::uint64_t>& out) {
  for (const auto& v : key.values) {
    out[fold_case(prefix + "|" + v.name)] = fnv1a(v.data);
  }
  for (const auto& sub : key.subkeys) {
    hash_registry_tree(sub, prefix + "\\" + sub.name, out);
  }
}

}  // namespace

Checkpoint take_checkpoint(machine::Machine& m) {
  Checkpoint cp;
  cp.taken_at = m.clock().now();

  m.flush_registry();
  ntfs::MftScanner scanner(m.disk());
  for (const auto& f : scanner.scan()) {
    if (f.is_system) continue;
    Checkpoint::FileEntry e;
    e.size = f.size;
    e.is_directory = f.is_directory;
    if (!f.is_directory) {
      e.content_hash = fnv1a(scanner.read_file_data(f.record));
    }
    cp.files[fold_case("C:\\" + f.path)] = e;
  }
  for (const auto& mount : registry::standard_hive_mounts()) {
    const auto rec = scanner.find(mount.backing_file);
    if (!rec) continue;
    const auto tree = hive::parse_hive(scanner.read_file_data(*rec));
    hash_registry_tree(tree, mount.mount, cp.registry);
  }
  return cp;
}

std::size_t CrossTimeDiff::added() const {
  std::size_t n = 0;
  for (const auto& c : changes) n += c.kind == ChangeKind::kAdded;
  return n;
}
std::size_t CrossTimeDiff::removed() const {
  std::size_t n = 0;
  for (const auto& c : changes) n += c.kind == ChangeKind::kRemoved;
  return n;
}
std::size_t CrossTimeDiff::modified() const {
  std::size_t n = 0;
  for (const auto& c : changes) n += c.kind == ChangeKind::kModified;
  return n;
}

CrossTimeDiff cross_time_diff(const Checkpoint& before,
                              const Checkpoint& after) {
  CrossTimeDiff diff;
  for (const auto& [path, entry] : after.files) {
    const auto it = before.files.find(path);
    if (it == before.files.end()) {
      diff.changes.push_back({ChangeKind::kAdded, path, false});
    } else if (!(it->second == entry)) {
      diff.changes.push_back({ChangeKind::kModified, path, false});
    }
  }
  for (const auto& [path, entry] : before.files) {
    if (!after.files.contains(path)) {
      diff.changes.push_back({ChangeKind::kRemoved, path, false});
    }
  }
  for (const auto& [key, hash] : after.registry) {
    const auto it = before.registry.find(key);
    if (it == before.registry.end()) {
      diff.changes.push_back({ChangeKind::kAdded, key, true});
    } else if (it->second != hash) {
      diff.changes.push_back({ChangeKind::kModified, key, true});
    }
  }
  for (const auto& [key, hash] : before.registry) {
    if (!after.registry.contains(key)) {
      diff.changes.push_back({ChangeKind::kRemoved, key, true});
    }
  }
  return diff;
}

namespace {

/// One comparison pass over a sorted map, split into `shards` contiguous
/// index ranges. Each range classifies its items in key order and the
/// range outputs concatenate in range order — exactly the serial
/// emission order for that pass.
template <typename V, typename Fn>
void sharded_pass(const std::map<std::string, V>& m, std::size_t shards,
                  support::ThreadPool& pool, Fn classify,
                  std::vector<Change>& out) {
  std::vector<const std::pair<const std::string, V>*> items;
  items.reserve(m.size());
  for (const auto& kv : m) items.push_back(&kv);
  std::vector<std::vector<Change>> parts(shards);
  pool.parallel_for(shards, [&](std::size_t s) {
    const std::size_t begin = items.size() * s / shards;
    const std::size_t end = items.size() * (s + 1) / shards;
    for (std::size_t i = begin; i < end; ++i) {
      if (auto c = classify(items[i]->first, items[i]->second)) {
        parts[s].push_back(std::move(*c));
      }
    }
  });
  for (auto& p : parts) {
    out.insert(out.end(), std::make_move_iterator(p.begin()),
               std::make_move_iterator(p.end()));
  }
}

}  // namespace

CrossTimeDiff cross_time_diff(const Checkpoint& before,
                              const Checkpoint& after,
                              support::ThreadPool* pool, std::size_t shards) {
  const std::size_t total = before.size() + after.size();
  if (!pool || pool->size() == 0 || total < ShardPlan::kMinResources) {
    return cross_time_diff(before, after);
  }
  shards = ShardPlan::shards_for(pool->size(), shards);
  if (shards <= 1) return cross_time_diff(before, after);

  CrossTimeDiff diff;
  sharded_pass(
      after.files, shards, *pool,
      [&](const std::string& path,
          const Checkpoint::FileEntry& entry) -> std::optional<Change> {
        const auto it = before.files.find(path);
        if (it == before.files.end()) {
          return Change{ChangeKind::kAdded, path, false};
        }
        if (!(it->second == entry)) {
          return Change{ChangeKind::kModified, path, false};
        }
        return std::nullopt;
      },
      diff.changes);
  sharded_pass(
      before.files, shards, *pool,
      [&](const std::string& path,
          const Checkpoint::FileEntry&) -> std::optional<Change> {
        if (!after.files.contains(path)) {
          return Change{ChangeKind::kRemoved, path, false};
        }
        return std::nullopt;
      },
      diff.changes);
  sharded_pass(
      after.registry, shards, *pool,
      [&](const std::string& key,
          const std::uint64_t& hash) -> std::optional<Change> {
        const auto it = before.registry.find(key);
        if (it == before.registry.end()) {
          return Change{ChangeKind::kAdded, key, true};
        }
        if (it->second != hash) {
          return Change{ChangeKind::kModified, key, true};
        }
        return std::nullopt;
      },
      diff.changes);
  sharded_pass(
      before.registry, shards, *pool,
      [&](const std::string& key,
          const std::uint64_t&) -> std::optional<Change> {
        if (!after.registry.contains(key)) {
          return Change{ChangeKind::kRemoved, key, true};
        }
        return std::nullopt;
      },
      diff.changes);
  return diff;
}

std::vector<Change> filter_noise(const std::vector<Change>& changes,
                                 const std::vector<std::string>& patterns) {
  std::vector<Change> out;
  for (const auto& c : changes) {
    bool noisy = false;
    for (const auto& pat : patterns) {
      if (glob_match(pat, c.what)) {
        noisy = true;
        break;
      }
    }
    if (!noisy) out.push_back(c);
  }
  return out;
}

const std::vector<std::string>& default_noise_patterns() {
  static const std::vector<std::string> kPatterns = {
      "*\\prefetch\\*",   "*\\temp\\*",       "*\\restore\\*",
      "*.log",            "*\\temporary internet files\\*",
      "*\\ccm\\*",        "*|wordwrap",       "*index.dat",
  };
  return kPatterns;
}

}  // namespace gb::core
