#include "core/registry_scans.h"

#include <functional>

#include "core/scan_session.h"
#include "hive/hive.h"
#include "ntfs/mft_scanner.h"
#include "obs/trace.h"
#include "registry/aseps.h"
#include "support/strings.h"

namespace gb::core {

namespace {

/// View-independent ASEP walk: callers supply how to enumerate subkeys
/// and values of a key, and the walk converts the catalogue's hooks to
/// canonical resources. Using the same extraction for every view
/// guarantees key-for-key comparability.
struct AsepFetchers {
  std::function<std::vector<std::string>(const std::string& key)> subkeys;
  // (counted name, data-as-string) pairs
  std::function<std::vector<std::pair<std::string, std::string>>(
      const std::string& key)>
      values;
};

std::string find_value_data(const AsepFetchers& f, const std::string& key,
                            std::string_view name) {
  for (const auto& [n, data] : f.values(key)) {
    if (iequals(n, name)) return data;
  }
  return {};
}

void extract_asep_hooks(const AsepFetchers& f, ScanResult& out) {
  for (const auto& asep : registry::standard_aseps()) {
    switch (asep.kind) {
      case registry::AsepKind::kValues:
        for (const auto& [name, data] : f.values(asep.key_path)) {
          out.resources.push_back(
              Resource{asep_key(asep.key_path, name, ""),
                       asep.id + ": " + printable(name) + " -> " +
                           printable(data)});
          ++out.work.records_visited;
        }
        break;
      case registry::AsepKind::kSubkeys:
        for (const auto& sub : f.subkeys(asep.key_path)) {
          const std::string key = asep.key_path + "\\" + sub;
          const std::string target = find_value_data(f, key, "ImagePath");
          out.resources.push_back(
              Resource{asep_key(key, "", ""),
                       asep.id + ": " + printable(sub) + " -> " +
                           printable(target)});
          ++out.work.records_visited;
        }
        break;
      case registry::AsepKind::kNamedValue: {
        const std::string data =
            find_value_data(f, asep.key_path, asep.value_name);
        for (const auto& item : split(data, ' ')) {
          if (item.empty()) continue;
          out.resources.push_back(
              Resource{asep_key(asep.key_path, asep.value_name, item),
                       asep.id + ": " + printable(item)});
          ++out.work.records_visited;
        }
        break;
      }
    }
  }
}

/// Loads the standard hives from raw disk bytes into an offline registry.
/// All backing files resolve against one pre-scanned listing, so the MFT
/// is walked once rather than once per hive. Each mount's payload read
/// runs as its own task over a private CountingDevice, and the trees,
/// byte counts, and seek counts merge in standard-mount order — so the
/// result (and the work accounting) is identical at any worker count.
/// One unparseable hive fails the whole view with kCorrupt: a partial
/// ASEP catalogue would silently miss hooks, which is worse than an
/// honest degraded diff.
support::StatusOr<registry::ConfigurationManager> load_offline_registry(
    disk::SectorDevice& base, const std::vector<ntfs::RawFile>& files,
    support::ThreadPool* pool, machine::ScanWork& work) {
  const auto& mounts = registry::standard_hive_mounts();

  struct MountRead {
    std::optional<std::uint64_t> record;
    support::StatusOr<hive::Key> tree;
    std::uint64_t payload_bytes = 0;
    std::uint64_t seeks = 0;
  };
  std::vector<MountRead> reads(mounts.size());
  for (std::size_t i = 0; i < mounts.size(); ++i) {
    reads[i].record =
        ntfs::MftScanner::find_in(files, mounts[i].backing_file);
  }

  auto read_one = [&](std::size_t i) {
    MountRead& r = reads[i];
    if (!r.record) return;  // hive file absent: skipped, as before
    auto span = obs::default_tracer().span("hive.read", "parse");
    span.arg("file", mounts[i].backing_file);
    disk::CountingDevice dev(base);
    auto scanner = ntfs::MftScanner::open(dev);
    if (!scanner.ok()) {
      r.tree = scanner.status();
      return;
    }
    try {
      const auto bytes = scanner->read_file_data(*r.record);
      r.payload_bytes = bytes.size();
      r.tree = hive::parse_hive_or(bytes);
    } catch (const ParseError& e) {  // corrupt run list / record
      r.tree = support::Status::corrupt(e.what());
    }
    r.seeks = dev.stats().seeks;
  };
  if (pool && pool->size() > 0 && reads.size() > 1) {
    pool->parallel_for(reads.size(), read_one);
  } else {
    for (std::size_t i = 0; i < reads.size(); ++i) read_one(i);
  }

  registry::ConfigurationManager offline;
  for (std::size_t i = 0; i < mounts.size(); ++i) {
    MountRead& r = reads[i];
    if (!r.record) continue;
    work.bytes_read += r.payload_bytes;
    work.seeks += r.seeks;
    if (!r.tree.ok()) return r.tree.status();
    offline.create_hive(mounts[i].mount, mounts[i].backing_file);
    offline.load_hive(mounts[i].mount, std::move(r.tree.value()));
  }
  return offline;
}

std::uint64_t fnv1a(std::span<const std::byte> data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

/// load_offline_registry with a content-addressed parse cache: every
/// mount's payload bytes are still read through the device (the work
/// accounting must match the cold scan), but an unchanged payload's
/// *parse* is served from `cache` by digest. Tasks only read the cache
/// concurrently; fresh parses are inserted in the serial merge loop.
support::StatusOr<registry::ConfigurationManager>
load_offline_registry_cached(disk::SectorDevice& base,
                             const std::vector<ntfs::RawFile>& files,
                             support::ThreadPool* pool,
                             machine::ScanWork& work,
                             std::map<std::uint64_t, CachedHiveParse>& cache) {
  const auto& mounts = registry::standard_hive_mounts();

  struct MountRead {
    std::optional<std::uint64_t> record;
    support::StatusOr<hive::Key> tree;
    std::uint64_t payload_bytes = 0;
    std::uint64_t seeks = 0;
    std::uint64_t digest = 0;
    std::string hive_name;
    bool fresh_parse = false;
  };
  std::vector<MountRead> reads(mounts.size());
  for (std::size_t i = 0; i < mounts.size(); ++i) {
    reads[i].record =
        ntfs::MftScanner::find_in(files, mounts[i].backing_file);
  }

  auto read_one = [&](std::size_t i) {
    MountRead& r = reads[i];
    if (!r.record) return;  // hive file absent: skipped, as before
    auto span = obs::default_tracer().span("hive.read", "parse");
    span.arg("file", mounts[i].backing_file);
    disk::CountingDevice dev(base);
    auto scanner = ntfs::MftScanner::open(dev);
    if (!scanner.ok()) {
      r.tree = scanner.status();
      return;
    }
    try {
      const auto bytes = scanner->read_file_data(*r.record);
      r.payload_bytes = bytes.size();
      r.digest = fnv1a(bytes);
      if (auto it = cache.find(r.digest); it != cache.end()) {
        span.arg("cached", "1");
        r.tree = it->second.tree;
      } else {
        span.arg("cached", "0");
        r.tree = hive::parse_hive_or(bytes);
        if (r.tree.ok()) {
          r.hive_name = hive::hive_name(bytes);
          r.fresh_parse = true;
        }
      }
    } catch (const ParseError& e) {  // corrupt run list / record
      r.tree = support::Status::corrupt(e.what());
    }
    r.seeks = dev.stats().seeks;
  };
  if (pool && pool->size() > 0 && reads.size() > 1) {
    pool->parallel_for(reads.size(), read_one);
  } else {
    for (std::size_t i = 0; i < reads.size(); ++i) read_one(i);
  }

  registry::ConfigurationManager offline;
  for (std::size_t i = 0; i < mounts.size(); ++i) {
    MountRead& r = reads[i];
    if (!r.record) continue;
    work.bytes_read += r.payload_bytes;
    work.seeks += r.seeks;
    if (!r.tree.ok()) return r.tree.status();
    if (r.fresh_parse) {
      cache.insert_or_assign(r.digest,
                             CachedHiveParse{r.hive_name, r.tree.value()});
    }
    offline.create_hive(mounts[i].mount, mounts[i].backing_file);
    offline.load_hive(mounts[i].mount, std::move(r.tree.value()));
  }
  return offline;
}

AsepFetchers offline_fetchers(const registry::ConfigurationManager& reg) {
  AsepFetchers f;
  f.subkeys = [&reg](const std::string& key) {
    return reg.enum_subkeys_raw(key);
  };
  f.values = [&reg](const std::string& key) {
    std::vector<std::pair<std::string, std::string>> out;
    for (const auto& v : reg.enum_values_raw(key)) {
      out.emplace_back(v.name, v.as_string());
    }
    return out;
  };
  return f;
}

}  // namespace

support::StatusOr<ScanResult> high_level_registry_scan(
    machine::Machine& m, const winapi::Ctx& ctx) {
  ScanResult out;
  out.view_name = "Win32 Reg API scan (" + ctx.image_name + ")";
  out.type = ResourceType::kAsepHook;
  out.trust = TrustLevel::kApiView;

  winapi::ApiEnv* env = m.win32().env(ctx.pid);
  if (!env) {
    return support::Status::failed_precondition(
        "no API environment for context pid " + std::to_string(ctx.pid));
  }

  AsepFetchers f;
  f.subkeys = [env, &ctx](const std::string& key) {
    return env->reg_enum_keys(ctx, key);
  };
  f.values = [env, &ctx](const std::string& key) {
    std::vector<std::pair<std::string, std::string>> out_vals;
    for (const auto& v : env->reg_enum_values(ctx, key)) {
      out_vals.emplace_back(v.name, v.value.as_string());
    }
    return out_vals;
  };
  extract_asep_hooks(f, out);
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> low_level_registry_scan(machine::Machine& m,
                                                      support::ThreadPool* pool,
                                                      bool flush_hives) {
  ScanResult out;
  out.view_name = "raw hive parse";
  out.type = ResourceType::kAsepHook;
  out.trust = TrustLevel::kTruthApproximation;

  // Make the backing files current, then read them below the API stack.
  // (The flush itself is why this is a truth *approximation*: privileged
  // ghostware could in principle tamper with the copy path.)
  if (flush_hives) m.flush_registry();
  auto lookup = ntfs::MftScanner::open(m.disk());
  if (!lookup.ok()) return lookup.status();
  const auto files = lookup->scan(pool);
  auto offline = load_offline_registry(m.disk(), files, pool, out.work);
  if (!offline.ok()) return offline.status();
  extract_asep_hooks(offline_fetchers(*offline), out);
  out.work.seeks += lookup->last_scan_stats().seeks;
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> spliced_low_level_registry_scan(
    machine::Machine& m, internal::SessionState& s,
    support::ThreadPool* pool) {
  if (!s.store.primed) {
    // Snapshot capture failed at sync time: cold path, identical report.
    // The engine already flushed the hives serially; never re-flush here.
    return low_level_registry_scan(m, pool, /*flush_hives=*/false);
  }
  ScanResult out;
  out.view_name = "raw hive parse";
  out.type = ResourceType::kAsepHook;
  out.trust = TrustLevel::kTruthApproximation;

  // The backing-file lookup walk is spliced from the snapshot: same
  // listing the cold scan's MFT walk would produce (default batch size),
  // and the same seek charge for it.
  const auto files = s.store.mft.listing();
  auto offline = load_offline_registry_cached(m.disk(), files, pool,
                                              out.work, s.store.hives);
  if (!offline.ok()) return offline.status();
  extract_asep_hooks(offline_fetchers(*offline), out);
  out.work.seeks += s.store.mft.simulate_scan_io(0).seeks;
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> outside_registry_scan(
    disk::SectorDevice& dev, support::ThreadPool* pool) {
  ScanResult out;
  out.view_name = "WinPE mounted-hive scan";
  out.type = ResourceType::kAsepHook;
  out.trust = TrustLevel::kTruth;

  auto scanner = ntfs::MftScanner::open(dev);
  if (!scanner.ok()) return scanner.status();
  auto offline =
      load_offline_registry(dev, scanner->scan(pool), pool, out.work);
  if (!offline.ok()) return offline.status();
  extract_asep_hooks(offline_fetchers(*offline), out);
  out.normalize();
  return out;
}

}  // namespace gb::core
