#include "core/file_scans.h"

#include <algorithm>
#include <functional>

#include "core/scan_session.h"
#include "ntfs/mft_scanner.h"
#include "support/strings.h"

namespace gb::core {

support::StatusOr<ScanResult> high_level_file_scan(machine::Machine& m,
                                                   const winapi::Ctx& ctx,
                                                   support::ThreadPool* pool) {
  ScanResult out;
  out.view_name = "Win32 FindFile walk (" + ctx.image_name + ")";
  out.type = ResourceType::kFile;
  out.trust = TrustLevel::kApiView;

  winapi::ApiEnv* env = m.win32().env(ctx.pid);
  if (!env) {
    return support::Status::failed_precondition(
        "no API environment for context pid " + std::to_string(ctx.pid));
  }

  // Level-parallel breadth-first walk: each frontier directory is listed
  // by one task, and listings merge in frontier order — so the resource
  // set, the records_visited count, and the normalized output match the
  // recursive serial walk exactly at any worker count.
  struct Listing {
    std::vector<std::pair<std::string, bool>> entries;  // (path, is_dir)
  };
  std::vector<std::string> frontier{"C:"};
  while (!frontier.empty()) {
    std::vector<Listing> listings(frontier.size());
    auto list_one = [&](std::size_t i) {
      bool ok = false;
      const auto entries = env->find_files(ctx, frontier[i], &ok);
      if (!ok) return;  // path beyond Win32: contents invisible to this view
      for (const auto& e : entries) {
        listings[i].entries.emplace_back(join_path(frontier[i], e.name),
                                         e.is_directory);
      }
    };
    if (pool && pool->size() > 0 && frontier.size() > 1) {
      pool->parallel_for(frontier.size(), list_one);
    } else {
      for (std::size_t i = 0; i < frontier.size(); ++i) list_one(i);
    }
    std::vector<std::string> next;
    for (const auto& l : listings) {
      for (const auto& [full, is_dir] : l.entries) {
        out.resources.push_back(Resource{file_key(full), printable(full)});
        ++out.work.records_visited;
        if (is_dir) next.push_back(full);
      }
    }
    frontier = std::move(next);
  }
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> low_level_file_scan(machine::Machine& m,
                                                  support::ThreadPool* pool,
                                                  std::uint32_t batch_records) {
  ScanResult out;
  out.view_name = "raw MFT scan";
  out.type = ResourceType::kFile;
  out.trust = TrustLevel::kTruthApproximation;

  auto opened = ntfs::MftScanner::open(m.disk());
  if (!opened.ok()) return opened.status();
  ntfs::MftScanner& scanner = *opened;
  for (const auto& f : scanner.scan(pool, batch_records)) {
    if (f.is_system) continue;
    const std::string full = "C:\\" + f.path;
    out.resources.push_back(Resource{file_key(full), printable(full)});
  }
  // The scanner also walks every unused MFT record slot; charge them.
  out.work.records_visited = scanner.record_capacity();
  const auto& io = scanner.last_scan_stats();
  out.work.bytes_read = io.bytes_read();
  out.work.seeks = io.seeks;
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> spliced_low_level_file_scan(
    machine::Machine& m, internal::SessionState& s,
    std::uint32_t batch_records) {
  if (!s.store.primed) {
    // Snapshot capture failed at sync time (volume no longer parses):
    // run the cold path so the corruption is reported identically.
    return low_level_file_scan(m, nullptr, batch_records);
  }
  ScanResult out;
  out.view_name = "raw MFT scan";
  out.type = ResourceType::kFile;
  out.trust = TrustLevel::kTruthApproximation;

  for (const auto& f : s.store.mft.listing()) {
    if (f.is_system) continue;
    const std::string full = "C:\\" + f.path;
    out.resources.push_back(Resource{file_key(full), printable(full)});
  }
  // Same charge as the live scan: every record slot visited, and the
  // batched probe/re-read I/O the scanner would have issued.
  out.work.records_visited = s.store.mft.record_capacity();
  const disk::IoStats io = s.store.mft.simulate_scan_io(batch_records);
  out.work.bytes_read = io.bytes_read();
  out.work.seeks = io.seeks;
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> index_file_scan(machine::Machine& m,
                                              support::ThreadPool* pool,
                                              std::uint32_t batch_records) {
  ScanResult out;
  out.view_name = "raw directory-index walk";
  out.type = ResourceType::kFile;
  out.trust = TrustLevel::kTruthApproximation;

  auto opened = ntfs::MftScanner::open(m.disk());
  if (!opened.ok()) return opened.status();
  ntfs::MftScanner& scanner = *opened;
  // Index-visible = full listing minus records no directory index
  // references — plus everything beneath an unindexed directory, which
  // no index chain can reach either.
  const auto orphans = scanner.index_orphans(pool, batch_records);
  std::vector<std::uint64_t> orphan_records;
  std::vector<std::string> orphan_subtrees;
  for (const auto& o : orphans) {
    orphan_records.push_back(o.record);
    if (o.is_directory) orphan_subtrees.push_back(o.path + "\\");
  }
  std::sort(orphan_records.begin(), orphan_records.end());

  for (const auto& f : scanner.scan(pool, batch_records)) {
    if (f.is_system) continue;
    if (std::binary_search(orphan_records.begin(), orphan_records.end(),
                           f.record)) {
      continue;
    }
    bool unreachable = false;
    for (const auto& prefix : orphan_subtrees) {
      if (f.path.starts_with(prefix)) {
        unreachable = true;
        break;
      }
    }
    if (unreachable) continue;
    const std::string full = "C:\\" + f.path;
    out.resources.push_back(Resource{file_key(full), printable(full)});
  }
  // Two record passes (index collection + the listing walk), charged the
  // same way as the low scan; I/O stats come from the listing walk, the
  // last scan() this scanner ran.
  out.work.records_visited = 2ull * scanner.record_capacity();
  const auto& io = scanner.last_scan_stats();
  out.work.bytes_read = io.bytes_read();
  out.work.seeks = io.seeks;
  out.normalize();
  return out;
}

support::StatusOr<ScanResult> outside_file_scan(disk::SectorDevice& dev) {
  ScanResult out;
  out.view_name = "WinPE clean-boot scan";
  out.type = ResourceType::kFile;
  out.trust = TrustLevel::kTruth;

  try {
    // Fresh read-only mount: no hooks, no filters — and provably no
    // writes to the evidence disk (not even the mount-sequence bump).
    ntfs::NtfsVolume vol(dev, ntfs::MountMode::kReadOnly);
    std::function<void(const std::string&)> walk =
        [&](const std::string& dir) {
          for (const auto& e : vol.list_directory(dir)) {
            const std::string full = join_path(dir, e.name);
            out.resources.push_back(Resource{file_key(full), printable(full)});
            ++out.work.records_visited;
            if (e.is_directory) walk(full);
          }
        };
    walk("C:");
  } catch (const ParseError& e) {
    return support::Status::corrupt(e.what());
  }
  out.normalize();
  return out;
}

}  // namespace gb::core
