#include "core/file_scans.h"

#include <functional>

#include "ntfs/mft_scanner.h"
#include "support/strings.h"

namespace gb::core {

ScanResult high_level_file_scan(machine::Machine& m, const winapi::Ctx& ctx) {
  ScanResult out;
  out.view_name = "Win32 FindFile walk (" + ctx.image_name + ")";
  out.type = ResourceType::kFile;
  out.trust = TrustLevel::kApiView;

  winapi::ApiEnv* env = m.win32().env(ctx.pid);
  if (!env) throw std::invalid_argument("no API environment for context pid");

  std::function<void(const std::string&)> walk = [&](const std::string& dir) {
    bool ok = false;
    const auto entries = env->find_files(ctx, dir, &ok);
    if (!ok) return;  // path beyond Win32: contents invisible to this view
    for (const auto& e : entries) {
      const std::string full = join_path(dir, e.name);
      out.resources.push_back(Resource{file_key(full), printable(full)});
      ++out.work.records_visited;
      if (e.is_directory) walk(full);
    }
  };
  walk("C:");
  out.normalize();
  return out;
}

ScanResult low_level_file_scan(machine::Machine& m) {
  ScanResult out;
  out.view_name = "raw MFT scan";
  out.type = ResourceType::kFile;
  out.trust = TrustLevel::kTruthApproximation;

  auto& stats = m.disk().stats();
  stats.reset();
  ntfs::MftScanner scanner(m.disk());
  for (const auto& f : scanner.scan()) {
    ++out.work.records_visited;
    if (f.is_system) continue;
    const std::string full = "C:\\" + f.path;
    out.resources.push_back(Resource{file_key(full), printable(full)});
  }
  // The scanner also walks every unused MFT record slot; charge them.
  out.work.records_visited = scanner.record_capacity();
  out.work.bytes_read = stats.bytes_read();
  out.work.seeks = stats.seeks;
  stats.reset();
  out.normalize();
  return out;
}

ScanResult outside_file_scan(disk::SectorDevice& dev) {
  ScanResult out;
  out.view_name = "WinPE clean-boot scan";
  out.type = ResourceType::kFile;
  out.trust = TrustLevel::kTruth;

  ntfs::NtfsVolume vol(dev);  // fresh mount: no hooks, no filters
  std::function<void(const std::string&)> walk = [&](const std::string& dir) {
    for (const auto& e : vol.list_directory(dir)) {
      const std::string full = join_path(dir, e.name);
      out.resources.push_back(Resource{file_key(full), printable(full)});
      ++out.work.records_visited;
      if (e.is_directory) walk(full);
    }
  };
  walk("C:");
  out.normalize();
  return out;
}

}  // namespace gb::core
