// Mass-hiding anomaly detection (Section 5, "Ghostware Targeting
// Issues").
//
// An attacker could hide a large number of innocent files alongside the
// ghostware to bury the needle in noise. The count itself gives the game
// away: "the existence of a large number of hidden files is a serious
// anomaly."
#pragma once

#include "core/differ.h"

namespace gb::core {

struct AnomalyAssessment {
  std::size_t hidden_files = 0;
  std::size_t hidden_hooks = 0;
  std::size_t hidden_processes = 0;
  bool mass_hiding = false;  // hidden_files >= threshold
  std::string summary;
};

/// Assesses a report for mass hiding. `mass_threshold` is the hidden-file
/// count above which the report is escalated.
AnomalyAssessment assess_anomaly(const std::vector<DiffReport>& diffs,
                                 std::size_t mass_threshold = 50);

}  // namespace gb::core
