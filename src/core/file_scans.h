// File scanners: the three views of Section 2.
//
//   high  — recursive FindFirstFile/FindNextFile walk from a chosen
//           process context ("dir /s /b" equivalent) — may contain the lie
//   low   — raw MFT parse of the live disk — truth approximation
//   outside — clean mount of the powered-off disk (WinPE boot) — truth
//
// Every scan takes an optional pool; with one it splits its own work
// (level-parallel directory walk, chunked MFT batches) while producing a
// result byte-identical to the serial path. A null pool — or a
// zero-worker pool — is exactly the serial path.
//
// All scans return StatusOr: a dead scanner context is a
// kFailedPrecondition, a disk whose NTFS structures no longer parse is
// kCorrupt. The engine turns a non-OK scan into a degraded diff for that
// one resource type instead of aborting the session.
#pragma once

#include "core/scan_result.h"
#include "disk/disk.h"
#include "machine/machine.h"
#include "support/status.h"
#include "support/thread_pool.h"

namespace gb::core {

namespace internal {
struct SessionState;  // core/scan_session.h
}

/// Recursive Win32 enumeration from `ctx`'s process. Directories whose
/// paths are not Win32-expressible cannot be descended into — their
/// contents are simply absent from this view, as on real Windows.
/// With a pool, each directory level's listings run concurrently and
/// merge in frontier order.
[[nodiscard]] support::StatusOr<ScanResult> high_level_file_scan(
    machine::Machine& m, const winapi::Ctx& ctx,
    support::ThreadPool* pool = nullptr);

/// Raw MFT scan of the running machine's disk. Bypasses the entire API
/// stack, filter drivers included. NTFS metadata files are excluded, as
/// the real tool must exclude $-files. With a pool the MFT records parse
/// in chunked batches (`batch_records` 0 = scanner default).
[[nodiscard]] support::StatusOr<ScanResult> low_level_file_scan(
    machine::Machine& m, support::ThreadPool* pool = nullptr,
    std::uint32_t batch_records = 0);

/// Incremental variant for session rescans: the listing and the I/O
/// accounting come from the session's (already-synced) MFT snapshot
/// instead of a live walk, byte-identical to low_level_file_scan over the
/// same volume state. An unprimed store (snapshot capture failed) runs
/// the cold path so corruption is reported exactly as a session-less
/// scan would report it.
[[nodiscard]] support::StatusOr<ScanResult> spliced_low_level_file_scan(
    machine::Machine& m, internal::SessionState& s,
    std::uint32_t batch_records = 0);

/// The directory-index view: what a raw walk of the on-disk directory
/// indexes ($I30 equivalents) can reach. A live MFT record whose parent
/// index does not list it — data-only hiding via index unlinking — is
/// absent here but present in the raw MFT scan, so the matrix diff
/// pinpoints the lie to the index layer. Built from the same corrupt-
/// tolerant MftScanner primitives as the low scan (a trashed unrelated
/// record degrades neither view); batch boundaries depend only on
/// `batch_records`, never on the worker count.
[[nodiscard]] support::StatusOr<ScanResult> index_file_scan(
    machine::Machine& m, support::ThreadPool* pool = nullptr,
    std::uint32_t batch_records = 0);

/// Clean-boot scan of a (typically powered-off) disk: fresh volume mount,
/// full native enumeration — no ghostware code is running.
[[nodiscard]] support::StatusOr<ScanResult> outside_file_scan(disk::SectorDevice& dev);

}  // namespace gb::core
